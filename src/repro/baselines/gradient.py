"""Gradient x input saliency via the nn substrate's backward pass.

A white-box baseline explainer: the saliency of input element ``x_i``
is ``|x_i * dL/dx_i|`` where the gradient flows from the model's top
class score.  Requires a :class:`repro.nn.model.Sequential`; used to
cross-check the distilled explainer on trained CI-scale models.
"""

from __future__ import annotations

import numpy as np

from repro.nn.model import Sequential


def gradient_input_saliency(
    model: Sequential, x: np.ndarray, class_index: int | None = None
) -> np.ndarray:
    """Gradient-times-input saliency for one sample.

    ``x`` is one input of shape ``(channels, H, W)``; the result has the
    same shape.  ``class_index`` defaults to the model's argmax class.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 3:
        raise ValueError(f"expected one (C, H, W) sample, got shape {x.shape}")
    batch = x[np.newaxis]
    logits = model.forward(batch, training=True)
    if logits.ndim != 2:
        raise ValueError("model output must be (batch, classes) logits")
    if class_index is None:
        class_index = int(np.argmax(logits[0]))
    if not 0 <= class_index < logits.shape[1]:
        raise ValueError(
            f"class index {class_index} outside [0, {logits.shape[1]})"
        )
    seed = np.zeros_like(logits)
    seed[0, class_index] = 1.0
    grad = model.backward(seed)
    return np.abs(grad[0] * x)


def saliency_block_grid(
    saliency: np.ndarray, block_shape: tuple[int, int]
) -> np.ndarray:
    """Aggregate an element saliency map into Figure 5 style blocks."""
    saliency = np.asarray(saliency)
    if saliency.ndim == 3:
        saliency = saliency.sum(axis=0)
    if saliency.ndim != 2:
        raise ValueError(f"expected a 2-D or 3-D saliency map, got {saliency.shape}")
    bh, bw = block_shape
    m, n = saliency.shape
    if bh <= 0 or bw <= 0 or m % bh or n % bw:
        raise ValueError(f"block {block_shape} does not tile map {saliency.shape}")
    return saliency.reshape(m // bh, bh, n // bw, bw).sum(axis=(1, 3))
