"""Occlusion saliency: the classic perturbation explainer.

Model-agnostic baseline used to validate the distilled explainer: zero a
block of the input, query the *black-box model itself* (not the
distilled kernel), and score the block by the change in the model's
output.  On inputs with planted evidence both explainers must agree on
the top block -- a cross-check the test suite and EXPERIMENTS.md use.

This is also a cost yardstick: occlusion needs one full model forward
per block, whereas the paper's distilled explainer re-runs only the
one-layer kernel.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

ModelFn = Callable[[np.ndarray], np.ndarray]


def occlusion_saliency(
    model: ModelFn,
    x: np.ndarray,
    block_shape: tuple[int, int],
    fill_value: float = 0.0,
    reduction: str = "l2",
) -> np.ndarray:
    """Block-occlusion saliency grid for one input matrix.

    ``model`` maps an input matrix to an output array (any shape); the
    score of a block is the norm of the output change when the block is
    replaced by ``fill_value``.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix input, got shape {x.shape}")
    bh, bw = block_shape
    if bh <= 0 or bw <= 0:
        raise ValueError(f"block shape must be positive, got {block_shape}")
    m, n = x.shape
    if m % bh or n % bw:
        raise ValueError(f"block {block_shape} does not tile input {x.shape}")

    baseline = np.asarray(model(x), dtype=np.float64)
    grid = np.zeros((m // bh, n // bw))
    for bi in range(m // bh):
        for bj in range(n // bw):
            occluded = x.copy()
            occluded[bi * bh : (bi + 1) * bh, bj * bw : (bj + 1) * bw] = fill_value
            delta = np.asarray(model(occluded), dtype=np.float64) - baseline
            grid[bi, bj] = _norm(delta, reduction)
    return grid


def occlusion_column_saliency(
    model: ModelFn, x: np.ndarray, fill_value: float = 0.0, reduction: str = "l2"
) -> np.ndarray:
    """Per-column occlusion (trace-table clock cycles)."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix input, got shape {x.shape}")
    baseline = np.asarray(model(x), dtype=np.float64)
    scores = np.zeros(x.shape[1])
    for j in range(x.shape[1]):
        occluded = x.copy()
        occluded[:, j] = fill_value
        delta = np.asarray(model(occluded), dtype=np.float64) - baseline
        scores[j] = _norm(delta, reduction)
    return scores


def _norm(delta: np.ndarray, reduction: str) -> float:
    if reduction == "l2":
        return float(np.sqrt(np.sum(delta**2)))
    if reduction == "l1":
        return float(np.sum(np.abs(delta)))
    if reduction == "max_abs":
        return float(np.max(np.abs(delta)))
    raise ValueError(f"unknown reduction {reduction!r}")
