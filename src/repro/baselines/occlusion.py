"""Occlusion saliency: the classic perturbation explainer.

Model-agnostic baseline used to validate the distilled explainer: zero a
block of the input, query the *black-box model itself* (not the
distilled kernel), and score the block by the change in the model's
output.  On inputs with planted evidence both explainers must agree on
the top block -- a cross-check the test suite and EXPERIMENTS.md use.

The masked variants come from the same
:class:`~repro.core.masking.MaskPlan` abstraction the distilled engine
batches on -- one mask generator for every explainer.  The model here
is an opaque callable,
so each variant still needs its own forward query (occlusion's
structural cost: one full model forward per feature, whereas the
paper's distilled explainer re-runs only the one-layer kernel -- and,
batched, amortizes even that into a single program).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.masking import MaskPlan, reduce_batch

ModelFn = Callable[[np.ndarray], np.ndarray]


def occlusion_plan_saliency(
    model: ModelFn,
    x: np.ndarray,
    plan: MaskPlan,
    fill_value: float = 0.0,
    reduction: str = "l2",
) -> np.ndarray:
    """Occlusion saliency for every mask of ``plan``, in its output grid.

    ``model`` maps an input matrix to an output array (any shape); the
    score of a mask is the norm of the output change when its features
    are replaced by ``fill_value``.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix input, got shape {x.shape}")
    if x.shape != plan.plane_shape:
        raise ValueError(
            f"plan plane {plan.plane_shape} does not match input of shape {x.shape}"
        )
    baseline = np.asarray(model(x), dtype=np.float64)
    scores = np.zeros(plan.num_masks)
    # One plane at a time: the opaque model is queried sequentially, so
    # materializing the whole plan.apply stack would buy nothing and
    # costs O(num_masks * M * N) memory (quadratic for an element plan).
    for index, mask in enumerate(plan.masks):
        occluded = np.where(mask, fill_value, x)
        delta = np.asarray(model(occluded), dtype=np.float64) - baseline
        scores[index] = _norm(delta, reduction)
    return plan.reshape_scores(scores)


def occlusion_saliency(
    model: ModelFn,
    x: np.ndarray,
    block_shape: tuple[int, int],
    fill_value: float = 0.0,
    reduction: str = "l2",
) -> np.ndarray:
    """Block-occlusion saliency grid for one input matrix (Figure 5 shape)."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix input, got shape {x.shape}")
    plan = MaskPlan.blocks(x.shape, block_shape)  # validates shape/tiling
    return occlusion_plan_saliency(
        model, x, plan, fill_value=fill_value, reduction=reduction
    )


def occlusion_column_saliency(
    model: ModelFn, x: np.ndarray, fill_value: float = 0.0, reduction: str = "l2"
) -> np.ndarray:
    """Per-column occlusion (trace-table clock cycles)."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix input, got shape {x.shape}")
    plan = MaskPlan.columns(x.shape)
    return occlusion_plan_saliency(
        model, x, plan, fill_value=fill_value, reduction=reduction
    )


def _norm(delta: np.ndarray, reduction: str) -> float:
    # Same reduction vocabulary as the distilled engine's score_plan;
    # flattened first because model outputs may have any shape.
    return float(reduce_batch(np.asarray(delta).reshape(1, 1, -1), reduction)[0])
