"""Iterative linear surrogate: the "slow" optimization-based explainer.

The paper's motivation (Section I) is that existing explainable-ML
methods "solve a complex optimization problem that consists of numerous
iterations of time-consuming computations".  This module implements that
family's archetype -- a LIME-style local linear surrogate fitted by
ridge-regularized gradient descent on perturbed samples -- both

* as a *correctness* baseline (its weights should agree with the
  distilled explainer's scores on planted-evidence inputs), and
* as a *cost* baseline whose iteration count x per-iteration matmuls is
  priced on the device models for the Table II comparison, in contrast
  with the closed-form one-pass Fourier solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hw.device import Device

ModelFn = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class SurrogateConfig:
    """Fit hyper-parameters of the iterative surrogate."""

    num_perturbations: int = 200
    iterations: int = 300
    learning_rate: float = 0.05
    ridge: float = 1e-3
    mask_probability: float = 0.3

    def __post_init__(self) -> None:
        if self.num_perturbations <= 0 or self.iterations <= 0:
            raise ValueError("perturbations and iterations must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if self.ridge < 0:
            raise ValueError("ridge penalty cannot be negative")
        if not 0 < self.mask_probability < 1:
            raise ValueError("mask probability must be in (0, 1)")


@dataclass(frozen=True)
class SurrogateResult:
    """Fitted surrogate weights and fit diagnostics."""

    weights: np.ndarray
    bias: float
    losses: np.ndarray

    @property
    def converged(self) -> bool:
        if self.losses.size < 2:
            return False
        return self.losses[-1] <= self.losses[0]


class LinearSurrogateExplainer:
    """LIME-style surrogate fitted by gradient descent.

    Perturbs the input by randomly zeroing features, queries the
    black-box model, and fits ``output_norm ~ w . mask + b`` by ridge
    gradient descent.  ``weights[i]`` is feature ``i``'s importance.
    """

    def __init__(
        self, config: SurrogateConfig | None = None, seed: int = 0
    ) -> None:
        self.config = config or SurrogateConfig()
        self.seed = seed

    def explain(
        self, model: ModelFn, x: np.ndarray, device: Device | None = None
    ) -> SurrogateResult:
        """Fit the surrogate around ``x`` and return feature weights.

        ``device`` (optional) prices the fit's linear algebra: one
        ``(P x d) @ (d,)`` product and its transpose per iteration --
        the "numerous iterations" cost the paper contrasts against.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected a matrix input, got shape {x.shape}")
        config = self.config
        rng = np.random.default_rng(self.seed)
        features = x.size

        keep = rng.random((config.num_perturbations, features)) > config.mask_probability
        targets = np.zeros(config.num_perturbations)
        for index in range(config.num_perturbations):
            perturbed = (x.reshape(-1) * keep[index]).reshape(x.shape)
            output = np.asarray(model(perturbed), dtype=np.float64)
            targets[index] = np.sqrt(np.sum(output**2))

        design = keep.astype(np.float64)
        weights = np.zeros(features)
        bias = 0.0
        losses = np.zeros(config.iterations)
        count = config.num_perturbations
        for iteration in range(config.iterations):
            predictions = design @ weights + bias
            residual = predictions - targets
            losses[iteration] = float(np.mean(residual**2))
            grad_weights = 2.0 * (design.T @ residual) / count + 2.0 * config.ridge * weights
            grad_bias = 2.0 * float(residual.mean())
            weights -= config.learning_rate * grad_weights
            bias -= config.learning_rate * grad_bias
            if device is not None:
                # Two matvecs per iteration: X @ w and X^T @ r.
                device.account_matmul(count, features, 1)
                device.account_matmul(features, count, 1)
        # Importance of *presence*: positive weight = feature drives output.
        importances = np.abs(weights).reshape(x.shape)
        return SurrogateResult(weights=importances, bias=bias, losses=losses)

    def fit_cost_seconds(self, features: int, device: Device) -> float:
        """Price the whole fit on a device without running it.

        Used by the Table II harness to cost the optimization-based
        baseline at full workload scale.
        """
        config = self.config
        per_iteration = device.matmul_seconds(
            config.num_perturbations, features, 1
        ) + device.matmul_seconds(features, config.num_perturbations, 1)
        return config.iterations * per_iteration
