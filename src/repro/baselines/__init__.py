"""Baseline explainers used for correctness cross-checks and cost contrast.

* :mod:`repro.baselines.occlusion` -- black-box block/column occlusion;
* :mod:`repro.baselines.gradient`  -- white-box gradient x input;
* :mod:`repro.baselines.surrogate` -- the iterative optimization-based
  surrogate the paper's closed-form solve is measured against.
"""

from repro.baselines.gradient import gradient_input_saliency, saliency_block_grid
from repro.baselines.occlusion import (
    occlusion_column_saliency,
    occlusion_plan_saliency,
    occlusion_saliency,
)
from repro.baselines.surrogate import (
    LinearSurrogateExplainer,
    SurrogateConfig,
    SurrogateResult,
)

__all__ = [
    "gradient_input_saliency",
    "saliency_block_grid",
    "occlusion_column_saliency",
    "occlusion_plan_saliency",
    "occlusion_saliency",
    "LinearSurrogateExplainer",
    "SurrogateConfig",
    "SurrogateResult",
]
