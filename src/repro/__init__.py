"""repro: TPU-accelerated explainable machine learning, reproduced.

A from-scratch reproduction of Pan & Mishra, "Hardware Acceleration of
Explainable Machine Learning using Tensor Processing Units" (DATE 2022,
arXiv:2103.11927).

Quick start::

    import numpy as np
    from repro import ConvolutionDistiller, TpuBackend, make_tpu_chip

    backend = TpuBackend(make_tpu_chip(num_cores=128, precision="bf16"))
    distiller = ConvolutionDistiller(device=backend, eps=1e-6)
    distiller.fit(x, y)                    # K = F^-1(F(Y)/F(X))
    scores = feature_contributions(x, distiller.kernel_, y)

Package map (see DESIGN.md for the full inventory):

==================  ====================================================
``repro.fft``       from-scratch Fourier substrate (radix-2, Bluestein,
                    matmul-form 2-D transforms, convolution theorem)
``repro.hw``        simulated hardware: cycle-level systolic TPU,
                    CPU/GPU comparator models, memories, interconnect
``repro.core``      the paper's contribution: Fourier-domain model
                    distillation, contribution factors, Algorithm 1
                    data decomposition, multi-input parallelism
``repro.nn``        numpy neural networks: VGG19/ResNet50 builders,
                    training loop, FLOP census
``repro.data``      synthetic CIFAR-100-like images and MIRAI-style
                    malware trace tables with planted ground truth
``repro.baselines`` occlusion, gradient x input, iterative surrogate
``repro.bench``     harness regenerating every table and figure
==================  ====================================================
"""

from repro.core import (
    ConvolutionDistiller,
    DecomposedFourier,
    ExplanationPipeline,
    MaskPlan,
    MaskSpec,
    MultiInputScheduler,
    OutputEmbedding,
    TpuBackend,
    block_contributions,
    column_contributions,
    feature_contributions,
    frequency_solve,
    make_tpu_chip,
    score_plan,
    top_k_features,
)
from repro.hw import CpuDevice, GpuDevice, TpuChip, TpuCore, speedup

__version__ = "1.0.0"

__all__ = [
    "ConvolutionDistiller",
    "DecomposedFourier",
    "ExplanationPipeline",
    "MaskPlan",
    "MaskSpec",
    "MultiInputScheduler",
    "score_plan",
    "OutputEmbedding",
    "TpuBackend",
    "block_contributions",
    "column_contributions",
    "feature_contributions",
    "frequency_solve",
    "make_tpu_chip",
    "top_k_features",
    "CpuDevice",
    "GpuDevice",
    "TpuChip",
    "TpuCore",
    "speedup",
    "__version__",
]
