"""Circular and linear convolution, direct and via the convolution theorem.

The distilled model of the paper is the circular convolution
``X (*) K = Y`` (Eq. 2); its closed-form solve uses the discrete
convolution theorem ``F(X (*) K) = F(X) o F(K)`` (Eq. 3).  This module
provides:

* direct (quadratic / quartic) convolution -- the unambiguous reference
  definition, used by tests and small inputs;
* FFT-based convolution -- the fast path whose agreement with the direct
  form *is* the convolution theorem, asserted by property tests;
* batched FFT convolution -- a stack of inputs against one shared
  kernel whose spectrum is computed exactly once, the hot path of the
  batched occlusion engine (:mod:`repro.core.masking`);
* chunk-streamed FFT convolution -- the same arithmetic driven by an
  *iterator* of ``(chunk, row_range)`` slices instead of a materialized
  ``(batch, M, N)`` stack, so peak memory is ``O(chunk_rows * M * N)``
  regardless of batch size (the substrate of lazy
  :class:`~repro.core.masking.MaskSpec` scoring and streamed fleet
  waves); the dense batch form is a thin wrapper over it;
* linear convolution via zero-padding to a circular one, for callers who
  need aperiodic behaviour.

Chunk boundaries never change bits: :func:`repro.fft.fft2d.fft2_batch`
transforms each plane independently, and the per-row Hadamard products
and reductions are plane-local, so streamed, dense-batched and
one-plane-at-a-time execution agree exactly.

When input and kernel are both real -- the dominant case, since every
occlusion mask and distilled kernel is real -- all three forms route
through the **half-spectrum real path** (:func:`repro.fft.fft2d.rfft2_batch`
/ :func:`~repro.fft.fft2d.irfft2_batch`): Hermitian symmetry means only
``N//2 + 1`` of the ``N`` spectrum columns are computed, stored and
multiplied, roughly halving host transform work and memory.  The full
complex path remains for complex operands and stays reachable for real
ones via :func:`set_real_convolution_path` so the host benchmark can
measure the difference.  Kernel spectra come from the process-level
content-addressed cache (:mod:`repro.fft.spectra`), so byte-equal
kernels are transformed once per process, not once per call.

Every FFT-convolution entry point additionally accepts an optional
``precision`` -- a :class:`repro.hw.quantize.PrecisionSpec` (duck-typed
here so the FFT layer stays independent of the hardware layer) whose
``apply`` rounds operands plane by plane.  The spec quantizes the data
planes in the spatial domain and the kernel *spectra* in the frequency
domain, then the transforms and Hadamard products accumulate in float64
-- the MXU int8/bf16 datapath.  Because the rounding is strictly
per-plane, the streamed/dense/loop agreement above holds unchanged at
every precision.
"""

from __future__ import annotations

import numpy as np

from repro.fft import spectra
from repro.fft.fft import fft, ifft
from repro.fft.fft2d import (
    fft2,
    fft2_batch,
    ifft2,
    ifft2_batch,
    irfft2_batch,
    rfft2_batch,
)
from repro.fft.spectra import KernelSpectrum


def _as_1d(x: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(x)
    if array.ndim != 1:
        raise ValueError(f"{name} expects a 1-D array, got shape {array.shape}")
    if array.shape[0] == 0:
        raise ValueError(f"{name} of an empty array is undefined")
    return array


def _as_2d(x: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(x)
    if array.ndim != 2:
        raise ValueError(f"{name} expects a 2-D array, got shape {array.shape}")
    if 0 in array.shape:
        raise ValueError(f"{name} of an empty matrix is undefined")
    return array


def circular_convolve(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Direct circular convolution of two equal-length 1-D arrays.

    ``out[i] = sum_j x[j] * k[(i - j) mod n]``.
    """
    x = _as_1d(x, "circular_convolve")
    k = _as_1d(k, "circular_convolve")
    if x.shape != k.shape:
        raise ValueError(
            f"circular convolution needs equal lengths, got {x.shape} and {k.shape}"
        )
    n = x.shape[0]
    result_dtype = np.result_type(x.dtype, k.dtype, np.float64)
    out = np.zeros(n, dtype=result_dtype)
    for shift in range(n):
        out += x[shift] * np.roll(k, shift)
    return out


def circular_convolve2d(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Direct 2-D circular convolution of two equal-shape matrices.

    ``out[i, j] = sum_{p, q} x[p, q] * k[(i - p) mod M, (j - q) mod N]``.
    Quartic cost; intended for tests and small inputs.
    """
    x = _as_2d(x, "circular_convolve2d")
    k = _as_2d(k, "circular_convolve2d")
    if x.shape != k.shape:
        raise ValueError(
            f"2-D circular convolution needs equal shapes, got {x.shape} and {k.shape}"
        )
    m, n = x.shape
    result_dtype = np.result_type(x.dtype, k.dtype, np.float64)
    out = np.zeros((m, n), dtype=result_dtype)
    for p in range(m):
        for q in range(n):
            value = x[p, q]
            if value == 0:
                continue
            out += value * np.roll(np.roll(k, p, axis=0), q, axis=1)
    return out


def fft_circular_convolve(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """1-D circular convolution via the convolution theorem."""
    x = _as_1d(x, "fft_circular_convolve")
    k = _as_1d(k, "fft_circular_convolve")
    if x.shape != k.shape:
        raise ValueError(
            f"circular convolution needs equal lengths, got {x.shape} and {k.shape}"
        )
    spectrum = fft(x) * fft(k)
    result = ifft(spectrum)
    if np.isrealobj(x) and np.isrealobj(k):
        return result.real
    return result


# Real operands route through the rFFT half-spectrum path by default;
# the pre-change full-complex path stays reachable so the host benchmark
# can measure exactly what the real path buys.
_REAL_PATH_ENABLED = True


def set_real_convolution_path(enabled: bool) -> bool:
    """Toggle the real-input half-spectrum fast path; returns the previous setting."""
    global _REAL_PATH_ENABLED
    previous = _REAL_PATH_ENABLED
    _REAL_PATH_ENABLED = bool(enabled)
    return previous


def real_convolution_path_enabled() -> bool:
    """Whether real-operand convolutions use the half-spectrum fast path."""
    return _REAL_PATH_ENABLED


def fft_circular_convolve2d(
    x: np.ndarray, k: np.ndarray, precision=None
) -> np.ndarray:
    """2-D circular convolution via the convolution theorem (Eq. 3).

    Real ``x`` and ``k`` (the occlusion hot path) take the half-spectrum
    real path -- input and cached kernel spectra hold only the
    ``N//2 + 1`` non-redundant columns -- unless disabled via
    :func:`set_real_convolution_path`; complex operands take the full
    complex path.  Real-kernel spectra are fetched from the
    process-level cache either way.

    ``precision`` (an optional :class:`~repro.hw.quantize.PrecisionSpec`)
    rounds the input plane spatially and the kernel spectrum per complex
    component before the Hadamard product -- the quantized MXU datapath.
    """
    x = _as_2d(x, "fft_circular_convolve2d")
    k = _as_2d(k, "fft_circular_convolve2d")
    if x.shape != k.shape:
        raise ValueError(
            f"2-D circular convolution needs equal shapes, got {x.shape} and {k.shape}"
        )
    x_in = x if precision is None else precision.apply(x)
    if np.isrealobj(k):
        if _REAL_PATH_ENABLED and np.isrealobj(x_in):
            half = spectra.kernel_spectrum(k, real=True, precision=precision)
            return irfft2_batch(rfft2_batch(x_in) * half.array, n=k.shape[-1])
        kernel_spectrum = spectra.kernel_spectrum(
            k, real=False, precision=precision
        ).array
    else:
        kernel_spectrum = fft2(k)
        if precision is not None:
            kernel_spectrum = precision.apply(kernel_spectrum)
    spectrum = fft2(x_in) * kernel_spectrum
    result = ifft2(spectrum)
    if np.isrealobj(x) and np.isrealobj(k):
        return result.real
    return result


# Planes transformed per slice of a batched convolution: bounds the
# complex128 FFT intermediates (the largest allocations, ~4x the real
# input stack) without changing any per-plane arithmetic.
_CONV_BATCH_CHUNK = 64


def _validate_batch_kernel(
    k: np.ndarray,
    row_kernel: np.ndarray | None,
    kernel_spectrum: np.ndarray | None,
    num_rows: int | None,
    name: str,
) -> tuple[np.ndarray, bool, np.ndarray | None, np.ndarray | None]:
    """Shared kernel/row-map validation for dense and streamed batches.

    Returns ``(k, multi_kernel, row_kernel, kernel_spectrum)`` with the
    row map cast to ``intp`` and the spectrum shape-checked (``None``
    when the caller must compute it).  ``kernel_spectrum`` may be a raw
    full-spectrum ndarray (legacy form, shape must equal ``k.shape``) or
    a :class:`~repro.fft.spectra.KernelSpectrum` of either kind covering
    the same planes.  ``num_rows`` is the batch length the row map must
    cover; ``None`` skips that check (streamed callers of unknown length
    validate per chunk instead).
    """
    multi_kernel = k.ndim == 3
    if not multi_kernel:
        k = _as_2d(k, name)
    elif 0 in k.shape:
        raise ValueError(f"{name} kernel stack is empty")
    if multi_kernel:
        if row_kernel is None:
            raise ValueError("a kernel stack needs a row_kernel mapping")
        row_kernel = np.asarray(row_kernel, dtype=np.intp)
        if row_kernel.ndim != 1:
            raise ValueError(
                f"row_kernel must be a flat row map, got shape {row_kernel.shape}"
            )
        if num_rows is not None and row_kernel.shape != (num_rows,):
            raise ValueError(
                f"row_kernel must map all {num_rows} rows, "
                f"got shape {row_kernel.shape}"
            )
        if row_kernel.size and (
            row_kernel.min() < 0 or row_kernel.max() >= k.shape[0]
        ):
            raise ValueError(
                f"row_kernel indices must lie in [0, {k.shape[0]}), "
                f"got range [{row_kernel.min()}, {row_kernel.max()}]"
            )
    elif row_kernel is not None:
        raise ValueError("row_kernel requires a (P, M, N) kernel stack")
    if isinstance(kernel_spectrum, KernelSpectrum):
        if kernel_spectrum.plane_shape != k.shape[-2:]:
            raise ValueError(
                f"kernel spectrum covers {kernel_spectrum.plane_shape} planes, "
                f"kernel planes have shape {k.shape[-2:]}"
            )
        if kernel_spectrum.array.shape[:-2] != k.shape[:-2]:
            raise ValueError(
                f"kernel spectrum stack shape {kernel_spectrum.array.shape[:-2]} "
                f"does not match kernel stack shape {k.shape[:-2]}"
            )
    elif kernel_spectrum is not None:
        kernel_spectrum = np.asarray(kernel_spectrum)
        if kernel_spectrum.shape != k.shape:
            raise ValueError(
                f"kernel_spectrum shape {kernel_spectrum.shape} does not match "
                f"kernel of shape {k.shape}"
            )
    return k, multi_kernel, row_kernel, kernel_spectrum


def _hadamard_by_kernel_runs(
    chunk_spectrum: np.ndarray,
    kernel_spectrum: np.ndarray,
    row_kernel_chunk: np.ndarray,
) -> np.ndarray:
    """Per-row kernel Hadamard product, exploiting sorted row maps.

    :meth:`repro.core.masking.SliceTable.row_pair_indices` is always
    non-decreasing (waves list pairs in order), so instead of the fancy
    -index gather ``kernel_spectrum[row_kernel]`` -- which copies one
    ``(rows, M, N)`` complex128 plane per input row -- each contiguous
    run of rows sharing a kernel broadcasts directly against that
    kernel's ``(M, N)`` spectrum *view*.  Falls back to the gather for
    unsorted maps.  Bit-identical either way: the same complex products
    are formed, only the operand staging changes.
    """
    diffs = np.diff(row_kernel_chunk)
    if row_kernel_chunk.size and (diffs < 0).any():
        return chunk_spectrum * kernel_spectrum[row_kernel_chunk]
    product = np.empty_like(chunk_spectrum)
    boundaries = [0, *(np.flatnonzero(diffs) + 1), row_kernel_chunk.size]
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        if start == stop:
            continue
        np.multiply(
            chunk_spectrum[start:stop],
            kernel_spectrum[row_kernel_chunk[start]],
            out=product[start:stop],
        )
    return product


def fft_circular_convolve2d_chunks(
    chunks,
    k: np.ndarray,
    kernel_spectrum: np.ndarray | None = None,
    row_kernel: np.ndarray | None = None,
    num_rows: int | None = None,
    precision=None,
):
    """Streamed circular convolution over an iterator of stack chunks.

    ``chunks`` yields ``(chunk, row_range)`` pairs: a ``(rows, M, N)``
    slice of the conceptual batch plus the ``range`` of global row
    indices it covers (used to slice ``row_kernel``).  Yields
    ``(convolved_chunk, row_range)`` in the same order.  Rows must
    arrive in order and without gaps starting at 0; when ``num_rows``
    is given the stream must cover exactly that many rows (a desync
    raises instead of silently mis-assigning kernels to rows).

    This is the lazy-mask-plan fast path: the conceptual batch is never
    materialized, so peak memory is ``O(chunk_rows * M * N)`` however
    many masks a plan generates.  Kernel handling matches
    :func:`fft_circular_convolve2d_batch` (single shared kernel, or a
    ``(P, M, N)`` stack with a per-row map whose spectra are computed
    exactly once up front); each output plane is bit-identical to the
    dense batch form and to :func:`fft_circular_convolve2d` on the
    corresponding planes.

    Real kernels with the real path enabled use cached half spectra and
    the rFFT chunk transform; a complex chunk arriving under a half
    spectrum falls back to the cached *full* spectrum for that chunk, so
    its planes stay bit-identical to the complex loop path.

    ``precision`` (an optional :class:`~repro.hw.quantize.PrecisionSpec`)
    rounds every incoming data chunk plane-by-plane in the spatial
    domain and the kernel spectra per plane/component up front; since
    both roundings are per-plane, chunk boundaries still never change
    bits and the quantized stream matches quantized dense and loop
    execution exactly.  A supplied ``kernel_spectrum`` ndarray must be
    the *raw* (unquantized) full spectrum -- the spec is applied here,
    exactly once; a supplied :class:`~repro.fft.spectra.KernelSpectrum`
    may be raw (quantized here the same way) or already quantized, in
    which case its ``precision_name`` must match ``precision``.
    """
    k = np.asarray(k)
    k, multi_kernel, row_kernel, kernel_spectrum = _validate_batch_kernel(
        k, row_kernel, kernel_spectrum, num_rows, "fft_circular_convolve2d_chunks"
    )
    real_kernel = np.isrealobj(k)
    if isinstance(kernel_spectrum, KernelSpectrum):
        spec_kind = kernel_spectrum.kind
        spec_array = kernel_spectrum.array
        if kernel_spectrum.precision_name is not None:
            wanted = None if precision is None else str(precision.name)
            if kernel_spectrum.precision_name != wanted:
                raise ValueError(
                    f"kernel spectrum quantized as "
                    f"{kernel_spectrum.precision_name!r} cannot serve a "
                    f"{wanted!r}-precision convolution"
                )
        elif precision is not None:
            spec_array = precision.apply(spec_array)
    elif kernel_spectrum is not None:
        spec_kind = "full"
        spec_array = kernel_spectrum
        if precision is not None:
            spec_array = precision.apply(spec_array)
    elif real_kernel:
        use_half = _REAL_PATH_ENABLED
        spec_kind = "half" if use_half else "full"
        spec_array = spectra.kernel_spectrum(
            k, real=use_half, precision=precision
        ).array
    else:
        spec_kind = "full"
        spec_array = fft2_batch(k) if multi_kernel else fft2(k)
        if precision is not None:
            spec_array = precision.apply(spec_array)
    full_spec = spec_array if spec_kind == "full" else None

    def _full_spectrum() -> np.ndarray:
        # Complex chunks under a half kernel spectrum need the full one;
        # fetched lazily from the cache so the pure-real stream (every
        # occlusion plan) never pays for it.
        nonlocal full_spec
        if full_spec is None:
            full_spec = spectra.kernel_spectrum(
                k, real=False, precision=precision
            ).array
        return full_spec

    plane_shape = k.shape[-2:]
    next_row = 0
    for chunk, rows in chunks:
        chunk = np.asarray(chunk)
        if chunk.ndim != 3 or chunk.shape[1:] != plane_shape:
            raise ValueError(
                f"chunk of shape {chunk.shape} does not slice a "
                f"(batch, {plane_shape[0]}, {plane_shape[1]}) stack"
            )
        rows = range(rows.start, rows.stop) if not isinstance(rows, range) else rows
        if len(rows) != chunk.shape[0] or rows.start != next_row:
            raise ValueError(
                f"chunk rows {rows} desynchronized from stream position "
                f"{next_row} (chunk holds {chunk.shape[0]} planes)"
            )
        next_row = rows.stop
        if precision is not None:
            chunk = precision.apply(chunk)
        real_chunk = real_kernel and np.isrealobj(chunk)
        half_path = spec_kind == "half" and real_chunk
        if half_path:
            chunk_spectrum = rfft2_batch(chunk)
            spec = spec_array
        else:
            chunk_spectrum = fft2_batch(chunk)
            spec = _full_spectrum()
        if multi_kernel:
            if rows.stop > row_kernel.shape[0]:
                raise ValueError(
                    f"chunk rows {rows} overrun the {row_kernel.shape[0]}-row "
                    "row_kernel map"
                )
            product = _hadamard_by_kernel_runs(
                chunk_spectrum, spec, row_kernel[rows.start : rows.stop]
            )
        else:
            product = chunk_spectrum * spec
        if half_path:
            convolved = irfft2_batch(product, n=plane_shape[1])
        else:
            convolved = ifft2_batch(product)
            if real_chunk:
                convolved = convolved.real
        yield convolved, rows
    if num_rows is not None and next_row != num_rows:
        raise ValueError(
            f"chunk stream ended at row {next_row}, expected {num_rows} rows"
        )


def fft_circular_convolve2d_batch(
    x_batch: np.ndarray,
    k: np.ndarray,
    kernel_spectrum: np.ndarray | None = None,
    row_kernel: np.ndarray | None = None,
    precision=None,
) -> np.ndarray:
    """Circular convolution of a ``(batch, M, N)`` stack with shared kernels.

    ``k`` is either one ``(M, N)`` kernel shared by every row (the
    original single-pair form) or a ``(P, M, N)`` kernel stack, in which
    case ``row_kernel`` maps each input row to the kernel plane it
    convolves against -- the cross-pair wave form, where the rows of many
    input-output pairs fuse into one batch but each pair keeps its own
    distilled kernel.  The kernel spectra are computed once for the whole
    batch (or reused verbatim when ``kernel_spectrum`` is supplied --
    callers convolving several batches against the same kernels amortize
    them further).  Each output plane is bit-identical to
    :func:`fft_circular_convolve2d` on the corresponding (input, kernel)
    planes; internally the stack is driven through
    :func:`fft_circular_convolve2d_chunks` in bounded-size slices so
    peak *intermediate* memory stays a small multiple of one chunk
    (per-row spectra are staged run-by-run, never gathered for the full
    batch).  Callers that cannot afford the dense input/output stacks
    either should use the chunk iterator directly.

    ``precision`` forwards to the chunk iterator: data planes quantize
    spatially per plane, kernel spectra per plane/component, so a
    quantized dense batch is bit-identical to the quantized stream and
    to quantized per-plane :func:`fft_circular_convolve2d` calls.
    """
    x_batch = np.asarray(x_batch)
    if x_batch.ndim != 3:
        raise ValueError(
            "fft_circular_convolve2d_batch expects a (batch, M, N) stack, "
            f"got shape {x_batch.shape}"
        )
    if 0 in x_batch.shape:
        raise ValueError("fft_circular_convolve2d_batch of an empty batch is undefined")
    k = np.asarray(k)
    if k.ndim not in (2, 3) or x_batch.shape[1:] != k.shape[-2:]:
        raise ValueError(
            "batched circular convolution needs matching plane shapes, got "
            f"{x_batch.shape[1:]} and {k.shape[-2:]}"
        )
    num_rows = x_batch.shape[0]
    # Validate eagerly so bad calls raise here, not at first iteration.
    _validate_batch_kernel(
        k, row_kernel, kernel_spectrum, num_rows, "fft_circular_convolve2d_batch"
    )
    real_output = np.isrealobj(x_batch) and np.isrealobj(k)
    result = np.empty(
        x_batch.shape, dtype=np.float64 if real_output else np.complex128
    )
    chunk_views = (
        (x_batch[start : start + _CONV_BATCH_CHUNK],
         range(start, min(start + _CONV_BATCH_CHUNK, num_rows)))
        for start in range(0, num_rows, _CONV_BATCH_CHUNK)
    )
    for convolved, rows in fft_circular_convolve2d_chunks(
        chunk_views, k, kernel_spectrum=kernel_spectrum,
        row_kernel=row_kernel, num_rows=num_rows, precision=precision,
    ):
        result[rows.start : rows.stop] = convolved
    return result


def linear_convolve(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Full linear convolution of 1-D arrays (output length ``len(x)+len(k)-1``).

    Implemented by zero-padding both operands to a common length and
    reusing the circular fast path.
    """
    x = _as_1d(x, "linear_convolve")
    k = _as_1d(k, "linear_convolve")
    out_len = x.shape[0] + k.shape[0] - 1
    x_pad = np.zeros(out_len, dtype=np.result_type(x.dtype, np.float64))
    k_pad = np.zeros(out_len, dtype=np.result_type(k.dtype, np.float64))
    x_pad[: x.shape[0]] = x
    k_pad[: k.shape[0]] = k
    return fft_circular_convolve(x_pad, k_pad)


def linear_convolve2d(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Full linear convolution of 2-D arrays via padded circular convolution."""
    x = _as_2d(x, "linear_convolve2d")
    k = _as_2d(k, "linear_convolve2d")
    out_shape = (x.shape[0] + k.shape[0] - 1, x.shape[1] + k.shape[1] - 1)
    x_pad = np.zeros(out_shape, dtype=np.result_type(x.dtype, np.float64))
    k_pad = np.zeros(out_shape, dtype=np.result_type(k.dtype, np.float64))
    x_pad[: x.shape[0], : x.shape[1]] = x
    k_pad[: k.shape[0], : k.shape[1]] = k
    return fft_circular_convolve2d(x_pad, k_pad)
