"""Circular and linear convolution, direct and via the convolution theorem.

The distilled model of the paper is the circular convolution
``X (*) K = Y`` (Eq. 2); its closed-form solve uses the discrete
convolution theorem ``F(X (*) K) = F(X) o F(K)`` (Eq. 3).  This module
provides:

* direct (quadratic / quartic) convolution -- the unambiguous reference
  definition, used by tests and small inputs;
* FFT-based convolution -- the fast path whose agreement with the direct
  form *is* the convolution theorem, asserted by property tests;
* batched FFT convolution -- a stack of inputs against one shared
  kernel whose spectrum is computed exactly once, the hot path of the
  batched occlusion engine (:mod:`repro.core.masking`);
* linear convolution via zero-padding to a circular one, for callers who
  need aperiodic behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.fft.fft import fft, ifft
from repro.fft.fft2d import fft2, fft2_batch, ifft2, ifft2_batch


def _as_1d(x: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(x)
    if array.ndim != 1:
        raise ValueError(f"{name} expects a 1-D array, got shape {array.shape}")
    if array.shape[0] == 0:
        raise ValueError(f"{name} of an empty array is undefined")
    return array


def _as_2d(x: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(x)
    if array.ndim != 2:
        raise ValueError(f"{name} expects a 2-D array, got shape {array.shape}")
    if 0 in array.shape:
        raise ValueError(f"{name} of an empty matrix is undefined")
    return array


def circular_convolve(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Direct circular convolution of two equal-length 1-D arrays.

    ``out[i] = sum_j x[j] * k[(i - j) mod n]``.
    """
    x = _as_1d(x, "circular_convolve")
    k = _as_1d(k, "circular_convolve")
    if x.shape != k.shape:
        raise ValueError(
            f"circular convolution needs equal lengths, got {x.shape} and {k.shape}"
        )
    n = x.shape[0]
    result_dtype = np.result_type(x.dtype, k.dtype, np.float64)
    out = np.zeros(n, dtype=result_dtype)
    for shift in range(n):
        out += x[shift] * np.roll(k, shift)
    return out


def circular_convolve2d(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Direct 2-D circular convolution of two equal-shape matrices.

    ``out[i, j] = sum_{p, q} x[p, q] * k[(i - p) mod M, (j - q) mod N]``.
    Quartic cost; intended for tests and small inputs.
    """
    x = _as_2d(x, "circular_convolve2d")
    k = _as_2d(k, "circular_convolve2d")
    if x.shape != k.shape:
        raise ValueError(
            f"2-D circular convolution needs equal shapes, got {x.shape} and {k.shape}"
        )
    m, n = x.shape
    result_dtype = np.result_type(x.dtype, k.dtype, np.float64)
    out = np.zeros((m, n), dtype=result_dtype)
    for p in range(m):
        for q in range(n):
            value = x[p, q]
            if value == 0:
                continue
            out += value * np.roll(np.roll(k, p, axis=0), q, axis=1)
    return out


def fft_circular_convolve(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """1-D circular convolution via the convolution theorem."""
    x = _as_1d(x, "fft_circular_convolve")
    k = _as_1d(k, "fft_circular_convolve")
    if x.shape != k.shape:
        raise ValueError(
            f"circular convolution needs equal lengths, got {x.shape} and {k.shape}"
        )
    spectrum = fft(x) * fft(k)
    result = ifft(spectrum)
    if np.isrealobj(x) and np.isrealobj(k):
        return result.real
    return result


def fft_circular_convolve2d(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """2-D circular convolution via the convolution theorem (Eq. 3)."""
    x = _as_2d(x, "fft_circular_convolve2d")
    k = _as_2d(k, "fft_circular_convolve2d")
    if x.shape != k.shape:
        raise ValueError(
            f"2-D circular convolution needs equal shapes, got {x.shape} and {k.shape}"
        )
    spectrum = fft2(x) * fft2(k)
    result = ifft2(spectrum)
    if np.isrealobj(x) and np.isrealobj(k):
        return result.real
    return result


# Planes transformed per slice of a batched convolution: bounds the
# complex128 FFT intermediates (the largest allocations, ~4x the real
# input stack) without changing any per-plane arithmetic.
_CONV_BATCH_CHUNK = 64


def fft_circular_convolve2d_batch(
    x_batch: np.ndarray,
    k: np.ndarray,
    kernel_spectrum: np.ndarray | None = None,
    row_kernel: np.ndarray | None = None,
) -> np.ndarray:
    """Circular convolution of a ``(batch, M, N)`` stack with shared kernels.

    ``k`` is either one ``(M, N)`` kernel shared by every row (the
    original single-pair form) or a ``(P, M, N)`` kernel stack, in which
    case ``row_kernel`` maps each input row to the kernel plane it
    convolves against -- the cross-pair wave form, where the rows of many
    input-output pairs fuse into one batch but each pair keeps its own
    distilled kernel.  The kernel spectra are computed once for the whole
    batch (or reused verbatim when ``kernel_spectrum`` is supplied --
    callers convolving several batches against the same kernels amortize
    them further).  Each output plane is bit-identical to
    :func:`fft_circular_convolve2d` on the corresponding (input, kernel)
    planes; internally the stack is transformed in bounded-size slices so
    peak memory stays a small multiple of the input stack (per-row
    spectra are gathered chunk-wise, never materialized for the full
    batch).
    """
    x_batch = np.asarray(x_batch)
    if x_batch.ndim != 3:
        raise ValueError(
            "fft_circular_convolve2d_batch expects a (batch, M, N) stack, "
            f"got shape {x_batch.shape}"
        )
    if 0 in x_batch.shape:
        raise ValueError("fft_circular_convolve2d_batch of an empty batch is undefined")
    k = np.asarray(k)
    multi_kernel = k.ndim == 3
    if not multi_kernel:
        k = _as_2d(k, "fft_circular_convolve2d_batch")
    elif 0 in k.shape:
        raise ValueError("fft_circular_convolve2d_batch kernel stack is empty")
    if x_batch.shape[1:] != k.shape[-2:]:
        raise ValueError(
            "batched circular convolution needs matching plane shapes, got "
            f"{x_batch.shape[1:]} and {k.shape[-2:]}"
        )
    if multi_kernel:
        if row_kernel is None:
            raise ValueError("a kernel stack needs a row_kernel mapping")
        row_kernel = np.asarray(row_kernel, dtype=np.intp)
        if row_kernel.shape != (x_batch.shape[0],):
            raise ValueError(
                f"row_kernel must map all {x_batch.shape[0]} rows, "
                f"got shape {row_kernel.shape}"
            )
        if row_kernel.size and (
            row_kernel.min() < 0 or row_kernel.max() >= k.shape[0]
        ):
            raise ValueError(
                f"row_kernel indices must lie in [0, {k.shape[0]}), "
                f"got range [{row_kernel.min()}, {row_kernel.max()}]"
            )
    elif row_kernel is not None:
        raise ValueError("row_kernel requires a (P, M, N) kernel stack")
    if kernel_spectrum is None:
        kernel_spectrum = fft2_batch(k) if multi_kernel else fft2(k)
    else:
        kernel_spectrum = np.asarray(kernel_spectrum)
        if kernel_spectrum.shape != k.shape:
            raise ValueError(
                f"kernel_spectrum shape {kernel_spectrum.shape} does not match "
                f"kernel of shape {k.shape}"
            )
    real_output = np.isrealobj(x_batch) and np.isrealobj(k)
    out_dtype = np.float64 if real_output else np.complex128
    result = np.empty(x_batch.shape, dtype=out_dtype)
    for start in range(0, x_batch.shape[0], _CONV_BATCH_CHUNK):
        stop = start + _CONV_BATCH_CHUNK
        chunk = x_batch[start:stop]
        if multi_kernel:
            spectrum = kernel_spectrum[row_kernel[start:stop]]
        else:
            spectrum = kernel_spectrum
        convolved = ifft2_batch(fft2_batch(chunk) * spectrum)
        result[start:stop] = convolved.real if real_output else convolved
    return result


def linear_convolve(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Full linear convolution of 1-D arrays (output length ``len(x)+len(k)-1``).

    Implemented by zero-padding both operands to a common length and
    reusing the circular fast path.
    """
    x = _as_1d(x, "linear_convolve")
    k = _as_1d(k, "linear_convolve")
    out_len = x.shape[0] + k.shape[0] - 1
    x_pad = np.zeros(out_len, dtype=np.result_type(x.dtype, np.float64))
    k_pad = np.zeros(out_len, dtype=np.result_type(k.dtype, np.float64))
    x_pad[: x.shape[0]] = x
    k_pad[: k.shape[0]] = k
    return fft_circular_convolve(x_pad, k_pad)


def linear_convolve2d(x: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Full linear convolution of 2-D arrays via padded circular convolution."""
    x = _as_2d(x, "linear_convolve2d")
    k = _as_2d(k, "linear_convolve2d")
    out_shape = (x.shape[0] + k.shape[0] - 1, x.shape[1] + k.shape[1] - 1)
    x_pad = np.zeros(out_shape, dtype=np.result_type(x.dtype, np.float64))
    k_pad = np.zeros(out_shape, dtype=np.result_type(k.dtype, np.float64))
    x_pad[: x.shape[0], : x.shape[1]] = x
    k_pad[: k.shape[0], : k.shape[1]] = k
    return fft_circular_convolve2d(x_pad, k_pad)
