"""Discrete Fourier transform matrices.

The paper's Eq. 10-13 express the 2-D DFT of an ``M x N`` input as two
matrix products with the Fourier matrices ``W_M`` and ``W_N``:

    X = (W_M . x) . W_N                                         (Eq. 13)

which is the form a TPU's Matrix Multiply Unit evaluates natively.  This
module builds those matrices.

Normalization conventions
-------------------------
``norm="backward"`` (default) builds the *unnormalized* analysis matrix
with entries ``exp(-2j*pi*m*k/N)``; the matching synthesis matrix carries
the full ``1/N``.  This convention makes the discrete convolution theorem
exact -- ``F(x (*) k) = F(x) o F(k)`` -- which the distillation solve
(Eq. 4) relies on.

``norm="ortho"`` builds the unitary matrix ``exp(-2j*pi*m*k/N)/sqrt(N)``
exactly as written in the paper's Eq. 6/9; it is its own conjugate-
transpose inverse, a property the tests assert.
"""

from __future__ import annotations

import threading

import numpy as np

_VALID_NORMS = ("backward", "ortho", "forward")

# A process-wide cache: benchmark sweeps repeatedly request the same
# W_256/W_512/W_1024 matrices and rebuilding them dominates runtime.
_CACHE: dict[tuple[int, str, bool], np.ndarray] = {}
_CACHE_LOCK = threading.Lock()
_CACHE_HITS = 0
_CACHE_MISSES = 0


def _validate(n: int, norm: str) -> None:
    if not isinstance(n, (int, np.integer)):
        raise TypeError(f"DFT size must be an integer, got {type(n).__name__}")
    if n <= 0:
        raise ValueError(f"DFT size must be positive, got {n}")
    if norm not in _VALID_NORMS:
        raise ValueError(f"norm must be one of {_VALID_NORMS}, got {norm!r}")


def _scale(n: int, norm: str, inverse: bool) -> float:
    if norm == "ortho":
        return 1.0 / np.sqrt(n)
    if norm == "backward":
        return 1.0 / n if inverse else 1.0
    # norm == "forward": scaling lives entirely on the analysis side.
    return 1.0 if inverse else 1.0 / n


def dft_matrix(n: int, norm: str = "backward") -> np.ndarray:
    """Return the ``n x n`` DFT analysis matrix ``W_n``.

    ``W_n[m, k] = scale * exp(-2j*pi*m*k/n)`` where ``scale`` follows the
    normalization convention described in the module docstring.  The
    matrix is symmetric (``W_n == W_n.T``), so it can be applied to rows
    (``x @ W_n``) or columns (``W_n @ x``) interchangeably.

    Results are cached; callers must treat the returned array as
    read-only (it is marked non-writeable).
    """
    return _cached_matrix(n, norm, inverse=False)


def idft_matrix(n: int, norm: str = "backward") -> np.ndarray:
    """Return the ``n x n`` inverse-DFT (synthesis) matrix.

    For every norm, ``idft_matrix(n, norm) @ dft_matrix(n, norm)`` is the
    identity.
    """
    return _cached_matrix(n, norm, inverse=True)


def _cached_matrix(n: int, norm: str, inverse: bool) -> np.ndarray:
    global _CACHE_HITS, _CACHE_MISSES
    _validate(n, norm)
    key = (int(n), norm, inverse)
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE_HITS += 1
            return cached
        _CACHE_MISSES += 1
    matrix = _build_matrix(int(n), norm, inverse)
    matrix.setflags(write=False)
    with _CACHE_LOCK:
        _CACHE[key] = matrix
    return matrix


def _build_matrix(n: int, norm: str, inverse: bool) -> np.ndarray:
    sign = 1.0 if inverse else -1.0
    indices = np.arange(n)
    # Outer product of indices, reduced mod n before exponentiation to
    # keep the phase argument small (better accuracy for large n).
    exponents = np.mod(np.outer(indices, indices), n)
    angles = sign * 2.0 * np.pi * exponents / n
    matrix = np.exp(1j * angles)
    matrix *= _scale(n, norm, inverse)
    return matrix


def dft_matrix_cache_info() -> dict[str, int]:
    """Return cache statistics (entries, hits, misses)."""
    with _CACHE_LOCK:
        return {
            "entries": len(_CACHE),
            "hits": _CACHE_HITS,
            "misses": _CACHE_MISSES,
        }


def clear_dft_matrix_cache() -> None:
    """Drop all cached DFT matrices (used by tests and memory-bound runs)."""
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_HITS = 0
        _CACHE_MISSES = 0
