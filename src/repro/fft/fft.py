"""1-D fast Fourier transforms implemented from scratch.

Two algorithms cover all input lengths:

* power-of-two lengths use an **iterative radix-2 Cooley-Tukey** kernel
  (decimation in time with an explicit bit-reversal permutation), fully
  vectorized over leading batch axes;
* every other length uses **Bluestein's chirp-z algorithm**, which
  re-expresses an arbitrary-length DFT as a circular convolution of
  power-of-two length and therefore reuses the radix-2 kernel.

The inverse transform uses the conjugation identity
``ifft(x) = conj(fft(conj(x))) / n`` so a single forward kernel serves
both directions.

Normalization follows :mod:`repro.fft.dft_matrix`: the default
``norm="backward"`` matches ``numpy.fft`` and keeps the convolution
theorem scale-free, which the distillation solve (paper Eq. 4) requires.
"""

from __future__ import annotations

import threading

import numpy as np

_VALID_NORMS = ("backward", "ortho", "forward")

# Twiddle-factor plans, keyed by transform length.  Computing the
# twiddles is O(n) per stage, and sweeps re-run the same lengths, so a
# tiny plan cache is a large constant-factor win.
_TWIDDLE_CACHE: dict[int, list[np.ndarray]] = {}
_BITREV_CACHE: dict[int, np.ndarray] = {}
_PLAN_LOCK = threading.Lock()


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Return the smallest power of two ``>= n``."""
    if n <= 0:
        raise ValueError(f"expected a positive length, got {n}")
    return 1 << (int(n) - 1).bit_length()


def bit_reversal_permutation(n: int) -> np.ndarray:
    """Return the bit-reversal index permutation for a power-of-two ``n``.

    Element ``i`` of the output holds the integer whose ``log2(n)``-bit
    binary representation is the reverse of ``i``'s.
    """
    if not is_power_of_two(n):
        raise ValueError(f"bit reversal requires a power-of-two length, got {n}")
    with _PLAN_LOCK:
        cached = _BITREV_CACHE.get(n)
        if cached is not None:
            return cached
    bits = n.bit_length() - 1
    indices = np.arange(n, dtype=np.int64)
    reversed_indices = np.zeros(n, dtype=np.int64)
    work = indices.copy()
    for _ in range(bits):
        reversed_indices = (reversed_indices << 1) | (work & 1)
        work >>= 1
    reversed_indices.setflags(write=False)
    with _PLAN_LOCK:
        _BITREV_CACHE[n] = reversed_indices
    return reversed_indices


def _twiddle_plan(n: int) -> list[np.ndarray]:
    """Per-stage twiddle factors ``exp(-2j*pi*k/size)`` for radix-2."""
    with _PLAN_LOCK:
        cached = _TWIDDLE_CACHE.get(n)
        if cached is not None:
            return cached
    plan = []
    size = 2
    while size <= n:
        half = size // 2
        stage = np.exp(-2j * np.pi * np.arange(half) / size)
        stage.setflags(write=False)
        plan.append(stage)
        size *= 2
    with _PLAN_LOCK:
        _TWIDDLE_CACHE[n] = plan
    return plan


def _fft_radix2(x: np.ndarray) -> np.ndarray:
    """Forward unnormalized FFT along the last axis; length must be 2^k."""
    n = x.shape[-1]
    if n == 1:
        return x.astype(np.complex128, copy=True)
    data = x[..., bit_reversal_permutation(n)].astype(np.complex128)
    for stage_twiddles in _twiddle_plan(n):
        half = stage_twiddles.shape[0]
        size = half * 2
        shaped = data.reshape(data.shape[:-1] + (n // size, size))
        even = shaped[..., :half]
        odd = shaped[..., half:] * stage_twiddles
        data = np.concatenate((even + odd, even - odd), axis=-1)
        data = data.reshape(data.shape[:-2] + (n,))
    return data


def _fft_bluestein(x: np.ndarray) -> np.ndarray:
    """Forward unnormalized DFT of arbitrary length via the chirp-z trick.

    Writing ``mk = (m^2 + k^2 - (k-m)^2) / 2`` turns the DFT sum into a
    circular convolution with the chirp sequence ``exp(j*pi*k^2/n)``,
    which we evaluate at a padded power-of-two length with the radix-2
    kernel.
    """
    n = x.shape[-1]
    k = np.arange(n)
    # exp(-j*pi*k^2/n); use mod 2n on k^2 to keep the phase argument small.
    chirp = np.exp(-1j * np.pi * np.mod(k * k, 2 * n) / n)
    padded_len = next_power_of_two(2 * n - 1)

    a = np.zeros(x.shape[:-1] + (padded_len,), dtype=np.complex128)
    a[..., :n] = x * chirp

    b = np.zeros(padded_len, dtype=np.complex128)
    b[:n] = np.conj(chirp)
    b[padded_len - (n - 1):] = np.conj(chirp[1:][::-1])

    spectrum = _fft_radix2(a) * _fft_radix2(b)
    # Inverse FFT of the product via conjugation (still power-of-two).
    convolved = np.conj(_fft_radix2(np.conj(spectrum))) / padded_len
    return convolved[..., :n] * chirp


def _forward_scale(n: int, norm: str) -> float:
    if norm == "backward":
        return 1.0
    if norm == "ortho":
        return 1.0 / np.sqrt(n)
    return 1.0 / n


def fft(x: np.ndarray, axis: int = -1, norm: str = "backward") -> np.ndarray:
    """Compute the 1-D DFT of ``x`` along ``axis``.

    Accepts real or complex input of any length and any batch shape.
    Power-of-two lengths take the radix-2 path; others take Bluestein.
    """
    if norm not in _VALID_NORMS:
        raise ValueError(f"norm must be one of {_VALID_NORMS}, got {norm!r}")
    array = np.asarray(x)
    if array.ndim == 0:
        raise ValueError("fft requires at least a 1-D input")
    if array.shape[axis] == 0:
        raise ValueError("fft of an empty axis is undefined")
    moved = np.moveaxis(array, axis, -1)
    n = moved.shape[-1]
    if is_power_of_two(n):
        result = _fft_radix2(moved)
    else:
        result = _fft_bluestein(moved)
    scale = _forward_scale(n, norm)
    if scale != 1.0:
        result = result * scale
    return np.moveaxis(result, -1, axis)


def ifft(x: np.ndarray, axis: int = -1, norm: str = "backward") -> np.ndarray:
    """Inverse 1-D DFT, the exact inverse of :func:`fft` for every norm."""
    if norm not in _VALID_NORMS:
        raise ValueError(f"norm must be one of {_VALID_NORMS}, got {norm!r}")
    array = np.asarray(x)
    if array.ndim == 0:
        raise ValueError("ifft requires at least a 1-D input")
    n = array.shape[axis]
    if n == 0:
        raise ValueError("ifft of an empty axis is undefined")
    unnormalized = np.conj(fft(np.conj(array), axis=axis, norm="backward"))
    if norm == "backward":
        return unnormalized / n
    if norm == "ortho":
        return unnormalized / np.sqrt(n)
    return unnormalized


def fft_plan_cache_info() -> dict[str, int]:
    """Return the number of cached twiddle plans and bit-reversal tables."""
    with _PLAN_LOCK:
        return {
            "twiddle_plans": len(_TWIDDLE_CACHE),
            "bit_reversal_tables": len(_BITREV_CACHE),
        }


def clear_fft_plan_cache() -> None:
    """Drop all cached FFT plans."""
    with _PLAN_LOCK:
        _TWIDDLE_CACHE.clear()
        _BITREV_CACHE.clear()
