"""1-D fast Fourier transforms implemented from scratch.

Two algorithms cover all input lengths:

* power-of-two lengths use an **iterative radix-2 Cooley-Tukey** kernel
  (decimation in time with an explicit bit-reversal permutation), fully
  vectorized over leading batch axes;
* every other length uses **Bluestein's chirp-z algorithm**, which
  re-expresses an arbitrary-length DFT as a circular convolution of
  power-of-two length and therefore reuses the radix-2 kernel.

Real input additionally gets :func:`rfft` / :func:`irfft`: the DFT of a
real signal is Hermitian (``X[n-k] == conj(X[k])``), so only the
``n//2 + 1`` leading bins are stored and -- for power-of-two lengths --
computed, by packing even/odd samples into one complex signal of half
the length and untangling the two interleaved spectra afterwards.  The
half-spectrum path is the host hot path of every real occlusion plane.

The inverse transform uses the conjugation identity
``ifft(x) = conj(fft(conj(x))) / n`` so a single forward kernel serves
both directions.

Normalization follows :mod:`repro.fft.dft_matrix`: the default
``norm="backward"`` matches ``numpy.fft`` and keeps the convolution
theorem scale-free, which the distillation solve (paper Eq. 4) requires.
"""

from __future__ import annotations

import threading

import numpy as np

_VALID_NORMS = ("backward", "ortho", "forward")

# Transform plans, keyed by length.  Computing twiddles is O(n) per
# stage, and sweeps re-run the same lengths, so a tiny plan cache is a
# large constant-factor win.  Every lookup is a single critical section
# (compute-inside-lock); the payloads are small and plans for one
# length are only ever built once per process.
_TWIDDLE_CACHE: dict[int, list[np.ndarray]] = {}
_BITREV_CACHE: dict[int, np.ndarray] = {}
_RFFT_CACHE: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
_BLUESTEIN_CACHE: dict[int, tuple[int, np.ndarray, np.ndarray, np.ndarray]] = {}
_PLAN_LOCK = threading.Lock()

# Lifetime hit/miss counters per plan cache (the metrics-registry
# surface).  Plan-cache counters mutate under _PLAN_LOCK alongside
# their lookups; the per-thread workspace counters increment lock-free
# on the hot path (a single dict-int bump under the GIL).
_PLAN_COUNTERS: dict[str, int] = {
    "twiddle_plan_hits": 0,
    "twiddle_plan_misses": 0,
    "bit_reversal_hits": 0,
    "bit_reversal_misses": 0,
    "rfft_plan_hits": 0,
    "rfft_plan_misses": 0,
    "bluestein_plan_hits": 0,
    "bluestein_plan_misses": 0,
    "radix2_workspace_hits": 0,
    "radix2_workspace_misses": 0,
}

# Sibling caches (e.g. the kernel-spectrum cache in repro.fft.spectra)
# register (info_fn, clear_fn) hooks here so fft_plan_cache_info() /
# clear_fft_plan_cache() stay the single cache-management entry points
# without this low-level module importing the higher layers.
_AUX_CACHES: list[tuple] = []

# Radix-2 ping-pong workspaces, keyed by transform shape and kept
# per-thread (no lock on the hot path, no cross-thread aliasing).
# Repeated-shape waves -- every fleet wave streams equal-shape planes --
# otherwise re-allocate two complex128 buffers per transform; the
# internal rFFT/Bluestein call sites opt in via ``reuse=True`` at points
# where the returned buffer is consumed before the next same-shape call.
# Bounded: a small LRU of shapes, and buffers past the byte cap are not
# cached (allocation cost is negligible relative to such transforms).
_WORKSPACE_MAX_ENTRIES = 8
_WORKSPACE_MAX_BYTES = 1 << 24  # complex128 bytes per buffer
_WORKSPACES = threading.local()


def _radix2_workspace(shape: tuple) -> tuple[np.ndarray, np.ndarray]:
    """This thread's (src, dst) complex128 ping-pong pair for ``shape``."""
    store = getattr(_WORKSPACES, "buffers", None)
    if store is None:
        store = _WORKSPACES.buffers = {}
    pair = store.pop(shape, None)
    if pair is None:
        _PLAN_COUNTERS["radix2_workspace_misses"] += 1
        if len(store) >= _WORKSPACE_MAX_ENTRIES:
            store.pop(next(iter(store)))  # evict least recently used
        pair = (
            np.empty(shape, dtype=np.complex128),
            np.empty(shape, dtype=np.complex128),
        )
    else:
        _PLAN_COUNTERS["radix2_workspace_hits"] += 1
    store[shape] = pair  # (re-)insert last: most recently used
    return pair


def register_aux_plan_cache(info_fn, clear_fn) -> None:
    """Register a sibling cache with the plan-cache info/clear entry points."""
    _AUX_CACHES.append((info_fn, clear_fn))


def is_power_of_two(n: int) -> bool:
    """Return True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Return the smallest power of two ``>= n``."""
    if n <= 0:
        raise ValueError(f"expected a positive length, got {n}")
    return 1 << (int(n) - 1).bit_length()


def bit_reversal_permutation(n: int) -> np.ndarray:
    """Return the bit-reversal index permutation for a power-of-two ``n``.

    Element ``i`` of the output holds the integer whose ``log2(n)``-bit
    binary representation is the reverse of ``i``'s.
    """
    if not is_power_of_two(n):
        raise ValueError(f"bit reversal requires a power-of-two length, got {n}")
    with _PLAN_LOCK:
        cached = _BITREV_CACHE.get(n)
        if cached is None:
            _PLAN_COUNTERS["bit_reversal_misses"] += 1
            bits = n.bit_length() - 1
            reversed_indices = np.zeros(n, dtype=np.int64)
            work = np.arange(n, dtype=np.int64)
            for _ in range(bits):
                reversed_indices = (reversed_indices << 1) | (work & 1)
                work >>= 1
            reversed_indices.setflags(write=False)
            _BITREV_CACHE[n] = cached = reversed_indices
        else:
            _PLAN_COUNTERS["bit_reversal_hits"] += 1
    return cached


def _twiddle_plan(n: int) -> list[np.ndarray]:
    """Per-stage twiddle factors ``exp(-2j*pi*k/size)`` for radix-2."""
    with _PLAN_LOCK:
        cached = _TWIDDLE_CACHE.get(n)
        if cached is None:
            _PLAN_COUNTERS["twiddle_plan_misses"] += 1
            cached = []
            size = 2
            while size <= n:
                half = size // 2
                stage = np.exp(-2j * np.pi * np.arange(half) / size)
                stage.setflags(write=False)
                cached.append(stage)
                size *= 2
            _TWIDDLE_CACHE[n] = cached
        else:
            _PLAN_COUNTERS["twiddle_plan_hits"] += 1
    return cached


def _rfft_plan(n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Index and twiddle tables for the packed real transform of length ``n``.

    ``wrap[k] = k mod half`` and ``mirror[k] = -k mod half`` address the
    half-length spectrum and its conjugate partner for ``k = 0..half``;
    ``forward``/``inverse`` are ``exp(-+2j*pi*k/n)`` untangling twiddles.
    """
    with _PLAN_LOCK:
        cached = _RFFT_CACHE.get(n)
        if cached is None:
            _PLAN_COUNTERS["rfft_plan_misses"] += 1
            half = n // 2
            wrap = np.arange(half + 1) % half
            mirror = (-np.arange(half + 1)) % half
            forward = np.exp(-2j * np.pi * np.arange(half + 1) / n)
            inverse = np.exp(2j * np.pi * np.arange(half) / n)
            for table in (wrap, mirror, forward, inverse):
                table.setflags(write=False)
            _RFFT_CACHE[n] = cached = (wrap, mirror, forward, inverse)
        else:
            _PLAN_COUNTERS["rfft_plan_hits"] += 1
    return cached


def _fft_radix2(x: np.ndarray, reuse: bool = False) -> np.ndarray:
    """Forward unnormalized FFT along the last axis; length must be 2^k.

    Allocation-lean: two ping-pong buffers are allocated once and every
    butterfly stage writes through ``out=`` ufunc calls -- no per-stage
    concatenation or temporaries.  The arithmetic (multiply by the stage
    twiddles, then one add and one subtract) is element-for-element the
    same as the textbook form, so results are bit-identical to it.

    ``reuse=True`` draws the ping-pong pair from the per-thread
    workspace cache instead of allocating, so repeated same-shape
    transforms (every chunk of a fleet wave) stop paying two fresh
    complex128 buffers each.  The *returned array is one of the cached
    buffers*: a later same-shape ``reuse=True`` call overwrites it, so
    only internal call sites that consume the result into new storage
    before the next transform may opt in -- anything returned to users
    (the public :func:`fft`) must keep ``reuse=False``.
    """
    n = x.shape[-1]
    if n == 1:
        return x.astype(np.complex128, order="C", copy=True)
    perm = bit_reversal_permutation(n)
    # C-ordered buffers regardless of input strides: downstream consumers
    # (and numpy's layout-sensitive pairwise summation) see the same
    # contiguous planes whatever axis order the caller transformed in.
    if reuse and 16 * x.size <= _WORKSPACE_MAX_BYTES:
        src, dst = _radix2_workspace(x.shape)
        if x is src or x.base is src or x is dst or x.base is dst:
            # Input aliases the workspace: the fancy-indexed RHS
            # materializes a temporary first, so this stays correct.
            src[...] = x[..., perm]
        elif x.dtype == np.complex128:
            np.take(x, perm, axis=-1, out=src)
        elif x.dtype == np.float64:
            np.take(x, perm, axis=-1, out=src.real)
            src.imag[...] = 0.0
        else:
            src[...] = x[..., perm]
    else:
        src = x[..., perm].astype(np.complex128, order="C")
        dst = np.empty(src.shape, dtype=np.complex128)
    for stage_twiddles in _twiddle_plan(n):
        half = stage_twiddles.shape[0]
        size = half * 2
        shaped_src = src.reshape(src.shape[:-1] + (n // size, size))
        shaped_dst = dst.reshape(dst.shape[:-1] + (n // size, size))
        src_even = shaped_src[..., :half]
        src_odd = shaped_src[..., half:]
        dst_even = shaped_dst[..., :half]
        dst_odd = shaped_dst[..., half:]
        np.multiply(src_odd, stage_twiddles, out=dst_odd)
        np.add(src_even, dst_odd, out=dst_even)
        np.subtract(src_even, dst_odd, out=dst_odd)
        src, dst = dst, src
    return src


def _bluestein_plan(n: int) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """Cached chirp tables for the length-``n`` chirp-z transform.

    Returns ``(padded_len, chirp, b_spectrum, half_chirp)``: the
    power-of-two convolution length, the chirp ``exp(-j*pi*k^2/n)``,
    the precomputed forward transform of the wrapped conjugate chirp
    (the convolution's fixed factor -- caching it drops one of the
    three radix-2 transforms from every Bluestein call), and the chirp
    sliced to the ``n//2 + 1`` half-spectrum bins for the real path.
    """
    with _PLAN_LOCK:
        cached = _BLUESTEIN_CACHE.get(n)
        # Counted at the first lookup: a racing duplicate build records
        # a second miss, matching the duplicated work it performs.
        if cached is None:
            _PLAN_COUNTERS["bluestein_plan_misses"] += 1
        else:
            _PLAN_COUNTERS["bluestein_plan_hits"] += 1
    if cached is None:
        # Built outside the lock: the b transform below takes the same
        # (non-reentrant) lock for its twiddle and bit-reversal plans.
        # A racing duplicate build is harmless -- both produce the same
        # read-only tables and last-write-wins.
        k = np.arange(n)
        # exp(-j*pi*k^2/n); mod 2n on k^2 keeps the phase small.
        chirp = np.exp(-1j * np.pi * np.mod(k * k, 2 * n) / n)
        padded_len = next_power_of_two(2 * n - 1)
        b = np.zeros(padded_len, dtype=np.complex128)
        b[:n] = np.conj(chirp)
        b[padded_len - (n - 1):] = np.conj(chirp[1:][::-1])
        b_spectrum = _fft_radix2(b)
        half_chirp = chirp[: n // 2 + 1].copy()
        for table in (chirp, b_spectrum, half_chirp):
            table.setflags(write=False)
        cached = (padded_len, chirp, b_spectrum, half_chirp)
        with _PLAN_LOCK:
            _BLUESTEIN_CACHE[n] = cached
    return cached


def _fft_bluestein(x: np.ndarray, half: bool = False) -> np.ndarray:
    """Forward unnormalized DFT of arbitrary length via the chirp-z trick.

    Writing ``mk = (m^2 + k^2 - (k-m)^2) / 2`` turns the DFT sum into a
    circular convolution with the chirp sequence ``exp(j*pi*k^2/n)``,
    which we evaluate at a padded power-of-two length with the radix-2
    kernel.  The chirp and the convolution's fixed spectrum come from
    the per-length plan cache, so a repeated length pays two radix-2
    transforms, not three.  ``half=True`` returns only the ``n//2 + 1``
    non-redundant bins (for real input the rest is Hermitian-redundant),
    skipping the final chirp multiply on the mirrored half.
    """
    n = x.shape[-1]
    padded_len, chirp, b_spectrum, half_chirp = _bluestein_plan(n)

    a = np.zeros(x.shape[:-1] + (padded_len,), dtype=np.complex128)
    a[..., :n] = x * chirp

    # Workspace reuse is safe: the product below lands in fresh storage
    # before the inverse transform can overwrite the buffer, and the
    # convolution's fixed factor is cached (never transformed here).
    spectrum = _fft_radix2(a, reuse=True) * b_spectrum
    # Inverse FFT of the product via conjugation (still power-of-two).
    convolved = np.conj(_fft_radix2(np.conj(spectrum), reuse=True)) / padded_len
    if half:
        return convolved[..., : n // 2 + 1] * half_chirp
    return convolved[..., :n] * chirp


def _forward_scale(n: int, norm: str) -> float:
    if norm == "backward":
        return 1.0
    if norm == "ortho":
        return 1.0 / np.sqrt(n)
    return 1.0 / n


def fft(x: np.ndarray, axis: int = -1, norm: str = "backward") -> np.ndarray:
    """Compute the 1-D DFT of ``x`` along ``axis``.

    Accepts real or complex input of any length and any batch shape.
    Power-of-two lengths take the radix-2 path; others take Bluestein.
    """
    if norm not in _VALID_NORMS:
        raise ValueError(f"norm must be one of {_VALID_NORMS}, got {norm!r}")
    array = np.asarray(x)
    if array.ndim == 0:
        raise ValueError("fft requires at least a 1-D input")
    if array.shape[axis] == 0:
        raise ValueError("fft of an empty axis is undefined")
    moved = np.moveaxis(array, axis, -1)
    n = moved.shape[-1]
    if is_power_of_two(n):
        result = _fft_radix2(moved)
    else:
        result = _fft_bluestein(moved)
    scale = _forward_scale(n, norm)
    if scale != 1.0:
        result = result * scale
    return np.moveaxis(result, -1, axis)


def ifft(x: np.ndarray, axis: int = -1, norm: str = "backward") -> np.ndarray:
    """Inverse 1-D DFT, the exact inverse of :func:`fft` for every norm."""
    if norm not in _VALID_NORMS:
        raise ValueError(f"norm must be one of {_VALID_NORMS}, got {norm!r}")
    array = np.asarray(x)
    if array.ndim == 0:
        raise ValueError("ifft requires at least a 1-D input")
    n = array.shape[axis]
    if n == 0:
        raise ValueError("ifft of an empty axis is undefined")
    unnormalized = np.conj(fft(np.conj(array), axis=axis, norm="backward"))
    if norm == "backward":
        return unnormalized / n
    if norm == "ortho":
        return unnormalized / np.sqrt(n)
    return unnormalized


def _rfft_packed(x: np.ndarray) -> np.ndarray:
    """Unnormalized half spectrum of real input; length must be 2^k, >= 2.

    Packs even samples into the real and odd samples into the imaginary
    lane of one half-length complex signal, transforms once, and
    untangles: with ``Z = fft(x[0::2] + 1j*x[1::2])``,

        E_k = (Z_k + conj(Z_{-k})) / 2,   O_k = -j (Z_k - conj(Z_{-k})) / 2,
        X_k = E_k + exp(-2j*pi*k/n) O_k          for k = 0..n/2

    -- one complex FFT of length ``n/2`` instead of length ``n``.
    """
    n = x.shape[-1]
    wrap, mirror, forward, _ = _rfft_plan(n)
    packed = x[..., 0::2] + 1j * x[..., 1::2]
    # Workspace reuse is safe: the fancy-indexed wrap/mirror gathers
    # below copy the spectrum into fresh arrays before any later
    # transform can overwrite the buffer.
    spectrum = _fft_radix2(packed, reuse=True)
    wrapped = spectrum[..., wrap]
    mirrored = np.conj(spectrum[..., mirror])
    even = 0.5 * (wrapped + mirrored)
    odd = -0.5j * (wrapped - mirrored)
    return even + forward * odd


def _irfft_packed(spectrum: np.ndarray, n: int) -> np.ndarray:
    """Real signal from an unnormalized half spectrum; ``n`` must be 2^k, >= 2.

    Inverts :func:`_rfft_packed`: recovers the even/odd half-length
    spectra from the Hermitian half spectrum (using
    ``conj(W^{n/2-k}) == -W^k``), rebuilds the packed complex signal
    with one half-length inverse transform, and de-interleaves.
    """
    half = n // 2
    _, _, _, inverse = _rfft_plan(n)
    head = spectrum[..., :half]
    mirrored = np.conj(spectrum[..., half:0:-1])
    even = 0.5 * (head + mirrored)
    odd = 0.5 * (head - mirrored) * inverse
    packed = even + 1j * odd
    # np.conj allocates, so the workspace buffer is consumed immediately.
    signal = np.conj(_fft_radix2(np.conj(packed), reuse=True)) / half
    out = np.empty(spectrum.shape[:-1] + (n,), dtype=np.float64)
    out[..., 0::2] = signal.real
    out[..., 1::2] = signal.imag
    return out


def rfft(x: np.ndarray, axis: int = -1, norm: str = "backward") -> np.ndarray:
    """1-D DFT of **real** input: the ``n//2 + 1`` non-redundant bins.

    For real signals the full spectrum is Hermitian
    (``X[n-k] == conj(X[k])``), so this returns only bins ``0..n//2``
    along ``axis`` -- half the storage, and for power-of-two lengths
    half the transform work via the even/odd packing trick.  Other
    lengths fall back to slicing the Bluestein full transform.  Complex
    input is rejected (use :func:`fft`).
    """
    if norm not in _VALID_NORMS:
        raise ValueError(f"norm must be one of {_VALID_NORMS}, got {norm!r}")
    array = np.asarray(x)
    if np.iscomplexobj(array):
        raise ValueError("rfft requires real input; use fft for complex signals")
    if array.ndim == 0:
        raise ValueError("rfft requires at least a 1-D input")
    if array.shape[axis] == 0:
        raise ValueError("rfft of an empty axis is undefined")
    moved = np.moveaxis(array, axis, -1)
    n = moved.shape[-1]
    if n == 1:
        result = moved.astype(np.complex128)
    elif is_power_of_two(n):
        result = _rfft_packed(moved)
    else:
        result = _fft_bluestein(moved, half=True)
    scale = _forward_scale(n, norm)
    if scale != 1.0:
        result = result * scale
    return np.moveaxis(result, -1, axis)


def irfft(
    x: np.ndarray, n: int | None = None, axis: int = -1, norm: str = "backward"
) -> np.ndarray:
    """Real signal of length ``n`` from its ``n//2 + 1`` half-spectrum bins.

    The exact inverse of :func:`rfft` for every norm.  ``n`` defaults to
    ``2 * (bins - 1)`` (an even length); pass it explicitly to recover
    odd lengths, and it must satisfy ``n//2 + 1 == bins``.  Power-of-two
    lengths take the packed inverse; everything else reconstructs the
    full Hermitian spectrum and runs the complex inverse transform.
    """
    if norm not in _VALID_NORMS:
        raise ValueError(f"norm must be one of {_VALID_NORMS}, got {norm!r}")
    array = np.asarray(x)
    if array.ndim == 0:
        raise ValueError("irfft requires at least a 1-D input")
    bins = array.shape[axis]
    if bins == 0:
        raise ValueError("irfft of an empty axis is undefined")
    if n is None:
        n = 2 * (bins - 1) if bins > 1 else 1
    n = int(n)
    if n <= 0 or n // 2 + 1 != bins:
        raise ValueError(
            f"irfft output length {n} is inconsistent with {bins} spectral "
            f"bins (need n // 2 + 1 == {bins})"
        )
    moved = np.moveaxis(array, axis, -1)
    if n == 1:
        result = np.real(moved).astype(np.float64)
    elif is_power_of_two(n):
        # Undo the forward norm first; the packed inverse is exact for
        # unnormalized (backward-convention) spectra.
        scale = _forward_scale(n, norm)
        if scale != 1.0:
            moved = moved / scale
        result = _irfft_packed(moved, n)
    else:
        half = n // 2
        tail = np.conj(moved[..., 1 : n - half])[..., ::-1]
        full = np.concatenate([moved, tail], axis=-1)
        result = ifft(full, axis=-1, norm=norm).real
    return np.moveaxis(result, -1, axis)


def fft_plan_cache_info() -> dict[str, int]:
    """Entry counts and hit/miss counters of every FFT-layer plan cache.

    Covers the radix-2 twiddle plans, bit-reversal tables and rFFT
    untangling plans held here -- each with its lifetime ``*_hits`` /
    ``*_misses`` counters -- plus any registered sibling cache (the
    kernel-spectrum cache of :mod:`repro.fft.spectra`).
    """
    with _PLAN_LOCK:
        info = {
            "twiddle_plans": len(_TWIDDLE_CACHE),
            "bit_reversal_tables": len(_BITREV_CACHE),
            "rfft_plans": len(_RFFT_CACHE),
            "bluestein_plans": len(_BLUESTEIN_CACHE),
            # Per-thread: counts the calling thread's workspace shapes.
            "radix2_workspaces": len(getattr(_WORKSPACES, "buffers", {})),
        }
        info.update(_PLAN_COUNTERS)
    for aux_info, _ in _AUX_CACHES:
        info.update(aux_info())
    return info


def clear_fft_plan_cache() -> None:
    """Drop all cached FFT plans (and registered sibling caches).

    Also zeros the hit/miss counters, so tests and benchmark sections
    can measure cache behaviour from a clean slate.
    """
    with _PLAN_LOCK:
        _TWIDDLE_CACHE.clear()
        _BITREV_CACHE.clear()
        _RFFT_CACHE.clear()
        _BLUESTEIN_CACHE.clear()
        for key in _PLAN_COUNTERS:
            _PLAN_COUNTERS[key] = 0
    getattr(_WORKSPACES, "buffers", {}).clear()
    for _, aux_clear in _AUX_CACHES:
        aux_clear()
