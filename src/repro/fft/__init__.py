"""Fourier-transform substrate.

The paper's task transformation (Section III-B) rewrites model distillation
as ``K = F^-1(F(Y) / F(X))``, and its data-decomposition step (Section
III-C) evaluates the 2-D transform as two matrix products with DFT
matrices, ``X = (W_M . x) . W_N`` (Eq. 13).  This package implements the
whole Fourier stack from scratch:

* :mod:`repro.fft.dft_matrix` -- DFT matrices ``W_N`` and their algebra;
* :mod:`repro.fft.fft`        -- 1-D FFT (iterative radix-2 Cooley-Tukey
  for power-of-two lengths, Bluestein chirp-z for everything else);
* :mod:`repro.fft.fft2d`      -- 2-D transforms in both row-column FFT
  form and the matmul form that maps onto a systolic array;
* :mod:`repro.fft.convolution` -- direct and FFT-based circular/linear
  convolution, the bridge used by the convolution theorem (Eq. 3).

``numpy.fft`` is deliberately not used anywhere in this package; the test
suite uses it as an independent oracle.
"""

from repro.fft.dft_matrix import (
    dft_matrix,
    idft_matrix,
    dft_matrix_cache_info,
    clear_dft_matrix_cache,
)
from repro.fft.fft import fft, ifft, bit_reversal_permutation, is_power_of_two
from repro.fft.fft2d import (
    fft2,
    fft2_batch,
    fft2_matmul,
    ifft2,
    ifft2_batch,
    ifft2_matmul,
)
from repro.fft.convolution import (
    circular_convolve,
    circular_convolve2d,
    fft_circular_convolve,
    fft_circular_convolve2d,
    fft_circular_convolve2d_batch,
    linear_convolve,
    linear_convolve2d,
)

__all__ = [
    "dft_matrix",
    "idft_matrix",
    "dft_matrix_cache_info",
    "clear_dft_matrix_cache",
    "fft",
    "ifft",
    "bit_reversal_permutation",
    "is_power_of_two",
    "fft2",
    "fft2_batch",
    "ifft2",
    "ifft2_batch",
    "fft2_matmul",
    "ifft2_matmul",
    "circular_convolve",
    "circular_convolve2d",
    "fft_circular_convolve",
    "fft_circular_convolve2d",
    "fft_circular_convolve2d_batch",
    "linear_convolve",
    "linear_convolve2d",
]
