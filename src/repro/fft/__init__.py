"""Fourier-transform substrate.

The paper's task transformation (Section III-B) rewrites model distillation
as ``K = F^-1(F(Y) / F(X))``, and its data-decomposition step (Section
III-C) evaluates the 2-D transform as two matrix products with DFT
matrices, ``X = (W_M . x) . W_N`` (Eq. 13).  This package implements the
whole Fourier stack from scratch:

* :mod:`repro.fft.dft_matrix` -- DFT matrices ``W_N`` and their algebra;
* :mod:`repro.fft.fft`        -- 1-D FFT (iterative radix-2 Cooley-Tukey
  for power-of-two lengths, Bluestein chirp-z for everything else) plus
  the real-input ``rfft``/``irfft`` pair exploiting Hermitian symmetry;
* :mod:`repro.fft.fft2d`      -- 2-D transforms in both row-column FFT
  form and the matmul form that maps onto a systolic array, with real
  half-spectrum variants for real planes;
* :mod:`repro.fft.spectra`    -- the process-level content-addressed
  kernel-spectrum cache (byte-budgeted, thread-safe);
* :mod:`repro.fft.convolution` -- direct and FFT-based circular/linear
  convolution, the bridge used by the convolution theorem (Eq. 3),
  routing real operands through the half-spectrum hot path.

``numpy.fft`` is deliberately not used anywhere in this package; the test
suite uses it as an independent oracle.
"""

from repro.fft.dft_matrix import (
    dft_matrix,
    idft_matrix,
    dft_matrix_cache_info,
    clear_dft_matrix_cache,
)
from repro.fft.fft import (
    bit_reversal_permutation,
    clear_fft_plan_cache,
    fft,
    fft_plan_cache_info,
    ifft,
    irfft,
    is_power_of_two,
    rfft,
)
from repro.fft.fft2d import (
    fft2,
    fft2_batch,
    fft2_matmul,
    ifft2,
    ifft2_batch,
    ifft2_matmul,
    irfft2,
    irfft2_batch,
    rfft2,
    rfft2_batch,
)
from repro.fft.spectra import (
    KernelSpectrum,
    KernelSpectrumCache,
    clear_kernel_spectrum_cache,
    kernel_digest,
    kernel_spectrum,
    kernel_spectrum_cache,
    kernel_spectrum_cache_info,
    set_kernel_spectrum_cache_enabled,
)
from repro.fft.convolution import (
    circular_convolve,
    circular_convolve2d,
    fft_circular_convolve,
    fft_circular_convolve2d,
    fft_circular_convolve2d_batch,
    fft_circular_convolve2d_chunks,
    linear_convolve,
    linear_convolve2d,
    real_convolution_path_enabled,
    set_real_convolution_path,
)

__all__ = [
    "dft_matrix",
    "idft_matrix",
    "dft_matrix_cache_info",
    "clear_dft_matrix_cache",
    "fft",
    "ifft",
    "rfft",
    "irfft",
    "bit_reversal_permutation",
    "is_power_of_two",
    "fft_plan_cache_info",
    "clear_fft_plan_cache",
    "fft2",
    "fft2_batch",
    "ifft2",
    "ifft2_batch",
    "rfft2",
    "rfft2_batch",
    "irfft2",
    "irfft2_batch",
    "fft2_matmul",
    "ifft2_matmul",
    "KernelSpectrum",
    "KernelSpectrumCache",
    "kernel_digest",
    "kernel_spectrum",
    "kernel_spectrum_cache",
    "kernel_spectrum_cache_info",
    "clear_kernel_spectrum_cache",
    "set_kernel_spectrum_cache_enabled",
    "circular_convolve",
    "circular_convolve2d",
    "fft_circular_convolve",
    "fft_circular_convolve2d",
    "fft_circular_convolve2d_batch",
    "fft_circular_convolve2d_chunks",
    "linear_convolve",
    "linear_convolve2d",
    "real_convolution_path_enabled",
    "set_real_convolution_path",
]
