"""2-D Fourier transforms: row-column FFT form and MXU matmul form.

The paper's data-decomposition derivation (Section III-C) shows that the
2-D DFT of an ``M x N`` matrix factors into independent 1-D transforms:
first all rows, then all columns of the intermediate result (Eq. 7-8),
and that each stage is a matrix product with a DFT matrix (Eq. 10-13):

    X = (W_M . x) . W_N

Both evaluations are provided:

* :func:`fft2` / :func:`ifft2` use the 1-D FFT kernels row-by-row and
  column-by-column -- the software-reference path;
* :func:`fft2_matmul` / :func:`ifft2_matmul` multiply by explicit DFT
  matrices -- the exact computation a systolic MXU performs, and the
  form sharded across TPU cores by :mod:`repro.core.decomposition`;
* :func:`fft2_batch` / :func:`ifft2_batch` vectorize the row-column
  path over leading batch axes -- the substrate of the batched
  occlusion engine (:mod:`repro.core.masking`), which transforms every
  masked input variant in one call instead of one call per mask;
* :func:`rfft2` / :func:`irfft2` and their batch forms transform
  **real** planes through the half-spectrum real path: rows through
  :func:`repro.fft.fft.rfft` (Hermitian symmetry halves the bins),
  then only the ``N//2 + 1`` surviving columns through the complex
  kernels -- about half the transform work and memory of the full
  complex path, the host hot path for real occlusion planes.

Tests assert the two paths agree to floating-point tolerance for every
shape, including non-square and non-power-of-two, and that the batch
variants match plane-by-plane application exactly.
"""

from __future__ import annotations

import numpy as np

from repro.fft.dft_matrix import dft_matrix, idft_matrix
from repro.fft.fft import fft, ifft, irfft, rfft


def _check_2d(x: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(x)
    if array.ndim != 2:
        raise ValueError(f"{name} expects a 2-D array, got shape {array.shape}")
    if array.shape[0] == 0 or array.shape[1] == 0:
        raise ValueError(f"{name} of an empty matrix is undefined")
    return array


def fft2(x: np.ndarray, norm: str = "backward") -> np.ndarray:
    """2-D DFT via the row-column algorithm (Eq. 7-8).

    Rows are transformed first (axis 1), then columns (axis 0), exactly
    mirroring the paper's two-stage decomposition.
    """
    array = _check_2d(x, "fft2")
    rows_done = fft(array, axis=1, norm=norm)
    return fft(rows_done, axis=0, norm=norm)


def ifft2(x: np.ndarray, norm: str = "backward") -> np.ndarray:
    """Inverse 2-D DFT; exact inverse of :func:`fft2` for every norm."""
    array = _check_2d(x, "ifft2")
    cols_done = ifft(array, axis=0, norm=norm)
    return ifft(cols_done, axis=1, norm=norm)


def _check_batch_2d(x: np.ndarray, name: str) -> np.ndarray:
    array = np.asarray(x)
    if array.ndim < 2:
        raise ValueError(f"{name} expects at least a 2-D array, got shape {array.shape}")
    if array.shape[-2] == 0 or array.shape[-1] == 0:
        raise ValueError(f"{name} of an empty matrix is undefined")
    return array


def fft2_batch(x: np.ndarray, norm: str = "backward") -> np.ndarray:
    """2-D DFT over the two trailing axes of a stacked batch.

    Accepts any leading batch shape (``(..., M, N)``); a plain matrix is
    a zero-axis batch.  The stage order (rows, then columns) matches
    :func:`fft2`, and the 1-D kernels are themselves batch-vectorized,
    so each plane of the result is bit-identical to transforming it
    alone -- the equivalence the batched occlusion engine relies on.
    """
    array = _check_batch_2d(x, "fft2_batch")
    rows_done = fft(array, axis=-1, norm=norm)
    return fft(rows_done, axis=-2, norm=norm)


def ifft2_batch(x: np.ndarray, norm: str = "backward") -> np.ndarray:
    """Inverse 2-D DFT over the two trailing axes of a stacked batch.

    Exact inverse of :func:`fft2_batch`; stage order (columns, then
    rows) matches :func:`ifft2` for per-plane bit-identity.
    """
    array = _check_batch_2d(x, "ifft2_batch")
    cols_done = ifft(array, axis=-2, norm=norm)
    return ifft(cols_done, axis=-1, norm=norm)


def rfft2_batch(x: np.ndarray, norm: str = "backward") -> np.ndarray:
    """Half-spectrum 2-D DFT of real planes over the two trailing axes.

    ``(..., M, N)`` real input maps to ``(..., M, N//2 + 1)`` complex
    output: rows go through the real transform (only the non-redundant
    bins survive), then the remaining columns through the complex
    kernel.  Each plane is bit-identical to transforming it alone, and
    complex input is rejected (use :func:`fft2_batch`).
    """
    array = _check_batch_2d(x, "rfft2_batch")
    rows_done = rfft(array, axis=-1, norm=norm)
    return fft(rows_done, axis=-2, norm=norm)


def irfft2_batch(
    x: np.ndarray, n: int | None = None, norm: str = "backward"
) -> np.ndarray:
    """Real planes from trailing-axes half spectra; inverse of :func:`rfft2_batch`.

    ``n`` is the spatial column count ``N`` (defaults to
    ``2 * (bins - 1)``; pass it explicitly to recover odd widths).
    Output is real float64 of shape ``(..., M, n)``.
    """
    array = _check_batch_2d(x, "irfft2_batch")
    cols_done = ifft(array, axis=-2, norm=norm)
    return irfft(cols_done, n=n, axis=-1, norm=norm)


def rfft2(x: np.ndarray, norm: str = "backward") -> np.ndarray:
    """Half-spectrum 2-D DFT of one real ``M x N`` plane."""
    array = _check_2d(x, "rfft2")
    return rfft2_batch(array, norm=norm)


def irfft2(x: np.ndarray, n: int | None = None, norm: str = "backward") -> np.ndarray:
    """One real plane from its ``M x (N//2 + 1)`` half spectrum."""
    array = _check_2d(x, "irfft2")
    return irfft2_batch(array, n=n, norm=norm)


def fft2_matmul(x: np.ndarray, norm: str = "backward") -> np.ndarray:
    """2-D DFT in the matmul form ``(W_M . x) . W_N`` (Eq. 13).

    This is the exact dataflow executed on the simulated TPU: two dense
    matrix products, which the MXU tiler maps onto the systolic array.
    """
    array = _check_2d(x, "fft2_matmul")
    m, n = array.shape
    w_m = dft_matrix(m, norm=norm)
    w_n = dft_matrix(n, norm=norm)
    return (w_m @ array) @ w_n


def ifft2_matmul(x: np.ndarray, norm: str = "backward") -> np.ndarray:
    """Inverse 2-D DFT in matmul form, using synthesis matrices."""
    array = _check_2d(x, "ifft2_matmul")
    m, n = array.shape
    w_m_inv = idft_matrix(m, norm=norm)
    w_n_inv = idft_matrix(n, norm=norm)
    return (w_m_inv @ array) @ w_n_inv
