"""Process-level kernel-spectrum cache: content-addressed, byte-budgeted.

Every FFT-form convolution transforms its kernel before the Hadamard
product.  The batched engine amortizes that transform *within* one call,
and the serve-layer :class:`~repro.serve.cache.ExplanationCache` catches
repeated *requests* -- but nothing below them caught repeated *kernels*:
a ``score_plan(method="loop")`` sweep re-transforms the same kernel once
per mask, and replayed fleet waves re-transform every kernel stack per
run.  This module closes that gap with one process-wide cache of kernel
spectra, keyed by **content digest + spectrum kind + precision**
(SHA-256 over the kernel's dtype, shape and raw bytes), so byte-equal
kernels share one transform however they arrive.

Entries are raw (unquantized) spectra plus, per requested precision, the
quantized variant derived from the raw entry -- a quantized lookup never
re-runs the transform, only the cheap per-plane rounding, and the
``kernel_transforms`` counter counts *actual* FFT computations so
benchmarks can assert a warm cache performs zero kernel re-transforms.

The cache is thread-safe (one lock around the LRU book-keeping; a racing
miss may compute the same spectrum twice but never corrupts the cache),
evicts least-recently-used entries under a byte budget, and hands out
read-only arrays so a caller mutating a cached spectrum fails loudly.
It caches host-side work only: simulated-device ledgers are recorded by
the :mod:`repro.hw.device` layer independently of cache hits, so cost
models and dispatch audits are byte-identical with the cache on or off.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.fft.fft import register_aux_plan_cache
from repro.fft.fft2d import fft2_batch, rfft2_batch

#: Default budget: generous for benchmark fleets (a 64x64 half spectrum
#: is ~33 KB) while keeping eviction reachable by modest sweeps.
DEFAULT_SPECTRUM_CACHE_BYTES = 32 * 1024**2

_KINDS = ("half", "full")


def kernel_digest(kernel: np.ndarray) -> str:
    """SHA-256 content digest of a kernel plane or stack.

    Covers dtype, shape and raw bytes, so byte-equal kernels collide by
    construction and anything else (one flipped bit, a reshaped stack)
    lands elsewhere -- the same content addressing as the serve cache.
    """
    kernel = np.ascontiguousarray(np.asarray(kernel))
    digest = hashlib.sha256()
    digest.update(str(kernel.dtype).encode())
    digest.update(str(kernel.shape).encode())
    digest.update(kernel.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class KernelSpectrum:
    """A kernel spectrum plus the metadata needed to use it safely.

    ``kind`` is ``"half"`` (``(..., M, N//2+1)`` non-redundant bins of a
    real kernel, from :func:`~repro.fft.fft2d.rfft2_batch`) or
    ``"full"`` (``(..., M, N)`` complex spectrum).  ``plane_shape`` is
    the spatial ``(M, N)`` -- a half spectrum alone cannot distinguish
    even from odd ``N``.  ``precision_name`` is the name of the
    :class:`~repro.hw.quantize.PrecisionSpec` already applied to
    ``array``, or ``None`` for a raw spectrum.
    """

    array: np.ndarray
    kind: str
    plane_shape: tuple[int, int]
    precision_name: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"spectrum kind must be one of {_KINDS}, got {self.kind!r}")
        m, n = self.plane_shape
        expected = (m, n // 2 + 1) if self.kind == "half" else (m, n)
        if self.array.shape[-2:] != expected:
            raise ValueError(
                f"{self.kind} spectrum of a {self.plane_shape} plane must have "
                f"trailing shape {expected}, got {self.array.shape[-2:]}"
            )


class KernelSpectrumCache:
    """Thread-safe byte-budgeted LRU of kernel spectra.

    Keys are ``(digest, kind, precision_name)`` tuples; values are
    read-only spectrum arrays.  ``hits`` / ``misses`` count lookups,
    ``stores`` / ``evictions`` count entry movement, and
    ``kernel_transforms`` counts actual forward FFTs performed on
    behalf of the cache (a warm cache performs none).
    """

    def __init__(self, max_bytes: int = DEFAULT_SPECTRUM_CACHE_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError(f"cache budget must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self.current_bytes = 0
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.kernel_transforms = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple) -> np.ndarray | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, array: np.ndarray) -> bool:
        """Store a spectrum; returns whether it was cached.

        Entries bigger than the whole budget are not cached; otherwise
        LRU entries are evicted until the new entry fits.  The array is
        frozen read-only -- the same object is handed to every hit, and
        a caller writing into it must get a loud ``ValueError``.
        """
        nbytes = int(array.nbytes)
        if nbytes > self.max_bytes:
            return False
        array.setflags(write=False)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return True
            while self.current_bytes + nbytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self.current_bytes -= int(evicted.nbytes)
                self.evictions += 1
            self._entries[key] = array
            self.current_bytes += nbytes
            self.stores += 1
            return True

    def count_transform(self) -> None:
        with self._lock:
            self.kernel_transforms += 1

    def info(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "current_bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "kernel_transforms": self.kernel_transforms,
            }

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0
            self.hits = 0
            self.misses = 0
            self.stores = 0
            self.evictions = 0
            self.kernel_transforms = 0

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"<KernelSpectrumCache {info['entries']} entries, "
            f"{info['current_bytes']}/{info['max_bytes']} bytes, "
            f"{info['hits']} hits / {info['misses']} misses / "
            f"{info['kernel_transforms']} transforms>"
        )


#: The process-level cache instance used by the convolution hot paths.
_PROCESS_CACHE = KernelSpectrumCache()


def kernel_spectrum_cache() -> KernelSpectrumCache:
    """The process-level cache (for inspection and tests)."""
    return _PROCESS_CACHE


def kernel_spectrum_cache_info() -> dict[str, int]:
    """Counters of the process-level kernel-spectrum cache."""
    return _PROCESS_CACHE.info()


def clear_kernel_spectrum_cache() -> None:
    """Drop every cached kernel spectrum and reset the counters."""
    _PROCESS_CACHE.clear()


def set_kernel_spectrum_cache_enabled(enabled: bool) -> bool:
    """Toggle the process-level cache; returns the previous setting.

    Disabled, :func:`kernel_spectrum` computes every spectrum fresh and
    touches no counters -- the pre-cache behaviour, kept reachable so
    the host benchmark can measure what the cache buys.
    """
    previous = _PROCESS_CACHE.enabled
    _PROCESS_CACHE.enabled = bool(enabled)
    return previous


def _transform(kernel: np.ndarray, kind: str) -> np.ndarray:
    if kind == "half":
        return rfft2_batch(kernel)
    return fft2_batch(kernel)


def kernel_spectrum(kernel: np.ndarray, real: bool, precision=None) -> KernelSpectrum:
    """The (possibly cached) spectrum of a kernel plane or stack.

    ``kernel`` is one ``(M, N)`` plane or a ``(P, M, N)`` stack (a
    wave's per-pair kernels, digested and transformed as one unit).
    ``real=True`` returns the half spectrum (the real-input fast path);
    ``real=False`` the full complex spectrum.  ``precision`` (an
    optional duck-typed :class:`~repro.hw.quantize.PrecisionSpec`)
    returns the quantized spectrum -- derived from the cached raw entry,
    so a precision switch never re-runs the transform -- with results
    bit-identical to computing fresh either way.
    """
    kernel = np.asarray(kernel)
    kind = "half" if real else "full"
    plane_shape = (int(kernel.shape[-2]), int(kernel.shape[-1]))
    precision_name = None if precision is None else str(precision.name)
    cache = _PROCESS_CACHE
    if not cache.enabled:
        array = _transform(kernel, kind)
        if precision is not None:
            array = precision.apply(array)
        return KernelSpectrum(array, kind, plane_shape, precision_name)
    digest = kernel_digest(kernel)
    key = (digest, kind, precision_name)
    array = cache.get(key)
    if array is None:
        if precision is None:
            cache.count_transform()
            array = _transform(kernel, kind)
        else:
            raw_key = (digest, kind, None)
            raw = cache.get(raw_key)
            if raw is None:
                cache.count_transform()
                raw = _transform(kernel, kind)
                cache.put(raw_key, raw)
            array = precision.apply(raw)
        cache.put(key, array)
    return KernelSpectrum(array, kind, plane_shape, precision_name)


def _aux_cache_info() -> dict[str, int]:
    """The spectrum cache's slice of :func:`~repro.fft.fft
    .fft_plan_cache_info`: entry count plus lifetime hit/miss/store/
    eviction/transform counters, prefixed to avoid key collisions."""
    info = _PROCESS_CACHE.info()
    return {
        "kernel_spectra": info["entries"],
        "kernel_spectrum_hits": info["hits"],
        "kernel_spectrum_misses": info["misses"],
        "kernel_spectrum_stores": info["stores"],
        "kernel_spectrum_evictions": info["evictions"],
        "kernel_transforms": info["kernel_transforms"],
    }


register_aux_plan_cache(_aux_cache_info, clear_kernel_spectrum_cache)
