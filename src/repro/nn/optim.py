"""Optimizers operating on (parameters, gradients) lists in place."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer bound to a model's parameter list."""

    def __init__(self, parameters: list[np.ndarray], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not parameters:
            raise ValueError("no parameters to optimize")
        self.parameters = parameters
        self.lr = lr

    def step(self, gradients: list[np.ndarray]) -> None:
        raise NotImplementedError

    def _check(self, gradients: list[np.ndarray]) -> None:
        if len(gradients) != len(self.parameters):
            raise ValueError(
                f"{len(gradients)} gradients for {len(self.parameters)} parameters"
            )


class SGD(Optimizer):
    """SGD with classical momentum and optional weight decay."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError("weight decay cannot be negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.velocity = [np.zeros_like(p) for p in parameters]

    def step(self, gradients: list[np.ndarray]) -> None:
        self._check(gradients)
        for param, grad, vel in zip(self.parameters, gradients, self.velocity):
            update = grad + self.weight_decay * param
            vel *= self.momentum
            vel += update
            param -= self.lr * vel


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.first_moment = [np.zeros_like(p) for p in parameters]
        self.second_moment = [np.zeros_like(p) for p in parameters]
        self.steps = 0

    def step(self, gradients: list[np.ndarray]) -> None:
        self._check(gradients)
        self.steps += 1
        correction1 = 1.0 - self.beta1**self.steps
        correction2 = 1.0 - self.beta2**self.steps
        for param, grad, m1, m2 in zip(
            self.parameters, gradients, self.first_moment, self.second_moment
        ):
            m1 *= self.beta1
            m1 += (1 - self.beta1) * grad
            m2 *= self.beta2
            m2 += (1 - self.beta2) * grad**2
            m1_hat = m1 / correction1
            m2_hat = m2 / correction2
            param -= self.lr * m1_hat / (np.sqrt(m2_hat) + self.eps)
