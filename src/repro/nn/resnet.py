"""ResNet50 builder (paper benchmark 2: ResNet50 on MIRAI traces).

Standard bottleneck ResNet50: a stem followed by four stages of
bottleneck blocks with counts (3, 4, 6, 3); each bottleneck squeezes to
``planes`` channels with a 1x1, convolves 3x3, and expands to
``4 * planes`` with another 1x1, adding a projected skip when shape
changes.  ``width_mult`` / fewer block repeats give the CI-scale variant
used for real training runs; the full geometry feeds the FLOP census.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Dense, GlobalAvgPool, MaxPool2d
from repro.nn.model import ResidualBlock, Sequential, conv_bn_relu

RESNET50_BLOCKS = (3, 4, 6, 3)
EXPANSION = 4


def _bottleneck(
    in_channels: int,
    planes: int,
    stride: int,
    rng: np.random.Generator,
) -> ResidualBlock:
    out_channels = planes * EXPANSION
    main = Sequential(
        conv_bn_relu(in_channels, planes, kernel_size=1, stride=1, padding=0, rng=rng)
        + conv_bn_relu(planes, planes, kernel_size=3, stride=stride, padding=1, rng=rng)
        + conv_bn_relu(
            planes, out_channels, kernel_size=1, stride=1, padding=0, rng=rng, relu=False
        )
    )
    projection = None
    if stride != 1 or in_channels != out_channels:
        projection = Sequential(
            conv_bn_relu(
                in_channels,
                out_channels,
                kernel_size=1,
                stride=stride,
                padding=0,
                rng=rng,
                relu=False,
            )
        )
    return ResidualBlock(main, projection)


def build_resnet(
    blocks: tuple[int, ...] = RESNET50_BLOCKS,
    num_classes: int = 2,
    in_channels: int = 3,
    width_mult: float = 1.0,
    base_planes: int = 64,
    stem_pool: bool = True,
    seed: int = 0,
) -> Sequential:
    """Assemble a bottleneck ResNet from per-stage block counts."""
    if width_mult <= 0:
        raise ValueError(f"width_mult must be positive, got {width_mult}")
    if not blocks or any(b <= 0 for b in blocks):
        raise ValueError(f"invalid block counts {blocks}")
    rng = np.random.default_rng(seed)
    planes = max(1, int(round(base_planes * width_mult)))

    # CIFAR-style stem (3x3, stride 1) -- the paper's inputs are small
    # planes (32x32 images / trace tables), not ImageNet crops.
    layers: list = conv_bn_relu(in_channels, planes, rng=rng)
    if stem_pool:
        layers.append(MaxPool2d(2))

    channels = planes
    stage_planes = planes
    for stage_index, count in enumerate(blocks):
        stride = 1 if stage_index == 0 else 2
        for block_index in range(count):
            block_stride = stride if block_index == 0 else 1
            layers.append(_bottleneck(channels, stage_planes, block_stride, rng))
            channels = stage_planes * EXPANSION
        stage_planes *= 2

    layers.append(GlobalAvgPool())
    layers.append(Dense(channels, num_classes, rng=rng))
    return Sequential(layers)


def resnet50(
    num_classes: int = 2,
    in_channels: int = 3,
    width_mult: float = 1.0,
    seed: int = 0,
) -> Sequential:
    """The paper's second benchmark model (full size by default)."""
    return build_resnet(
        RESNET50_BLOCKS,
        num_classes=num_classes,
        in_channels=in_channels,
        width_mult=width_mult,
        seed=seed,
    )


def resnet_scaled(
    num_classes: int = 2, in_channels: int = 1, seed: int = 0
) -> Sequential:
    """A bottleneck ResNet that trains in seconds on the numpy substrate.

    Keeps the bottleneck topology (1x1 / 3x3 / 1x1 with projected skips)
    with one block per stage and 1/16 width; used for the accuracy column
    of the Table I reproduction on the malware-trace benchmark.
    """
    return build_resnet(
        blocks=(1, 1, 1),
        num_classes=num_classes,
        in_channels=in_channels,
        width_mult=0.125,
        stem_pool=False,
        seed=seed,
    )
