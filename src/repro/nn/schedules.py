"""Learning-rate schedules.

Small composable schedules the trainer can apply per epoch.  Each
schedule maps ``epoch -> learning rate`` given a base rate; the
:class:`repro.nn.train.Trainer` mutates its optimizer's ``lr`` before
every epoch when one is attached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class Schedule:
    """Base schedule: constant learning rate."""

    def __init__(self, base_lr: float) -> None:
        if base_lr <= 0:
            raise ValueError(f"base learning rate must be positive, got {base_lr}")
        self.base_lr = base_lr

    def lr(self, epoch: int) -> float:
        if epoch < 0:
            raise ValueError(f"epoch cannot be negative, got {epoch}")
        return self.base_lr


@dataclass(frozen=True)
class _StepSpec:
    step_epochs: int
    gamma: float


class StepDecay(Schedule):
    """Multiply the rate by ``gamma`` every ``step_epochs`` epochs."""

    def __init__(self, base_lr: float, step_epochs: int, gamma: float = 0.1) -> None:
        super().__init__(base_lr)
        if step_epochs <= 0:
            raise ValueError("step interval must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.spec = _StepSpec(step_epochs=step_epochs, gamma=gamma)

    def lr(self, epoch: int) -> float:
        super().lr(epoch)
        drops = epoch // self.spec.step_epochs
        return self.base_lr * (self.spec.gamma**drops)


class CosineDecay(Schedule):
    """Cosine annealing from the base rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, base_lr: float, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(base_lr)
        if total_epochs <= 0:
            raise ValueError("total epochs must be positive")
        if min_lr < 0 or min_lr > base_lr:
            raise ValueError("min_lr must be in [0, base_lr]")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr(self, epoch: int) -> float:
        super().lr(epoch)
        progress = min(1.0, epoch / self.total_epochs)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupWrapper(Schedule):
    """Linear warm-up for the first ``warmup_epochs``, then the inner schedule."""

    def __init__(self, inner: Schedule, warmup_epochs: int) -> None:
        super().__init__(inner.base_lr)
        if warmup_epochs < 0:
            raise ValueError("warm-up length cannot be negative")
        self.inner = inner
        self.warmup_epochs = warmup_epochs

    def lr(self, epoch: int) -> float:
        super().lr(epoch)
        if self.warmup_epochs and epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        return self.inner.lr(epoch)
