"""Minibatch training loop with metric tracking.

Used to produce the *accuracy* column of the Table I reproduction:
scaled VGG19/ResNet50 variants genuinely train on the synthetic
datasets, while the time columns come from the device cost models fed by
:mod:`repro.nn.flops` (see ``repro.bench.workloads``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import accuracy, cross_entropy
from repro.nn.model import Sequential
from repro.nn.optim import Optimizer


@dataclass
class EpochMetrics:
    """Loss/accuracy record for one epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: float | None = None


@dataclass
class TrainingHistory:
    """Full run record returned by :meth:`Trainer.fit`."""

    epochs: list[EpochMetrics] = field(default_factory=list)

    @property
    def final_train_accuracy(self) -> float:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1].train_accuracy

    @property
    def final_test_accuracy(self) -> float | None:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1].test_accuracy

    @property
    def best_test_accuracy(self) -> float | None:
        scores = [e.test_accuracy for e in self.epochs if e.test_accuracy is not None]
        return max(scores) if scores else None


def minibatches(
    inputs: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | None = None,
):
    """Yield shuffled (inputs, labels) minibatches covering the dataset."""
    if batch_size <= 0:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    if inputs.shape[0] != labels.shape[0]:
        raise ValueError(
            f"{inputs.shape[0]} inputs vs {labels.shape[0]} labels"
        )
    count = inputs.shape[0]
    order = np.arange(count)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, count, batch_size):
        batch = order[start : start + batch_size]
        yield inputs[batch], labels[batch]


class Trainer:
    """Cross-entropy classification trainer."""

    def __init__(
        self,
        model: Sequential,
        optimizer: Optimizer,
        batch_size: int = 32,
        label_smoothing: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.batch_size = batch_size
        self.label_smoothing = label_smoothing
        self.rng = np.random.default_rng(seed)

    def train_epoch(self, inputs: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
        """One pass over the training set; returns (mean loss, accuracy)."""
        losses = []
        correct = 0
        seen = 0
        for x, y in minibatches(inputs, labels, self.batch_size, rng=self.rng):
            logits = self.model.forward(x, training=True)
            loss, grad = cross_entropy(logits, y, self.label_smoothing)
            self.model.backward(grad)
            self.optimizer.step(self.model.gradients())
            losses.append(loss)
            correct += int(np.sum(np.argmax(logits, axis=1) == y))
            seen += x.shape[0]
        return float(np.mean(losses)), correct / seen

    def evaluate(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        """Inference-mode top-1 accuracy."""
        predictions = []
        for start in range(0, inputs.shape[0], self.batch_size):
            batch = inputs[start : start + self.batch_size]
            predictions.append(self.model.forward(batch, training=False))
        return accuracy(np.vstack(predictions), labels)

    def fit(
        self,
        train_inputs: np.ndarray,
        train_labels: np.ndarray,
        epochs: int,
        test_inputs: np.ndarray | None = None,
        test_labels: np.ndarray | None = None,
        schedule=None,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes, evaluating after each when a test
        set is provided.  ``schedule`` (a :class:`repro.nn.schedules.Schedule`)
        sets the optimizer's learning rate before every epoch."""
        if epochs <= 0:
            raise ValueError(f"epoch count must be positive, got {epochs}")
        history = TrainingHistory()
        for epoch in range(epochs):
            if schedule is not None:
                self.optimizer.lr = schedule.lr(epoch)
            loss, train_acc = self.train_epoch(train_inputs, train_labels)
            test_acc = None
            if test_inputs is not None and test_labels is not None:
                test_acc = self.evaluate(test_inputs, test_labels)
            history.epochs.append(
                EpochMetrics(
                    epoch=epoch,
                    train_loss=loss,
                    train_accuracy=train_acc,
                    test_accuracy=test_acc,
                )
            )
        return history
