"""Model containers: Sequential chains and residual blocks.

ResNet50's bottleneck blocks need a branching graph; everything else the
paper uses is a chain.  A :class:`ResidualBlock` *is itself a layer*
(holding its two branches), so entire networks remain a single
:class:`Sequential`, which keeps the training loop and the FLOP census
simple and uniform.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, Layer, ReLU


class Sequential(Layer):
    """A chain of layers executed in order."""

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("a model needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = grad
        for layer in reversed(self.layers):
            out = layer.backward(out)
        return out

    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients()]

    def parameter_count(self) -> int:
        return sum(int(np.prod(p.shape)) for p in self.parameters())

    def state_dict(self) -> list[np.ndarray]:
        """Copies of every parameter, in traversal order."""
        return [p.copy() for p in self.parameters()]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} tensors, model expects {len(params)}"
            )
        for param, saved in zip(params, state):
            if param.shape != saved.shape:
                raise ValueError(
                    f"shape mismatch: model {param.shape} vs state {saved.shape}"
                )
            param[...] = saved


class ResidualBlock(Layer):
    """A ResNet bottleneck: main branch plus (optionally projected) skip.

    ``main`` is any layer chain; ``projection`` (1x1 conv + BN) adapts
    the skip path when the block changes channel count or stride.
    The trailing ReLU after the add is part of the block.
    """

    def __init__(self, main: Sequential, projection: Sequential | None = None) -> None:
        self.main = main
        self.projection = projection
        self.relu = ReLU()

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        branch = self.main.forward(x, training=training)
        skip = x if self.projection is None else self.projection.forward(
            x, training=training
        )
        if branch.shape != skip.shape:
            raise ValueError(
                f"residual branches disagree: main {branch.shape} vs skip {skip.shape}"
            )
        return self.relu.forward(branch + skip, training=training)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self.relu.backward(grad)
        grad_main = self.main.backward(grad)
        grad_skip = grad if self.projection is None else self.projection.backward(grad)
        return grad_main + grad_skip

    def parameters(self) -> list[np.ndarray]:
        params = self.main.parameters()
        if self.projection is not None:
            params = params + self.projection.parameters()
        return params

    def gradients(self) -> list[np.ndarray]:
        grads = self.main.gradients()
        if self.projection is not None:
            grads = grads + self.projection.gradients()
        return grads


def conv_bn_relu(
    in_channels: int,
    out_channels: int,
    kernel_size: int = 3,
    stride: int = 1,
    padding: int = 1,
    rng: np.random.Generator | None = None,
    relu: bool = True,
) -> list[Layer]:
    """The conv/BN/ReLU triple both architectures are built from."""
    layers: list[Layer] = [
        Conv2d(in_channels, out_channels, kernel_size, stride, padding, rng=rng),
        BatchNorm2d(out_channels),
    ]
    if relu:
        layers.append(ReLU())
    return layers
