"""Post-training quantization of trained models (TPU deployment mode).

Section II-A's quantization step, applied to whole networks: weights
(and optionally activations) are rounded through the int8 grid, so the
"TPU accuracy" columns of Table I can be *measured* rather than
asserted.  Two modes:

* :func:`quantize_model_weights` -- weight-only: every parameter tensor
  round-trips through symmetric int8 (what the Table I harness uses);
* :class:`ActivationQuantizer` -- a forward-pass wrapper that also
  rounds the activations flowing between layers, the full int8
  inference path.

Both are reversible: the original float parameters are kept and can be
restored.
"""

from __future__ import annotations

import numpy as np

from repro.hw.quantize import dequantize, quantize
from repro.nn.model import Sequential


def quantize_model_weights(model: Sequential, bits: int = 8) -> list[np.ndarray]:
    """Round every parameter through the int grid, in place.

    Returns the saved float state so callers can restore with
    ``model.load_state_dict(saved)``.
    """
    saved = model.state_dict()
    for parameter in model.parameters():
        parameter[...] = dequantize(quantize(parameter, bits=bits))
    return saved


def weight_quantization_error(model: Sequential, bits: int = 8) -> float:
    """Mean absolute parameter perturbation the int grid introduces."""
    total = 0.0
    count = 0
    for parameter in model.parameters():
        rounded = dequantize(quantize(parameter, bits=bits))
        total += float(np.sum(np.abs(rounded - parameter)))
        count += parameter.size
    if count == 0:
        raise ValueError("model has no parameters")
    return total / count


class ActivationQuantizer:
    """Forward-pass wrapper that quantizes inter-layer activations.

    Wraps a :class:`Sequential` and mimics its inference interface; each
    layer's output is rounded through the int8 grid before feeding the
    next layer, modelling the unified buffer's 8-bit storage.
    """

    def __init__(self, model: Sequential, bits: int = 8) -> None:
        if bits < 2:
            raise ValueError(f"need at least 2 bits, got {bits}")
        self.model = model
        self.bits = bits

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            raise ValueError("ActivationQuantizer is an inference-only wrapper")
        out = np.asarray(x)
        for layer in self.model.layers:
            out = layer.forward(out, training=False)
            out = dequantize(quantize(out, bits=self.bits))
        return out

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


def quantized_accuracy(
    model: Sequential,
    inputs: np.ndarray,
    labels: np.ndarray,
    bits: int = 8,
    quantize_activations: bool = False,
    batch_size: int = 32,
) -> float:
    """Top-1 accuracy of the int-quantized model (weights restored after)."""
    from repro.nn.losses import accuracy

    saved = quantize_model_weights(model, bits=bits)
    try:
        forward = (
            ActivationQuantizer(model, bits=bits).forward
            if quantize_activations
            else (lambda x, training=False: model.forward(x, training=training))
        )
        predictions = []
        for start in range(0, inputs.shape[0], batch_size):
            batch = inputs[start : start + batch_size]
            predictions.append(forward(batch, training=False))
        return accuracy(np.vstack(predictions), labels)
    finally:
        model.load_state_dict(saved)
