"""Neural-network substrate (pure numpy, forward + backward).

Supplies the two benchmark models the paper evaluates -- VGG19
(:func:`repro.nn.vgg.vgg19`) and ResNet50
(:func:`repro.nn.resnet.resnet50`) -- together with the layers,
losses, optimizers and training loop needed to really train their
CI-scale variants, and the FLOP census (:mod:`repro.nn.flops`) that
feeds the hardware cost models for the full-size architectures.
"""

from repro.nn.flops import (
    MatmulShape,
    ModelCensus,
    input_bytes_per_sample,
    model_census,
)
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Layer,
    MaxPool2d,
    ReLU,
)
from repro.nn.losses import accuracy, cross_entropy, mse, softmax
from repro.nn.model import ResidualBlock, Sequential, conv_bn_relu
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.quantized import (
    ActivationQuantizer,
    quantize_model_weights,
    quantized_accuracy,
    weight_quantization_error,
)
from repro.nn.schedules import CosineDecay, Schedule, StepDecay, WarmupWrapper
from repro.nn.resnet import RESNET50_BLOCKS, build_resnet, resnet50, resnet_scaled
from repro.nn.train import (
    EpochMetrics,
    Trainer,
    TrainingHistory,
    minibatches,
)
from repro.nn.vgg import VGG19_CONFIG, build_vgg, vgg19, vgg19_scaled

__all__ = [
    "MatmulShape",
    "ModelCensus",
    "input_bytes_per_sample",
    "model_census",
    "BatchNorm2d",
    "Conv2d",
    "Dense",
    "Dropout",
    "Flatten",
    "GlobalAvgPool",
    "Layer",
    "MaxPool2d",
    "ReLU",
    "accuracy",
    "cross_entropy",
    "mse",
    "softmax",
    "ResidualBlock",
    "Sequential",
    "conv_bn_relu",
    "Adam",
    "Optimizer",
    "SGD",
    "ActivationQuantizer",
    "quantize_model_weights",
    "quantized_accuracy",
    "weight_quantization_error",
    "CosineDecay",
    "Schedule",
    "StepDecay",
    "WarmupWrapper",
    "RESNET50_BLOCKS",
    "build_resnet",
    "resnet50",
    "resnet_scaled",
    "EpochMetrics",
    "Trainer",
    "TrainingHistory",
    "minibatches",
    "VGG19_CONFIG",
    "build_vgg",
    "vgg19",
    "vgg19_scaled",
]
