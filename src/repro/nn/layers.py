"""Neural-network layers with forward and backward passes (pure numpy).

The paper's benchmarks train VGG19 and ResNet50 classifiers; this module
supplies the layer zoo those architectures need, each with an explicit
``forward``/``backward`` pair so the training loop, the gradient-based
baseline explainer, and the FLOP census all share one implementation.

Conventions
-----------
* activations are ``(batch, channels, height, width)`` or
  ``(batch, features)``;
* ``forward(x, training=...)`` caches whatever ``backward`` needs;
* ``backward(grad)`` returns the gradient w.r.t. the input and stores
  parameter gradients on the layer (``grad_weights`` etc.);
* parameters are plain numpy arrays exposed via ``parameters()`` /
  ``gradients()`` so optimizers stay trivially simple.
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Base layer: stateless by default, subclasses add parameters."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[np.ndarray]:
        return []

    def gradients(self) -> list[np.ndarray]:
        return []

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    """Unfold sliding windows into columns for matmul-form convolution.

    Returns ``(columns, out_h, out_w)`` where columns has shape
    ``(batch * out_h * out_w, channels * kh * kw)`` -- convolution then
    is a single dense matmul, which is both fast in numpy and exactly
    how the workload is costed on the simulated devices.
    """
    batch, channels, height, width = x.shape
    out_h = (height + 2 * pad - kh) // stride + 1
    out_w = (width + 2 * pad - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kh}x{kw} with stride {stride} does not fit input "
            f"{height}x{width} (pad {pad})"
        )
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    windows = np.lib.stride_tricks.sliding_window_view(padded, (kh, kw), axis=(2, 3))
    strided = windows[:, :, ::stride, ::stride, :, :]
    # (batch, out_h, out_w, channels, kh, kw) -> rows of patches
    patches = strided.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kh * kw
    )
    return np.ascontiguousarray(patches), out_h, out_w


def _col2im(cols: np.ndarray, x_shape, kh: int, kw: int, stride: int, pad: int):
    """Fold patch-gradient columns back onto the (padded) input grid."""
    batch, channels, height, width = x_shape
    out_h = (height + 2 * pad - kh) // stride + 1
    out_w = (width + 2 * pad - kw) // stride + 1
    padded = np.zeros((batch, channels, height + 2 * pad, width + 2 * pad))
    shaped = cols.reshape(batch, out_h, out_w, channels, kh, kw).transpose(
        0, 3, 1, 2, 4, 5
    )
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += shaped[
                :, :, :, :, i, j
            ]
    if pad == 0:
        return padded
    return padded[:, :, pad:-pad, pad:-pad]


class Conv2d(Layer):
    """2-D convolution via im2col + matmul."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ValueError("conv geometry must be positive")
        if stride <= 0 or padding < 0:
            raise ValueError("invalid stride/padding")
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)  # He initialization for ReLU nets
        self.weights = rng.standard_normal(
            (out_channels, in_channels, kernel_size, kernel_size)
        ) * scale
        self.bias = np.zeros(out_channels)
        self.stride = stride
        self.padding = padding
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out_channels, in_channels, kh, kw = self.weights.shape
        if x.ndim != 4 or x.shape[1] != in_channels:
            raise ValueError(
                f"expected (B, {in_channels}, H, W), got {x.shape}"
            )
        cols, out_h, out_w = _im2col(x, kh, kw, self.stride, self.padding)
        flat_weights = self.weights.reshape(out_channels, -1)
        out = cols @ flat_weights.T + self.bias
        batch = x.shape[0]
        out = out.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
        if training:
            self._cache = (x.shape, cols)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward(training=True)")
        x_shape, cols = self._cache
        out_channels, _, kh, kw = self.weights.shape
        batch, _, out_h, out_w = grad.shape
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        self.grad_weights = (grad_flat.T @ cols).reshape(self.weights.shape)
        self.grad_bias = grad_flat.sum(axis=0)
        grad_cols = grad_flat @ self.weights.reshape(out_channels, -1)
        return _col2im(grad_cols, x_shape, kh, kw, self.stride, self.padding)

    def parameters(self) -> list[np.ndarray]:
        return [self.weights, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weights, self.grad_bias]


class Dense(Layer):
    """Fully connected layer."""

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator | None = None
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("dense geometry must be positive")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weights = rng.standard_normal((in_features, out_features)) * scale
        self.bias = np.zeros(out_features)
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._input = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weights.shape[0]:
            raise ValueError(
                f"expected (B, {self.weights.shape[0]}), got {x.shape}"
            )
        if training:
            self._input = x
        return x @ self.weights + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward before forward(training=True)")
        self.grad_weights = self._input.T @ grad
        self.grad_bias = grad.sum(axis=0)
        return grad @ self.weights.T

    def parameters(self) -> list[np.ndarray]:
        return [self.weights, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weights, self.grad_bias]


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._mask = x > 0
        return np.maximum(x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward(training=True)")
        return grad * self._mask


class BatchNorm2d(Layer):
    """Per-channel batch normalization with running statistics."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        if channels <= 0:
            raise ValueError("channel count must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = momentum
        self.eps = eps
        self.grad_gamma = np.zeros_like(self.gamma)
        self.grad_beta = np.zeros_like(self.beta)
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.gamma.shape[0]:
            raise ValueError(f"expected (B, {self.gamma.shape[0]}, H, W), got {x.shape}")
        if training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        mean_b = mean[None, :, None, None]
        std_b = np.sqrt(var + self.eps)[None, :, None, None]
        normalized = (x - mean_b) / std_b
        if training:
            self._cache = (normalized, std_b)
        return self.gamma[None, :, None, None] * normalized + self.beta[None, :, None, None]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward(training=True)")
        normalized, std_b = self._cache
        self.grad_gamma = (grad * normalized).sum(axis=(0, 2, 3))
        self.grad_beta = grad.sum(axis=(0, 2, 3))
        count = grad.shape[0] * grad.shape[2] * grad.shape[3]
        gamma_b = self.gamma[None, :, None, None]
        grad_norm = grad * gamma_b
        mean_gn = grad_norm.mean(axis=(0, 2, 3), keepdims=True)
        mean_gn_x = (grad_norm * normalized).mean(axis=(0, 2, 3), keepdims=True)
        return (grad_norm - mean_gn - normalized * mean_gn_x) / std_b

    def parameters(self) -> list[np.ndarray]:
        return [self.gamma, self.beta]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_gamma, self.grad_beta]


class MaxPool2d(Layer):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, size: int = 2) -> None:
        if size <= 0:
            raise ValueError("pool size must be positive")
        self.size = size
        self._cache = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        batch, channels, height, width = x.shape
        s = self.size
        if height % s or width % s:
            raise ValueError(f"pool size {s} does not tile input {height}x{width}")
        shaped = x.reshape(batch, channels, height // s, s, width // s, s)
        out = shaped.max(axis=(3, 5))
        if training:
            mask = shaped == out[:, :, :, None, :, None]
            # Break ties: keep only the first max per window.
            flat = mask.reshape(batch, channels, height // s, width // s, s * s)
            first = np.argmax(flat, axis=-1)
            clean = np.zeros_like(flat)
            idx = np.indices(first.shape)
            clean[idx[0], idx[1], idx[2], idx[3], first] = True
            self._cache = (x.shape, clean.reshape(mask.shape))
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward(training=True)")
        x_shape, mask = self._cache
        expanded = grad[:, :, :, None, :, None] * mask
        batch, channels, height, width = x_shape
        return expanded.reshape(batch, channels, height, width)


class GlobalAvgPool(Layer):
    """Average over the spatial grid: (B, C, H, W) -> (B, C)."""

    def __init__(self) -> None:
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward(training=True)")
        batch, channels, height, width = self._shape
        spread = grad[:, :, None, None] / (height * width)
        return np.broadcast_to(spread, self._shape).copy()


class Flatten(Layer):
    def __init__(self) -> None:
        self._shape = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward(training=True)")
        return grad.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None) -> None:
        if not 0 <= rate < 1:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng or np.random.default_rng(0)
        self._mask = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask
