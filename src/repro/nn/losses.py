"""Loss functions with analytic gradients."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift stabilization."""
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(
    logits: np.ndarray, labels: np.ndarray, label_smoothing: float = 0.0
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy and its gradient w.r.t. the logits.

    ``labels`` are integer class ids.  With label smoothing ``s`` the
    target distribution is ``(1-s)`` on the true class and ``s/C``
    elsewhere.
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ValueError(
            f"labels shape {labels.shape} does not match batch of {logits.shape[0]}"
        )
    if not 0 <= label_smoothing < 1:
        raise ValueError(f"label smoothing must be in [0, 1), got {label_smoothing}")
    classes = logits.shape[1]
    if labels.min() < 0 or labels.max() >= classes:
        raise ValueError("label id outside class range")

    probabilities = softmax(logits)
    batch = logits.shape[0]
    target = np.full_like(probabilities, label_smoothing / classes)
    target[np.arange(batch), labels] += 1.0 - label_smoothing

    clipped = np.clip(probabilities, 1e-12, None)
    loss = float(-np.sum(target * np.log(clipped)) / batch)
    grad = (probabilities - target) / batch
    return loss, grad


def mse(predictions: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error and gradient (distillation-quality metric)."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {targets.shape}"
        )
    delta = predictions - targets
    loss = float(np.mean(delta**2))
    grad = 2.0 * delta / delta.size
    return loss, grad


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ValueError("logits must be (batch, classes) with matching labels")
    return float(np.mean(np.argmax(logits, axis=1) == labels))
