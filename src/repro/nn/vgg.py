"""VGG19 builder (paper benchmark 1: VGG19 on CIFAR-100).

The canonical VGG19 configuration is sixteen 3x3 convolution layers in
five pooled stages followed by the classifier head.  ``width_mult`` and
``input_size`` scale the network down so that *real training runs* (the
accuracy column of Table I) terminate in CI time on the numpy substrate,
while :func:`repro.nn.flops.model_census` of the **full-width** network
drives the simulated-time columns.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, Dropout, Flatten, MaxPool2d, ReLU
from repro.nn.model import Sequential, conv_bn_relu

# Channels per conv layer, "M" = 2x2 max pool.  This is torchvision's
# vgg19 configuration ("E").
VGG19_CONFIG = [
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, 256, "M",
    512, 512, 512, 512, "M",
    512, 512, 512, 512, "M",
]


def build_vgg(
    config: list,
    num_classes: int = 100,
    in_channels: int = 3,
    input_size: int = 32,
    width_mult: float = 1.0,
    hidden_dim: int = 512,
    dropout: float = 0.5,
    seed: int = 0,
) -> Sequential:
    """Assemble a VGG-style network from a channel configuration."""
    if width_mult <= 0:
        raise ValueError(f"width_mult must be positive, got {width_mult}")
    if input_size <= 0 or num_classes <= 0:
        raise ValueError("input size and class count must be positive")
    pools = sum(1 for item in config if item == "M")
    if input_size % (2**pools):
        raise ValueError(
            f"input size {input_size} is not divisible by 2^{pools} pooling stages"
        )
    rng = np.random.default_rng(seed)
    layers = []
    channels = in_channels
    for item in config:
        if item == "M":
            layers.append(MaxPool2d(2))
            continue
        out_channels = max(1, int(round(item * width_mult)))
        layers.extend(conv_bn_relu(channels, out_channels, rng=rng))
        channels = out_channels
    final_spatial = input_size // (2**pools)
    flat = channels * final_spatial * final_spatial
    hidden = max(1, int(round(hidden_dim * width_mult)))
    layers.extend(
        [
            Flatten(),
            Dense(flat, hidden, rng=rng),
            ReLU(),
            Dropout(dropout, rng=rng),
            Dense(hidden, num_classes, rng=rng),
        ]
    )
    return Sequential(layers)


def vgg19(
    num_classes: int = 100,
    input_size: int = 32,
    width_mult: float = 1.0,
    seed: int = 0,
) -> Sequential:
    """The paper's first benchmark model (full size by default)."""
    return build_vgg(
        VGG19_CONFIG,
        num_classes=num_classes,
        input_size=input_size,
        width_mult=width_mult,
        seed=seed,
    )


def vgg19_scaled(num_classes: int = 10, seed: int = 0) -> Sequential:
    """A width-scaled VGG19 that trains in seconds on the numpy substrate.

    Same depth and topology as VGG19 (all sixteen conv layers, five
    pools); only channel counts shrink.  Used for the *accuracy* column
    of the Table I reproduction.
    """
    return build_vgg(
        VGG19_CONFIG,
        num_classes=num_classes,
        input_size=32,
        width_mult=0.0625,  # 4 /64 base channels
        hidden_dim=256,
        dropout=0.2,
        seed=seed,
    )
