"""Static FLOP/byte census of a model: the bridge to the hardware models.

Table I's simulated training/testing times come from counting the dense
arithmetic a model performs per sample and asking each device's cost
model how long that arithmetic takes (plus its per-op overheads,
transfers and collectives).  The census walks a built model and records,
for every compute layer, the matmul geometry that executes it:

* a conv layer is an im2col matmul of
  ``(out_h * out_w) x (C_in * k^2) @ (C_in * k^2) x C_out`` per sample;
* a dense layer is a ``1 x in @ in x out`` per sample (batched);
* normalization/activation/pool layers count as elementwise passes.

The census is exact for the architectures in this repository because the
layers themselves execute via the same matmul decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2d,
    ReLU,
)
from repro.nn.model import ResidualBlock, Sequential


@dataclass(frozen=True)
class MatmulShape:
    """One matmul executed per sample, ``(m x k) @ (k x n)``."""

    m: int
    k: int
    n: int
    label: str = ""

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n


@dataclass
class ModelCensus:
    """Per-sample arithmetic inventory of one model."""

    name: str
    input_shape: tuple[int, ...]
    matmuls: list[MatmulShape] = field(default_factory=list)
    elementwise_elements: int = 0
    parameter_count: int = 0

    @property
    def forward_macs(self) -> int:
        return sum(shape.macs for shape in self.matmuls)

    @property
    def forward_flops(self) -> int:
        return 2 * self.forward_macs + self.elementwise_elements

    @property
    def layer_op_count(self) -> int:
        """Number of device kernels one forward pass launches (eager mode)."""
        return len(self.matmuls) + max(1, self.elementwise_elements and 1)

    def training_macs(self, backward_multiplier: float = 2.0) -> int:
        """Forward + backward arithmetic per sample.

        The standard estimate: backward costs ~2x forward (gradient
        w.r.t. activations and w.r.t. weights each mirror the forward
        matmuls).
        """
        return int(self.forward_macs * (1.0 + backward_multiplier))


def _spatial_after(layer, spatial: int) -> int:
    if isinstance(layer, Conv2d):
        kh = layer.weights.shape[2]
        return (spatial + 2 * layer.padding - kh) // layer.stride + 1
    if isinstance(layer, MaxPool2d):
        return spatial // layer.size
    return spatial


def model_census(
    model: Sequential, input_shape: tuple[int, int, int], name: str = "model"
) -> ModelCensus:
    """Walk a built model and count its per-sample arithmetic.

    ``input_shape`` is ``(channels, height, width)``; heights and widths
    must be square for this census (all paper models are).
    """
    channels, height, width = input_shape
    if height != width:
        raise ValueError(f"census expects square inputs, got {height}x{width}")
    census = ModelCensus(
        name=name,
        input_shape=input_shape,
        parameter_count=model.parameter_count(),
    )
    _walk(model, channels, height, census)
    return census


def _walk(container, channels: int, spatial: int, census: ModelCensus) -> tuple[int, int]:
    for layer in container.layers:
        if isinstance(layer, ResidualBlock):
            branch_channels, branch_spatial = _walk(
                layer.main, channels, spatial, census
            )
            if layer.projection is not None:
                _walk(layer.projection, channels, spatial, census)
            channels, spatial = branch_channels, branch_spatial
            census.elementwise_elements += channels * spatial * spatial  # the add
            continue
        if isinstance(layer, Conv2d):
            out_channels, in_channels, kh, kw = layer.weights.shape
            out_spatial = _spatial_after(layer, spatial)
            census.matmuls.append(
                MatmulShape(
                    m=out_spatial * out_spatial,
                    k=in_channels * kh * kw,
                    n=out_channels,
                    label=f"conv{kh}x{kw}-{in_channels}->{out_channels}",
                )
            )
            channels, spatial = out_channels, out_spatial
            continue
        if isinstance(layer, Dense):
            in_features, out_features = layer.weights.shape
            census.matmuls.append(
                MatmulShape(m=1, k=in_features, n=out_features, label="dense")
            )
            channels, spatial = out_features, 1
            continue
        if isinstance(layer, (BatchNorm2d, ReLU, Dropout)):
            census.elementwise_elements += channels * spatial * spatial
            continue
        if isinstance(layer, MaxPool2d):
            spatial = _spatial_after(layer, spatial)
            census.elementwise_elements += channels * spatial * spatial
            continue
        if isinstance(layer, GlobalAvgPool):
            census.elementwise_elements += channels * spatial * spatial
            spatial = 1
            continue
        if isinstance(layer, Flatten):
            channels, spatial = channels * spatial * spatial, 1
            continue
        raise TypeError(f"census does not know layer type {type(layer).__name__}")
    return channels, spatial


def input_bytes_per_sample(input_shape: tuple[int, int, int], bytes_per_value: int = 4) -> int:
    """Host-transfer footprint of one sample."""
    return int(np.prod(input_shape)) * bytes_per_value
