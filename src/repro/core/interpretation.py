"""Outcome interpretation: contribution factors (paper Eq. 5).

Once the distilled kernel ``K`` is known, the contribution of input
feature ``x_i`` is measured by zeroing it and re-running the distilled
model:

    con(x_i) := Y - X' (*) K         where X' = X with x_i zeroed.

The paper reduces the resulting matrix to a scalar weight per feature
(Figure 5 colours blocks of an image; Figure 6 weights clock-cycle
columns of a trace table).  This module provides:

* :func:`contribution_matrix` -- Eq. 5 verbatim for one feature;
* :func:`feature_contributions` -- scalar scores for *every* element,
  with a fast path exploiting convolution linearity:
  ``Y - X'(*)K = (Y - X(*)K) + x_i * roll(K, i)``, so all features share
  one base residual and one kernel roll each -- no re-convolutions;
* :func:`block_contributions` -- Figure 5's block occlusion on images;
* :func:`column_contributions` / :func:`row_contributions` -- Figure 6's
  per-clock-cycle weights on trace tables;
* :func:`top_k_features` -- ranked indices for report generation.

All entry points accept an optional device so interpretation time can be
accounted on CPU/GPU/TPU backends (Table II).
"""

from __future__ import annotations

import numpy as np

from repro.fft.convolution import fft_circular_convolve2d
from repro.hw.device import Device

_REDUCTIONS = ("l2", "l1", "mean_abs", "max_abs")


def _reduce(matrix: np.ndarray, reduction: str) -> float:
    if reduction == "l2":
        return float(np.sqrt(np.sum(np.abs(matrix) ** 2)))
    if reduction == "l1":
        return float(np.sum(np.abs(matrix)))
    if reduction == "mean_abs":
        return float(np.mean(np.abs(matrix)))
    if reduction == "max_abs":
        return float(np.max(np.abs(matrix)))
    raise ValueError(f"unknown reduction {reduction!r}; expected one of {_REDUCTIONS}")


def _convolve(x: np.ndarray, kernel: np.ndarray, device: Device | None) -> np.ndarray:
    if device is None:
        return fft_circular_convolve2d(x, kernel)
    return device.conv2d_circular(x, kernel)


def _check_operands(x: np.ndarray, kernel: np.ndarray, y: np.ndarray) -> None:
    if x.shape != kernel.shape or x.shape != y.shape:
        raise ValueError(
            "input, kernel and output must share one shape, got "
            f"{x.shape}, {kernel.shape}, {y.shape}"
        )


def contribution_matrix(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    feature: tuple[int, int],
    device: Device | None = None,
) -> np.ndarray:
    """Eq. 5 for one feature: ``Y - X' (*) K`` with ``X'[feature] = 0``."""
    x = np.asarray(x)
    kernel = np.asarray(kernel)
    y = np.asarray(y)
    _check_operands(x, kernel, y)
    i, j = feature
    if not (0 <= i < x.shape[0] and 0 <= j < x.shape[1]):
        raise IndexError(f"feature {feature} outside input of shape {x.shape}")
    masked = x.copy()
    masked[i, j] = 0.0
    return y - _convolve(masked, kernel, device)


def feature_contributions(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    reduction: str = "l2",
    method: str = "fast",
    device: Device | None = None,
) -> np.ndarray:
    """Scalar contribution score for every input element.

    ``method="fast"`` uses linearity of convolution: with base residual
    ``B = Y - X (*) K``, zeroing element ``(i, j)`` gives
    ``con(x_ij) = B + x_ij * roll(K, (i, j))`` -- one convolution total
    instead of one per feature.  ``method="naive"`` re-convolves per
    feature (the literal Eq. 5); tests assert both agree, and the
    benchmark suite uses the naive path when mirroring the paper's
    measured workload.
    """
    x = np.asarray(x, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    _check_operands(x, kernel, y)
    if method not in ("fast", "naive"):
        raise ValueError(f"unknown method {method!r}; expected 'fast' or 'naive'")

    m, n = x.shape
    scores = np.zeros((m, n))
    if method == "naive":
        for i in range(m):
            for j in range(n):
                delta = contribution_matrix(x, kernel, y, (i, j), device=device)
                scores[i, j] = _reduce(delta, reduction)
        return scores

    base = y - _convolve(x, kernel, device)
    if device is not None:
        # The fast path's per-feature adds are elementwise VPU work.
        device.account_elementwise(m * n, flops_per_element=2.0, count=m * n)
    for i in range(m):
        rolled_rows = np.roll(kernel, i, axis=0)
        for j in range(n):
            delta = base + x[i, j] * np.roll(rolled_rows, j, axis=1)
            scores[i, j] = _reduce(delta, reduction)
    return scores


def mask_contribution(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    mask: np.ndarray,
    reduction: str = "l2",
    device: Device | None = None,
    fill_value: float = 0.0,
) -> float:
    """Contribution of an arbitrary feature set masked at once.

    ``fill_value`` is the baseline the masked features are replaced
    with: 0.0 reproduces Eq. 5 verbatim; the input's mean is the
    standard occlusion-literature baseline and removes the DC term that
    otherwise dominates on non-centred data (bright images).
    """
    x = np.asarray(x)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != x.shape:
        raise ValueError(f"mask shape {mask.shape} does not match input {x.shape}")
    masked = np.where(mask, fill_value, x)
    delta = np.asarray(y) - _convolve(masked, kernel, device)
    return _reduce(delta, reduction)


def block_contributions(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    block_shape: tuple[int, int],
    reduction: str = "l2",
    device: Device | None = None,
    fill_value: float = 0.0,
) -> np.ndarray:
    """Figure 5: contribution of each square sub-block of an image.

    The input is segmented into a grid of ``block_shape`` tiles; each
    tile is zeroed in turn and scored through the distilled model.
    Returns the grid of scores with shape
    ``(M // bh, N // bw)`` (input dimensions must tile evenly).
    """
    x = np.asarray(x)
    kernel = np.asarray(kernel)
    y = np.asarray(y)
    _check_operands(x, kernel, y)
    bh, bw = block_shape
    if bh <= 0 or bw <= 0:
        raise ValueError(f"block shape must be positive, got {block_shape}")
    m, n = x.shape
    if m % bh or n % bw:
        raise ValueError(
            f"block shape {block_shape} does not tile input of shape {x.shape}"
        )
    grid = np.zeros((m // bh, n // bw))
    for bi in range(m // bh):
        for bj in range(n // bw):
            mask = np.zeros((m, n), dtype=bool)
            mask[bi * bh : (bi + 1) * bh, bj * bw : (bj + 1) * bw] = True
            grid[bi, bj] = mask_contribution(
                x, kernel, y, mask, reduction=reduction, device=device,
                fill_value=fill_value,
            )
    return grid


def column_contributions(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    reduction: str = "l2",
    device: Device | None = None,
    fill_value: float = 0.0,
) -> np.ndarray:
    """Figure 6: contribution of each column (clock cycle of a trace table)."""
    x = np.asarray(x)
    _check_operands(x, np.asarray(kernel), np.asarray(y))
    scores = np.zeros(x.shape[1])
    for j in range(x.shape[1]):
        mask = np.zeros(x.shape, dtype=bool)
        mask[:, j] = True
        scores[j] = mask_contribution(
            x, kernel, y, mask, reduction=reduction, device=device,
            fill_value=fill_value,
        )
    return scores


def row_contributions(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    reduction: str = "l2",
    device: Device | None = None,
    fill_value: float = 0.0,
) -> np.ndarray:
    """Per-row contributions (registers of a trace table)."""
    x = np.asarray(x)
    _check_operands(x, np.asarray(kernel), np.asarray(y))
    scores = np.zeros(x.shape[0])
    for i in range(x.shape[0]):
        mask = np.zeros(x.shape, dtype=bool)
        mask[i, :] = True
        scores[i] = mask_contribution(
            x, kernel, y, mask, reduction=reduction, device=device,
            fill_value=fill_value,
        )
    return scores


def top_k_features(scores: np.ndarray, k: int) -> list[tuple[int, ...]]:
    """Indices of the ``k`` highest-scoring features, descending.

    Works for element grids (2-D) and column/row score vectors (1-D).
    """
    scores = np.asarray(scores)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, scores.size)
    flat_order = np.argsort(scores.reshape(-1))[::-1][:k]
    if scores.ndim == 1:
        return [(int(i),) for i in flat_order]
    return [tuple(int(v) for v in np.unravel_index(i, scores.shape)) for i in flat_order]


def normalize_scores(scores: np.ndarray) -> np.ndarray:
    """Scale scores to [0, 1] for display (heatmaps, report weights)."""
    scores = np.asarray(scores, dtype=np.float64)
    low = scores.min()
    span = scores.max() - low
    if span == 0:
        return np.zeros_like(scores)
    return (scores - low) / span
