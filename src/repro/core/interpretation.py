"""Outcome interpretation: contribution factors (paper Eq. 5).

Once the distilled kernel ``K`` is known, the contribution of input
feature ``x_i`` is measured by zeroing it and re-running the distilled
model:

    con(x_i) := Y - X' (*) K         where X' = X with x_i zeroed.

The paper reduces the resulting matrix to a scalar weight per feature
(Figure 5 colours blocks of an image; Figure 6 weights clock-cycle
columns of a trace table).  This module provides:

* :func:`contribution_matrix` -- Eq. 5 verbatim for one feature;
* :func:`feature_contributions` -- scalar scores for *every* element,
  with a fast path exploiting convolution linearity:
  ``Y - X'(*)K = (Y - X(*)K) + x_i * roll(K, i)``, so all features share
  one base residual and one kernel roll each -- no re-convolutions;
* :func:`element_scores_from_base` -- that fast path's core, exposed
  for callers that already hold the unmasked convolution (the
  wave-fused fleet executor scores it as one more batch row);
* :func:`block_contributions` -- Figure 5's block occlusion on images;
* :func:`column_contributions` / :func:`row_contributions` -- Figure 6's
  per-clock-cycle weights on trace tables;
* :func:`top_k_features` -- ranked indices for report generation.

Every occlusion entry point routes through the batched engine of
:mod:`repro.core.masking`: the masks of one granularity form a *lazy*
:class:`~repro.core.masking.MaskSpec` scored as one conceptual
``(num_masks, M, N)`` batch with the kernel spectrum computed once
(``method="batched"``, the default) -- generated, convolved and reduced
``chunk_rows`` planes at a time, so peak memory is
``O(chunk_rows * M * N)`` on any plane size -- or one convolution per
mask (``method="loop"``, the historical execution kept for equivalence
tests and speedup benchmarks).  Scores are bit-identical across
methods and chunk sizes.

All entry points accept an optional device so interpretation time can be
accounted on CPU/GPU/TPU backends (Table II).
"""

from __future__ import annotations

import numpy as np

from repro.core.masking import (
    REDUCTIONS,
    MaskPlan,
    MaskSpec,
    reduce_batch,
    score_plan,
)
from repro.fft.convolution import fft_circular_convolve2d
from repro.hw.device import Device


def _reduce(matrix: np.ndarray, reduction: str) -> float:
    return float(reduce_batch(np.asarray(matrix)[np.newaxis], reduction)[0])


def _convolve(x: np.ndarray, kernel: np.ndarray, device: Device | None) -> np.ndarray:
    if device is None:
        return fft_circular_convolve2d(x, kernel)
    return device.conv2d_circular(x, kernel)


def _check_operands(x: np.ndarray, kernel: np.ndarray, y: np.ndarray) -> None:
    if x.shape != kernel.shape or x.shape != y.shape:
        raise ValueError(
            "input, kernel and output must share one shape, got "
            f"{x.shape}, {kernel.shape}, {y.shape}"
        )


def contribution_matrix(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    feature: tuple[int, int],
    device: Device | None = None,
) -> np.ndarray:
    """Eq. 5 for one feature: ``Y - X' (*) K`` with ``X'[feature] = 0``."""
    x = np.asarray(x)
    kernel = np.asarray(kernel)
    y = np.asarray(y)
    _check_operands(x, kernel, y)
    i, j = feature
    if not (0 <= i < x.shape[0] and 0 <= j < x.shape[1]):
        raise IndexError(f"feature {feature} outside input of shape {x.shape}")
    masked = x.copy()
    masked[i, j] = 0.0
    return y - _convolve(masked, kernel, device)


def feature_contributions(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    reduction: str = "l2",
    method: str = "fast",
    device: Device | None = None,
) -> np.ndarray:
    """Scalar contribution score for every input element.

    ``method="fast"`` uses linearity of convolution: with base residual
    ``B = Y - X (*) K``, zeroing element ``(i, j)`` gives
    ``con(x_ij) = B + x_ij * roll(K, (i, j))`` -- one convolution total
    instead of one per feature.  ``method="batched"`` scores the full
    element :class:`~repro.core.masking.MaskPlan` as one batched
    program; note the element plan's ``(M*N, M, N)`` stack is quadratic
    in the plane size, so this mode suits device-accounting studies on
    small planes, not large inputs (``"fast"`` dominates there).
    ``method="naive"`` (alias ``"loop"``) re-convolves per feature (the
    literal Eq. 5) in O(M*N) memory; tests assert all paths agree, and
    the benchmark suite uses the naive path when mirroring the paper's
    measured workload.
    """
    x = np.asarray(x, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    _check_operands(x, kernel, y)
    if method not in ("fast", "naive", "loop", "batched"):
        raise ValueError(
            f"unknown method {method!r}; expected 'fast', 'batched', 'naive' or 'loop'"
        )
    if reduction not in REDUCTIONS:
        raise ValueError(
            f"unknown reduction {reduction!r}; expected one of {REDUCTIONS}"
        )

    m, n = x.shape
    if method == "batched":
        # Lazy element spec: the quadratic (M*N, M, N) stack streams in
        # bounded chunks instead of materializing.
        return score_plan(
            x, kernel, y, MaskSpec.elements(x.shape),
            reduction=reduction, method="batched", device=device,
        )
    if method in ("naive", "loop"):
        # One mask at a time, never materializing the element plan's
        # quadratic stack -- the memory profile large planes need.
        scores = np.zeros((m, n))
        for i in range(m):
            for j in range(n):
                delta = contribution_matrix(x, kernel, y, (i, j), device=device)
                scores[i, j] = _reduce(delta, reduction)
        return scores

    base = y - _convolve(x, kernel, device)
    return element_scores_from_base(x, kernel, base, reduction=reduction, device=device)


def element_scores_from_base(
    x: np.ndarray,
    kernel: np.ndarray,
    base: np.ndarray,
    reduction: str = "l2",
    device: Device | None = None,
) -> np.ndarray:
    """Per-element scores from a precomputed base residual ``Y - X (*) K``.

    The linearity fast path's core: zeroing element ``(i, j)`` gives
    ``con(x_ij) = base + x_ij * roll(K, (i, j))``, so every feature
    shares the one convolution that produced ``base``.  Exposed
    separately so callers that already hold the unmasked convolution --
    the wave-fused fleet executor scores it as one more batch row --
    reuse it without a second convolution.  When ``device`` is given,
    the per-feature adds are accounted as elementwise VPU work.
    """
    x = np.asarray(x)
    kernel = np.asarray(kernel)
    base = np.asarray(base)
    _check_operands(x, kernel, base)
    if reduction not in REDUCTIONS:
        raise ValueError(
            f"unknown reduction {reduction!r}; expected one of {REDUCTIONS}"
        )
    m, n = x.shape
    if device is not None:
        # The fast path's per-feature adds are elementwise VPU work.
        device.account_elementwise(m * n, flops_per_element=2.0, count=m * n)
    scores = np.zeros((m, n))
    for i in range(m):
        rolled_rows = np.roll(kernel, i, axis=0)
        for j in range(n):
            delta = base + x[i, j] * np.roll(rolled_rows, j, axis=1)
            scores[i, j] = _reduce(delta, reduction)
    return scores


def mask_contribution(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    mask: np.ndarray,
    reduction: str = "l2",
    device: Device | None = None,
    fill_value: float = 0.0,
    method: str = "loop",
) -> float:
    """Contribution of an arbitrary feature set masked at once.

    ``fill_value`` is the baseline the masked features are replaced
    with: 0.0 reproduces Eq. 5 verbatim; the input's mean is the
    standard occlusion-literature baseline and removes the DC term that
    otherwise dominates on non-centred data (bright images).

    A single mask is a batch of one, so ``method`` only chooses the
    accounting semantics (``"loop"``: one eager convolution, the
    default; ``"batched"``: a one-element plan through the batched
    device op).
    """
    x = np.asarray(x)
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != x.shape:
        raise ValueError(f"mask shape {mask.shape} does not match input {x.shape}")
    plan = MaskPlan.from_masks(mask)
    scores = score_plan(
        x,
        kernel,
        np.asarray(y),
        plan,
        reduction=reduction,
        method=method,
        device=device,
        fill_value=fill_value,
    )
    return float(scores.reshape(-1)[0])


def block_contributions(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    block_shape: tuple[int, int],
    reduction: str = "l2",
    device: Device | None = None,
    fill_value: float = 0.0,
    method: str = "batched",
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Figure 5: contribution of each square sub-block of an image.

    The input is segmented into a grid of ``block_shape`` tiles; each
    tile is zeroed and scored through the distilled model -- all tiles
    in one batched program by default, streamed ``chunk_rows`` masked
    planes at a time from a lazy spec.  Returns the grid of scores with
    shape ``(M // bh, N // bw)`` (input dimensions must tile evenly).
    """
    x = np.asarray(x)
    kernel = np.asarray(kernel)
    y = np.asarray(y)
    _check_operands(x, kernel, y)
    plan = MaskSpec.blocks(x.shape, block_shape)
    return score_plan(
        x, kernel, y, plan,
        reduction=reduction, method=method, device=device, fill_value=fill_value,
        chunk_rows=chunk_rows,
    )


def column_contributions(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    reduction: str = "l2",
    device: Device | None = None,
    fill_value: float = 0.0,
    method: str = "batched",
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Figure 6: contribution of each column (clock cycle of a trace table)."""
    x = np.asarray(x)
    _check_operands(x, np.asarray(kernel), np.asarray(y))
    plan = MaskSpec.columns(x.shape)
    return score_plan(
        x, np.asarray(kernel), np.asarray(y), plan,
        reduction=reduction, method=method, device=device, fill_value=fill_value,
        chunk_rows=chunk_rows,
    )


def row_contributions(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    reduction: str = "l2",
    device: Device | None = None,
    fill_value: float = 0.0,
    method: str = "batched",
    chunk_rows: int | None = None,
) -> np.ndarray:
    """Per-row contributions (registers of a trace table)."""
    x = np.asarray(x)
    _check_operands(x, np.asarray(kernel), np.asarray(y))
    plan = MaskSpec.rows(x.shape)
    return score_plan(
        x, np.asarray(kernel), np.asarray(y), plan,
        reduction=reduction, method=method, device=device, fill_value=fill_value,
        chunk_rows=chunk_rows,
    )


def top_k_features(scores: np.ndarray, k: int) -> list[tuple[int, ...]]:
    """Indices of the ``k`` highest-scoring features, descending.

    Ties are broken deterministically by *ascending* flat index (stable
    descending sort), so equal scores rank in reading order.  Works for
    element grids (2-D) and column/row score vectors (1-D).
    """
    scores = np.asarray(scores)
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    k = min(k, scores.size)
    # Cast before negating: unary minus wraps unsigned dtypes and is
    # unsupported for bool, both of which would corrupt the ranking.
    flat = scores.reshape(-1).astype(np.float64)
    flat_order = np.argsort(-flat, kind="stable")[:k]
    if scores.ndim == 1:
        return [(int(i),) for i in flat_order]
    return [tuple(int(v) for v in np.unravel_index(i, scores.shape)) for i in flat_order]


def normalize_scores(scores: np.ndarray) -> np.ndarray:
    """Scale scores to [0, 1] for display (heatmaps, report weights)."""
    scores = np.asarray(scores, dtype=np.float64)
    low = scores.min()
    span = scores.max() - low
    if span == 0:
        return np.zeros_like(scores)
    return (scores - low) / span
