"""The distilled model: a one-layer circular-convolution network.

Implements the paper's model specification / model computation steps
(Section III-B): the distilled model is ``X (*) K = Y``; fitting it is a
closed-form Fourier-domain solve (one "forward pass" worth of matrix
work -- the paper's headline structural claim); predicting with it is a
single circular convolution.
"""

from __future__ import annotations

import numpy as np

from repro.fft.convolution import fft_circular_convolve2d
from repro.fft.fft2d import fft2
from repro.hw.device import Device
from repro.core.transform import OutputEmbedding, _normalize_batch, frequency_solve


class NotFittedError(RuntimeError):
    """Raised when a distiller is used before :meth:`ConvolutionDistiller.fit`."""


class ConvolutionDistiller:
    """Fits and applies the convolutional distilled model.

    Parameters
    ----------
    device:
        Optional :class:`repro.hw.device.Device`; when given, all fit and
        predict arithmetic runs through it and accumulates simulated
        time.  ``None`` uses the pure-numpy fast path (identical math).
    eps:
        Wiener regularizer added to the input power spectrum.  ``0``
        reproduces the paper's Eq. 4 verbatim (and will amplify noise on
        near-singular spectra -- see ``transform.spectrum_condition``).
    embedding:
        :class:`OutputEmbedding` used to lift vector outputs onto the
        input plane; matrix outputs pass through unchanged.
    precision:
        Optional numeric mode (a name or
        :class:`~repro.hw.quantize.PrecisionSpec`) for the distilled
        model's *inference* convolutions (:meth:`predict`,
        :meth:`residual`): the input plane quantizes spatially and the
        kernel spectrum per component, exactly as the batched
        interpretation path does -- so per-pair residuals match
        wave-fused residuals bit for bit at every precision.  The
        closed-form *solve* always runs exact (int8 FFTs would destroy
        it); kernels are precision-independent.
    """

    def __init__(
        self,
        device: Device | None = None,
        eps: float = 1e-6,
        embedding: OutputEmbedding | None = None,
        precision=None,
    ) -> None:
        if eps < 0:
            raise ValueError(f"eps must be non-negative, got {eps}")
        from repro.hw.quantize import resolve_precision

        self.device = device
        self.eps = eps
        self.embedding = embedding or OutputEmbedding("spatial")
        self.precision = resolve_precision(precision)
        self._kernel: np.ndarray | None = None
        self._shape: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, inputs, outputs) -> "ConvolutionDistiller":
        """Solve for the kernel from (input, output) pairs.

        ``inputs``: one ``M x N`` matrix or a ``(B, M, N)`` batch.
        ``outputs``: matching matrices, or vectors to be embedded (one
        ``(C,)`` vector or a ``(B, C)`` batch).
        """
        x_batch = _normalize_batch(inputs, "inputs")
        shape = x_batch.shape[1:]
        y_batch = self.lift_outputs(outputs, x_batch.shape[0], shape)
        self._kernel = frequency_solve(
            x_batch, y_batch, eps=self.eps, device=self.device
        )
        self._shape = shape
        return self

    def lift_outputs(
        self,
        outputs,
        batch_size: int | None = None,
        shape: tuple[int, int] | None = None,
    ) -> np.ndarray:
        """Lift raw model outputs onto the input plane as a ``(B, M, N)`` batch.

        Matrix outputs matching ``shape`` pass through; vector outputs
        are embedded via the configured :class:`OutputEmbedding`.  After
        :meth:`fit`, ``shape`` defaults to the fitted plane -- this is
        the public hook the explanation pipeline uses to obtain the
        lifted ``Y`` plane that Eq. 5 compares masked re-runs against.
        The batch size is inferred from the outputs themselves;
        ``batch_size`` is an optional expected count to validate
        against (``fit``/``residual`` pass the input batch size).
        """
        if shape is None:
            if self._shape is None:
                raise NotFittedError(
                    "call fit() or pass an explicit shape to lift_outputs()"
                )
            shape = self._shape
        outputs = np.asarray(outputs)
        if outputs.ndim == 2 and outputs.shape == shape:
            return outputs[np.newaxis]
        if outputs.ndim == 3:
            if outputs.shape[1:] != shape or (
                batch_size is not None and outputs.shape[0] != batch_size
            ):
                expected = "" if batch_size is None else f"batch of {batch_size} "
                raise ValueError(
                    f"output batch {outputs.shape} does not align with input "
                    f"{expected}matrices of shape {shape}"
                )
            return outputs
        # Vector outputs: embed each onto the input plane.
        if outputs.ndim == 1:
            outputs = outputs[np.newaxis]
        if outputs.ndim != 2:
            raise ValueError(f"cannot interpret outputs of shape {outputs.shape}")
        if batch_size is not None and outputs.shape[0] != batch_size:
            raise ValueError(
                f"{outputs.shape[0]} output vectors for {batch_size} inputs"
            )
        return np.stack(
            [self.embedding.embed(vector, shape) for vector in outputs]
        )

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    @property
    def kernel_(self) -> np.ndarray:
        """The fitted convolution kernel ``K``."""
        if self._kernel is None:
            raise NotFittedError("call fit() before reading the kernel")
        return self._kernel

    @property
    def frequency_kernel_(self) -> np.ndarray:
        """``F(K)`` -- the kernel's spectrum (diagnostics, regularization)."""
        return fft2(self.kernel_)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """One forward pass of the distilled model: ``x (*) K``."""
        x = np.asarray(x)
        kernel = self.kernel_
        if x.shape != kernel.shape:
            raise ValueError(
                f"input shape {x.shape} does not match fitted shape {kernel.shape}"
            )
        if self.device is None:
            return fft_circular_convolve2d(x, kernel, precision=self.precision)
        result = self.device.conv2d_circular(x, kernel, precision=self.precision)
        return result

    def predict_classes(self, x: np.ndarray, classes: int) -> np.ndarray:
        """Predict and project back to a class-score vector."""
        return self.embedding.project(self.predict(x), classes)

    def residual(self, inputs, outputs) -> float:
        """Root-mean-square fit residual over the given pairs.

        The distillation-quality metric: how faithfully the one-layer
        convolution mimics the black-box model on these pairs.
        """
        x_batch = _normalize_batch(inputs, "inputs")
        y_batch = self.lift_outputs(outputs, x_batch.shape[0], x_batch.shape[1:])
        total = 0.0
        for x, y in zip(x_batch, y_batch):
            delta = self.predict(x) - y
            total += float(np.mean(np.abs(delta) ** 2))
        return float(np.sqrt(total / x_batch.shape[0]))
