"""The TPU as a :class:`~repro.hw.device.Device`: the proposed approach.

:class:`TpuBackend` is the deployment configuration the paper evaluates
as "TPU-based acceleration": a whole multi-core chip presented through
the common device interface, with

* matmuls row-sharded over the cores (block-matrix parallelism,
  Section III-D) and merged with an all-gather;
* 2-D Fourier transforms priced with the Algorithm 1 schedule
  (per-stage slowest core + reassembly collective);
* one *dispatch* round trip per launched program rather than per
  operation -- the structural advantage over the eager CPU/GPU
  baselines, and the reason the interpretation step becomes "a simple
  computation equivalent to one forward pass".

Functionally, results carry the configured MXU precision (int8
quantization or bf16 rounding) through the numeric hooks.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.core.decomposition import shard_slices
from repro.hw.device import Device
from repro.hw.interconnect import Interconnect, InterconnectConfig
from repro.hw.mxu import MxuConfig
from repro.hw.pod import TpuPod
from repro.hw.quantize import infeed_bytes_per_element, resolve_precision
from repro.hw.tpu import TpuChip, TpuChipConfig, TpuCoreConfig

COMPLEX128_BYTES = 16


def make_tpu_chip(
    num_cores: int = 128,
    precision: str = "bf16",
    mxu_rows: int = 256,
    mxu_cols: int = 256,
    **chip_kwargs,
) -> TpuChip:
    """Build a chip in the paper's configuration (TPUv2-like, 128 cores).

    ``precision`` selects the MXU numeric mode: ``int8`` for
    classification workloads (Table I), ``bf16`` for the Fourier-domain
    distillation solve (Tables II / Figure 4), ``fp32`` for validation.
    """
    core = TpuCoreConfig(
        mxu=MxuConfig(rows=mxu_rows, cols=mxu_cols, precision=precision)
    )
    return TpuChip(TpuChipConfig(num_cores=num_cores, core=core, **chip_kwargs))


def make_tpu_pod(
    num_chips: int,
    interconnect: Interconnect | InterconnectConfig | None = None,
    hbm_bytes: int | None = None,
    **chip_kwargs,
) -> TpuPod:
    """A :class:`~repro.hw.pod.TpuPod` of ``num_chips`` paper-config chips.

    Each member is an independent :class:`TpuBackend` built with
    :func:`make_tpu_chip` (``chip_kwargs`` forward there);
    ``interconnect`` prices the pod-level collectives and defaults to
    the same link model the intra-chip cores use.  ``hbm_bytes``
    overrides every member's aggregate HBM capacity -- the per-chip
    budget :meth:`repro.core.fleet.FleetSchedule.plan` constrains
    placement against.
    """
    num_chips = int(num_chips)
    if num_chips < 1:
        raise ValueError(f"a pod needs at least one chip, got {num_chips}")
    return TpuPod(
        [
            TpuBackend(make_tpu_chip(**chip_kwargs)).clone(hbm_bytes=hbm_bytes)
            if hbm_bytes is not None
            else TpuBackend(make_tpu_chip(**chip_kwargs))
            for _ in range(num_chips)
        ],
        interconnect=interconnect,
    )


class TpuBackend(Device):
    """Multi-core TPU chip behind the common device interface."""

    def __init__(self, chip: TpuChip | None = None) -> None:
        self.chip = chip or make_tpu_chip()
        super().__init__(name=f"tpu-chip-{self.chip.num_cores}c")

    def clone(self, hbm_bytes: int | None = None) -> "TpuBackend":
        """A fresh backend around an identically configured chip.

        Pod replication (:func:`repro.hw.pod.clone_device`) calls this:
        the clone shares the immutable chip config but nothing mutable
        -- its ledger, cores and event counters start clean.
        ``hbm_bytes`` overrides the clone's aggregate HBM capacity
        (split evenly across its cores), the per-chip capacity knob of
        heterogeneous pod construction.
        """
        trace = self.chip.cores[0].trace_enabled
        config = self.chip.config
        if hbm_bytes is not None:
            hbm_bytes = int(hbm_bytes)
            if hbm_bytes <= 0:
                raise ValueError(f"hbm_bytes must be positive, got {hbm_bytes}")
            config = replace(
                config,
                core=replace(
                    config.core,
                    hbm_capacity_bytes=max(1, hbm_bytes // config.num_cores),
                ),
            )
        return TpuBackend(TpuChip(config, trace=trace))

    @property
    def launch_latency_seconds(self) -> float:
        """The chip's program-dispatch round trip (the Colab host link)."""
        return self.chip.config.dispatch_latency_sec

    @property
    def hbm_capacity_bytes(self) -> int:
        """Aggregate HBM across the chip's cores (placement budget)."""
        return self.chip.num_cores * self.chip.config.core.hbm_capacity_bytes

    # ------------------------------------------------------------------
    # Cost hooks
    # ------------------------------------------------------------------
    @property
    def _core(self):
        return self.chip.cores[0]

    def matmul_seconds(self, m: int, k: int, n: int, precision=None) -> float:
        """Row-sharded matmul: slowest core plus the merge collective.

        ``precision`` reprices the per-core compute with the MXU cycle
        model in that numeric mode (int8/bf16 full rate, fp32/fp64
        reduced -- see :class:`~repro.hw.quantize.PrecisionSpec`); the
        merge collective moves the same result bytes either way.
        """
        cores = min(self.chip.num_cores, m)
        shard_rows = math.ceil(m / cores)
        compute = self._core.matmul_seconds(shard_rows, k, n, precision=precision)
        merge = self.chip.interconnect.all_gather_seconds(
            (m * n * 8) // cores, cores
        )
        return compute + merge

    def elementwise_seconds(self, elements: int, flops_per_element: float = 1.0) -> float:
        cores = self.chip.num_cores
        shard = math.ceil(elements / cores)
        return self._core.elementwise_seconds(shard, flops_per_element)

    def transfer_seconds(self, nbytes: int) -> float:
        if nbytes == 0:
            return 0.0
        return nbytes / self.chip.config.host_bandwidth_bytes_per_sec

    def fft2_seconds(self, m: int, n: int) -> float:
        """Algorithm 1 schedule: two sharded stages with reassembly.

        Stage one shards the ``m`` rows (each core multiplies its slice
        by ``W_n``); stage two shards the ``n`` columns against ``W_m``.
        Each complex product costs ``complex_matmul_real_products`` real
        MXU passes.
        """
        factor = self.complex_matmul_real_products
        payload = m * n * COMPLEX128_BYTES

        cores_rows = min(self.chip.num_cores, m)
        shard_m = shard_slices(m, cores_rows)[0]
        stage_one = factor * self._core.matmul_seconds(
            shard_m.stop - shard_m.start, n, n
        )
        stage_one += self.chip.interconnect.all_reduce_seconds(payload, cores_rows)

        cores_cols = min(self.chip.num_cores, n)
        shard_n = shard_slices(n, cores_cols)[0]
        stage_two = factor * self._core.matmul_seconds(
            m, m, shard_n.stop - shard_n.start
        )
        stage_two += self.chip.interconnect.all_reduce_seconds(payload, cores_cols)
        return stage_one + stage_two

    # ------------------------------------------------------------------
    # Numeric hooks: route through the MXU's precision mode
    # ------------------------------------------------------------------
    def _matmul_compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        product, _ = self._core.mxu.matmul(np.asarray(a), np.asarray(b))
        return product

    # ------------------------------------------------------------------
    # Convolution: host round trip per call
    # ------------------------------------------------------------------
    def conv2d_circular(self, x: np.ndarray, k: np.ndarray, precision=None) -> np.ndarray:
        """Circular convolution with an explicit host round trip.

        The interpretation loop masks features *host-side* (Eq. 5's
        ``X'`` is built in numpy), so every masked convolution is a
        separate launch: the masked plane streams in, the result streams
        back, and the launch pays the dispatch latency.  This is the
        execution model of the paper's TF/Colab stack and the reason
        measured TPU interpretation time is overhead-bound rather than
        MXU-bound.  (The distillation *solve* has no data-dependent host
        logic and runs as one fused program -- see ``program``.)

        With ``precision`` set, the masked plane streams in at the
        spec's storage width (1 byte/element for int8) instead of the
        legacy fp32 feed; numerics quantize per
        :meth:`repro.hw.device.Device.conv2d_circular`.
        """
        spec = resolve_precision(precision)
        result = super().conv2d_circular(np.asarray(x), np.asarray(k), precision=spec)
        # fp32 (or quantized-width) masked plane in, fp64 residual plane
        # out (kernel stays resident on-device across the loop).
        in_bytes = infeed_bytes_per_element(spec)
        payload = int(np.asarray(x).size * in_bytes + np.asarray(result).size * 8)
        round_trip = self.chip.config.dispatch_latency_sec + self.transfer_seconds(
            payload
        )
        self.stats.record("conv_round_trip", round_trip, bytes_moved=payload)
        return result

    # ------------------------------------------------------------------
    # Batched convolution: one compiled program for the whole mask plan
    # ------------------------------------------------------------------
    def batch_conv_seconds(self, batch: int, m: int, n: int, precision=None) -> float:
        """One fused batched program instead of ``batch`` eager op chains.

        The ``batch`` forward (and inverse) transforms share their DFT
        matrices, so each matmul-form stage lowers to one *wide* sharded
        product -- ``W_m @ [x_1 | ... | x_B]`` is an ``m x m @ m x (B n)``
        matmul, and the per-plane right-multiplications stack row-wise
        into ``(B m) x n @ n x n`` -- amortizing the per-matmul merge
        collective that dominates small per-mask launches.  The ``batch``
        Hadamard products fuse into a single wide VPU pass.

        ``precision`` prices the wide products with the MXU cycle model
        in that numeric mode (the quantized-batch axis: int8/bf16 stream
        the systolic array at full rate, fp32/fp64 at 1/4 and 1/8);
        ``None`` keeps the chip's configured MXU mode.
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        factor = self.complex_matmul_real_products
        fused_transform = factor * (
            self.matmul_seconds(m, m, batch * n, precision=precision)
            + self.matmul_seconds(batch * m, n, n, precision=precision)
        )
        hadamard = self.elementwise_seconds(batch * m * n, flops_per_element=4.0)
        return 2.0 * fused_transform + hadamard

    def kernel_spectrum_batch_seconds(
        self, batch: int, m: int, n: int, precision=None
    ) -> float:
        """One fused wide transform for a wave's ``batch`` kernel spectra.

        The pairs of a wave share the DFT matrices, so their kernel
        transforms lower to the same wide sharded products as the data
        stack (see :meth:`batch_conv_seconds`, including its
        ``precision`` repricing) instead of ``batch`` separate launches
        -- equal-shape pairs share one kernel-spectrum batch.
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        factor = self.complex_matmul_real_products
        return factor * (
            self.matmul_seconds(m, m, batch * n, precision=precision)
            + self.matmul_seconds(batch * m, n, n, precision=precision)
        )

    def _record_kernel_spectra(self, batch: int, m: int, n: int, spec=None) -> None:
        """One ``fft2_kernel_batch`` record for the fused spectrum batch."""
        factor = self.complex_matmul_real_products
        macs = factor * batch * (m * m * n + m * n * n)
        self.stats.record(
            "fft2_kernel_batch",
            self.kernel_spectrum_batch_seconds(batch, m, n, precision=spec),
            macs=macs,
        )

    def _record_batch_conv(self, batch: int, m: int, n: int, spec=None) -> None:
        """One ``conv2d_batch`` record for the fused program.

        Inside a :meth:`program` scope the batch is part of the already
        dispatched program -- masks are data-independent, so the masked
        variants are built on-device from the resident input and nothing
        crosses the host link.  Standalone calls pay one launch round
        trip for the whole plan (one dispatch, one infeed of the fp32
        batch -- at the quantized storage width when ``spec`` is set --
        one outfeed of the fp64 results) -- in contrast with the loop
        path's one round trip *per mask*.
        """
        factor = self.complex_matmul_real_products
        macs = 2 * factor * batch * (m * m * n + m * n * n)
        self.stats.record(
            "conv2d_batch", self.batch_conv_seconds(batch, m, n, precision=spec),
            macs=macs,
        )
        if not self.in_program:
            infeed_bytes = batch * m * n * infeed_bytes_per_element(spec)
            outfeed_bytes = batch * m * n * 8
            self.stats.record("dispatch", self.chip.config.dispatch_latency_sec)
            self.stats.record(
                "infeed", self.transfer_seconds(infeed_bytes), bytes_moved=infeed_bytes
            )
            self.stats.record(
                "outfeed", self.transfer_seconds(outfeed_bytes), bytes_moved=outfeed_bytes
            )

    # ------------------------------------------------------------------
    # Program scope: one dispatch per launch, not per op
    # ------------------------------------------------------------------
    def _begin_program(self, infeed_bytes: int) -> None:
        """One compiled-program launch: dispatch round trip + infeed."""
        self.stats.record("dispatch", self.chip.config.dispatch_latency_sec)
        if infeed_bytes:
            self.stats.record(
                "infeed", self.transfer_seconds(infeed_bytes), bytes_moved=infeed_bytes
            )

    def _end_program(self, outfeed_bytes: int) -> None:
        if outfeed_bytes:
            self.stats.record(
                "outfeed",
                self.transfer_seconds(outfeed_bytes),
                bytes_moved=outfeed_bytes,
            )

    def _credit_overlap(self, seconds: float) -> None:
        """Pipeline credit lands on the chip event ledger too.

        The device ledger gets the standard negative ``infeed_overlap``
        row; mirroring it as a chip event keeps the per-event audit
        trail (``chip.event_count``) able to distinguish a pipelined
        fleet run from a serial one without consulting device stats.
        """
        super()._credit_overlap(seconds)
        self.chip.infeed_overlap_seconds(seconds)

    def energy_joules(self, seconds: float) -> float:
        """Chip energy at per-core TDP across all cores."""
        return seconds * self.chip.config.core.tdp_watts * self.chip.num_cores
