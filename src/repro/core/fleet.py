"""Fleet-scale wave fusion: one batched program per scheduler wave.

The paper's second acceleration lever -- "parallel computation of
multiple inputs" (Section III-D) -- concerns *many* input-output pairs
at once.  The batched occlusion engine (:mod:`repro.core.masking`) made
each pair's mask plan a single device batch, but a fleet of N pairs
still paid one program dispatch, one infeed and one eager residual
convolution *per pair*.  This module removes that last per-pair axis:

* :class:`FleetSchedule` -- wave planning: pairs of equal plane shape
  are grouped into **waves**, each wave sized to a configurable stack
  budget (with lazy streaming, a single over-budget pair gets a wave of
  its own instead of erroring -- only a plane that cannot fit at all
  still raises :class:`~repro.core.masking.MaskStackBudgetError`);
* :class:`FleetExecutor` -- wave execution: a wave's **lazy** mask
  plans (:class:`~repro.core.masking.MaskSpec`) stream, together with
  each pair's *unmasked* residual plane, through one conceptual
  ``(sum(num_masks_i) + P, M, N)`` cross-pair stack whose rows a
  :class:`~repro.core.masking.SliceTable` maps back to
  ``(pair, feature)``; the stack is **never materialized** -- masked
  chunks of at most ``chunk_rows`` planes are generated, convolved
  (``device.conv2d_circular_batch_chunks``, per-row kernels, one
  kernel-spectrum batch shared by the wave's pairs) and reduced to
  scores on the fly, all inside **one** ``device.program`` scope per
  wave, so peak host memory is ``O(chunk_rows * M * N)`` plus one
  residual plane per pair regardless of how many masks a wave fuses.

Two cost levers stack on top of the PR-2 wave fusion:

* one dispatch round trip per *wave* instead of one per pair plus one
  per residual convolution (unchanged);
* **wave-aware infeed pipelining** (``run(pipelined=True)``, the
  default): waves execute inside a ``device.pipeline()`` scope, so wave
  ``i+1``'s dispatch + infeed streams into the spare buffer while wave
  ``i`` computes -- elapsed becomes ``infeed_0 + sum(max(compute_i +
  outfeed_i, infeed_{i+1})) + outfeed_last`` (intermediate outfeeds
  ride with their wave's compute on the full-duplex link; the last
  outfeed is charged in full) and the hidden host-link time is
  credited back as a negative ``infeed_overlap`` ledger row.
  ``pipelined=False`` preserves the PR-2 serial timing exactly (and a
  single-wave fleet times identically either way).

Scores, kernels and residuals are bit-identical to per-pair *and* to
dense non-pipelined execution: the batched FFT kernels are
plane-independent and per-row reductions plane-local, so streaming and
pipelining change only the cost ledger, never the numbers.

**Precision model.**  The executor's ``precision`` axis (default
``None`` = exact legacy execution) hands a
:class:`~repro.hw.quantize.PrecisionSpec` to the wave's single batched
convolution: every streamed chunk of masked planes -- and each pair's
residual row -- quantizes spatially with a per-plane scale, and the
wave's kernel-spectrum batch quantizes per plane and complex component,
before the Hadamard products accumulate in float64 (the MXU int8/bf16
datapath; the per-pair Eq. 4 *solves* stay exact, so kernels are
precision-independent).  Because the rounding is strictly per-plane,
wave-fused scores and residuals remain bit-identical to per-pair and
``method="loop"`` execution *at the same precision*; a quantized wave
additionally streams its infeed at the spec's storage width (1
byte/element for int8) and is priced by the MXU cycle hooks at the
spec's rate -- the accuracy-vs-speed trade-off
``benchmarks/bench_fleet_interpretation.py`` reports per precision.

**Pod sharding.**  ``num_chips=K`` (or handing a
:class:`~repro.hw.pod.TpuPod` in as the device) scales a fleet past one
chip.  Every chip owns a private :class:`~repro.hw.pod.HostLink`, so
host infeed/outfeed is *sharded*: chips stream their own bytes
concurrently and a wave's host cost is the slowest link, never the sum;
program launches are queued asynchronously on the links, so a wave pays
at most one launch round trip on the critical path however many chips
it spans.  Data moved chip-to-chip is priced on the pod's
:class:`~repro.hw.interconnect.Interconnect`.  ``placement`` picks the
sharding axis:

* ``"data"`` (default) -- the wave's *pairs* split contiguously across
  chips; each chip runs its sub-wave exactly like a single-chip wave
  (own kernel solves, own spectra batch) and feeds/drains its own pair
  shard over its own host link -- there are no fabric collectives left
  on this path;
* ``"chunk"`` -- the wave's cross-pair *row space* (every mask row plus
  every residual row) splits across chips, **overlapping the root
  solve**: chip 0 solves every pair's kernel and the wave's one
  spectrum batch while the peers -- planes already infed over their own
  links -- stream per-pair row windows (windowed
  :meth:`~repro.core.masking.MaskSpec.apply_chunks`) as each pair's
  spectrum arrives over a streamed ring broadcast
  (:meth:`~repro.hw.interconnect.Interconnect
  .broadcast_stream_seconds`); the root's own row share shrinks by
  exactly the solve time it carries, and the wave's body is the
  critical path of that solve/broadcast/stream timeline rather than a
  serial solve-then-stream sum -- the placement for a single over-wide
  plan that no pair split can balance;
* ``"wave"`` -- *whole waves* round-robin across chips: wave ``w`` runs
  on chip ``w % K`` exactly like a single-chip wave, and the chips'
  wave sequences execute concurrently -- the placement for multi-wave
  schedules (many shape groups, or ``max_pairs_per_wave`` caps) whose
  waves would otherwise serialize even on an 8-chip pod.

Per wave the pod records the remaining true collectives (for ``chunk``,
the streamed kernel-spectra broadcast) and the per-chip host-link
columns, and ``pipelined=True`` overlaps wave ``i+1``'s prologue with
wave ``i``'s compute exactly the way :meth:`~repro.hw.device
.Device.pipeline` overlaps infeed -- the hidden time comes back as the
pod's negative ``collective_overlap`` ledger row, concurrency across
chips as ``pod_compute_overlap``, and the launch round trips the
asynchronous links absorb as ``host_link_overlap`` (see
:meth:`~repro.hw.pod.TpuPod.commit_run`).  Convolution, scoring and
reduction are per-row operations, so sharded scores stay
**bit-identical** to single-chip execution at every chip count,
placement and precision.

**HBM capacity.**  Wave budgeting is capacity-constrained: the
executor's effective stack budget is ``max_stack_bytes`` clamped to the
device's modeled HBM (:attr:`~repro.hw.device
.Device.hbm_capacity_bytes`; for a pod, the smallest member chip via
:attr:`~repro.hw.pod.TpuPod.min_chip_hbm_bytes`), or to an explicit
``hbm_bytes`` override.  A tight capacity shrinks the streamed chunk
(graceful fallback); a plane too large for even one row still raises
:class:`~repro.core.masking.MaskStackBudgetError` up front (rejection).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.decomposition import shard_slices
from repro.core.distillation import ConvolutionDistiller
from repro.core.interpretation import element_scores_from_base
from repro.core.masking import (
    DEFAULT_CHUNK_ROWS,
    DEFAULT_STACK_BUDGET_BYTES,
    MaskSpec,
    REDUCTIONS,
    SliceTable,
    check_stack_budget,
    effective_chunk_rows,
    reduce_batch,
)
from repro.core.transform import OutputEmbedding
from repro.fft.convolution import fft_circular_convolve2d_chunks
from repro.hw.device import Device, DeviceStats
from repro.hw.pod import PodWaveStats, TpuPod
from repro.hw.quantize import resolve_precision
from repro.obs.tracer import tracer

#: Trace lane (tid) fleet-stage spans use on each executing device's
#: process row -- clear of the device lanes (0) and pod lanes (< 64).
_FLEET_TID = 50

GRANULARITIES = ("blocks", "columns", "rows", "elements")

PLACEMENTS = ("data", "chunk", "wave")

FLOAT_BYTES = 8  # the fused stack is materialized in float64

COMPLEX_BYTES = 16  # kernel spectra broadcast as complex128 planes


def feed_bytes(arrays, spec) -> int:
    """Host-link bytes to stream ``arrays`` at a precision's storage width.

    ``spec=None`` preserves the legacy feed (the arrays' own nbytes);
    with a spec, each real plane streams at ``bytes_per_element`` and a
    complex plane as two such component planes -- so ``fp64`` prices
    exactly like the legacy float64 feed while ``int8`` models the
    1-byte quantized infeed.
    """
    if spec is None:
        return sum(int(np.asarray(a).nbytes) for a in arrays)
    total = 0
    for a in arrays:
        a = np.asarray(a)
        planes = 2 if np.iscomplexobj(a) else 1
        total += planes * a.size * spec.bytes_per_element
    return total


def streamed_chunk_nbytes(
    plane_shape,
    chunk_rows: int | None = None,
    itemsize: int = FLOAT_BYTES,
    max_stack_bytes: int | None = None,
) -> int:
    """Bytes a streamed wave holds in flight: its chunk, not its stack.

    The chunk-adaptive planning footprint: at most ``chunk_rows``
    (default :data:`~repro.core.masking.DEFAULT_CHUNK_ROWS`) planes of
    ``M * N`` elements at ``itemsize`` bytes each -- the precision's
    storage width for a quantized infeed -- clamped so the chunk fits
    ``max_stack_bytes`` (streaming needs at least one plane in flight).
    Independent of how many pairs the wave fuses, which is exactly why
    :meth:`FleetSchedule.plan` under streaming lets waves grow past the
    conceptual dense-stack budget.
    """
    m, n = (int(v) for v in plane_shape)
    rows = int(chunk_rows) if chunk_rows is not None else DEFAULT_CHUNK_ROWS
    if rows <= 0:
        raise ValueError(f"chunk_rows must be positive, got {rows}")
    if itemsize <= 0:
        raise ValueError(f"itemsize must be positive, got {itemsize}")
    if max_stack_bytes is not None:
        rows = max(1, min(rows, max_stack_bytes // (m * n * itemsize)))
    return rows * m * n * itemsize


def check_precision_granularity(spec, granularity: str) -> None:
    """Reject lossy precisions for the ``elements`` granularity.

    The single home of the rule both interpretation entry points
    (:class:`FleetExecutor` and
    :class:`~repro.core.pipeline.ExplanationPipeline`) enforce: the
    elements granularity scores through the linearity fast path, whose
    closed form assumes exact convolution arithmetic -- per-plane
    quantization breaks it, so only exact specs (or ``None``) pass.
    """
    if spec is not None and not spec.is_exact and granularity == "elements":
        raise ValueError(
            "elements granularity scores through the linearity fast "
            "path, which per-plane quantization breaks; use blocks/"
            "columns/rows or an exact precision ('fp64'/'fp32')"
        )


@dataclass(frozen=True)
class WavePlan:
    """One wave: the pairs fused into a single batched program."""

    pair_indices: tuple[int, ...]
    plane_shape: tuple[int, int]
    num_rows: int  # mask rows plus one residual row per pair

    @property
    def num_pairs(self) -> int:
        return len(self.pair_indices)

    @property
    def stack_nbytes(self) -> int:
        """Bytes of the wave's materialized float64 stack."""
        m, n = self.plane_shape
        return self.num_rows * m * n * FLOAT_BYTES


@dataclass(frozen=True)
class FleetSchedule:
    """Wave decomposition of a fleet of pairs.

    Waves preserve pair order within each plane-shape group; pairs of
    different shapes cannot share a stack and therefore land in
    different waves (first-seen shape order).
    """

    waves: tuple[WavePlan, ...]

    @property
    def num_waves(self) -> int:
        return len(self.waves)

    @property
    def num_pairs(self) -> int:
        return sum(wave.num_pairs for wave in self.waves)

    @classmethod
    def plan(
        cls,
        plane_shapes,
        mask_counts,
        max_stack_bytes: int | None = DEFAULT_STACK_BUDGET_BYTES,
        max_pairs_per_wave: int | None = None,
        complex_flags=None,
        streaming: bool = False,
        chunk_rows: int | None = None,
        itemsize: int = FLOAT_BYTES,
        dense_budget: bool = False,
    ) -> "FleetSchedule":
        """Group pairs into budgeted waves.

        ``plane_shapes[i]`` is pair ``i``'s ``(M, N)`` plane;
        ``mask_counts[i]`` the number of masks its plan contributes (0
        for the ``elements`` fast path).  Every pair also contributes
        one residual row.  A wave closes when its byte footprint would
        pass ``max_stack_bytes`` (or its pair count
        ``max_pairs_per_wave``).  An empty fleet plans to an empty
        schedule -- the service layer's idle drain path.

        ``streaming`` selects what the footprint *is*.  ``False``
        (dense semantics, the PR-2 contract): the wave stack would be
        materialized, so the footprint is the conceptual
        ``(rows, M, N)`` float64 stack and a pair that alone exceeds
        the budget raises
        :class:`~repro.core.masking.MaskStackBudgetError` up front.
        ``True`` (the lazy executor, **chunk-adaptive budgeting**):
        execution streams at most ``chunk_rows`` planes at a time, so
        the wave's working set is its streamed chunk --
        ``chunk_rows * M * N * itemsize``, with ``itemsize`` the
        precision's storage width -- however many pairs the wave fuses.
        The chunk footprint is pair-independent, so bytes never close a
        streamed wave; waves grow to whatever the infeed pipeline can
        overlap, bounded only by ``max_pairs_per_wave`` and shape/dtype
        group boundaries.  Only a plane too large for the budget to
        hold even a single ``M x N`` float row still raises.
        ``dense_budget=True`` is the escape hatch restoring the
        historical streamed semantics: the conceptual dense stack still
        prices the wave (an over-budget pair closes the current wave
        and takes one of its own), for callers that key other host
        allocations off wave width.

        ``complex_flags[i]`` marks a pair whose convolutions are
        complex-valued.  Real and complex pairs never share a wave:
        concatenating them would upcast the real pairs' rows to
        complex128 and keep inverse-transform roundoff imaginaries that
        per-pair execution drops via ``.real`` -- breaking bit-identity
        in the last ulp.
        """
        plane_shapes = [tuple(int(v) for v in shape) for shape in plane_shapes]
        mask_counts = [int(count) for count in mask_counts]
        if len(plane_shapes) != len(mask_counts):
            raise ValueError(
                f"{len(plane_shapes)} plane shapes for {len(mask_counts)} mask counts"
            )
        if itemsize <= 0:
            raise ValueError(f"itemsize must be positive, got {itemsize}")
        if not plane_shapes:
            return cls(waves=())
        if max_pairs_per_wave is not None and max_pairs_per_wave <= 0:
            raise ValueError(
                f"max_pairs_per_wave must be positive, got {max_pairs_per_wave}"
            )
        if complex_flags is None:
            complex_flags = [False] * len(plane_shapes)
        complex_flags = [bool(flag) for flag in complex_flags]
        if len(complex_flags) != len(plane_shapes):
            raise ValueError(
                f"{len(plane_shapes)} plane shapes for "
                f"{len(complex_flags)} complex flags"
            )
        # Group pair indices by (plane shape, dtype class), first-seen order.
        groups: dict[tuple[tuple[int, int], bool], list[int]] = {}
        for index, shape in enumerate(plane_shapes):
            groups.setdefault((shape, complex_flags[index]), []).append(index)
        waves: list[WavePlan] = []
        for (shape, _), indices in groups.items():
            m, n = shape
            plane_bytes = m * n * FLOAT_BYTES
            chunk_nbytes = 0
            if streaming and not dense_budget:
                # Chunk-adaptive budgeting: what this shape group holds
                # in flight per wave -- chunk_rows planes at the
                # streamed storage width, clamped to the budget.
                chunk_nbytes = streamed_chunk_nbytes(
                    shape, chunk_rows, itemsize, max_stack_bytes
                )
            current: list[int] = []
            current_rows = 0
            for index in indices:
                pair_rows = mask_counts[index] + 1  # masks + residual plane
                if streaming:
                    # Chunked execution bounds memory by the chunk, not
                    # the pair; only a single plane must fit the budget.
                    check_stack_budget(
                        plane_bytes,
                        max_stack_bytes,
                        what=f"streamed wave chunk for pair {index} (a single plane)",
                        bool_nbytes=m * n,
                    )
                else:
                    check_stack_budget(
                        pair_rows * plane_bytes,
                        max_stack_bytes,
                        what=f"wave stack for pair {index}",
                        bool_nbytes=pair_rows * m * n,
                    )
                if streaming and not dense_budget:
                    # The wave's working set is its streamed chunk, not
                    # the conceptual dense stack -- and the chunk does
                    # not grow with the pairs fused, so bytes close the
                    # wave only in the degenerate case where even one
                    # clamped chunk overflows the budget.
                    over_budget = (
                        max_stack_bytes is not None
                        and chunk_nbytes > max_stack_bytes
                    )
                else:
                    over_budget = (
                        max_stack_bytes is not None
                        and (current_rows + pair_rows) * plane_bytes > max_stack_bytes
                    )
                over_count = (
                    max_pairs_per_wave is not None
                    and len(current) >= max_pairs_per_wave
                )
                if current and (over_budget or over_count):
                    waves.append(WavePlan(tuple(current), shape, current_rows))
                    current, current_rows = [], 0
                current.append(index)
                current_rows += pair_rows
            if current:
                waves.append(WavePlan(tuple(current), shape, current_rows))
        return cls(waves=tuple(waves))


@dataclass(frozen=True)
class PairResult:
    """Explanation artifacts for one pair of a fleet run."""

    kernel: np.ndarray
    scores: np.ndarray
    residual: float


@dataclass(frozen=True)
class FleetRun:
    """Outcome of a wave-fused fleet execution (input pair order).

    ``stats`` is populated by callers that own the device ledger for
    the whole run (e.g. ``MultiInputScheduler.explain_batch``); the
    executor itself leaves ledger harvesting to its caller.
    """

    results: tuple[PairResult, ...]
    schedule: FleetSchedule
    stats: DeviceStats | None = None

    @property
    def num_waves(self) -> int:
        return self.schedule.num_waves


class FleetExecutor:
    """Distill-then-interpret a fleet of pairs, one program per wave.

    Parameters mirror :class:`~repro.core.pipeline.ExplanationPipeline`
    (which delegates its ``fusion="wave"`` axis here): ``granularity``
    selects the mask family, ``block_shape`` the tile size for
    ``blocks``, ``eps``/``embedding`` configure the per-pair
    distillation solve, ``reduction``/``fill_value`` the Eq. 5 scoring.
    ``max_stack_bytes`` still shapes wave splitting, but under streamed
    execution it bounds the *chunk* (and must hold at least one plane;
    ``None`` disables the guard); ``max_pairs_per_wave`` optionally caps
    wave width, and ``chunk_rows`` sets how many masked planes stream
    per chunk (default
    :data:`~repro.core.masking.DEFAULT_CHUNK_ROWS`, clamped to the
    budget).  ``precision`` selects the numeric mode of each wave's
    batched convolution (see the module docstring); quantizing
    precisions reject the ``elements`` granularity, whose linearity
    fast path quantization breaks.  Wave planning is chunk-adaptive by
    default (the budget bounds the streamed chunk, so waves fuse as
    many pairs as ``max_pairs_per_wave`` allows);
    ``dense_budget=True`` restores the historical dense-stack wave
    budgeting, under which an over-budget pair closes the wave and
    takes one of its own.

    Execution per wave: one ``device.program`` scope whose infeed is
    every fused pair's data and whose outfeed is their score planes;
    inside it each pair's kernel is solved (Eq. 4), then all pairs'
    masked variants and unmasked residual planes stream through a
    single chunked batched convolution with per-row kernels -- masks
    are generated lazily (:class:`~repro.core.masking.MaskSpec`) and
    each convolved chunk is reduced to scores immediately, so neither
    the bool mask stack nor the masked float stack ever exists in
    full.  The ``elements`` granularity contributes only its residual
    row and scores through the linearity fast path, exactly as in
    per-pair execution.
    """

    def __init__(
        self,
        device: Device,
        granularity: str = "blocks",
        block_shape: tuple[int, int] | None = None,
        eps: float = 1e-6,
        embedding: OutputEmbedding | None = None,
        reduction: str = "l2",
        fill_value: float = 0.0,
        max_stack_bytes: int | None = DEFAULT_STACK_BUDGET_BYTES,
        max_pairs_per_wave: int | None = None,
        chunk_rows: int | None = None,
        precision=None,
        dense_budget: bool = False,
        num_chips: int | None = None,
        placement: str = "data",
        interconnect=None,
        hbm_bytes: int | None = None,
    ) -> None:
        if granularity not in GRANULARITIES:
            raise ValueError(
                f"unknown granularity {granularity!r}; expected one of {GRANULARITIES}"
            )
        if granularity == "blocks" and block_shape is None:
            raise ValueError("blocks granularity requires a block_shape")
        if reduction not in REDUCTIONS:
            raise ValueError(
                f"unknown reduction {reduction!r}; expected one of {REDUCTIONS}"
            )
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
            )
        self.precision = resolve_precision(precision)
        check_precision_granularity(self.precision, granularity)
        # Pod resolution: an explicit TpuPod device wins; otherwise
        # num_chips > 1 replicates the given device into a fresh pod
        # (num_chips=1/None keeps the plain single-device path, which
        # retains chip-level infeed pipelining).
        if isinstance(device, TpuPod):
            if num_chips is not None and int(num_chips) != device.num_chips:
                raise ValueError(
                    f"num_chips={num_chips} disagrees with the supplied "
                    f"{device.num_chips}-chip pod"
                )
            self.pod: TpuPod | None = device
        elif num_chips is not None and int(num_chips) > 1:
            self.pod = TpuPod.like(
                device, int(num_chips), interconnect=interconnect,
                hbm_bytes=hbm_bytes,
            )
        else:
            self.pod = None
        self.placement = placement
        self.device = self.pod if self.pod is not None else device
        if hbm_bytes is not None and int(hbm_bytes) <= 0:
            raise ValueError(f"hbm_bytes must be positive, got {hbm_bytes}")
        # The capacity knob: an explicit override, else whatever the
        # device models (a pod reports its smallest member chip).  Kept
        # separately from max_stack_bytes so schedule-time budgeting can
        # clamp to it (see effective_stack_bytes).
        self.hbm_bytes = None if hbm_bytes is None else int(hbm_bytes)
        self.granularity = granularity
        self.block_shape = block_shape
        self.eps = eps
        self.embedding = embedding or OutputEmbedding("identity")
        self.reduction = reduction
        self.fill_value = fill_value
        self.max_stack_bytes = max_stack_bytes
        self.max_pairs_per_wave = max_pairs_per_wave
        self.chunk_rows = chunk_rows
        self.dense_budget = dense_budget

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    @property
    def effective_stack_bytes(self) -> int | None:
        """The stack budget after the HBM capacity clamp.

        ``max_stack_bytes`` bounded by the modeled on-device memory: an
        explicit ``hbm_bytes`` override when given, else the device's
        own :attr:`~repro.hw.device.Device.hbm_capacity_bytes` (a pod
        reports its smallest member chip, the chip any placement
        decision must fit).  ``None`` only when neither bound exists.
        """
        capacity = self.hbm_bytes
        if capacity is None:
            capacity = self.device.hbm_capacity_bytes
        if capacity is None:
            return self.max_stack_bytes
        if self.max_stack_bytes is None:
            return capacity
        return min(self.max_stack_bytes, capacity)

    def plan_for(self, x: np.ndarray) -> MaskSpec | None:
        """The lazy mask plan this executor scores ``x`` with.

        ``None`` for the ``elements`` granularity (linearity fast path:
        only the residual row).  Public so submit-time callers -- the
        online service's micro-batcher -- can build each plane shape's
        :class:`~repro.core.masking.MaskSpec` once and hand it back to
        :meth:`run` via ``plans=`` for every request that reuses it.
        """
        if self.granularity == "elements":
            return None  # linearity fast path: only the residual row
        return MaskSpec.for_granularity(
            self.granularity, np.asarray(x).shape, block_shape=self.block_shape
        )

    def schedule(self, pairs) -> FleetSchedule:
        """Wave-plan a fleet without executing it (empty fleets plan empty)."""
        pairs = list(pairs)
        xs = [np.asarray(x) for x, _ in pairs]
        ys = [np.asarray(y) for _, y in pairs]
        plans = [self.plan_for(self._check_plane(x)) for x in xs]
        return self._schedule(xs, ys, plans)

    def _schedule(self, xs, ys, plans) -> FleetSchedule:
        return FleetSchedule.plan(
            [x.shape for x in xs],
            [0 if plan is None else plan.num_masks for plan in plans],
            max_stack_bytes=self.effective_stack_bytes,
            max_pairs_per_wave=self.max_pairs_per_wave,
            complex_flags=[
                np.iscomplexobj(x) or np.iscomplexobj(y)
                for x, y in zip(xs, ys)
            ],
            streaming=True,  # waves execute chunk-streamed, never dense
            chunk_rows=self.chunk_rows,
            itemsize=(
                FLOAT_BYTES
                if self.precision is None
                else self.precision.bytes_per_element
            ),
            dense_budget=self.dense_budget,
        )

    @staticmethod
    def _check_plane(x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"fleet pairs must be matrices, got shape {x.shape}")
        return x

    def _check_plans(self, xs, plans) -> list:
        """Validate caller-supplied plans (or build them) for ``xs``."""
        if plans is None:
            return [self.plan_for(x) for x in xs]
        plans = list(plans)
        if len(plans) != len(xs):
            raise ValueError(f"{len(plans)} plans for {len(xs)} pairs")
        for x, plan in zip(xs, plans):
            if self.granularity == "elements":
                if plan is not None:
                    raise ValueError(
                        "elements granularity takes no mask plan (the "
                        "linearity fast path scores without masks)"
                    )
                continue
            if plan is None:
                raise ValueError(
                    f"{self.granularity} granularity needs a mask plan per pair"
                )
            if tuple(plan.plane_shape) != tuple(x.shape):
                raise ValueError(
                    f"plan plane {plan.plane_shape} does not match "
                    f"pair of shape {x.shape}"
                )
        return plans

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, pairs, pipelined: bool = True, plans=None) -> FleetRun:
        """Explain every pair; returns results in input order.

        ``pipelined=True`` (the default) executes the waves inside a
        ``device.pipeline()`` scope: wave ``i+1``'s dispatch + infeed
        overlaps wave ``i``'s compute, and the hidden host-link time is
        credited back to the ledger (``infeed_overlap``), so multi-wave
        fleets finish in ``infeed_0 + sum(max(compute_i + outfeed_i,
        infeed_{i+1})) + outfeed_last`` (intermediate outfeeds riding
        with their wave's compute) instead of the serial sum.
        ``pipelined=False``
        preserves the serial PR-2 timing exactly; results, per-op
        compute records and dispatch counts are identical either way
        (a single-wave fleet also times identically).

        ``plans`` optionally hands back pre-built lazy mask plans (one
        :class:`~repro.core.masking.MaskSpec` -- or ``None`` for the
        ``elements`` fast path -- per pair, as :meth:`plan_for`
        returns): submit-time plan reuse, so a serving layer batching
        many same-shape requests builds each shape's spec once instead
        of once per dispatch.  An empty fleet returns an empty run
        (zero waves, zero simulated seconds) -- the service's idle
        drain path.
        """
        pairs = list(pairs)
        if not pairs:
            return FleetRun(results=(), schedule=FleetSchedule(waves=()))
        xs = [self._check_plane(np.asarray(x)) for x, _ in pairs]
        ys = [np.asarray(y) for _, y in pairs]
        plans = self._check_plans(xs, plans)
        schedule = self._schedule(xs, ys, plans)
        if tracer.enabled:
            pid = tracer.pid_for(self.device)
            tracer.set_thread_name(pid, _FLEET_TID, "fleet")
            tracer.instant(
                "fleet.plan", "fleet",
                tracer.origin + self.device.trace_seconds, pid, _FLEET_TID,
                {
                    "waves": schedule.num_waves,
                    "pairs": len(pairs),
                    "placement": self.placement if self.pod is not None else "single",
                    "pipelined": pipelined,
                },
            )
        results: list[PairResult | None] = [None] * len(pairs)
        if self.pod is not None:
            # Pod execution: the pod's stage model owns all cross-wave
            # overlap (pipelined=True overlaps wave i+1's collectives
            # with wave i's compute); chip-level pipeline scopes are not
            # opened, so overlap is never double-counted.
            self._run_pod(schedule, xs, ys, plans, results, pipelined)
        elif pipelined:
            with self.device.pipeline():
                for wave in schedule.waves:
                    self._run_wave(wave, xs, ys, plans, results)
        else:
            for wave in schedule.waves:
                self._run_wave(wave, xs, ys, plans, results)
        return FleetRun(results=tuple(results), schedule=schedule)

    def _wave_chunks(self, wave: WavePlan, xs, plans, rows_per_chunk: int):
        """Generate the wave's conceptual stack chunk by chunk.

        Yields ``(chunk, row_range)`` covering, for each fused pair,
        its lazily generated masked variants followed by its unmasked
        residual plane -- the same row layout the
        :class:`~repro.core.masking.SliceTable` records, without ever
        concatenating (or even holding) the full stack.
        """
        row = 0
        for i in wave.pair_indices:
            plan = plans[i]
            if plan is not None:
                base = row
                for masked, rows in plan.apply_chunks(
                    xs[i], fill_value=self.fill_value, chunk_rows=rows_per_chunk
                ):
                    yield masked, range(base + rows.start, base + rows.stop)
                row += plan.num_masks
            yield np.asarray(xs[i])[np.newaxis], range(row, row + 1)
            row += 1

    def _solve_kernels(self, device: Device, indices, xs, ys):
        """Per-pair Eq. 4 solves on ``device`` (inside a program scope)."""
        traced = tracer.enabled
        start = device.trace_seconds if traced else 0.0
        kernels: list[np.ndarray] = []
        y_planes: list[np.ndarray] = []
        for i in indices:
            distiller = ConvolutionDistiller(
                device=device, eps=self.eps, embedding=self.embedding
            )
            distiller.fit(xs[i], ys[i])
            kernels.append(distiller.kernel_)
            y_planes.append(distiller.lift_outputs(ys[i])[0])
        if traced and tracer.enabled:
            pid = tracer.pid_for(device)
            tracer.set_thread_name(pid, _FLEET_TID, "fleet")
            tracer.complete(
                "fleet.solve", "fleet", tracer.origin + start,
                device.trace_seconds - start, pid, _FLEET_TID,
                {"pairs": len(kernels)},
            )
        return kernels, y_planes

    def _assemble_results(
        self, device, indices, xs, plans, kernels, y_planes,
        mask_scores, residual_pred, results,
    ) -> None:
        """Reassembly: fold each pair's streamed scores and residual."""
        traced = tracer.enabled
        start = device.trace_seconds if traced else 0.0
        for local, i in enumerate(indices):
            pred = residual_pred[local]
            delta = pred - y_planes[local]
            residual = float(np.sqrt(np.mean(np.abs(delta) ** 2)))
            if plans[i] is None:
                scores = self._element_scores(
                    xs[i], kernels[local], y_planes[local], pred, device
                )
            else:
                scores = plans[i].reshape_scores(mask_scores[local])
            results[i] = PairResult(
                kernel=kernels[local], scores=scores, residual=residual
            )
        if traced and tracer.enabled:
            pid = tracer.pid_for(device)
            tracer.set_thread_name(pid, _FLEET_TID, "fleet")
            tracer.complete(
                "fleet.assemble", "fleet", tracer.origin + start,
                device.trace_seconds - start, pid, _FLEET_TID,
                {"pairs": len(list(indices))},
            )

    def _run_wave(
        self,
        wave: WavePlan,
        xs,
        ys,
        plans,
        results,
        device: Device | None = None,
        infeed_bytes: int | None = None,
        outfeed_bytes: int | None = None,
    ) -> None:
        """Execute one (sub-)wave as a single program on ``device``.

        The single-chip hot path, also reused verbatim by the pod's
        ``data`` placement for each chip's pair shard and by the
        ``wave`` placement for each pinned wave -- ``device`` overrides
        the executor's own device, and ``infeed_bytes`` /
        ``outfeed_bytes`` override the program's host-link charges
        (each pod chip streams exactly its own shard's bytes over its
        own :class:`~repro.hw.pod.HostLink`).
        """
        device = self.device if device is None else device
        indices = wave.pair_indices
        # Quantized waves stream their pairs at the spec's storage width
        # (fp64 reproduces the legacy float64 feed); scores stream back
        # dequantized, at full width.
        if infeed_bytes is None:
            infeed_bytes = feed_bytes(
                [a for i in indices for a in (xs[i], ys[i])], self.precision
            )
        if outfeed_bytes is None:
            outfeed_bytes = sum(xs[i].nbytes for i in indices)
        rows_per_chunk = effective_chunk_rows(
            wave.plane_shape, self.chunk_rows, self.effective_stack_bytes,
            what="streamed wave chunk",
        )
        traced = tracer.enabled
        wave_start = device.trace_seconds if traced else 0.0
        with device.program(infeed_bytes=infeed_bytes, outfeed_bytes=outfeed_bytes):
            # Per-pair Eq. 4 solves (device ops inside the wave program).
            kernels, y_planes = self._solve_kernels(device, indices, xs, ys)

            # Stream the fused cross-pair stack: masked chunks and
            # residual planes flow through one chunked batched
            # convolution; mask rows reduce to scores on the spot, and
            # only the P residual predictions are retained as planes.
            table = SliceTable.for_plans([plans[i] for i in indices])
            row_pair = table.row_pair_indices()
            row_is_mask = np.asarray([r.kind == "mask" for r in table.rows])
            convolved_chunks = device.conv2d_circular_batch_chunks(
                self._wave_chunks(wave, xs, plans, rows_per_chunk),
                np.stack(kernels),
                num_rows=len(table),
                row_kernel=row_pair,
                precision=self.precision,
            )
            mask_scores = {
                local: np.empty(plans[i].num_masks)
                for local, i in enumerate(indices)
                if plans[i] is not None
            }
            cursors = dict.fromkeys(mask_scores, 0)
            residual_pred: dict[int, np.ndarray] = {}
            for convolved, rows in convolved_chunks:
                offset = 0
                while offset < len(convolved):
                    row = rows.start + offset
                    if not row_is_mask[row]:
                        residual_pred[row_pair[row]] = convolved[offset]
                        offset += 1
                        continue
                    # Contiguous run of mask rows sharing one pair.
                    stop = offset + 1
                    while (
                        rows.start + stop < rows.stop
                        and row_is_mask[rows.start + stop]
                        and row_pair[rows.start + stop] == row_pair[row]
                    ):
                        stop += 1
                    local = int(row_pair[row])
                    deltas = y_planes[local][np.newaxis] - convolved[offset:stop]
                    cursor = cursors[local]
                    mask_scores[local][cursor : cursor + stop - offset] = reduce_batch(
                        deltas, self.reduction
                    )
                    cursors[local] = cursor + stop - offset
                    offset = stop

            self._assemble_results(
                device, indices, xs, plans, kernels, y_planes,
                mask_scores, residual_pred, results,
            )
        if traced and tracer.enabled:
            pid = tracer.pid_for(device)
            tracer.set_thread_name(pid, _FLEET_TID, "fleet")
            tracer.complete(
                "fleet.wave", "fleet", tracer.origin + wave_start,
                device.trace_seconds - wave_start, pid, _FLEET_TID,
                {"pairs": len(indices), "rows": wave.num_rows},
            )

    # ------------------------------------------------------------------
    # Pod execution: one wave sharded across K chips
    # ------------------------------------------------------------------
    def _run_pod(self, schedule, xs, ys, plans, results, pipelined: bool) -> None:
        """Drive every wave across the pod's chips and commit the ledger."""
        pod = self.pod
        wave_stats: list[PodWaveStats] = []
        for wave_index, wave in enumerate(schedule.waves):
            before = [d.stats.seconds for d in pod.devices]
            if self.placement == "chunk":
                collectives = self._run_wave_chunked(pod, wave, xs, ys, plans, results)
            elif self.placement == "wave":
                collectives = self._run_wave_on_chip(
                    pod, wave, wave_index, xs, ys, plans, results
                )
            else:
                collectives = self._run_wave_data(pod, wave, xs, ys, plans, results)
            chip_seconds = tuple(
                device.stats.seconds - start
                for device, start in zip(pod.devices, before)
            )
            wave_stats.append(
                PodWaveStats(
                    wave_index=wave_index,
                    placement=self.placement,
                    num_pairs=wave.num_pairs,
                    num_rows=wave.num_rows,
                    chip_seconds=chip_seconds,
                    **collectives,
                )
            )
        pod.commit_run(wave_stats, pipelined=pipelined)

    def _run_wave_data(self, pod, wave, xs, ys, plans, results) -> dict:
        """Data placement: the wave's pairs split contiguously across chips.

        Chip ``c`` runs an ordinary sub-wave over its pair shard
        (:meth:`_run_wave`); per-pair kernels, scores and residuals are
        plane-local, so the shard is bit-identical to the same pairs of
        a single-chip wave.  Every chip feeds and drains *its own
        shard* over its own :class:`~repro.hw.pod.HostLink` -- the
        shards stream concurrently from the host, so the wave's host
        cost is the slowest link rather than a serial chip-0 feed plus
        a fabric scatter, and there are no collectives left on this
        path (each chip's score rows return over its own link too).
        Chips beyond the wave's pair count launch nothing.
        """
        indices = wave.pair_indices
        active = min(pod.num_chips, wave.num_pairs)
        infeed_seconds = [0.0] * pod.num_chips
        outfeed_seconds = [0.0] * pod.num_chips
        for chip, pair_slice in enumerate(shard_slices(wave.num_pairs, active)):
            sub_indices = indices[pair_slice]
            sub_rows = sum(
                (plans[i].num_masks if plans[i] is not None else 0) + 1
                for i in sub_indices
            )
            shard = WavePlan(tuple(sub_indices), wave.plane_shape, sub_rows)
            shard_feed = feed_bytes(
                [a for i in sub_indices for a in (xs[i], ys[i])], self.precision
            )
            shard_out = sum(xs[i].nbytes for i in sub_indices)
            self._run_wave(
                shard, xs, ys, plans, results,
                device=pod.devices[chip],
                infeed_bytes=shard_feed,
                outfeed_bytes=shard_out,
            )
            link = pod.host_links[chip]
            infeed_seconds[chip] = link.feed_seconds(shard_feed)
            outfeed_seconds[chip] = link.feed_seconds(shard_out)
        return dict(
            active_chips=active,
            dispatch_seconds=pod.launch_latency_seconds,
            launched_chips=active,
            infeed_seconds=tuple(infeed_seconds),
            outfeed_seconds=tuple(outfeed_seconds),
        )

    def _run_wave_on_chip(
        self, pod, wave, wave_index: int, xs, ys, plans, results
    ) -> dict:
        """Wave placement: the whole wave runs on chip ``w % K``.

        Each wave is an ordinary single-chip wave -- own solves, own
        spectra, own host link for its full infeed/outfeed -- pinned
        round-robin so a multi-wave schedule's waves execute
        *concurrently across chips* instead of serially on one
        (:meth:`~repro.hw.pod.TpuPod.commit_run` groups the pinned
        stages per chip and charges the slowest chain).  No collectives
        at all: nothing is sharded, so nothing is exchanged.
        """
        chip = wave_index % pod.num_chips
        indices = wave.pair_indices
        infeed = feed_bytes(
            [a for i in indices for a in (xs[i], ys[i])], self.precision
        )
        outfeed = sum(xs[i].nbytes for i in indices)
        self._run_wave(
            wave, xs, ys, plans, results,
            device=pod.devices[chip],
            infeed_bytes=infeed,
            outfeed_bytes=outfeed,
        )
        link = pod.host_links[chip]
        infeed_seconds = [0.0] * pod.num_chips
        outfeed_seconds = [0.0] * pod.num_chips
        infeed_seconds[chip] = link.feed_seconds(infeed)
        outfeed_seconds[chip] = link.feed_seconds(outfeed)
        return dict(
            active_chips=1,
            dispatch_seconds=pod.launch_latency_seconds,
            launched_chips=1,
            infeed_seconds=tuple(infeed_seconds),
            outfeed_seconds=tuple(outfeed_seconds),
            chip_index=chip,
        )

    def _window_chunks(self, wave, xs, plans, pair_base, lo, hi, rows_per_chunk):
        """Chunks of the wave stack restricted to global rows ``[lo, hi)``.

        The windowed sibling of :meth:`_wave_chunks`: for every fused
        pair whose rows intersect the window it yields the pair's masked
        variants (via the windowed
        :meth:`~repro.core.masking.MaskSpec.apply_chunks`) and -- when
        the window covers it -- the pair's unmasked residual plane, with
        *global* row ranges.
        """
        for local, i in enumerate(wave.pair_indices):
            base = pair_base[local]
            plan = plans[i]
            num_masks = plan.num_masks if plan is not None else 0
            mask_lo = max(lo, base)
            mask_hi = min(hi, base + num_masks)
            if mask_lo < mask_hi:
                for masked, rows in plan.apply_chunks(
                    xs[i],
                    fill_value=self.fill_value,
                    chunk_rows=rows_per_chunk,
                    start=mask_lo - base,
                    stop=mask_hi - base,
                ):
                    yield masked, range(base + rows.start, base + rows.stop)
            residual_row = base + num_masks
            if lo <= residual_row < hi:
                yield np.asarray(xs[i])[np.newaxis], range(residual_row, residual_row + 1)

    def _stream_rows(
        self, device, wave, xs, plans, kernel_stack, row_pair, row_is_mask,
        pair_base, y_planes, mask_scores, residual_pred, lo, hi, rows_per_chunk,
        record: bool = True,
    ) -> None:
        """Convolve + reduce global rows ``[lo, hi)`` of a wave on one chip.

        The chunk-placement worker: kernels were solved (and their one
        spectrum batch recorded) on chip 0 and broadcast, so this chip
        records only its window's share of the batched convolution
        (:meth:`~repro.hw.device.Device._record_batch_conv`) and runs
        the functional stream directly.  Scores land at their absolute
        positions in the per-pair score vectors, so any partition of the
        row space reassembles the same arrays.  ``record=False`` skips
        the ledger row -- the overlapped placement streams one window
        per pair and prices the chip's whole row share as a single
        batched record instead of one per window.
        """
        m, n = wave.plane_shape
        local_chunks = (
            (chunk, range(rows.start - lo, rows.stop - lo))
            for chunk, rows in self._window_chunks(
                wave, xs, plans, pair_base, lo, hi, rows_per_chunk
            )
        )
        convolved_chunks = fft_circular_convolve2d_chunks(
            local_chunks,
            kernel_stack,
            row_kernel=row_pair[lo:hi],
            num_rows=hi - lo,
            precision=self.precision,
        )
        if record:
            device._record_batch_conv(hi - lo, m, n, spec=self.precision)
        for convolved, local_rows in convolved_chunks:
            offset = 0
            while offset < len(convolved):
                row = lo + local_rows.start + offset
                if not row_is_mask[row]:
                    residual_pred[int(row_pair[row])] = convolved[offset]
                    offset += 1
                    continue
                # Contiguous run of mask rows sharing one pair.
                stop = offset + 1
                while (
                    local_rows.start + stop < local_rows.stop
                    and row_is_mask[lo + local_rows.start + stop]
                    and row_pair[lo + local_rows.start + stop] == row_pair[row]
                ):
                    stop += 1
                local = int(row_pair[row])
                deltas = y_planes[local][np.newaxis] - convolved[offset:stop]
                position = row - pair_base[local]
                mask_scores[local][position : position + stop - offset] = reduce_batch(
                    deltas, self.reduction
                )
                offset = stop

    @staticmethod
    def _overlap_windows(pair_row_counts, pair_base, active: int, root_rows: int):
        """Per-pair row windows for the overlapped chunk placement.

        Every pair's rows split across all ``active`` chips (root
        first, then the peers evenly), so each chip touches *every*
        pair -- peers never sit behind a late pair's spectrum for rows
        of an early one, which is what lets their streams interleave
        with the root's solve.  ``root_rows`` is the root's solve-aware
        global share; rounding happens per pair by largest remainder,
        so the global totals track the targets within one row per pair.
        Returns ``(windows, chip_rows)``: ``windows[c][j]`` is chip
        ``c``'s global ``(lo, hi)`` window of pair ``j`` (possibly
        empty) and ``chip_rows[c]`` its total row count.
        """
        num_rows = sum(pair_row_counts)
        weights = [root_rows / num_rows]
        if active > 1:
            weights += [(1.0 - weights[0]) / (active - 1)] * (active - 1)
        windows = [[] for _ in range(active)]
        chip_rows = [0] * active
        for j, r in enumerate(pair_row_counts):
            quotas = [r * w for w in weights]
            counts = [int(q) for q in quotas]
            leftover = r - sum(counts)
            by_fraction = sorted(
                range(active), key=lambda c: (counts[c] + 1 - quotas[c], c)
            )
            for c in by_fraction[:leftover]:
                counts[c] += 1
            cursor = pair_base[j]
            for c in range(active):
                windows[c].append((cursor, cursor + counts[c]))
                cursor += counts[c]
                chip_rows[c] += counts[c]
        return windows, chip_rows

    def _chunk_timeline(
        self, pod, active: int, windows, chip_rows, conv_seconds,
        infeed_seconds, outfeed_seconds, solve_seconds: float,
        num_pairs: int, spectrum_bytes: int,
    ) -> float:
        """Critical path of the overlapped solve/broadcast/stream wave.

        A discrete per-pair timeline: the root solves the pairs'
        kernels in sequence and streams each spectrum over the ring as
        solved, so pair ``j``'s spectrum reaches the peers at the solve
        prefix plus the stream's pipeline fill plus ``j + 1`` message
        transfers; each peer -- its full-plane infeed already done over
        its own host link -- convolves its window of pair ``j`` no
        earlier than that, and the root streams its own (solve-shrunk)
        share after the solve with no broadcast wait.  The returned
        body is the slowest chip's finish including its outfeed -- what
        replaces the serial solve-then-stream sum.
        """
        config = pod.interconnect.config
        fill = (active - 1) * config.link_latency_sec
        per_message = spectrum_bytes / config.link_bandwidth_bytes_per_sec
        solve_step = solve_seconds / num_pairs if num_pairs else 0.0
        ends = []
        for chip in range(active):
            rows_total = chip_rows[chip]
            scale = conv_seconds[chip] / rows_total if rows_total else 0.0
            if chip == 0:
                end = (
                    infeed_seconds[0] + solve_seconds
                    + conv_seconds[0] + outfeed_seconds[0]
                )
            else:
                t = infeed_seconds[chip]
                for j, (lo, hi) in enumerate(windows[chip]):
                    if hi <= lo:
                        continue
                    ready = (
                        infeed_seconds[0]
                        + solve_step * (j + 1)
                        + fill
                        + per_message * (j + 1)
                    )
                    t = max(t, ready) + (hi - lo) * scale
                end = t + outfeed_seconds[chip]
            ends.append(end)
        return max(ends)

    def _run_wave_chunked(self, pod, wave, xs, ys, plans, results) -> dict:
        """Chunk placement: row sharding with the root solve overlapped.

        For a single over-wide plan (or any wave whose rows dwarf its
        pair count) the pairs cannot balance the chips, but the rows
        can.  The root launches a *solve program* -- every pair's Eq. 4
        kernel plus the wave's one recorded spectrum batch -- while
        every active chip infeeds the wave's planes over its own
        :class:`~repro.hw.pod.HostLink`; as each pair's spectrum is
        solved it streams to the peers over a pipelined ring broadcast
        (:meth:`~repro.hw.interconnect.Interconnect
        .broadcast_stream_seconds`, the wave's one remaining true
        collective), and each chip convolves + reduces its per-pair
        row windows (:meth:`_overlap_windows`), outfeeding its own
        score rows.  The root's measured solve span sets its shrunken
        row share, and the wave's body is the :meth:`_chunk_timeline`
        critical path instead of solve + stream in series.  Row
        operations are per-plane and scores land at absolute
        positions, so the reassembled arrays stay bit-identical to the
        single-chip wave.
        """
        indices = wave.pair_indices
        traced = tracer.enabled
        wave_start = pod.devices[0].trace_seconds if traced else 0.0
        table = SliceTable.for_plans([plans[i] for i in indices])
        row_pair = table.row_pair_indices()
        row_is_mask = np.asarray([r.kind == "mask" for r in table.rows])
        num_rows = len(table)
        active = min(pod.num_chips, num_rows)
        m, n = wave.plane_shape
        full_infeed = feed_bytes(
            [a for i in indices for a in (xs[i], ys[i])], self.precision
        )
        full_outfeed = sum(xs[i].nbytes for i in indices)
        rows_per_chunk = effective_chunk_rows(
            wave.plane_shape, self.chunk_rows, self.effective_stack_bytes,
            what="streamed wave chunk",
        )
        pair_base: list[int] = []
        pair_row_counts: list[int] = []
        row = 0
        for i in indices:
            pair_base.append(row)
            count = (plans[i].num_masks if plans[i] is not None else 0) + 1
            pair_row_counts.append(count)
            row += count

        # Root solve program: kernels plus the wave's one spectrum
        # batch, measured off the ledger so the row partition can
        # charge the root exactly the solve time it spends.
        root = pod.devices[0]
        launches = 1
        with root.program(infeed_bytes=full_infeed, outfeed_bytes=0):
            mark = root.stats.seconds
            kernels, y_planes = self._solve_kernels(root, indices, xs, ys)
            kernel_stack = np.stack(kernels)
            root._record_kernel_spectra(len(kernels), m, n, spec=self.precision)
            solve_seconds = root.stats.seconds - mark
        mask_scores = {
            local: np.empty(plans[i].num_masks)
            for local, i in enumerate(indices)
            if plans[i] is not None
        }
        residual_pred: dict[int, np.ndarray] = {}

        # Solve-aware root share: the root streams fewer rows so it
        # finishes level with peers that start behind the spectrum
        # stream; in the solve-starved regime its share clamps to 0.
        conv_total = root.batch_conv_seconds(num_rows, m, n, precision=self.precision)
        if active == 1:
            root_rows = num_rows
        elif conv_total <= 0:
            root_rows = num_rows // active
        else:
            per_row = conv_total / num_rows
            balanced = (num_rows * per_row - (active - 1) * solve_seconds) / (
                active * per_row
            )
            root_rows = min(num_rows, max(0, int(balanced)))
        windows, chip_rows = self._overlap_windows(
            pair_row_counts, pair_base, active, root_rows
        )
        per_chip_out = [
            int(round(full_outfeed * rows / num_rows)) for rows in chip_rows
        ]

        conv_seconds = [0.0] * active
        for chip in range(active):
            if chip_rows[chip] == 0:
                continue
            device = pod.devices[chip]
            with device.program(
                # The root's planes arrived with its solve program; the
                # peers pull the full wave over their own links.
                infeed_bytes=0 if chip == 0 else full_infeed,
                outfeed_bytes=per_chip_out[chip],
            ):
                for lo, hi in windows[chip]:
                    if hi <= lo:
                        continue
                    self._stream_rows(
                        device, wave, xs, plans, kernel_stack, row_pair,
                        row_is_mask, pair_base, y_planes, mask_scores,
                        residual_pred, lo, hi, rows_per_chunk, record=False,
                    )
                device._record_batch_conv(chip_rows[chip], m, n, spec=self.precision)
            launches += 1
            conv_seconds[chip] = device.batch_conv_seconds(
                chip_rows[chip], m, n, precision=self.precision
            )
        # Host-side reassembly on the root (complex elements pairs may
        # re-convolve eagerly there, as in single-chip execution).
        self._assemble_results(
            root, indices, xs, plans, kernels, y_planes,
            mask_scores, residual_pred, results,
        )
        spectrum_bytes = m * n * COMPLEX_BYTES
        infeed_seconds = [0.0] * pod.num_chips
        outfeed_seconds = [0.0] * pod.num_chips
        for chip in range(active):
            link = pod.host_links[chip]
            infeed_seconds[chip] = link.feed_seconds(full_infeed)
            outfeed_seconds[chip] = link.feed_seconds(per_chip_out[chip])
        gated_body = self._chunk_timeline(
            pod, active, windows, chip_rows, conv_seconds,
            infeed_seconds, outfeed_seconds, solve_seconds,
            len(indices), spectrum_bytes,
        )
        if traced and tracer.enabled:
            pid = tracer.pid_for(root)
            tracer.set_thread_name(pid, _FLEET_TID, "fleet")
            tracer.complete(
                "fleet.wave", "fleet", tracer.origin + wave_start,
                root.trace_seconds - wave_start, pid, _FLEET_TID,
                {"pairs": len(indices), "rows": num_rows, "placement": "chunk"},
            )
        return dict(
            active_chips=active,
            broadcast_seconds=pod.interconnect.broadcast_stream_seconds(
                spectrum_bytes, len(indices), active
            ),
            broadcast_bytes=len(indices) * spectrum_bytes if active > 1 else 0,
            dispatch_seconds=pod.launch_latency_seconds,
            launched_chips=launches,
            infeed_seconds=tuple(infeed_seconds),
            outfeed_seconds=tuple(outfeed_seconds),
            solve_seconds=solve_seconds,
            gated_body_seconds=gated_body,
        )

    def _element_scores(
        self,
        x: np.ndarray,
        kernel: np.ndarray,
        y_plane: np.ndarray,
        pred: np.ndarray,
        device: Device | None = None,
    ) -> np.ndarray:
        """Elements granularity: the linearity fast path's base residual.

        Per-pair execution (:func:`~repro.core.interpretation
        .feature_contributions`) casts every operand to float64 *before*
        the base convolution.  For real operands that cast is the
        identity, so the wave's fused residual row ``pred`` -- computed
        from the original operands -- doubles as the base convolution
        bit-for-bit.  For complex operands the cast is lossy (numpy
        discards the imaginary part, with a ComplexWarning), so reusing
        the complex ``pred`` would diverge from per-pair scores; the
        cast operands are re-convolved eagerly instead, exactly the
        per-pair execution and cost.
        """
        device = self.device if device is None else device
        if (
            np.iscomplexobj(x)
            or np.iscomplexobj(kernel)
            or np.iscomplexobj(y_plane)
        ):
            x64 = np.asarray(x, dtype=np.float64)
            kernel64 = np.asarray(kernel, dtype=np.float64)
            pred = device.conv2d_circular(x64, kernel64)
        else:
            x64 = np.asarray(x, dtype=np.float64)
            kernel64 = np.asarray(kernel, dtype=np.float64)
        base = np.asarray(y_plane, dtype=np.float64) - pred
        return element_scores_from_base(
            x64, kernel64, base, reduction=self.reduction, device=device
        )
