"""End-to-end explanation pipeline: the workload Table II times.

For every input-output pair the paper's interpretation step is:

1. **distill**: solve ``X (*) K = Y`` in the Fourier domain (one
   closed-form pass -- Section III-B);
2. **interpret**: compute contribution factors by re-running the
   distilled model with features masked (Eq. 5), at the granularity the
   scenario calls for (blocks for images, columns for trace tables).

:class:`ExplanationPipeline` executes exactly that against any
:class:`~repro.hw.device.Device` and reports *simulated seconds*, which
is the quantity Table II compares across CPU/GPU/TPU.  Each pair runs
inside one ``device.program(...)`` scope; with the default
``method="batched"`` the pair's masks form one
:class:`~repro.core.masking.MaskPlan` scored as a single batched
program inside that scope (the kernel spectrum computed once, no
per-mask host round trips), while ``method="loop"`` preserves the
paper's measured execution -- one launch per masked feature -- so
eager backends pay their per-op overheads and the TPU pays per-mask
round trips, the paper's structural contrast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distillation import ConvolutionDistiller
from repro.core.interpretation import feature_contributions
from repro.core.masking import METHODS, MaskPlan, score_plan
from repro.core.transform import OutputEmbedding
from repro.hw.device import Device, DeviceStats

_GRANULARITIES = ("blocks", "columns", "rows", "elements")


@dataclass(frozen=True)
class PairExplanation:
    """Explanation artifacts for one input-output pair."""

    kernel: np.ndarray
    scores: np.ndarray
    residual: float


@dataclass(frozen=True)
class InterpretationRun:
    """Outcome of interpreting a batch of pairs on one device."""

    device_name: str
    explanations: list[PairExplanation]
    simulated_seconds: float
    stats: DeviceStats

    @property
    def seconds_per_pair(self) -> float:
        return self.simulated_seconds / max(1, len(self.explanations))


class ExplanationPipeline:
    """Distill-then-interpret, timed on a device.

    Parameters
    ----------
    device:
        Any backend implementing the device interface.
    granularity:
        ``blocks`` (Figure 5 images), ``columns`` (Figure 6 trace
        tables), ``rows``, or ``elements``.
    block_shape:
        Tile size for ``blocks`` granularity.
    eps, embedding:
        Forwarded to :class:`ConvolutionDistiller`.
    method:
        ``"batched"`` (default) scores each pair's whole mask plan as
        one batched device program; ``"loop"`` re-runs one masked
        convolution per feature (the historical execution).  Scores are
        identical; only simulated cost and op ledger differ.
        For ``elements`` granularity, ``"loop"`` honors the literal
        per-element Eq. 5 loop (one convolution and, on TPU, one host
        round trip per element), while ``"batched"`` uses the linearity
        fast path: one convolution total, which strictly dominates an
        element plan whose ``(M*N, M, N)`` stack is quadratic in the
        plane size.
    """

    def __init__(
        self,
        device: Device,
        granularity: str = "blocks",
        block_shape: tuple[int, int] | None = None,
        eps: float = 1e-6,
        embedding: OutputEmbedding | None = None,
        method: str = "batched",
    ) -> None:
        if granularity not in _GRANULARITIES:
            raise ValueError(
                f"unknown granularity {granularity!r}; expected one of {_GRANULARITIES}"
            )
        if granularity == "blocks" and block_shape is None:
            raise ValueError("blocks granularity requires a block_shape")
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
        self.device = device
        self.granularity = granularity
        self.block_shape = block_shape
        self.eps = eps
        self.embedding = embedding or OutputEmbedding("identity")
        self.method = method

    def explain_pair(self, x: np.ndarray, y: np.ndarray) -> PairExplanation:
        """Distill and interpret one pair (no program scoping)."""
        distiller = ConvolutionDistiller(
            device=self.device, eps=self.eps, embedding=self.embedding
        )
        distiller.fit(x, y)
        kernel = distiller.kernel_
        y_plane = distiller.lift_outputs(y)[0]
        scores = self._score(np.asarray(x), kernel, y_plane)
        residual = distiller.residual(x, y)
        return PairExplanation(kernel=kernel, scores=scores, residual=residual)

    def _score(self, x: np.ndarray, kernel: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.granularity == "elements":
            return feature_contributions(
                x, kernel, y, device=self.device,
                method="naive" if self.method == "loop" else "fast",
            )
        plan = MaskPlan.for_granularity(
            self.granularity, x.shape, block_shape=self.block_shape
        )
        return score_plan(
            x, kernel, y, plan, method=self.method, device=self.device
        )

    def run(self, pairs) -> InterpretationRun:
        """Interpret a batch of ``(x, y)`` pairs; returns simulated timing.

        Each pair executes inside one ``device.program`` scope whose
        infeed is the pair's data and whose outfeed is the score grid;
        under the default batched method the pair's whole mask plan is
        scored inside that single program.
        """
        pairs = list(pairs)
        if not pairs:
            raise ValueError("no pairs to interpret")
        self.device.reset_stats()
        explanations: list[PairExplanation] = []
        for x, y in pairs:
            x = np.asarray(x)
            infeed = x.nbytes + np.asarray(y).nbytes
            with self.device.program(infeed_bytes=infeed, outfeed_bytes=x.nbytes):
                explanations.append(self.explain_pair(x, y))
        stats = self.device.take_stats()
        return InterpretationRun(
            device_name=self.device.name,
            explanations=explanations,
            simulated_seconds=stats.seconds,
            stats=stats,
        )
