"""End-to-end explanation pipeline: the workload Table II times.

For every input-output pair the paper's interpretation step is:

1. **distill**: solve ``X (*) K = Y`` in the Fourier domain (one
   closed-form pass -- Section III-B);
2. **interpret**: compute contribution factors by re-running the
   distilled model with features masked (Eq. 5), at the granularity the
   scenario calls for (blocks for images, columns for trace tables).

:class:`ExplanationPipeline` executes exactly that against any
:class:`~repro.hw.device.Device` and reports *simulated seconds*, the
quantity Table II compares across CPU/GPU/TPU.  Two orthogonal axes
control the execution structure:

* ``method`` -- how one pair's masks execute.  ``"batched"`` (default)
  scores the pair's whole :class:`~repro.core.masking.MaskPlan` as one
  batched program (kernel spectrum computed once, no per-mask host
  round trips); ``"loop"`` preserves the paper's measured execution --
  one launch per masked feature -- so eager backends pay their per-op
  overheads and the TPU pays per-mask round trips.
* ``fusion`` -- how *pairs* execute relative to each other.
  ``"wave"`` (default) hands the batch to the
  :class:`~repro.core.fleet.FleetExecutor`: pairs of equal plane shape
  fuse into scheduler waves, each wave scored -- mask rows *and* the
  per-pair unmasked residual planes -- by one cross-pair batched
  convolution inside one ``device.program`` scope, i.e. one dispatch
  per wave at fleet scale.  ``"pair"`` preserves the historical
  one-program-scope-per-pair execution (with its eager residual
  convolution) for equivalence tests and Table II regeneration.
  Fusion only restructures the batched method; ``method="loop"`` is
  inherently pair-at-a-time and always runs per pair.

Wave fusion is additionally *streaming* and *pipelined*: each wave's
mask stack is generated lazily and convolved in ``chunk_rows``-bounded
chunks (peak memory ``O(chunk_rows * M * N)`` however many masks the
fleet fuses), and with ``pipelined=True`` (default) wave ``i+1``'s
dispatch + infeed overlaps wave ``i``'s compute, crediting the hidden
host-link time back as a negative ``infeed_overlap`` ledger row.

A third orthogonal axis, ``precision``, selects the numeric mode of the
interpretation convolutions (``"fp64"``/``"fp32"`` exact, ``"bf16"``
rounding, ``"int8"`` per-plane symmetric quantization -- parsed by the
single :func:`repro.hw.quantize.precision_spec` entry point): masked
planes and residual rows quantize spatially, kernel spectra per complex
component, the distillation solve stays exact.  Because the rounding is
strictly per-plane, scores and residuals remain bit-identical along
method/fusion/streaming/pipelining *at the same precision* -- a
quantized wave matches a quantized loop exactly -- while the TPU cost
model prices the batched transforms with the MXU cycle hooks at the
spec's rate and the infeed at its storage width, exposing the paper's
accuracy-vs-precision trade-off at fleet scale.

Scores, kernels and residuals are bit-identical along every axis
(method, fusion, streaming, pipelining); only simulated cost and the op
ledger differ -- the paper's structural contrast, now measurable per
pair *and* per fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distillation import ConvolutionDistiller
from repro.core.fleet import (
    GRANULARITIES,
    PLACEMENTS,
    FleetExecutor,
    check_precision_granularity,
    feed_bytes,
)
from repro.hw.pod import TpuPod
from repro.core.interpretation import feature_contributions
from repro.core.masking import (
    DEFAULT_STACK_BUDGET_BYTES,
    METHODS,
    MaskPlan,
    score_plan,
)
from repro.core.transform import OutputEmbedding
from repro.hw.device import Device, DeviceStats
from repro.hw.quantize import resolve_precision

FUSIONS = ("wave", "pair")


@dataclass(frozen=True)
class PairExplanation:
    """Explanation artifacts for one input-output pair."""

    kernel: np.ndarray
    scores: np.ndarray
    residual: float


@dataclass(frozen=True)
class InterpretationRun:
    """Outcome of interpreting a batch of pairs on one device."""

    device_name: str
    explanations: list[PairExplanation]
    simulated_seconds: float
    stats: DeviceStats
    num_programs: int = 0  # program scopes opened (waves or pairs)

    @property
    def seconds_per_pair(self) -> float:
        return self.simulated_seconds / max(1, len(self.explanations))


class ExplanationPipeline:
    """Distill-then-interpret, timed on a device.

    Parameters
    ----------
    device:
        Any backend implementing the device interface.
    granularity:
        ``blocks`` (Figure 5 images), ``columns`` (Figure 6 trace
        tables), ``rows``, or ``elements``.
    block_shape:
        Tile size for ``blocks`` granularity.
    eps, embedding:
        Forwarded to :class:`ConvolutionDistiller`.
    method:
        ``"batched"`` (default) scores each pair's whole mask plan as
        one batched device program; ``"loop"`` re-runs one masked
        convolution per feature (the historical execution).  Scores are
        identical; only simulated cost and op ledger differ.
        For ``elements`` granularity, ``"loop"`` honors the literal
        per-element Eq. 5 loop (one convolution and, on TPU, one host
        round trip per element), while ``"batched"`` uses the linearity
        fast path: one convolution total, which strictly dominates an
        element plan whose ``(M*N, M, N)`` stack is quadratic in the
        plane size.
    fusion:
        ``"wave"`` (default) fuses equal-shape pairs into scheduler
        waves executed as one batched program each (see
        :mod:`repro.core.fleet`); ``"pair"`` opens one program scope
        per pair.  Only consulted for ``method="batched"``; the loop
        method always executes per pair.
    max_stack_bytes:
        Memory budget for the batched method's float stacks.  Under
        pair fusion (dense plans) exceeding it raises
        :class:`~repro.core.masking.MaskStackBudgetError` pointing at
        ``method="loop"``; under wave fusion execution *streams*
        (lazy :class:`~repro.core.masking.MaskSpec` chunks), so the
        budget bounds the per-chunk working set and wave splitting
        instead of capping plan size -- only a plane too large for the
        budget to hold one ``M x N`` float row still raises.  ``None``
        disables the guard.
    pipelined:
        Wave fusion only: ``True`` (default) double-buffers wave
        execution -- wave ``i+1``'s dispatch + infeed overlaps wave
        ``i``'s compute inside a ``device.pipeline()`` scope, the
        hidden time credited back as a negative ``infeed_overlap``
        ledger row.  ``False`` preserves serial wave timing (results
        and per-op compute records are identical either way).
    chunk_rows:
        Masked planes generated/convolved per streamed chunk under wave
        fusion (default
        :data:`~repro.core.masking.DEFAULT_CHUNK_ROWS`, clamped to the
        budget); peak streaming memory is ``O(chunk_rows * M * N)``.
    max_pairs_per_wave:
        Optional cap on pairs fused per wave (wave fusion only) --
        the lever benchmarks use to trade per-wave batch width against
        cross-wave infeed overlap.
    dense_budget:
        Wave fusion only.  ``False`` (default) plans waves
        chunk-adaptively: the byte budget bounds the streamed chunk --
        which does not grow with the pairs fused -- so waves grow to
        what the infeed pipeline can overlap.  ``True`` restores the
        historical dense-stack budgeting (an over-budget pair closes
        the wave and takes one of its own).
    precision:
        Numeric mode of the interpretation convolutions: ``"fp64"`` /
        ``"fp32"`` (exact), ``"bf16"`` or ``"int8"`` -- any name
        :func:`repro.hw.quantize.precision_spec` accepts, or a
        :class:`~repro.hw.quantize.PrecisionSpec`.  ``None`` (default)
        is the exact legacy execution with legacy cost accounting.
        Masked planes quantize per plane and kernel spectra per
        component inside the batched convolution; scores match
        ``method="loop"`` at the same precision bit for bit, streamed
        and dense.  Quantizing precisions reject the ``elements``
        granularity (its linearity fast path assumes exact arithmetic).
    num_chips, placement, interconnect, hbm_bytes:
        Pod scaling (wave fusion only): ``num_chips=K > 1`` replicates
        ``device`` into a :class:`~repro.hw.pod.TpuPod` of K clones
        (handing a ``TpuPod`` in as ``device`` works too), each with
        its own sharded :class:`~repro.hw.pod.HostLink`, and shards
        every wave across the chips along the ``placement`` axis --
        ``"data"`` splits a wave's pairs, ``"chunk"`` its row space
        (root solve overlapped), ``"wave"`` pins whole waves to chips
        round-robin (see :mod:`repro.core.fleet`).  Remaining
        collectives are priced on ``interconnect`` (default ring) and
        scores stay bit-identical to single-chip execution.
        ``hbm_bytes`` overrides each chip's modeled HBM capacity; wave
        budgeting clamps to the capacity either way.  A pod requires
        ``method="batched"`` + ``fusion="wave"``; the per-pair paths
        have no sharded execution and raise.
    """

    def __init__(
        self,
        device: Device,
        granularity: str = "blocks",
        block_shape: tuple[int, int] | None = None,
        eps: float = 1e-6,
        embedding: OutputEmbedding | None = None,
        method: str = "batched",
        fusion: str = "wave",
        max_stack_bytes: int | None = DEFAULT_STACK_BUDGET_BYTES,
        pipelined: bool = True,
        chunk_rows: int | None = None,
        max_pairs_per_wave: int | None = None,
        precision=None,
        dense_budget: bool = False,
        num_chips: int | None = None,
        placement: str = "data",
        interconnect=None,
        hbm_bytes: int | None = None,
    ) -> None:
        if granularity not in GRANULARITIES:
            raise ValueError(
                f"unknown granularity {granularity!r}; expected one of {GRANULARITIES}"
            )
        if granularity == "blocks" and block_shape is None:
            raise ValueError("blocks granularity requires a block_shape")
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
        if fusion not in FUSIONS:
            raise ValueError(f"unknown fusion {fusion!r}; expected one of {FUSIONS}")
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
            )
        self.precision = resolve_precision(precision)
        check_precision_granularity(self.precision, granularity)
        # Pod resolution happens here (once) so self.device is the pod
        # and its ledger is the run's ledger; the fleet executor then
        # recognizes the pod and shards along self.placement.
        if num_chips is not None and int(num_chips) > 1 and not isinstance(device, TpuPod):
            device = TpuPod.like(
                device, int(num_chips), interconnect=interconnect,
                hbm_bytes=hbm_bytes,
            )
        if isinstance(device, TpuPod):
            if num_chips is not None and int(num_chips) != device.num_chips:
                raise ValueError(
                    f"num_chips={num_chips} disagrees with the supplied "
                    f"{device.num_chips}-chip pod"
                )
            if method != "batched" or fusion != "wave":
                raise ValueError(
                    "pod execution requires method='batched' and "
                    "fusion='wave'; the per-pair paths have no sharded "
                    f"execution (got method={method!r}, fusion={fusion!r})"
                )
        self.placement = placement
        self.device = device
        self.granularity = granularity
        self.block_shape = block_shape
        self.eps = eps
        self.embedding = embedding or OutputEmbedding("identity")
        self.method = method
        self.fusion = fusion
        self.max_stack_bytes = max_stack_bytes
        self.pipelined = pipelined
        self.chunk_rows = chunk_rows
        self.max_pairs_per_wave = max_pairs_per_wave
        self.dense_budget = dense_budget
        self.hbm_bytes = None if hbm_bytes is None else int(hbm_bytes)

    def explain_pair(self, x: np.ndarray, y: np.ndarray) -> PairExplanation:
        """Distill and interpret one pair (no program scoping)."""
        distiller = ConvolutionDistiller(
            device=self.device, eps=self.eps, embedding=self.embedding,
            precision=self.precision,
        )
        distiller.fit(x, y)
        kernel = distiller.kernel_
        y_plane = distiller.lift_outputs(y)[0]
        scores = self._score(np.asarray(x), kernel, y_plane)
        residual = distiller.residual(x, y)
        return PairExplanation(kernel=kernel, scores=scores, residual=residual)

    def _score(self, x: np.ndarray, kernel: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.granularity == "elements":
            return feature_contributions(
                x, kernel, y, device=self.device,
                method="naive" if self.method == "loop" else "fast",
            )
        plan = MaskPlan.for_granularity(
            self.granularity, x.shape, block_shape=self.block_shape
        )
        return score_plan(
            x, kernel, y, plan, method=self.method, device=self.device,
            max_stack_bytes=self.max_stack_bytes, precision=self.precision,
        )

    def run(self, pairs) -> InterpretationRun:
        """Interpret a batch of ``(x, y)`` pairs; returns simulated timing.

        Under the default wave fusion, equal-shape pairs fuse into
        scheduler waves, each executing as one ``device.program`` scope
        whose single batched convolution scores every fused pair's mask
        plan and residual plane at once.  Under pair fusion (and always
        under ``method="loop"``) each pair executes inside its own
        program scope, exactly as the paper measures.
        """
        pairs = list(pairs)
        self.device.reset_stats()
        if not pairs:
            # Empty runs cost nothing: zero programs, zero simulated
            # seconds -- the serving layer's idle drain path.
            return InterpretationRun(
                device_name=self.device.name,
                explanations=[],
                simulated_seconds=0.0,
                stats=self.device.take_stats(),
                num_programs=0,
            )
        if self.method == "batched" and self.fusion == "wave":
            return self._run_wave(pairs)
        explanations: list[PairExplanation] = []
        for x, y in pairs:
            x = np.asarray(x)
            infeed = feed_bytes([x, np.asarray(y)], self.precision)
            with self.device.program(infeed_bytes=infeed, outfeed_bytes=x.nbytes):
                explanations.append(self.explain_pair(x, y))
        stats = self.device.take_stats()
        return InterpretationRun(
            device_name=self.device.name,
            explanations=explanations,
            simulated_seconds=stats.seconds,
            stats=stats,
            num_programs=len(pairs),
        )

    def service(self, **service_kwargs):
        """An online :class:`~repro.serve.loop.ExplanationService` sharing
        this pipeline's configuration.

        The serving-layer constructor: the returned service runs on the
        same device with the pipeline's granularity, block shape,
        precision, solve parameters and wave/streaming knobs as its
        request defaults, so an offline pipeline and its online
        counterpart produce bit-identical explanations for the same
        inputs.  ``service_kwargs`` override any of those and add the
        serving-only knobs: the static micro-batching pair
        (``max_wait_seconds``, ``max_batch_pairs``), the autopilot that
        replaces it (``controller=BatchController(...)``), dispatch
        fairness (``dispatch_policy``, ``key_weights``), caching
        (``cache_max_bytes``) and speculative warming (``warm_cache``,
        ``warm_min_gap_seconds``, ``warm_max_per_gap``), and admission
        control (``admission``, with global and per-key budgets) -- see
        :class:`repro.serve.loop.ExplanationService`.
        """
        from repro.serve.loop import ExplanationService

        config = dict(
            granularity=self.granularity,
            block_shape=self.block_shape,
            precision=self.precision,
            eps=self.eps,
            embedding=self.embedding,
            max_stack_bytes=self.max_stack_bytes,
            chunk_rows=self.chunk_rows,
            max_pairs_per_wave=self.max_pairs_per_wave,
            dense_budget=self.dense_budget,
            placement=self.placement,
            hbm_bytes=self.hbm_bytes,
        )
        config.update(service_kwargs)
        return ExplanationService(self.device, **config)

    def _run_wave(self, pairs) -> InterpretationRun:
        executor = FleetExecutor(
            self.device,
            granularity=self.granularity,
            block_shape=self.block_shape,
            eps=self.eps,
            embedding=self.embedding,
            max_stack_bytes=self.max_stack_bytes,
            max_pairs_per_wave=self.max_pairs_per_wave,
            chunk_rows=self.chunk_rows,
            precision=self.precision,
            dense_budget=self.dense_budget,
            placement=self.placement,
            hbm_bytes=self.hbm_bytes,
        )
        fleet = executor.run(pairs, pipelined=self.pipelined)
        stats = self.device.take_stats()
        explanations = [
            PairExplanation(
                kernel=result.kernel, scores=result.scores, residual=result.residual
            )
            for result in fleet.results
        ]
        return InterpretationRun(
            device_name=self.device.name,
            explanations=explanations,
            simulated_seconds=stats.seconds,
            stats=stats,
            num_programs=fleet.num_waves,
        )
