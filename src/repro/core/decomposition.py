"""Algorithm 1: data decomposition of the 2-D Fourier transform.

Section III-C observes that the 2-D DFT factors into independent 1-D
transforms: first every row, then every column of the intermediate
result.  In matmul form (Eq. 10-13) each stage is a product with a DFT
matrix, so a ``p``-core TPU can shard the work with **zero intra-stage
communication**: core ``c`` receives ``M/p`` rows (stage one) or ``N/p``
columns (stage two), multiplies its slice against the DFT matrix on its
own MXU, and the shards are reassembled between stages with one
cross-replica exchange -- the paper's ``tf.cross_replica_sum`` step.

:class:`DecomposedFourier` executes exactly that schedule against a
:class:`repro.hw.tpu.TpuChip`: every shard really runs through its
core's MXU (so precision effects are faithful) and elapsed time is the
slowest core per stage plus the reassembly collective, mirroring
Algorithm 1's structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fft.dft_matrix import dft_matrix, idft_matrix
from repro.hw.tpu import TpuChip

COMPLEX128_BYTES = 16


def shard_slices(total: int, shards: int) -> list[slice]:
    """Balanced contiguous shards: the paper's "at most max{M,N}/p" rule.

    The first ``total % shards`` shards take one extra element; shards
    beyond ``total`` come back empty (``slice(t, t)``) so callers can zip
    shards against cores uniformly.
    """
    if total <= 0:
        raise ValueError(f"cannot shard a non-positive extent ({total})")
    if shards <= 0:
        raise ValueError(f"shard count must be positive, got {shards}")
    base = total // shards
    remainder = total % shards
    slices = []
    start = 0
    for index in range(shards):
        length = base + (1 if index < remainder else 0)
        slices.append(slice(start, start + length))
        start += length
    return slices


@dataclass(frozen=True)
class StageTiming:
    """Timing of one decomposition stage (rows or columns)."""

    name: str
    per_core_seconds: tuple[float, ...]
    reassembly_seconds: float

    @property
    def compute_seconds(self) -> float:
        """Critical path: the slowest participating core."""
        return max(self.per_core_seconds) if self.per_core_seconds else 0.0

    @property
    def elapsed_seconds(self) -> float:
        return self.compute_seconds + self.reassembly_seconds


@dataclass(frozen=True)
class DecompositionReport:
    """Full schedule record of one decomposed transform."""

    shape: tuple[int, int]
    cores_used: int
    stages: tuple[StageTiming, ...] = field(default_factory=tuple)

    @property
    def elapsed_seconds(self) -> float:
        return sum(stage.elapsed_seconds for stage in self.stages)

    @property
    def compute_seconds(self) -> float:
        return sum(stage.compute_seconds for stage in self.stages)

    @property
    def communication_seconds(self) -> float:
        return sum(stage.reassembly_seconds for stage in self.stages)


class DecomposedFourier:
    """Algorithm 1 executor over a multi-core TPU chip."""

    def __init__(self, chip: TpuChip, cores: int | None = None) -> None:
        if cores is not None and not 1 <= cores <= chip.num_cores:
            raise ValueError(
                f"requested {cores} cores but the chip has {chip.num_cores}"
            )
        self.chip = chip
        self.cores_used = cores or chip.num_cores

    # ------------------------------------------------------------------
    def _stage(
        self,
        name: str,
        operand: np.ndarray,
        transform_matrix: np.ndarray,
        axis: int,
    ) -> tuple[np.ndarray, StageTiming]:
        """Run one sharded stage.

        ``axis=0``: shard rows, each core computes ``x_c @ W`` (row
        transforms).  ``axis=1``: shard columns, each core computes
        ``W @ x_c`` (column transforms).
        """
        extent = operand.shape[axis]
        cores = min(self.cores_used, extent)
        slices = shard_slices(extent, cores)
        pieces: list[np.ndarray] = []
        per_core: list[float] = []
        for core, piece_slice in zip(self.chip.cores[:cores], slices):
            before = core.stats.seconds
            if axis == 0:
                shard = operand[piece_slice, :]
                pieces.append(core.matmul(shard, transform_matrix))
            else:
                shard = operand[:, piece_slice]
                pieces.append(core.matmul(transform_matrix, shard))
            per_core.append(core.stats.seconds - before)

        merged = np.concatenate(pieces, axis=axis)
        # Reassembly: every core contributes its shard to the full
        # intermediate (the paper's cross-replica sum of partial matrices).
        reassembly = self.chip.cross_replica_sum_seconds(
            merged.size * COMPLEX128_BYTES, num_cores=cores
        )
        timing = StageTiming(
            name=name,
            per_core_seconds=tuple(per_core),
            reassembly_seconds=reassembly,
        )
        return merged, timing

    def fft2(self, x: np.ndarray) -> tuple[np.ndarray, DecompositionReport]:
        """Sharded forward 2-D DFT; returns the transform and its schedule."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"fft2 expects a matrix, got shape {x.shape}")
        m, n = x.shape
        rows_done, stage_rows = self._stage("rows", x, dft_matrix(n), axis=0)
        result, stage_cols = self._stage("columns", rows_done, dft_matrix(m), axis=1)
        report = DecompositionReport(
            shape=(m, n),
            cores_used=self.cores_used,
            stages=(stage_rows, stage_cols),
        )
        return result, report

    def ifft2(self, x: np.ndarray) -> tuple[np.ndarray, DecompositionReport]:
        """Sharded inverse 2-D DFT."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"ifft2 expects a matrix, got shape {x.shape}")
        m, n = x.shape
        rows_done, stage_rows = self._stage("rows", x, idft_matrix(n), axis=0)
        result, stage_cols = self._stage("columns", rows_done, idft_matrix(m), axis=1)
        report = DecompositionReport(
            shape=(m, n),
            cores_used=self.cores_used,
            stages=(stage_rows, stage_cols),
        )
        return result, report
