"""Parallel computation of multiple inputs (paper Section III-D).

Beyond sharding a single transform (Algorithm 1), the paper processes
*many* input-output pairs concurrently: "each input matrix is segmented
into pieces and each core obtains a slice of them... an internal table
is utilized to keep track of the distribution to guide the process of
reassembling."

This module provides that layer, organized around **waves** since the
fleet refactor: a wave is a group of equal-shape pairs fused into one
batched program (:mod:`repro.core.fleet` plans them), so multi-input
work costs one dispatch per wave rather than one per pair:

* :func:`partition_cores` -- divide the chip's cores into per-input
  groups (round-robin sharing when inputs outnumber cores);
* :class:`AssignmentTable` -- the paper's "internal table": which core
  holds which slice of which input, for reassembly and for audit (the
  cross-pair analogue is :class:`repro.core.masking.SliceTable`, which
  maps fused stack rows back to pairs);
* :class:`MultiInputScheduler` -- run a batch of 2-D transforms
  concurrently (elapsed time equal to the slowest core group, inputs
  side by side), plan scheduler waves (:meth:`~MultiInputScheduler
  .plan_waves`), and run whole wave-fused explanation fleets on the
  chip (:meth:`~MultiInputScheduler.explain_batch`);
* :func:`distill_batch` -- concurrent distillation of many pairs,
  wave-grouped so equal-shape pairs share scheduler partitions, with
  the per-group VPU (Hadamard) stage included in the elapsed/serial
  accounting;
* :func:`block_matmul_tasks` -- the block-partitioned matrix
  multiplication the paper uses for the same trick on plain matmuls.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.decomposition import DecomposedFourier, DecompositionReport, shard_slices
from repro.core.fleet import FleetExecutor, FleetRun, FleetSchedule
from repro.hw.tpu import TpuChip


def partition_cores(num_cores: int, num_inputs: int) -> list[list[int]]:
    """Assign core indices to inputs as evenly as possible.

    With more cores than inputs, groups get ``num_cores // num_inputs``
    cores (earlier groups absorb the remainder).  With more inputs than
    cores, inputs share cores round-robin (group size 1, reused).
    """
    if num_cores <= 0:
        raise ValueError(f"core count must be positive, got {num_cores}")
    if num_inputs <= 0:
        raise ValueError(f"input count must be positive, got {num_inputs}")
    if num_inputs >= num_cores:
        return [[i % num_cores] for i in range(num_inputs)]
    groups: list[list[int]] = []
    slices = shard_slices(num_cores, num_inputs)
    for piece in slices:
        groups.append(list(range(piece.start, piece.stop)))
    return groups


@dataclass(frozen=True)
class Assignment:
    """One row of the reassembly table."""

    input_index: int
    stage: str
    core_id: int
    axis: int
    extent: slice


@dataclass
class AssignmentTable:
    """The paper's 'internal table' tracking slice distribution."""

    rows: list[Assignment] = field(default_factory=list)

    def record(self, assignment: Assignment) -> None:
        self.rows.append(assignment)

    def for_input(self, input_index: int) -> list[Assignment]:
        return [row for row in self.rows if row.input_index == input_index]

    def cores_for_input(self, input_index: int) -> set[int]:
        return {row.core_id for row in self.for_input(input_index)}

    def __len__(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one parallel batch."""

    outputs: list[np.ndarray]
    reports: list[DecompositionReport]
    table: AssignmentTable
    elapsed_seconds: float

    @property
    def serial_seconds(self) -> float:
        """What the batch would cost run one input at a time."""
        return sum(report.elapsed_seconds for report in self.reports)


class MultiInputScheduler:
    """Concurrent execution of a batch of transforms on one chip.

    Each input gets a disjoint group of cores running Algorithm 1;
    groups run side by side, so batch elapsed time is the slowest
    group's, not the sum -- the paper's second acceleration lever.
    """

    def __init__(self, chip: TpuChip) -> None:
        self.chip = chip

    def _group_executor(self, core_ids: list[int]) -> DecomposedFourier:
        # A lightweight chip view exposing only the group's cores.
        view = _ChipView(self.chip, core_ids)
        return DecomposedFourier(view, cores=len(core_ids))

    def fft2_batch(self, inputs) -> BatchResult:
        """Forward-transform every input concurrently."""
        return self._run_batch(inputs, inverse=False)

    def ifft2_batch(self, inputs) -> BatchResult:
        """Inverse-transform every input concurrently."""
        return self._run_batch(inputs, inverse=True)

    def _run_batch(self, inputs, inverse: bool) -> BatchResult:
        matrices = [np.asarray(x) for x in inputs]
        if not matrices:
            raise ValueError("batch is empty")
        for x in matrices:
            if x.ndim != 2:
                raise ValueError(f"batch entries must be matrices, got shape {x.shape}")
        groups = partition_cores(self.chip.num_cores, len(matrices))
        table = AssignmentTable()
        outputs: list[np.ndarray] = []
        reports: list[DecompositionReport] = []
        group_times: list[float] = []
        for index, (x, core_ids) in enumerate(zip(matrices, groups)):
            executor = self._group_executor(core_ids)
            if inverse:
                result, report = executor.ifft2(x)
            else:
                result, report = executor.fft2(x)
            outputs.append(result)
            reports.append(report)
            group_times.append(report.elapsed_seconds)
            self._record_assignments(table, index, x, core_ids)
        # Groups execute concurrently on disjoint cores: elapsed time is
        # the slowest group.  Inputs sharing a core (batch > cores)
        # serialize within that core's group chain.
        elapsed = self._elapsed_with_sharing(groups, group_times)
        return BatchResult(
            outputs=outputs, reports=reports, table=table, elapsed_seconds=elapsed
        )

    def _record_assignments(
        self, table: AssignmentTable, index: int, x: np.ndarray, core_ids: list[int]
    ) -> None:
        m, n = x.shape
        row_slices = shard_slices(m, min(len(core_ids), m))
        for core_id, piece in zip(core_ids, row_slices):
            table.record(Assignment(index, "rows", core_id, 0, piece))
        col_slices = shard_slices(n, min(len(core_ids), n))
        for core_id, piece in zip(core_ids, col_slices):
            table.record(Assignment(index, "columns", core_id, 1, piece))

    @staticmethod
    def _elapsed_with_sharing(
        groups: list[list[int]], group_times: list[float]
    ) -> float:
        busy: dict[int, float] = {}
        for core_ids, seconds in zip(groups, group_times):
            anchor = core_ids[0]
            busy[anchor] = busy.get(anchor, 0.0) + seconds
        return max(busy.values())

    # ------------------------------------------------------------------
    # Wave-fused fleet execution (the cross-pair batching layer)
    # ------------------------------------------------------------------
    def plan_waves(
        self,
        pairs,
        granularity: str = "blocks",
        block_shape: tuple[int, int] | None = None,
        **executor_kwargs,
    ) -> FleetSchedule:
        """Wave-plan a fleet of pairs without executing it.

        Delegates to :class:`repro.core.fleet.FleetExecutor` planning:
        equal-shape pairs group into waves bounded by the stack budget.
        """
        return self._fleet_executor(
            granularity, block_shape, **executor_kwargs
        ).schedule(pairs)

    def explain_batch(
        self,
        pairs,
        granularity: str = "blocks",
        block_shape: tuple[int, int] | None = None,
        pipelined: bool = True,
        **executor_kwargs,
    ) -> FleetRun:
        """Explain a fleet of pairs on this chip, one program per wave.

        The chip is presented through the device interface
        (:class:`repro.core.backend.TpuBackend`) and handed to the
        wave-fused :class:`~repro.core.fleet.FleetExecutor`: each wave's
        lazy mask plans and residual planes stream through a single
        cross-pair chunked batched convolution, so the fleet pays one
        dispatch per wave instead of one (plus a residual round trip)
        per pair, in ``O(chunk_rows * M * N)`` host memory.
        ``pipelined`` (default ``True``) double-buffers the waves --
        wave ``i+1``'s infeed overlaps wave ``i``'s compute, the chip
        ledger crediting the hidden time as an ``infeed_overlap`` event.
        Executor options pass through ``executor_kwargs`` -- notably
        ``precision="int8"|"bf16"|"fp32"|"fp64"`` runs every wave's
        batched convolution in that numeric mode (quantized infeed and
        MXU-rate pricing, scores bit-identical to a quantized loop),
        and ``num_chips=K`` / ``placement="data"|"chunk"`` shard every
        wave across a :class:`~repro.hw.pod.TpuPod` of K clones of this
        chip with interconnect-priced collectives (scores still
        bit-identical; the run's ``stats`` are then the pod roll-up).
        The returned run carries the harvested device ledger in
        ``stats``.  An empty batch returns an empty run -- zero waves,
        zero simulated seconds, a zero ledger -- the serving layer's
        idle drain path.
        """
        executor = self._fleet_executor(
            granularity, block_shape, **executor_kwargs
        )
        executor.device.reset_stats()
        fleet = executor.run(pairs, pipelined=pipelined)
        return replace(fleet, stats=executor.device.take_stats())

    def _fleet_executor(
        self,
        granularity: str,
        block_shape: tuple[int, int] | None,
        **executor_kwargs,
    ) -> FleetExecutor:
        from repro.core.backend import TpuBackend

        return FleetExecutor(
            TpuBackend(self.chip),
            granularity=granularity,
            block_shape=block_shape,
            **executor_kwargs,
        )


class _ChipView:
    """A restricted view of a chip exposing a subset of its cores.

    Duck-types the ``TpuChip`` surface that :class:`DecomposedFourier`
    uses (``cores``, ``num_cores``, ``cross_replica_sum_seconds``) while
    charging communication to the parent chip's ledger.
    """

    def __init__(self, chip: TpuChip, core_ids: list[int]) -> None:
        if not core_ids:
            raise ValueError("a chip view needs at least one core")
        for core_id in core_ids:
            if not 0 <= core_id < chip.num_cores:
                raise ValueError(f"core id {core_id} outside chip of {chip.num_cores}")
        self._chip = chip
        self.cores = [chip.cores[i] for i in core_ids]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def cross_replica_sum_seconds(self, nbytes: int, num_cores: int | None = None) -> float:
        cores = self.num_cores if num_cores is None else num_cores
        return self._chip.cross_replica_sum_seconds(nbytes, num_cores=cores)


@dataclass(frozen=True)
class BatchDistillationResult:
    """Kernels and timing of a concurrently distilled pair batch."""

    kernels: list[np.ndarray]
    elapsed_seconds: float
    serial_seconds: float
    vpu_seconds: float = 0.0  # total Hadamard-stage time across pairs

    @property
    def parallel_speedup(self) -> float:
        if self.elapsed_seconds == 0:
            return 1.0
        return self.serial_seconds / self.elapsed_seconds


def distill_batch(pairs, chip: TpuChip, eps: float = 1e-6) -> BatchDistillationResult:
    """Distill many (X, Y) pairs concurrently on one chip (Sec III-D).

    Each pair's solve needs three 2-D transforms; the batch scheduler
    runs them with core groups side by side, so the end-to-end elapsed
    time is paced by the slowest group rather than the pair count --
    the paper's "parallel computation of multiple inputs" applied to
    the whole distillation pipeline.  Pairs are grouped into the same
    equal-shape waves the fleet executor fuses
    (:meth:`repro.core.fleet.FleetSchedule.plan`), so mixed-shape
    batches process wave by wave while each wave's pairs run side by
    side.  The Hadamard stages are elementwise (VPU) work charged to
    the first core of each pair's group; those seconds count toward
    both ``elapsed_seconds`` (anchor cores serialize their pairs' VPU
    passes, groups run concurrently) and ``serial_seconds``.
    """
    pairs = list(pairs)
    if not pairs:
        raise ValueError("no pairs to distill")
    if eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    xs = [np.asarray(x) for x, _ in pairs]
    ys = [np.asarray(y) for _, y in pairs]
    for x, y in zip(xs, ys):
        if x.shape != y.shape or x.ndim != 2:
            raise ValueError(
                f"pairs must be equal-shape matrices, got {x.shape} and {y.shape}"
            )
    scheduler = MultiInputScheduler(chip)
    # Equal-shape waves (no mask stacks here, hence no byte budget).
    schedule = FleetSchedule.plan(
        [x.shape for x in xs], [0] * len(xs), max_stack_bytes=None
    )
    kernels: list[np.ndarray | None] = [None] * len(pairs)
    elapsed = serial = vpu_total = 0.0
    for wave in schedule.waves:
        indices = wave.pair_indices
        x_batch = scheduler.fft2_batch([xs[i] for i in indices])
        y_batch = scheduler.fft2_batch([ys[i] for i in indices])

        groups = partition_cores(chip.num_cores, len(indices))
        kernel_spectra = []
        vpu_times: list[float] = []
        for x_hat, y_hat, core_ids in zip(x_batch.outputs, y_batch.outputs, groups):
            vpu_core = chip.cores[core_ids[0]]
            before = vpu_core.stats.seconds
            x_conj = vpu_core.conjugate(x_hat)
            numerator = vpu_core.hadamard(y_hat, x_conj, op="mul")
            denominator = vpu_core.hadamard(x_hat, x_conj, op="mul")
            regularized = vpu_core.hadamard(
                denominator,
                np.full(denominator.shape, eps, dtype=np.complex128),
                op="add",
            )
            kernel_spectra.append(vpu_core.hadamard(numerator, regularized, op="div"))
            vpu_times.append(vpu_core.stats.seconds - before)

        k_batch = scheduler.ifft2_batch(kernel_spectra)
        for i, kernel in zip(indices, k_batch.outputs):
            if np.isrealobj(xs[i]) and np.isrealobj(ys[i]):
                kernels[i] = np.ascontiguousarray(kernel.real)
            else:
                kernels[i] = kernel
        # VPU passes serialize on each group's anchor core; groups run
        # concurrently -- the same sharing model as the transforms.
        vpu_elapsed = MultiInputScheduler._elapsed_with_sharing(groups, vpu_times)
        elapsed += (
            x_batch.elapsed_seconds
            + y_batch.elapsed_seconds
            + k_batch.elapsed_seconds
            + vpu_elapsed
        )
        serial += (
            x_batch.serial_seconds
            + y_batch.serial_seconds
            + k_batch.serial_seconds
            + sum(vpu_times)
        )
        vpu_total += sum(vpu_times)
    return BatchDistillationResult(
        kernels=kernels,
        elapsed_seconds=elapsed,
        serial_seconds=serial,
        vpu_seconds=vpu_total,
    )


@dataclass(frozen=True)
class BlockTask:
    """One block-product task in a partitioned matmul."""

    row_block: slice
    inner_block: slice
    col_block: slice
    core_id: int


def block_matmul_tasks(
    m: int, k: int, n: int, grid: tuple[int, int], num_cores: int
) -> list[BlockTask]:
    """Partition ``(m x k) @ (k x n)`` into a grid of block products.

    The paper: "Original matrices are partitioned into small blocks,
    then by performing multiplication between blocks and merging
    afterwards, we achieve same-level of parallel computing efficiency."
    Tasks are dealt to cores round-robin; summation over the inner
    dimension happens at merge (cross-replica sum).
    """
    gm, gn = grid
    if gm <= 0 or gn <= 0:
        raise ValueError(f"grid must be positive, got {grid}")
    if num_cores <= 0:
        raise ValueError(f"core count must be positive, got {num_cores}")
    row_slices = shard_slices(m, min(gm, m))
    col_slices = shard_slices(n, min(gn, n))
    inner = slice(0, k)
    tasks = []
    core = 0
    for row_block in row_slices:
        for col_block in col_slices:
            tasks.append(BlockTask(row_block, inner, col_block, core % num_cores))
            core += 1
    return tasks


def run_block_matmul(
    a: np.ndarray, b: np.ndarray, chip: TpuChip, grid: tuple[int, int]
) -> tuple[np.ndarray, float]:
    """Execute a block-partitioned matmul across the chip's cores.

    Returns the product and the elapsed seconds (slowest core plus the
    merge collective).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"invalid operands: {a.shape} @ {b.shape}")
    m, k = a.shape
    n = b.shape[1]
    tasks = block_matmul_tasks(m, k, n, grid, chip.num_cores)
    out = np.zeros((m, n), dtype=np.result_type(a.dtype, b.dtype, np.float64))
    per_core: dict[int, float] = {}
    for task in tasks:
        core = chip.cores[task.core_id]
        before = core.stats.seconds
        out[task.row_block, task.col_block] = core.matmul(
            a[task.row_block, task.inner_block], b[task.inner_block, task.col_block]
        )
        per_core[task.core_id] = per_core.get(task.core_id, 0.0) + (
            core.stats.seconds - before
        )
    merge = chip.cross_replica_sum_seconds(out.size * out.itemsize)
    return out, max(per_core.values()) + merge
