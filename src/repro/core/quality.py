"""Explanation-quality metrics.

The paper argues its distilled explanations are *effective* (Section
IV-D) by exhibiting two qualitative successes.  This module gives the
repository a quantitative vocabulary for the same question, used by the
figure benches and the examples:

* :func:`rank_agreement` -- Spearman rank correlation between two
  explainers' score grids (do they order features the same way?);
* :func:`top_k_recall` -- fraction of planted ground-truth features
  recovered in an explainer's top-k;
* :func:`dominance_margin` -- how far the top feature towers over the
  field, the quantitative form of the paper's "significantly larger";
* :func:`deletion_curve` / :func:`deletion_auc` -- remove features in
  ranked order and track the model-output change: a *good* ranking
  front-loads the change, giving a high area under the curve.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


def _flat(scores: np.ndarray) -> np.ndarray:
    array = np.asarray(scores, dtype=np.float64).reshape(-1)
    if array.size == 0:
        raise ValueError("scores are empty")
    return array


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Average-tie ranks (1-based), matching scipy.stats.rankdata."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_values = values[order]
    index = 0
    while index < len(values):
        tie_end = index
        while (
            tie_end + 1 < len(values)
            and sorted_values[tie_end + 1] == sorted_values[index]
        ):
            tie_end += 1
        average_rank = (index + tie_end) / 2.0 + 1.0
        ranks[order[index : tie_end + 1]] = average_rank
        index = tie_end + 1
    return ranks


def rank_agreement(scores_a: np.ndarray, scores_b: np.ndarray) -> float:
    """Spearman rank correlation between two score grids, in [-1, 1]."""
    a = _flat(scores_a)
    b = _flat(scores_b)
    if a.shape != b.shape:
        raise ValueError(f"score shapes differ: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("need at least two features to correlate")
    ranks_a = _rankdata(a)
    ranks_b = _rankdata(b)
    std_a = ranks_a.std()
    std_b = ranks_b.std()
    if std_a == 0 or std_b == 0:
        return 0.0
    covariance = np.mean((ranks_a - ranks_a.mean()) * (ranks_b - ranks_b.mean()))
    return float(covariance / (std_a * std_b))


def top_k_recall(
    scores: np.ndarray, truth: Sequence[tuple[int, ...]], k: int
) -> float:
    """Fraction of ground-truth features appearing in the top-k."""
    from repro.core.interpretation import top_k_features

    if not truth:
        raise ValueError("ground-truth feature set is empty")
    top = {tuple(feature) for feature in top_k_features(np.asarray(scores), k)}
    truth_set = {tuple(int(v) for v in feature) for feature in truth}
    return len(top & truth_set) / len(truth_set)


def dominance_margin(scores: np.ndarray, exclude_adjacent: int = 0) -> float:
    """Top score over the runner-up ("significantly larger", quantified).

    For 1-D score vectors ``exclude_adjacent`` neighbours on each side
    of the winner are ignored when picking the runner-up (adjacent
    clock cycles legitimately carry reaction signal in Figure 6).
    """
    array = np.asarray(scores, dtype=np.float64)
    flat = array.reshape(-1)
    if flat.size < 2:
        raise ValueError("need at least two scores")
    winner = int(np.argmax(flat))
    field = flat.copy()
    if array.ndim == 1 and exclude_adjacent > 0:
        low = max(0, winner - exclude_adjacent)
        high = min(flat.size, winner + exclude_adjacent + 1)
        field[low:high] = -np.inf
    else:
        field[winner] = -np.inf
    runner_up = float(field.max())
    if runner_up <= 0:
        return float("inf")
    return float(flat[winner] / runner_up)


def deletion_curve(
    model: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    ranking: Sequence[tuple[int, ...]],
    fill_value: float = 0.0,
) -> np.ndarray:
    """Output change as ranked features are removed one by one.

    ``ranking`` lists features most-important-first (element tuples for
    2-D inputs, column indices as 1-tuples for per-column rankings).
    Returns the cumulative L2 output change after each deletion,
    normalized by the change when everything listed is deleted.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"expected a matrix input, got shape {x.shape}")
    if not ranking:
        raise ValueError("ranking is empty")
    baseline = np.asarray(model(x), dtype=np.float64)
    working = x.copy()
    changes = []
    for feature in ranking:
        if len(feature) == 1:
            working[:, feature[0]] = fill_value
        elif len(feature) == 2:
            working[feature] = fill_value
        else:
            raise ValueError(f"cannot interpret feature index {feature}")
        delta = np.asarray(model(working), dtype=np.float64) - baseline
        changes.append(float(np.sqrt(np.sum(delta**2))))
    final = changes[-1]
    if final == 0:
        return np.zeros(len(changes))
    return np.asarray(changes) / final


def deletion_auc(curve: np.ndarray) -> float:
    """Area under a deletion curve, in [0, 1]; higher = better ranking."""
    curve = np.asarray(curve, dtype=np.float64)
    if curve.size == 0:
        raise ValueError("curve is empty")
    return float(np.mean(curve))
