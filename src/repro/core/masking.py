"""Batched occlusion masking: the :class:`MaskPlan` abstraction.

The paper's interpretation step (Eq. 5) scores a feature set by masking
it and re-running the distilled model.  Element, block, column and row
occlusion differ *only* in which features each mask covers -- yet the
historical implementation ran four near-identical scalar loops, each
re-transforming the same kernel on every masked convolution.  This
module replaces those loops with one engine:

* :class:`MaskPlan` -- a named stack of boolean masks, shape
  ``(num_masks, M, N)``, with per-mask labels and the output-grid shape
  the flat score vector reshapes to.  Constructors cover the paper's
  granularities (:meth:`MaskPlan.elements`, :meth:`MaskPlan.blocks`,
  :meth:`MaskPlan.columns`, :meth:`MaskPlan.rows`) and arbitrary mask
  stacks (:meth:`MaskPlan.from_masks`).
* :class:`MaskSpec` -- the *lazy* form of the same four granularities:
  a compact descriptor (granularity + plane + block shape, a few ints)
  whose :meth:`MaskSpec.iter_chunks` generates ``(bool_chunk,
  row_range)`` slices on demand, so neither the ``(num_masks, M, N)``
  bool stack nor the masked float stack is ever materialized.
* :func:`score_plan` -- Eq. 5 for every mask of a plan at once.
  ``method="batched"`` convolves all masked variants through one
  batched device program, computing the kernel spectrum exactly once;
  ``method="loop"`` preserves the historical one-launch-per-mask
  execution so tests can assert the two agree and benchmarks can report
  the speedup.

Memory model: scoring a dense :class:`MaskPlan` materializes the
``(num_masks, M, N)`` float64 masked stack (8x the bool masks) and is
guarded by ``max_stack_bytes``; scoring a :class:`MaskSpec` -- or a
dense plan with ``chunk_rows`` set -- *streams*: masked variants are
generated, convolved and reduced ``chunk_rows`` planes at a time, so
peak memory is ``O(chunk_rows * M * N)`` however many masks the plan
describes, and the stack budget stops being a ceiling.  All three
executions are bit-identical (the batched FFT kernels are
plane-independent, and per-row reductions are plane-local).

Occlusion is throughput work, not latency work: the masked variants are
data-independent, so a whole plan can ship to an accelerator as one
program (one dispatch, one infeed) instead of one host round trip per
mask -- the batching-for-efficiency argument of the TPU follow-up paper
(Pan & Mishra 2021) and the XAI-efficiency survey (Chuang et al. 2023).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fft.convolution import (
    fft_circular_convolve2d,
    fft_circular_convolve2d_batch,
    fft_circular_convolve2d_chunks,
)
from repro.hw.device import Device

REDUCTIONS = ("l2", "l1", "mean_abs", "max_abs")
METHODS = ("batched", "loop")

#: Default ceiling on the float64 stack a batched scoring call may
#: materialize (4 GiB).  Dense plans past this must stream (a lazy
#: :class:`MaskSpec`, ``chunk_rows``, or ``method="loop"``) or split;
#: see :class:`MaskStackBudgetError`.
DEFAULT_STACK_BUDGET_BYTES = 4 * 1024**3

#: Mask rows generated/convolved per chunk when streaming (lazy
#: :class:`MaskSpec` scoring and streamed fleet waves).  Matches the
#: dense batch path's internal FFT chunking, so streamed and dense
#: execution share the same working-set profile.
DEFAULT_CHUNK_ROWS = 64

FLOAT64_BYTES = 8  # masked variants materialize as float64 (8x the bools)


class MaskStackBudgetError(MemoryError):
    """A mask stack would exceed the configured memory budget.

    Raised *before* materializing the ``(num_masks, M, N)`` float stack,
    instead of letting a huge allocation fail (or page) deep inside the
    batched engine.
    """


def check_stack_budget(
    nbytes: int,
    max_stack_bytes: int | None,
    what: str = "mask stack",
    bool_nbytes: int | None = None,
) -> None:
    """Raise :class:`MaskStackBudgetError` when ``nbytes`` exceeds the budget.

    ``nbytes`` must price the *float64* stack the batched path actually
    materializes -- the bool masks are 1 byte/element, but ``apply``
    blows each one up into an 8-byte float row, so budgeting the bools
    would undercount real pressure 8x.  Pass the projected bool bytes
    via ``bool_nbytes`` so the error reports both figures.
    ``max_stack_bytes=None`` disables the check (the caller opted out).
    """
    if max_stack_bytes is None or nbytes <= max_stack_bytes:
        return
    bool_note = (
        f" ({bool_nbytes} bytes of bool masks before the 8x float64 blow-up)"
        if bool_nbytes is not None
        else ""
    )
    raise MaskStackBudgetError(
        f"{what} needs {nbytes} bytes of float64{bool_note}, over the "
        f"{max_stack_bytes}-byte budget; stream it (a lazy MaskSpec or "
        "chunk_rows=), use method='loop' (one mask at a time), raise "
        "max_stack_bytes, or split the batch into smaller waves"
    )


def _check_window(start: int, stop: int | None, num_masks: int) -> tuple[int, int]:
    """Validate a ``[start, stop)`` mask-row window against a plan."""
    start = int(start)
    stop = num_masks if stop is None else int(stop)
    if not 0 <= start <= stop <= num_masks:
        raise ValueError(
            f"mask window [{start}, {stop}) does not fit a plan of "
            f"{num_masks} masks"
        )
    return start, stop


def _apply_chunks(
    plan,
    x: np.ndarray,
    fill_value: float,
    chunk_rows: int,
    start: int = 0,
    stop: int | None = None,
):
    """Shared ``apply_chunks`` body of :class:`MaskPlan` / :class:`MaskSpec`.

    Validates eagerly (a bad input shape raises at the call, not at
    first iteration), then yields masked chunks lazily.  ``start`` /
    ``stop`` restrict generation to a window of the plan's mask rows
    (global row indices are preserved in the yielded ranges) -- the
    chunk-parallel pod placement shards one plan's rows across chips
    this way.
    """
    x = np.asarray(x)
    if x.shape != plan.plane_shape:
        raise ValueError(
            f"input shape {x.shape} does not match plan plane {plan.plane_shape}"
        )
    start, stop = _check_window(start, stop, plan.num_masks)

    def _generate():
        for chunk, rows in plan.iter_chunks(chunk_rows, start=start, stop=stop):
            yield np.where(chunk, fill_value, x[np.newaxis]), rows

    return _generate()


def _reshape_scores(plan, flat_scores: np.ndarray) -> np.ndarray:
    """Shared ``reshape_scores`` body of :class:`MaskPlan` / :class:`MaskSpec`."""
    flat_scores = np.asarray(flat_scores)
    if flat_scores.shape != (plan.num_masks,):
        raise ValueError(
            f"expected {plan.num_masks} flat scores, got shape {flat_scores.shape}"
        )
    return flat_scores.reshape(plan.output_shape)


def reduce_batch(deltas: np.ndarray, reduction: str) -> np.ndarray:
    """Per-plane scalar reduction of a ``(batch, M, N)`` residual stack."""
    deltas = np.asarray(deltas)
    magnitudes = np.abs(deltas)
    if reduction == "l2":
        return np.sqrt(np.sum(magnitudes**2, axis=(-2, -1)))
    if reduction == "l1":
        return np.sum(magnitudes, axis=(-2, -1))
    if reduction == "mean_abs":
        return np.mean(magnitudes, axis=(-2, -1))
    if reduction == "max_abs":
        return np.max(magnitudes, axis=(-2, -1))
    raise ValueError(f"unknown reduction {reduction!r}; expected one of {REDUCTIONS}")


@dataclass(frozen=True, eq=False)
class MaskPlan:
    """A stack of occlusion masks scored together as one batch.

    Compared and hashed by identity (``eq=False``): the mask stack is an
    ndarray, so the generated field-tuple ``__eq__`` would raise on
    truth-testing it.

    Attributes
    ----------
    masks:
        Boolean array of shape ``(num_masks, M, N)``; ``True`` marks the
        features a mask occludes.
    granularity:
        Human-readable family name (``"elements"``, ``"blocks"``,
        ``"columns"``, ``"rows"`` or ``"custom"``).
    output_shape:
        Shape the flat per-mask score vector reshapes to -- the score
        grid of :func:`repro.core.interpretation.block_contributions`
        et al.  Its product must equal ``num_masks``.
    labels:
        One index tuple per mask naming the occluded feature (element
        coordinates, block-grid coordinates, column or row index).
    """

    masks: np.ndarray
    granularity: str = "custom"
    output_shape: tuple[int, ...] = ()
    labels: tuple[tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        masks = np.asarray(self.masks, dtype=bool)
        if masks.ndim != 3:
            raise ValueError(
                f"masks must be a (num_masks, M, N) stack, got shape {masks.shape}"
            )
        if 0 in masks.shape:
            raise ValueError("a mask plan needs at least one non-empty mask")
        object.__setattr__(self, "masks", masks)
        output_shape = tuple(self.output_shape) or (masks.shape[0],)
        if int(np.prod(output_shape)) != masks.shape[0]:
            raise ValueError(
                f"output shape {output_shape} does not hold {masks.shape[0]} scores"
            )
        object.__setattr__(self, "output_shape", output_shape)
        labels = tuple(tuple(int(v) for v in label) for label in self.labels)
        if labels and len(labels) != masks.shape[0]:
            raise ValueError(
                f"{len(labels)} labels for {masks.shape[0]} masks"
            )
        object.__setattr__(self, "labels", labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_masks(self) -> int:
        return self.masks.shape[0]

    @property
    def plane_shape(self) -> tuple[int, int]:
        return self.masks.shape[1], self.masks.shape[2]

    @property
    def nbytes(self) -> int:
        """Bytes the batched path materializes for this plan's float stack.

        The estimate prices the ``(num_masks, M, N)`` float64 stack of
        masked input variants that :func:`score_plan`'s dense batched
        method (and a fused wave containing this plan) allocates -- the
        real memory pressure, 8x the bool storage
        (:attr:`bool_nbytes`).  Compare against a budget via
        :func:`check_stack_budget` before materializing; streamed
        scoring (:class:`MaskSpec`, or ``chunk_rows``) never allocates
        either stack.
        """
        return self.bool_nbytes * FLOAT64_BYTES

    @property
    def bool_nbytes(self) -> int:
        """Bytes of the ``(num_masks, M, N)`` bool mask stack itself."""
        return self.num_masks * self.masks.shape[1] * self.masks.shape[2]

    def __len__(self) -> int:
        return self.num_masks

    # ------------------------------------------------------------------
    # Constructors, one per paper granularity
    # ------------------------------------------------------------------
    @classmethod
    def elements(cls, shape: tuple[int, int]) -> "MaskPlan":
        """One mask per input element (Eq. 5 verbatim, all features)."""
        m, n = _check_plane(shape)
        masks = np.identity(m * n, dtype=bool).reshape(m * n, m, n)
        labels = tuple((i, j) for i in range(m) for j in range(n))
        return cls(masks, granularity="elements", output_shape=(m, n), labels=labels)

    @classmethod
    def blocks(cls, shape: tuple[int, int], block_shape: tuple[int, int]) -> "MaskPlan":
        """One mask per tile of a ``block_shape`` grid (Figure 5)."""
        m, n = _check_plane(shape)
        bh, bw = block_shape
        if bh <= 0 or bw <= 0:
            raise ValueError(f"block shape must be positive, got {block_shape}")
        if m % bh or n % bw:
            raise ValueError(
                f"block shape {block_shape} does not tile input of shape {(m, n)}"
            )
        grid = (m // bh, n // bw)
        masks = np.zeros((grid[0] * grid[1], m, n), dtype=bool)
        labels = []
        for bi in range(grid[0]):
            for bj in range(grid[1]):
                masks[bi * grid[1] + bj, bi * bh : (bi + 1) * bh, bj * bw : (bj + 1) * bw] = True
                labels.append((bi, bj))
        return cls(masks, granularity="blocks", output_shape=grid, labels=tuple(labels))

    @classmethod
    def columns(cls, shape: tuple[int, int]) -> "MaskPlan":
        """One mask per column (Figure 6's trace-table clock cycles)."""
        m, n = _check_plane(shape)
        masks = np.zeros((n, m, n), dtype=bool)
        masks[np.arange(n), :, np.arange(n)] = True
        labels = tuple((j,) for j in range(n))
        return cls(masks, granularity="columns", output_shape=(n,), labels=labels)

    @classmethod
    def rows(cls, shape: tuple[int, int]) -> "MaskPlan":
        """One mask per row (registers of a trace table)."""
        m, n = _check_plane(shape)
        masks = np.zeros((m, m, n), dtype=bool)
        masks[np.arange(m), np.arange(m), :] = True
        labels = tuple((i,) for i in range(m))
        return cls(masks, granularity="rows", output_shape=(m,), labels=labels)

    @classmethod
    def from_masks(
        cls,
        masks: np.ndarray,
        labels: tuple[tuple[int, ...], ...] | None = None,
        output_shape: tuple[int, ...] | None = None,
        granularity: str = "custom",
    ) -> "MaskPlan":
        """Wrap an arbitrary mask stack (a single 2-D mask is a batch of one)."""
        masks = np.asarray(masks, dtype=bool)
        if masks.ndim == 2:
            masks = masks[np.newaxis]
        return cls(
            masks,
            granularity=granularity,
            output_shape=tuple(output_shape) if output_shape else (),
            labels=tuple(labels) if labels else (),
        )

    @classmethod
    def concat(cls, plans: "list[MaskPlan] | tuple[MaskPlan, ...]") -> "MaskPlan":
        """Fuse several equal-plane plans into one cross-pair stack.

        The result holds ``sum(num_masks_i)`` masks in plan order with a
        flat output shape; each label is the source plan's label prefixed
        with its plan index, so a fused row remains traceable to
        ``(pair, feature)``.  Wave callers pair this with a
        :class:`SliceTable` (see :meth:`SliceTable.for_plans`) to slice
        the fused score vector back apart -- the paper's "internal table"
        applied across pairs instead of across cores.
        """
        plans = list(plans)
        if not plans:
            raise ValueError("cannot concatenate zero mask plans")
        plane = plans[0].plane_shape
        for plan in plans:
            if plan.plane_shape != plane:
                raise ValueError(
                    f"cannot concatenate plans of planes {plane} and {plan.plane_shape}"
                )
        masks = np.concatenate([plan.masks for plan in plans], axis=0)
        labels = []
        for index, plan in enumerate(plans):
            plan_labels = plan.labels or tuple(
                (i,) for i in range(plan.num_masks)
            )
            labels.extend((index, *label) for label in plan_labels)
        return cls(
            masks,
            granularity="concat",
            output_shape=(masks.shape[0],),
            labels=tuple(labels),
        )

    @classmethod
    def for_granularity(
        cls,
        granularity: str,
        shape: tuple[int, int],
        block_shape: tuple[int, int] | None = None,
    ) -> "MaskPlan":
        """Dispatch constructor used by the explanation pipeline."""
        if granularity == "elements":
            return cls.elements(shape)
        if granularity == "blocks":
            if block_shape is None:
                raise ValueError("blocks granularity requires a block_shape")
            return cls.blocks(shape, block_shape)
        if granularity == "columns":
            return cls.columns(shape)
        if granularity == "rows":
            return cls.rows(shape)
        raise ValueError(
            f"unknown granularity {granularity!r}; expected one of "
            "('elements', 'blocks', 'columns', 'rows')"
        )

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, x: np.ndarray, fill_value: float = 0.0) -> np.ndarray:
        """Stack of masked input variants, shape ``(num_masks, M, N)``.

        ``fill_value`` replaces the occluded features: 0.0 is Eq. 5
        verbatim; the input mean is the occlusion-literature baseline.
        """
        x = np.asarray(x)
        if x.shape != self.plane_shape:
            raise ValueError(
                f"input shape {x.shape} does not match plan plane {self.plane_shape}"
            )
        return np.where(self.masks, fill_value, x[np.newaxis])

    def iter_chunks(
        self,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        start: int = 0,
        stop: int | None = None,
    ):
        """Yield ``(bool_chunk, row_range)`` slices of the mask stack.

        Chunks are *views* of the dense stack (no copies); the protocol
        matches :meth:`MaskSpec.iter_chunks` so streaming consumers
        (:func:`score_plan`, the fleet executor) treat dense and lazy
        plans uniformly.  ``start``/``stop`` restrict iteration to a
        window of mask rows; yielded ranges stay global.
        """
        chunk_rows = _check_chunk_rows(chunk_rows)
        start, stop = _check_window(start, stop, self.num_masks)
        for lo in range(start, stop, chunk_rows):
            hi = min(lo + chunk_rows, stop)
            yield self.masks[lo:hi], range(lo, hi)

    def apply_chunks(
        self,
        x: np.ndarray,
        fill_value: float = 0.0,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        start: int = 0,
        stop: int | None = None,
    ):
        """Yield ``(masked_chunk, row_range)`` without the full float stack.

        The streamed form of :meth:`apply`: each chunk holds at most
        ``chunk_rows`` masked input variants, so peak float memory is
        ``O(chunk_rows * M * N)`` instead of ``O(num_masks * M * N)``.
        Values are bit-identical to the corresponding :meth:`apply`
        rows -- including under a ``[start, stop)`` row window, which
        yields exactly the same chunks the full iteration produces for
        those rows (chunk boundaries realign to the window).
        """
        return _apply_chunks(self, x, fill_value, chunk_rows, start=start, stop=stop)

    def reshape_scores(self, flat_scores: np.ndarray) -> np.ndarray:
        """Fold the flat per-mask score vector into the output grid."""
        return _reshape_scores(self, flat_scores)


def _check_plane(shape: tuple[int, int]) -> tuple[int, int]:
    m, n = shape
    if m <= 0 or n <= 0:
        raise ValueError(f"plane shape must be positive, got {shape}")
    return int(m), int(n)


def _check_chunk_rows(chunk_rows: int) -> int:
    chunk_rows = int(chunk_rows)
    if chunk_rows <= 0:
        raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
    return chunk_rows


@dataclass(frozen=True)
class MaskSpec:
    """A lazy mask plan: the four paper granularities as a descriptor.

    Where :class:`MaskPlan` *stores* a ``(num_masks, M, N)`` bool stack,
    a spec stores only ``(granularity, plane_shape, block_shape)`` -- a
    few ints -- and *generates* mask rows on demand through
    :meth:`iter_chunks`.  Element, block, column and row occlusion are
    all structured (mask ``i`` is a deterministic function of ``i``), so
    nothing about the stack needs to exist ahead of time; a plan whose
    dense stack would blow the memory budget streams instead.

    The scoring-facing surface mirrors :class:`MaskPlan` exactly
    (``num_masks``, ``plane_shape``, ``output_shape``, ``labels``,
    ``nbytes``/``bool_nbytes`` -- *projected*, nothing allocated --
    ``reshape_scores``, ``iter_chunks``, ``apply_chunks``), so
    :func:`score_plan` and the fleet executor accept either; chunks are
    bit-identical to the corresponding dense rows
    (:meth:`materialize` returns the equivalent :class:`MaskPlan`,
    asserted by tests).
    """

    granularity: str
    plane_shape: tuple[int, int]
    block_shape: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        m, n = _check_plane(self.plane_shape)
        object.__setattr__(self, "plane_shape", (m, n))
        if self.granularity not in ("elements", "blocks", "columns", "rows"):
            raise ValueError(
                f"unknown granularity {self.granularity!r}; expected one of "
                "('elements', 'blocks', 'columns', 'rows')"
            )
        if self.granularity == "blocks":
            if self.block_shape is None:
                raise ValueError("blocks granularity requires a block_shape")
            bh, bw = (int(v) for v in self.block_shape)
            if bh <= 0 or bw <= 0:
                raise ValueError(
                    f"block shape must be positive, got {self.block_shape}"
                )
            if m % bh or n % bw:
                raise ValueError(
                    f"block shape {(bh, bw)} does not tile input of shape {(m, n)}"
                )
            object.__setattr__(self, "block_shape", (bh, bw))
        elif self.block_shape is not None:
            raise ValueError(
                f"{self.granularity} granularity takes no block_shape"
            )

    # ------------------------------------------------------------------
    # Constructors, mirroring MaskPlan's
    # ------------------------------------------------------------------
    @classmethod
    def elements(cls, shape: tuple[int, int]) -> "MaskSpec":
        return cls("elements", tuple(shape))

    @classmethod
    def blocks(cls, shape: tuple[int, int], block_shape: tuple[int, int]) -> "MaskSpec":
        return cls("blocks", tuple(shape), tuple(block_shape))

    @classmethod
    def columns(cls, shape: tuple[int, int]) -> "MaskSpec":
        return cls("columns", tuple(shape))

    @classmethod
    def rows(cls, shape: tuple[int, int]) -> "MaskSpec":
        return cls("rows", tuple(shape))

    @classmethod
    def for_granularity(
        cls,
        granularity: str,
        shape: tuple[int, int],
        block_shape: tuple[int, int] | None = None,
    ) -> "MaskSpec":
        """Dispatch constructor used by the explanation pipeline."""
        if granularity == "blocks":
            if block_shape is None:
                raise ValueError("blocks granularity requires a block_shape")
            return cls.blocks(shape, block_shape)
        return cls(granularity, tuple(shape))

    # ------------------------------------------------------------------
    # Introspection (projected -- nothing is allocated)
    # ------------------------------------------------------------------
    @property
    def _grid(self) -> tuple[int, int]:
        bh, bw = self.block_shape
        return self.plane_shape[0] // bh, self.plane_shape[1] // bw

    @property
    def num_masks(self) -> int:
        m, n = self.plane_shape
        if self.granularity == "elements":
            return m * n
        if self.granularity == "blocks":
            grid = self._grid
            return grid[0] * grid[1]
        if self.granularity == "columns":
            return n
        return m

    @property
    def output_shape(self) -> tuple[int, ...]:
        m, n = self.plane_shape
        if self.granularity == "elements":
            return (m, n)
        if self.granularity == "blocks":
            return self._grid
        if self.granularity == "columns":
            return (n,)
        return (m,)

    @property
    def labels(self) -> tuple[tuple[int, ...], ...]:
        m, n = self.plane_shape
        if self.granularity == "elements":
            return tuple((i, j) for i in range(m) for j in range(n))
        if self.granularity == "blocks":
            gh, gw = self._grid
            return tuple((bi, bj) for bi in range(gh) for bj in range(gw))
        if self.granularity == "columns":
            return tuple((j,) for j in range(n))
        return tuple((i,) for i in range(m))

    @property
    def nbytes(self) -> int:
        """Projected float64 stack bytes, were this spec materialized."""
        return self.bool_nbytes * FLOAT64_BYTES

    @property
    def bool_nbytes(self) -> int:
        """Projected bool stack bytes, were this spec materialized."""
        m, n = self.plane_shape
        return self.num_masks * m * n

    def __len__(self) -> int:
        return self.num_masks

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def iter_chunks(
        self,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        start: int = 0,
        stop: int | None = None,
    ):
        """Yield ``(bool_chunk, row_range)`` slices, generated on demand.

        Each chunk is a freshly built ``(rows, M, N)`` bool array
        covering masks ``row_range`` of the conceptual stack --
        bit-identical to the same rows of the dense
        :class:`MaskPlan` constructor -- so peak mask memory is
        ``O(chunk_rows * M * N)`` however many masks the spec
        describes.  ``start``/``stop`` generate only a window of rows
        (mask ``i`` is a deterministic function of ``i``, so a window
        costs only its own rows); yielded ranges stay global.
        """
        chunk_rows = _check_chunk_rows(chunk_rows)
        m, n = self.plane_shape
        window_start, window_stop = _check_window(start, stop, self.num_masks)
        for lo in range(window_start, window_stop, chunk_rows):
            hi = min(lo + chunk_rows, window_stop)
            count = hi - lo
            chunk = np.zeros((count, m, n), dtype=bool)
            local = np.arange(count)
            index = np.arange(lo, hi)
            if self.granularity == "elements":
                chunk[local, index // n, index % n] = True
            elif self.granularity == "blocks":
                bh, bw = self.block_shape
                gw = self._grid[1]
                for offset, block in enumerate(index):
                    bi, bj = divmod(int(block), gw)
                    chunk[
                        offset, bi * bh : (bi + 1) * bh, bj * bw : (bj + 1) * bw
                    ] = True
            elif self.granularity == "columns":
                chunk[local, :, index] = True
            else:  # rows
                chunk[local, index, :] = True
            yield chunk, range(lo, hi)

    def apply_chunks(
        self,
        x: np.ndarray,
        fill_value: float = 0.0,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        start: int = 0,
        stop: int | None = None,
    ):
        """Yield ``(masked_chunk, row_range)``: the streamed :meth:`MaskPlan.apply`.

        ``start``/``stop`` window the generated mask rows exactly as in
        :meth:`iter_chunks`.
        """
        return _apply_chunks(self, x, fill_value, chunk_rows, start=start, stop=stop)

    def reshape_scores(self, flat_scores: np.ndarray) -> np.ndarray:
        """Fold the flat per-mask score vector into the output grid."""
        return _reshape_scores(self, flat_scores)

    def materialize(self) -> MaskPlan:
        """The equivalent dense :class:`MaskPlan` (tests assert identity)."""
        return MaskPlan.for_granularity(
            self.granularity, self.plane_shape, block_shape=self.block_shape
        )


@dataclass(frozen=True)
class SliceRow:
    """One row of a fused wave stack, mapped back to its origin."""

    row: int
    pair_index: int
    kind: str  # "mask" or "residual"
    label: tuple[int, ...] = ()


@dataclass(frozen=True)
class SliceTable:
    """Row map of a cross-pair wave stack (the paper's "internal table").

    A wave concatenates, for every pair it fuses, the pair's masked
    variants followed by the pair's *unmasked* plane (the residual row,
    which turns the last per-pair eager convolution into one more batch
    row).  This table records, for each stack row, which pair it belongs
    to, whether it is a mask or the residual, and the feature label --
    the reassembly metadata that lets one batched convolution answer
    every pair's Eq. 5 queries at once.
    """

    rows: tuple[SliceRow, ...]

    @classmethod
    def for_plans(
        cls,
        plans,
        include_residual: bool = True,
    ) -> "SliceTable":
        """Build the row map for pairs whose mask plans are ``plans``.

        ``plans[i]`` is pair ``i``'s :class:`MaskPlan`, or ``None`` for a
        pair contributing no masks (the ``elements`` granularity scores
        via the linearity fast path and only needs the residual row).
        """
        rows: list[SliceRow] = []
        row = 0
        for pair_index, plan in enumerate(plans):
            if plan is not None:
                labels = plan.labels or tuple((i,) for i in range(plan.num_masks))
                for label in labels:
                    rows.append(SliceRow(row, pair_index, "mask", label))
                    row += 1
            if include_residual:
                rows.append(SliceRow(row, pair_index, "residual"))
                row += 1
        return cls(rows=tuple(rows))

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def for_pair(self, pair_index: int) -> list[SliceRow]:
        return [r for r in self.rows if r.pair_index == pair_index]

    def mask_rows(self, pair_index: int) -> np.ndarray:
        """Stack-row indices of ``pair_index``'s masks, in plan order."""
        return np.asarray(
            [r.row for r in self.rows if r.pair_index == pair_index and r.kind == "mask"],
            dtype=np.intp,
        )

    def residual_row(self, pair_index: int) -> int:
        """Stack-row index of ``pair_index``'s unmasked residual plane."""
        for r in self.rows:
            if r.pair_index == pair_index and r.kind == "residual":
                return r.row
        raise KeyError(f"pair {pair_index} has no residual row in this table")

    def row_pair_indices(self) -> np.ndarray:
        """Pair index of every stack row (the conv's row->kernel mapping)."""
        return np.asarray([r.pair_index for r in self.rows], dtype=np.intp)


def effective_chunk_rows(
    plane_shape: tuple[int, int],
    chunk_rows: int | None,
    max_stack_bytes: int | None,
    what: str = "streamed mask chunk",
) -> int:
    """Chunk size a streamed scoring call should generate at.

    Defaults to :data:`DEFAULT_CHUNK_ROWS`, then clamps so one chunk's
    float64 planes fit ``max_stack_bytes``.  Streaming needs at least
    one whole plane in flight, so a budget below a single ``M x N``
    float plane still raises :class:`MaskStackBudgetError` -- that
    ceiling is the plane size now, not ``num_masks`` times it.
    """
    m, n = plane_shape
    plane_bytes = m * n * FLOAT64_BYTES
    rows = _check_chunk_rows(chunk_rows if chunk_rows is not None else DEFAULT_CHUNK_ROWS)
    if max_stack_bytes is None:
        return rows
    check_stack_budget(
        plane_bytes, max_stack_bytes, what=f"{what} (a single plane)",
        bool_nbytes=m * n,
    )
    return max(1, min(rows, max_stack_bytes // plane_bytes))


def _stream_scores(
    plan,
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    reduction: str,
    device: Device | None,
    fill_value: float,
    chunk_rows: int,
    precision=None,
) -> np.ndarray:
    """Chunk-streamed batched scoring: generate, convolve, reduce, drop."""
    chunks = plan.apply_chunks(x, fill_value=fill_value, chunk_rows=chunk_rows)
    if device is None:
        convolved_chunks = fft_circular_convolve2d_chunks(
            chunks, kernel, num_rows=plan.num_masks, precision=precision
        )
    else:
        convolved_chunks = device.conv2d_circular_batch_chunks(
            chunks, kernel, num_rows=plan.num_masks, precision=precision
        )
    scores = np.empty(plan.num_masks)
    for convolved, rows in convolved_chunks:
        deltas = y[np.newaxis] - convolved
        scores[rows.start : rows.stop] = reduce_batch(deltas, reduction)
    return plan.reshape_scores(scores)


def score_plan(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    plan: "MaskPlan | MaskSpec",
    reduction: str = "l2",
    method: str = "batched",
    device: Device | None = None,
    fill_value: float = 0.0,
    max_stack_bytes: int | None = None,
    chunk_rows: int | None = None,
    precision=None,
) -> np.ndarray:
    """Eq. 5 scores for every mask of ``plan``, in the plan's output grid.

    ``method="batched"`` convolves every masked variant through one
    batched program: the kernel spectrum is computed exactly once, and
    on compiled backends the plan costs one dispatch instead of one
    host round trip per mask.  ``method="loop"`` re-runs one masked
    convolution per mask -- the historical execution, kept so
    equivalence is testable and the speedup measurable.  All executions
    produce bit-identical scores.

    Memory: with a dense :class:`MaskPlan` (and ``chunk_rows=None``)
    the batched path materializes the ``(num_masks, M, N)`` masked
    float stack, guarded up front by ``max_stack_bytes`` against
    :attr:`MaskPlan.nbytes` (:class:`MaskStackBudgetError`; ``None``
    disables the check).  With a lazy :class:`MaskSpec` -- or a dense
    plan plus an explicit ``chunk_rows`` -- scoring *streams*: masked
    variants are generated, convolved and reduced ``chunk_rows`` planes
    at a time, so peak memory is ``O(chunk_rows * M * N)`` regardless
    of ``num_masks`` and the budget only bounds the chunk (it must
    still hold one plane).  ``chunk_rows=None`` streams at
    :data:`DEFAULT_CHUNK_ROWS`.

    ``precision`` (a name or :class:`~repro.hw.quantize.PrecisionSpec`)
    quantizes each masked plane spatially and the kernel spectrum per
    component before the Hadamard product -- the MXU int8/bf16 datapath.
    The rounding is strictly per-plane, so every execution mode above
    (loop, dense batched, streamed at any chunk size) still produces
    bit-identical scores at the same precision.
    """
    from repro.hw.quantize import resolve_precision

    spec = resolve_precision(precision)
    x = np.asarray(x)
    kernel = np.asarray(kernel)
    y = np.asarray(y)
    if x.shape != kernel.shape or x.shape != y.shape:
        raise ValueError(
            "input, kernel and output must share one shape, got "
            f"{x.shape}, {kernel.shape}, {y.shape}"
        )
    if x.shape != plan.plane_shape:
        raise ValueError(
            f"plan plane {plan.plane_shape} does not match operands of shape {x.shape}"
        )
    if reduction not in REDUCTIONS:
        raise ValueError(
            f"unknown reduction {reduction!r}; expected one of {REDUCTIONS}"
        )
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")

    if method == "loop":
        scores = np.empty(plan.num_masks)
        for chunk, rows in plan.iter_chunks(1):
            masked = np.where(chunk[0], fill_value, x)
            if device is None:
                convolved = fft_circular_convolve2d(masked, kernel, precision=spec)
            else:
                convolved = device.conv2d_circular(masked, kernel, precision=spec)
            scores[rows.start] = reduce_batch((y - convolved)[np.newaxis], reduction)[0]
        return plan.reshape_scores(scores)

    if isinstance(plan, MaskSpec) or chunk_rows is not None:
        rows_per_chunk = effective_chunk_rows(
            plan.plane_shape, chunk_rows, max_stack_bytes
        )
        return _stream_scores(
            plan, x, kernel, y, reduction, device, fill_value, rows_per_chunk,
            precision=spec,
        )

    check_stack_budget(
        plan.nbytes, max_stack_bytes, what="batched mask stack",
        bool_nbytes=plan.bool_nbytes,
    )
    stacked = plan.apply(x, fill_value=fill_value)
    if device is None:
        convolved = fft_circular_convolve2d_batch(stacked, kernel, precision=spec)
    else:
        convolved = device.conv2d_circular_batch(stacked, kernel, precision=spec)
    deltas = y[np.newaxis] - convolved
    return plan.reshape_scores(reduce_batch(deltas, reduction))
