"""Batched occlusion masking: the :class:`MaskPlan` abstraction.

The paper's interpretation step (Eq. 5) scores a feature set by masking
it and re-running the distilled model.  Element, block, column and row
occlusion differ *only* in which features each mask covers -- yet the
historical implementation ran four near-identical scalar loops, each
re-transforming the same kernel on every masked convolution.  This
module replaces those loops with one engine:

* :class:`MaskPlan` -- a named stack of boolean masks, shape
  ``(num_masks, M, N)``, with per-mask labels and the output-grid shape
  the flat score vector reshapes to.  Constructors cover the paper's
  granularities (:meth:`MaskPlan.elements`, :meth:`MaskPlan.blocks`,
  :meth:`MaskPlan.columns`, :meth:`MaskPlan.rows`) and arbitrary mask
  stacks (:meth:`MaskPlan.from_masks`).
* :func:`score_plan` -- Eq. 5 for every mask of a plan at once.
  ``method="batched"`` stacks all masked variants and convolves them in
  one batched device program, computing the kernel spectrum exactly
  once; ``method="loop"`` preserves the historical one-launch-per-mask
  execution so tests can assert the two agree and benchmarks can report
  the speedup.

Occlusion is throughput work, not latency work: the masked variants are
data-independent, so a whole plan can ship to an accelerator as one
program (one dispatch, one infeed) instead of one host round trip per
mask -- the batching-for-efficiency argument of the TPU follow-up paper
(Pan & Mishra 2021) and the XAI-efficiency survey (Chuang et al. 2023).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fft.convolution import (
    fft_circular_convolve2d,
    fft_circular_convolve2d_batch,
)
from repro.hw.device import Device

REDUCTIONS = ("l2", "l1", "mean_abs", "max_abs")
METHODS = ("batched", "loop")

#: Default ceiling on the float64 stack a batched scoring call may
#: materialize (4 GiB).  Waves and plans past this must stream
#: (``method="loop"``) or split; see :class:`MaskStackBudgetError`.
DEFAULT_STACK_BUDGET_BYTES = 4 * 1024**3


class MaskStackBudgetError(MemoryError):
    """A mask stack would exceed the configured memory budget.

    Raised *before* materializing the ``(num_masks, M, N)`` float stack,
    instead of letting a huge allocation fail (or page) deep inside the
    batched engine.
    """


def check_stack_budget(
    nbytes: int, max_stack_bytes: int | None, what: str = "mask stack"
) -> None:
    """Raise :class:`MaskStackBudgetError` when ``nbytes`` exceeds the budget.

    ``max_stack_bytes=None`` disables the check (the caller opted out).
    """
    if max_stack_bytes is None or nbytes <= max_stack_bytes:
        return
    raise MaskStackBudgetError(
        f"{what} needs {nbytes} bytes, over the {max_stack_bytes}-byte budget; "
        "use method='loop' (streams one mask at a time), raise max_stack_bytes, "
        "or split the batch into smaller waves"
    )


def reduce_batch(deltas: np.ndarray, reduction: str) -> np.ndarray:
    """Per-plane scalar reduction of a ``(batch, M, N)`` residual stack."""
    deltas = np.asarray(deltas)
    magnitudes = np.abs(deltas)
    if reduction == "l2":
        return np.sqrt(np.sum(magnitudes**2, axis=(-2, -1)))
    if reduction == "l1":
        return np.sum(magnitudes, axis=(-2, -1))
    if reduction == "mean_abs":
        return np.mean(magnitudes, axis=(-2, -1))
    if reduction == "max_abs":
        return np.max(magnitudes, axis=(-2, -1))
    raise ValueError(f"unknown reduction {reduction!r}; expected one of {REDUCTIONS}")


@dataclass(frozen=True, eq=False)
class MaskPlan:
    """A stack of occlusion masks scored together as one batch.

    Compared and hashed by identity (``eq=False``): the mask stack is an
    ndarray, so the generated field-tuple ``__eq__`` would raise on
    truth-testing it.

    Attributes
    ----------
    masks:
        Boolean array of shape ``(num_masks, M, N)``; ``True`` marks the
        features a mask occludes.
    granularity:
        Human-readable family name (``"elements"``, ``"blocks"``,
        ``"columns"``, ``"rows"`` or ``"custom"``).
    output_shape:
        Shape the flat per-mask score vector reshapes to -- the score
        grid of :func:`repro.core.interpretation.block_contributions`
        et al.  Its product must equal ``num_masks``.
    labels:
        One index tuple per mask naming the occluded feature (element
        coordinates, block-grid coordinates, column or row index).
    """

    masks: np.ndarray
    granularity: str = "custom"
    output_shape: tuple[int, ...] = ()
    labels: tuple[tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        masks = np.asarray(self.masks, dtype=bool)
        if masks.ndim != 3:
            raise ValueError(
                f"masks must be a (num_masks, M, N) stack, got shape {masks.shape}"
            )
        if 0 in masks.shape:
            raise ValueError("a mask plan needs at least one non-empty mask")
        object.__setattr__(self, "masks", masks)
        output_shape = tuple(self.output_shape) or (masks.shape[0],)
        if int(np.prod(output_shape)) != masks.shape[0]:
            raise ValueError(
                f"output shape {output_shape} does not hold {masks.shape[0]} scores"
            )
        object.__setattr__(self, "output_shape", output_shape)
        labels = tuple(tuple(int(v) for v in label) for label in self.labels)
        if labels and len(labels) != masks.shape[0]:
            raise ValueError(
                f"{len(labels)} labels for {masks.shape[0]} masks"
            )
        object.__setattr__(self, "labels", labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_masks(self) -> int:
        return self.masks.shape[0]

    @property
    def plane_shape(self) -> tuple[int, int]:
        return self.masks.shape[1], self.masks.shape[2]

    @property
    def nbytes(self) -> int:
        """Bytes the batched path materializes for this plan's float stack.

        The estimate prices the ``(num_masks, M, N)`` float64 stack of
        masked input variants that :func:`score_plan`'s batched method
        (and a fused wave containing this plan) allocates -- the bool
        mask storage itself is 8x smaller.  Compare against a budget via
        :func:`check_stack_budget` before materializing.
        """
        return self.num_masks * self.masks.shape[1] * self.masks.shape[2] * 8

    def __len__(self) -> int:
        return self.num_masks

    # ------------------------------------------------------------------
    # Constructors, one per paper granularity
    # ------------------------------------------------------------------
    @classmethod
    def elements(cls, shape: tuple[int, int]) -> "MaskPlan":
        """One mask per input element (Eq. 5 verbatim, all features)."""
        m, n = _check_plane(shape)
        masks = np.identity(m * n, dtype=bool).reshape(m * n, m, n)
        labels = tuple((i, j) for i in range(m) for j in range(n))
        return cls(masks, granularity="elements", output_shape=(m, n), labels=labels)

    @classmethod
    def blocks(cls, shape: tuple[int, int], block_shape: tuple[int, int]) -> "MaskPlan":
        """One mask per tile of a ``block_shape`` grid (Figure 5)."""
        m, n = _check_plane(shape)
        bh, bw = block_shape
        if bh <= 0 or bw <= 0:
            raise ValueError(f"block shape must be positive, got {block_shape}")
        if m % bh or n % bw:
            raise ValueError(
                f"block shape {block_shape} does not tile input of shape {(m, n)}"
            )
        grid = (m // bh, n // bw)
        masks = np.zeros((grid[0] * grid[1], m, n), dtype=bool)
        labels = []
        for bi in range(grid[0]):
            for bj in range(grid[1]):
                masks[bi * grid[1] + bj, bi * bh : (bi + 1) * bh, bj * bw : (bj + 1) * bw] = True
                labels.append((bi, bj))
        return cls(masks, granularity="blocks", output_shape=grid, labels=tuple(labels))

    @classmethod
    def columns(cls, shape: tuple[int, int]) -> "MaskPlan":
        """One mask per column (Figure 6's trace-table clock cycles)."""
        m, n = _check_plane(shape)
        masks = np.zeros((n, m, n), dtype=bool)
        masks[np.arange(n), :, np.arange(n)] = True
        labels = tuple((j,) for j in range(n))
        return cls(masks, granularity="columns", output_shape=(n,), labels=labels)

    @classmethod
    def rows(cls, shape: tuple[int, int]) -> "MaskPlan":
        """One mask per row (registers of a trace table)."""
        m, n = _check_plane(shape)
        masks = np.zeros((m, m, n), dtype=bool)
        masks[np.arange(m), np.arange(m), :] = True
        labels = tuple((i,) for i in range(m))
        return cls(masks, granularity="rows", output_shape=(m,), labels=labels)

    @classmethod
    def from_masks(
        cls,
        masks: np.ndarray,
        labels: tuple[tuple[int, ...], ...] | None = None,
        output_shape: tuple[int, ...] | None = None,
        granularity: str = "custom",
    ) -> "MaskPlan":
        """Wrap an arbitrary mask stack (a single 2-D mask is a batch of one)."""
        masks = np.asarray(masks, dtype=bool)
        if masks.ndim == 2:
            masks = masks[np.newaxis]
        return cls(
            masks,
            granularity=granularity,
            output_shape=tuple(output_shape) if output_shape else (),
            labels=tuple(labels) if labels else (),
        )

    @classmethod
    def concat(cls, plans: "list[MaskPlan] | tuple[MaskPlan, ...]") -> "MaskPlan":
        """Fuse several equal-plane plans into one cross-pair stack.

        The result holds ``sum(num_masks_i)`` masks in plan order with a
        flat output shape; each label is the source plan's label prefixed
        with its plan index, so a fused row remains traceable to
        ``(pair, feature)``.  Wave callers pair this with a
        :class:`SliceTable` (see :meth:`SliceTable.for_plans`) to slice
        the fused score vector back apart -- the paper's "internal table"
        applied across pairs instead of across cores.
        """
        plans = list(plans)
        if not plans:
            raise ValueError("cannot concatenate zero mask plans")
        plane = plans[0].plane_shape
        for plan in plans:
            if plan.plane_shape != plane:
                raise ValueError(
                    f"cannot concatenate plans of planes {plane} and {plan.plane_shape}"
                )
        masks = np.concatenate([plan.masks for plan in plans], axis=0)
        labels = []
        for index, plan in enumerate(plans):
            plan_labels = plan.labels or tuple(
                (i,) for i in range(plan.num_masks)
            )
            labels.extend((index, *label) for label in plan_labels)
        return cls(
            masks,
            granularity="concat",
            output_shape=(masks.shape[0],),
            labels=tuple(labels),
        )

    @classmethod
    def for_granularity(
        cls,
        granularity: str,
        shape: tuple[int, int],
        block_shape: tuple[int, int] | None = None,
    ) -> "MaskPlan":
        """Dispatch constructor used by the explanation pipeline."""
        if granularity == "elements":
            return cls.elements(shape)
        if granularity == "blocks":
            if block_shape is None:
                raise ValueError("blocks granularity requires a block_shape")
            return cls.blocks(shape, block_shape)
        if granularity == "columns":
            return cls.columns(shape)
        if granularity == "rows":
            return cls.rows(shape)
        raise ValueError(
            f"unknown granularity {granularity!r}; expected one of "
            "('elements', 'blocks', 'columns', 'rows')"
        )

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, x: np.ndarray, fill_value: float = 0.0) -> np.ndarray:
        """Stack of masked input variants, shape ``(num_masks, M, N)``.

        ``fill_value`` replaces the occluded features: 0.0 is Eq. 5
        verbatim; the input mean is the occlusion-literature baseline.
        """
        x = np.asarray(x)
        if x.shape != self.plane_shape:
            raise ValueError(
                f"input shape {x.shape} does not match plan plane {self.plane_shape}"
            )
        return np.where(self.masks, fill_value, x[np.newaxis])

    def reshape_scores(self, flat_scores: np.ndarray) -> np.ndarray:
        """Fold the flat per-mask score vector into the output grid."""
        flat_scores = np.asarray(flat_scores)
        if flat_scores.shape != (self.num_masks,):
            raise ValueError(
                f"expected {self.num_masks} flat scores, got shape {flat_scores.shape}"
            )
        return flat_scores.reshape(self.output_shape)


def _check_plane(shape: tuple[int, int]) -> tuple[int, int]:
    m, n = shape
    if m <= 0 or n <= 0:
        raise ValueError(f"plane shape must be positive, got {shape}")
    return int(m), int(n)


@dataclass(frozen=True)
class SliceRow:
    """One row of a fused wave stack, mapped back to its origin."""

    row: int
    pair_index: int
    kind: str  # "mask" or "residual"
    label: tuple[int, ...] = ()


@dataclass(frozen=True)
class SliceTable:
    """Row map of a cross-pair wave stack (the paper's "internal table").

    A wave concatenates, for every pair it fuses, the pair's masked
    variants followed by the pair's *unmasked* plane (the residual row,
    which turns the last per-pair eager convolution into one more batch
    row).  This table records, for each stack row, which pair it belongs
    to, whether it is a mask or the residual, and the feature label --
    the reassembly metadata that lets one batched convolution answer
    every pair's Eq. 5 queries at once.
    """

    rows: tuple[SliceRow, ...]

    @classmethod
    def for_plans(
        cls,
        plans,
        include_residual: bool = True,
    ) -> "SliceTable":
        """Build the row map for pairs whose mask plans are ``plans``.

        ``plans[i]`` is pair ``i``'s :class:`MaskPlan`, or ``None`` for a
        pair contributing no masks (the ``elements`` granularity scores
        via the linearity fast path and only needs the residual row).
        """
        rows: list[SliceRow] = []
        row = 0
        for pair_index, plan in enumerate(plans):
            if plan is not None:
                labels = plan.labels or tuple((i,) for i in range(plan.num_masks))
                for label in labels:
                    rows.append(SliceRow(row, pair_index, "mask", label))
                    row += 1
            if include_residual:
                rows.append(SliceRow(row, pair_index, "residual"))
                row += 1
        return cls(rows=tuple(rows))

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def for_pair(self, pair_index: int) -> list[SliceRow]:
        return [r for r in self.rows if r.pair_index == pair_index]

    def mask_rows(self, pair_index: int) -> np.ndarray:
        """Stack-row indices of ``pair_index``'s masks, in plan order."""
        return np.asarray(
            [r.row for r in self.rows if r.pair_index == pair_index and r.kind == "mask"],
            dtype=np.intp,
        )

    def residual_row(self, pair_index: int) -> int:
        """Stack-row index of ``pair_index``'s unmasked residual plane."""
        for r in self.rows:
            if r.pair_index == pair_index and r.kind == "residual":
                return r.row
        raise KeyError(f"pair {pair_index} has no residual row in this table")

    def row_pair_indices(self) -> np.ndarray:
        """Pair index of every stack row (the conv's row->kernel mapping)."""
        return np.asarray([r.pair_index for r in self.rows], dtype=np.intp)


def score_plan(
    x: np.ndarray,
    kernel: np.ndarray,
    y: np.ndarray,
    plan: MaskPlan,
    reduction: str = "l2",
    method: str = "batched",
    device: Device | None = None,
    fill_value: float = 0.0,
    max_stack_bytes: int | None = None,
) -> np.ndarray:
    """Eq. 5 scores for every mask of ``plan``, in the plan's output grid.

    ``method="batched"`` applies all masks at once and convolves the
    whole stack through one batched program: the kernel spectrum is
    computed exactly once, and on compiled backends the plan costs one
    dispatch instead of one host round trip per mask.
    ``method="loop"`` re-runs one masked convolution per mask -- the
    historical execution, kept so equivalence is testable and the
    speedup measurable.  Both methods produce identical scores.

    Memory: the batched path materializes the ``(num_masks, M, N)``
    masked stack (the FFT intermediates are chunk-bounded downstream).
    For the paper's granularities ``num_masks`` is O(M + N) masks or a
    block grid, so the stack is a modest multiple of the plane; on
    planes large enough that ``num_masks * M * N`` floats do not fit,
    use ``method="loop"``, which streams one mask at a time.  Pass
    ``max_stack_bytes`` to enforce that bound up front: a batched call
    whose :attr:`MaskPlan.nbytes` exceeds it raises
    :class:`MaskStackBudgetError` instead of materializing the stack
    (``None`` disables the check).
    """
    x = np.asarray(x)
    kernel = np.asarray(kernel)
    y = np.asarray(y)
    if x.shape != kernel.shape or x.shape != y.shape:
        raise ValueError(
            "input, kernel and output must share one shape, got "
            f"{x.shape}, {kernel.shape}, {y.shape}"
        )
    if x.shape != plan.plane_shape:
        raise ValueError(
            f"plan plane {plan.plane_shape} does not match operands of shape {x.shape}"
        )
    if reduction not in REDUCTIONS:
        raise ValueError(
            f"unknown reduction {reduction!r}; expected one of {REDUCTIONS}"
        )
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")

    if method == "loop":
        scores = np.empty(plan.num_masks)
        for index, mask in enumerate(plan.masks):
            masked = np.where(mask, fill_value, x)
            if device is None:
                convolved = fft_circular_convolve2d(masked, kernel)
            else:
                convolved = device.conv2d_circular(masked, kernel)
            scores[index] = reduce_batch((y - convolved)[np.newaxis], reduction)[0]
        return plan.reshape_scores(scores)

    check_stack_budget(plan.nbytes, max_stack_bytes, what="batched mask stack")
    stacked = plan.apply(x, fill_value=fill_value)
    if device is None:
        convolved = fft_circular_convolve2d_batch(stacked, kernel)
    else:
        convolved = device.conv2d_circular_batch(stacked, kernel)
    deltas = y[np.newaxis] - convolved
    return plan.reshape_scores(reduce_batch(deltas, reduction))
