"""Task transformation: model distillation as a Fourier-domain solve.

This module implements Section III-B of the paper.  The distilled model
is a single circular-convolution kernel ``K`` satisfying ``X (*) K = Y``
(Eq. 2).  Applying the discrete convolution theorem turns the fit into

    F(X) o F(K) = F(Y)            =>    K = F^-1(F(Y) / F(X))   (Eq. 3-4)

i.e. two forward transforms, one Hadamard division, one inverse
transform -- all of which a TPU evaluates as dense matrix products.

Two practical extensions (documented in DESIGN.md section 5):

* **Regularization.**  ``F(X)`` can be arbitrarily small, so the raw
  Eq. 4 division is numerically explosive.  We solve the least-squares
  problem ``min_K sum_i ||X_i (*) K - Y_i||^2`` instead, whose closed
  form is the Wiener deconvolution

      F(K) = sum_i F(Y_i) conj(F(X_i)) / (sum_i |F(X_i)|^2 + eps).

  With a single pair and ``eps -> 0`` this is exactly Eq. 4; the
  operation count (transforms + one Hadamard division) is unchanged, so
  the paper's acceleration story is unaffected.

* **Output embedding.**  A classifier's output ``y`` lives in R^C, not
  on the input plane.  :class:`OutputEmbedding` lifts it to an ``M x N``
  matrix so Eq. 2 type-checks; several strategies are provided and the
  choice is recorded on the fitted distiller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fft.fft2d import fft2, ifft2
from repro.hw.device import Device

_STRATEGIES = ("identity", "spatial", "onehot-row", "tile")


@dataclass(frozen=True)
class OutputEmbedding:
    """Lifts classifier outputs ``y in R^C`` onto the input plane.

    Strategies:

    * ``identity``   -- the output already is an ``M x N`` matrix (e.g.
      trace tables whose label plane equals the input plane);
    * ``spatial``    -- the grid is split into ``C`` contiguous row bands,
      band ``c`` is filled with ``y[c]`` (default for image classifiers;
      keeps class evidence spatially localized so block occlusion reads
      naturally);
    * ``onehot-row`` -- ``y`` occupies the first row, zeros elsewhere;
    * ``tile``       -- ``y`` repeats cyclically over the whole grid.
    """

    strategy: str = "spatial"

    def __post_init__(self) -> None:
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"unknown embedding strategy {self.strategy!r}; "
                f"expected one of {_STRATEGIES}"
            )

    def embed(self, y: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
        """Return the ``shape`` matrix carrying the output vector ``y``."""
        y = np.asarray(y, dtype=np.float64)
        m, n = shape
        if self.strategy == "identity":
            if y.shape != shape:
                raise ValueError(
                    f"identity embedding needs output shape {shape}, got {y.shape}"
                )
            return y.copy()
        if y.ndim != 1:
            raise ValueError(
                f"{self.strategy!r} embedding expects a 1-D output vector, "
                f"got shape {y.shape}"
            )
        classes = y.shape[0]
        if classes == 0:
            raise ValueError("cannot embed an empty output vector")
        if classes > m * n:
            raise ValueError(
                f"output vector ({classes} classes) does not fit a {m}x{n} plane"
            )
        plane = np.zeros(shape, dtype=np.float64)
        if self.strategy == "onehot-row":
            row = np.zeros(n)
            count = min(classes, n)
            row[:count] = y[:count]
            plane[0, :] = row
            return plane
        if self.strategy == "tile":
            flat = np.resize(y, m * n)
            return flat.reshape(shape)
        # spatial: contiguous row-major bands, one per class.
        cells = m * n
        band = cells // classes
        flat = plane.reshape(-1)
        for c in range(classes):
            start = c * band
            stop = start + band if c < classes - 1 else cells
            flat[start:stop] = y[c]
        return plane

    def project(self, plane: np.ndarray, classes: int) -> np.ndarray:
        """Read a class-score vector back out of an embedded plane.

        The pseudo-inverse of :meth:`embed` (exact for planes produced by
        ``embed``; an aggregation for arbitrary planes such as distilled
        predictions).
        """
        plane = np.asarray(plane, dtype=np.float64)
        if plane.ndim != 2:
            raise ValueError(f"expected a matrix, got shape {plane.shape}")
        if classes <= 0:
            raise ValueError("class count must be positive")
        if self.strategy == "identity":
            raise ValueError("identity embedding has no class projection")
        if self.strategy == "onehot-row":
            return plane[0, :classes].copy()
        if self.strategy == "tile":
            flat = plane.reshape(-1)
            scores = np.zeros(classes)
            for c in range(classes):
                scores[c] = flat[c::classes].mean()
            return scores
        cells = plane.size
        band = cells // classes
        flat = plane.reshape(-1)
        scores = np.zeros(classes)
        for c in range(classes):
            start = c * band
            stop = start + band if c < classes - 1 else cells
            scores[c] = flat[start:stop].mean()
        return scores


def _normalize_batch(arrays, name: str) -> np.ndarray:
    batch = np.asarray(arrays)
    if batch.ndim == 2:
        batch = batch[np.newaxis]
    if batch.ndim != 3:
        raise ValueError(
            f"{name} must be one matrix or a batch of matrices, got shape {batch.shape}"
        )
    if 0 in batch.shape:
        raise ValueError(f"{name} batch is empty")
    return batch


def frequency_solve(
    inputs,
    outputs,
    eps: float = 1e-6,
    device: Device | None = None,
) -> np.ndarray:
    """Solve ``X_i (*) K = Y_i`` for the shared kernel ``K`` (Eq. 4 / Wiener).

    ``inputs`` and ``outputs`` are equal-shape matrices or batches of
    matrices.  When ``device`` is given, every transform and Hadamard
    operation executes on it (accumulating simulated time); otherwise a
    pure-numpy fast path is used.

    Returns the real kernel when all operands are real.
    """
    x_batch = _normalize_batch(inputs, "inputs")
    y_batch = _normalize_batch(outputs, "outputs")
    if x_batch.shape != y_batch.shape:
        raise ValueError(
            f"inputs and outputs must align, got {x_batch.shape} vs {y_batch.shape}"
        )
    if eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    all_real = np.isrealobj(x_batch) and np.isrealobj(y_batch)

    if device is None:
        numerator = np.zeros(x_batch.shape[1:], dtype=np.complex128)
        denominator = np.zeros(x_batch.shape[1:], dtype=np.float64)
        for x, y in zip(x_batch, y_batch):
            x_hat = fft2(x)
            y_hat = fft2(y)
            numerator += y_hat * np.conj(x_hat)
            denominator += np.abs(x_hat) ** 2
        kernel_hat = numerator / (denominator + eps)
        kernel = ifft2(kernel_hat)
    else:
        numerator = np.zeros(x_batch.shape[1:], dtype=np.complex128)
        denominator = np.zeros(x_batch.shape[1:], dtype=np.complex128)
        for x, y in zip(x_batch, y_batch):
            x_hat = device.fft2(x)
            y_hat = device.fft2(y)
            x_conj = device.conjugate(x_hat)
            numerator = numerator + device.hadamard(y_hat, x_conj, op="mul")
            denominator = denominator + device.hadamard(x_hat, x_conj, op="mul")
        regularized = device.hadamard(
            denominator, np.full(denominator.shape, eps, dtype=np.complex128), op="add"
        )
        kernel_hat = device.hadamard(numerator, regularized, op="div")
        kernel = device.ifft2(kernel_hat)

    if all_real:
        return np.ascontiguousarray(kernel.real)
    return kernel


def spectrum_condition(inputs, eps: float = 0.0) -> float:
    """Conditioning diagnostic: max/min of the regularized denominator.

    Large values mean Eq. 4's division is ill-posed for this data and
    regularization is doing real work; handy when choosing ``eps``.
    """
    x_batch = _normalize_batch(inputs, "inputs")
    denominator = np.zeros(x_batch.shape[1:], dtype=np.float64)
    for x in x_batch:
        denominator += np.abs(fft2(x)) ** 2
    denominator = denominator + eps
    smallest = float(denominator.min())
    if smallest == 0.0:
        return float("inf")
    return float(denominator.max()) / smallest
