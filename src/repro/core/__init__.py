"""The paper's contribution: TPU-accelerated explainable ML.

Layout mirrors Section III of the paper:

* :mod:`repro.core.transform`       -- task transformation (Eq. 2-4):
  model distillation as a regularized Fourier-domain solve;
* :mod:`repro.core.distillation`    -- the one-layer convolutional
  distilled model (fit / predict / residual);
* :mod:`repro.core.interpretation`  -- outcome interpretation (Eq. 5):
  contribution factors per feature, block, row or column;
* :mod:`repro.core.masking`         -- the batched occlusion engine:
  :class:`MaskPlan` mask stacks scored as one batched device program;
* :mod:`repro.core.decomposition`   -- Algorithm 1: sharding the 2-D
  Fourier transform across TPU cores with one reassembly per stage;
* :mod:`repro.core.fleet`           -- fleet-scale wave fusion: many
  pairs' mask plans and residual planes concatenated into one batched
  program per scheduler wave (one dispatch per wave);
* :mod:`repro.core.parallel`        -- Section III-D: concurrent
  processing of many inputs and block-partitioned matmuls;
* :mod:`repro.core.backend`         -- the multi-core TPU chip exposed
  through the common device interface (the "proposed approach" rows of
  the paper's tables);
* :mod:`repro.core.pipeline`        -- the distill-then-interpret
  workload that Table II times end to end.
"""

from repro.core.backend import TpuBackend, make_tpu_chip, make_tpu_pod
from repro.core.decomposition import (
    DecomposedFourier,
    DecompositionReport,
    StageTiming,
    shard_slices,
)
from repro.core.distillation import ConvolutionDistiller, NotFittedError
from repro.core.fleet import (
    FleetExecutor,
    FleetRun,
    FleetSchedule,
    PLACEMENTS,
    PairResult,
    WavePlan,
    feed_bytes,
    streamed_chunk_nbytes,
)
from repro.core.interpretation import (
    block_contributions,
    column_contributions,
    contribution_matrix,
    element_scores_from_base,
    feature_contributions,
    mask_contribution,
    normalize_scores,
    row_contributions,
    top_k_features,
)
from repro.core.masking import (
    DEFAULT_CHUNK_ROWS,
    DEFAULT_STACK_BUDGET_BYTES,
    MaskPlan,
    MaskSpec,
    MaskStackBudgetError,
    SliceRow,
    SliceTable,
    check_stack_budget,
    effective_chunk_rows,
    reduce_batch,
    score_plan,
)
from repro.core.parallel import (
    Assignment,
    BatchDistillationResult,
    distill_batch,
    AssignmentTable,
    BatchResult,
    BlockTask,
    MultiInputScheduler,
    block_matmul_tasks,
    partition_cores,
    run_block_matmul,
)
from repro.core.quality import (
    deletion_auc,
    deletion_curve,
    dominance_margin,
    rank_agreement,
    top_k_recall,
)
from repro.core.pipeline import (
    ExplanationPipeline,
    InterpretationRun,
    PairExplanation,
)
from repro.core.transform import (
    OutputEmbedding,
    frequency_solve,
    spectrum_condition,
)

__all__ = [
    "TpuBackend",
    "make_tpu_chip",
    "make_tpu_pod",
    "PLACEMENTS",
    "DecomposedFourier",
    "DecompositionReport",
    "StageTiming",
    "shard_slices",
    "ConvolutionDistiller",
    "NotFittedError",
    "block_contributions",
    "column_contributions",
    "contribution_matrix",
    "feature_contributions",
    "mask_contribution",
    "normalize_scores",
    "row_contributions",
    "top_k_features",
    "MaskPlan",
    "MaskStackBudgetError",
    "SliceRow",
    "SliceTable",
    "DEFAULT_STACK_BUDGET_BYTES",
    "check_stack_budget",
    "reduce_batch",
    "score_plan",
    "element_scores_from_base",
    "FleetExecutor",
    "FleetRun",
    "FleetSchedule",
    "PairResult",
    "WavePlan",
    "feed_bytes",
    "streamed_chunk_nbytes",
    "Assignment",
    "AssignmentTable",
    "BatchResult",
    "BlockTask",
    "MultiInputScheduler",
    "BatchDistillationResult",
    "distill_batch",
    "deletion_auc",
    "deletion_curve",
    "dominance_margin",
    "rank_agreement",
    "top_k_recall",
    "block_matmul_tasks",
    "partition_cores",
    "run_block_matmul",
    "ExplanationPipeline",
    "InterpretationRun",
    "PairExplanation",
    "OutputEmbedding",
    "frequency_solve",
    "spectrum_condition",
]
