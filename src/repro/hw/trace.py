"""Execution tracing for the systolic array: waveforms and utilization.

EDA-style observability for the simulated hardware: a cycle-by-cycle
recorder that watches a :class:`repro.hw.systolic.SystolicArray` pass
and produces

* a per-cycle **utilization waveform** (fraction of PEs doing useful
  MACs) -- the fill/steady/drain envelope every systolic schedule has;
* a per-PE **activity heatmap** (MACs per cell over the pass);
* a **VCD dump** (IEEE 1364 value-change format) of scalar signals so
  the pass can be inspected in any waveform viewer (GTKWave etc.).

The recorder re-derives activity from the same wavefront schedule the
array implements (asserted against the array's own counters in tests),
so it needs no hooks inside the hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.systolic import SystolicArray, streaming_cycles


@dataclass(frozen=True)
class SystolicTrace:
    """Recorded activity of one streaming pass."""

    rows: int
    cols: int
    stream_rows: int
    utilization: np.ndarray  # (cycles,) fraction of active PEs per cycle
    pe_activity: np.ndarray  # (rows, cols) MAC count per PE

    @property
    def cycles(self) -> int:
        return self.utilization.shape[0]

    @property
    def peak_utilization(self) -> float:
        return float(self.utilization.max()) if self.cycles else 0.0

    @property
    def mean_utilization(self) -> float:
        return float(self.utilization.mean()) if self.cycles else 0.0

    @property
    def steady_state_cycles(self) -> int:
        """Cycles at 100% utilization (the plateau of the envelope)."""
        return int(np.sum(self.utilization >= 1.0 - 1e-12))


def trace_pass(rows: int, cols: int, stream_rows: int) -> SystolicTrace:
    """Derive the activity trace of a dense streaming pass.

    In the wavefront schedule, PE ``(r, c)`` performs a useful MAC for
    input row ``i`` at cycle ``i + r + c``; with ``m`` dense input rows
    it is active during cycles ``[r + c, m - 1 + r + c]``.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"array geometry must be positive, got {rows}x{cols}")
    if stream_rows <= 0:
        raise ValueError(f"need at least one streamed row, got {stream_rows}")
    total = streaming_cycles(stream_rows, rows, cols)
    active_per_cycle = np.zeros(total, dtype=np.int64)
    # Count PEs whose activity window covers each cycle: the number of
    # (r, c) with r + c <= t and r + c >= t - (m - 1).
    diag_counts = np.zeros(rows + cols - 1, dtype=np.int64)
    for diagonal in range(rows + cols - 1):
        low = max(0, diagonal - (cols - 1))
        high = min(rows - 1, diagonal)
        diag_counts[diagonal] = high - low + 1
    for cycle in range(total):
        lo = max(0, cycle - (stream_rows - 1))
        hi = min(rows + cols - 2, cycle)
        if hi >= lo:
            active_per_cycle[cycle] = diag_counts[lo : hi + 1].sum()
    utilization = active_per_cycle / (rows * cols)
    pe_activity = np.full((rows, cols), stream_rows, dtype=np.int64)
    return SystolicTrace(
        rows=rows,
        cols=cols,
        stream_rows=stream_rows,
        utilization=utilization,
        pe_activity=pe_activity,
    )


def trace_matmul(array: SystolicArray, activations: np.ndarray, weights: np.ndarray) -> SystolicTrace:
    """Run a pass on the cycle-level array and return its derived trace.

    The derived active-PE integral is asserted against the array's own
    ``active_pe_cycles`` counter for dense (no-zero) activations.
    """
    result = array.matmul(activations, weights)
    trace = trace_pass(array.rows, array.cols, np.asarray(activations).shape[0])
    dense = np.count_nonzero(activations) == np.asarray(activations).size
    if dense:
        derived = int(round(trace.utilization.sum() * array.rows * array.cols))
        if abs(derived - result.active_pe_cycles) > 0:
            raise AssertionError(
                "trace schedule diverged from the cycle-level simulation: "
                f"derived {derived} active PE-cycles, simulated "
                f"{result.active_pe_cycles}"
            )
    return trace


def utilization_ascii(trace: SystolicTrace, width: int = 60, height: int = 8) -> str:
    """Render the utilization envelope as an ASCII sparkline block."""
    if width <= 0 or height <= 0:
        raise ValueError("plot dimensions must be positive")
    samples = np.interp(
        np.linspace(0, trace.cycles - 1, num=min(width, trace.cycles)),
        np.arange(trace.cycles),
        trace.utilization,
    )
    lines = []
    for level in range(height, 0, -1):
        threshold = (level - 0.5) / height
        row = "".join("#" if value >= threshold else " " for value in samples)
        lines.append(f"{threshold:4.2f} |{row}")
    lines.append("     +" + "-" * len(samples))
    lines.append(f"      0 .. {trace.cycles - 1} cycles "
                 f"(mean {trace.mean_utilization:.2f}, "
                 f"steady {trace.steady_state_cycles} cy)")
    return "\n".join(lines)


def write_vcd(trace: SystolicTrace, module: str = "systolic") -> str:
    """Serialize the trace as a Value Change Dump (IEEE 1364) string.

    Signals: ``active_pes`` (integer count) and ``busy`` (1-bit, any PE
    active).  One VCD time unit = one array cycle.
    """
    if not module.isidentifier():
        raise ValueError(f"module name {module!r} is not a valid identifier")
    counts = np.round(trace.utilization * trace.rows * trace.cols).astype(np.int64)
    bits = max(1, int(counts.max()).bit_length())
    header = [
        "$date repro systolic trace $end",
        "$version repro.hw.trace $end",
        "$timescale 1ns $end",
        f"$scope module {module} $end",
        f"$var wire {bits} ! active_pes $end",
        "$var wire 1 @ busy $end",
        "$upscope $end",
        "$enddefinitions $end",
    ]
    body = []
    previous_count = None
    previous_busy = None
    for cycle, count in enumerate(counts):
        busy = 1 if count > 0 else 0
        changes = []
        if count != previous_count:
            changes.append(f"b{count:b} !")
        if busy != previous_busy:
            changes.append(f"{busy}@")
        if changes:
            body.append(f"#{cycle}")
            body.extend(changes)
        previous_count = count
        previous_busy = busy
    body.append(f"#{len(counts)}")
    body.append("0@")
    return "\n".join(header + body) + "\n"
