"""Quantization: the precision model of the simulated MXU datapath.

The paper attributes TPU performance to *quantization* ("uses 8-bit
integers to approximate 16-bit or 32-bit floating-point numbers") and the
*systolic array*.  This module implements symmetric per-tensor integer
quantization exactly as a TPU front-end would, plus the
:class:`PrecisionSpec` vocabulary the rest of the stack uses to name a
numeric mode:

* a real tensor is scaled into the signed ``bits``-bit integer grid,
  rounded, and clipped;
* matrix products are computed on the integer grid with 32-bit
  accumulation and rescaled back to floats;
* bfloat16 rounding is provided for the higher-precision MXU mode used
  by the Fourier-domain distillation solve (int8 FFTs would destroy the
  solve; TPUv2 MXUs natively support bfloat16).

**Where a** :class:`PrecisionSpec` **applies in the batched/wave path.**
The fleet executor streams a wave's masked planes (and each pair's
residual plane) through one batched FFT convolution against the wave's
kernel-spectrum batch (:mod:`repro.core.fleet`).  A spec quantizes both
operands of that convolution *together*, per plane:

* every row of the data stack is rounded in the spatial domain with its
  own scale (:func:`quantize_dequantize` -- the int8 infeed a TPU would
  perform), and
* every kernel spectrum of the wave is rounded per plane, real and
  imaginary components separately (the weights resident on-device),

while the transforms, Hadamard products and reductions accumulate in
float64 -- mirroring MXU int8 multipliers feeding 32-bit accumulators.
Because both roundings are strictly per plane, streamed chunks, the
dense batch, and one-mask-at-a-time ``method="loop"`` execution see the
*same* quantized operands and therefore produce bit-identical scores at
every precision; only the cost model changes
(:meth:`repro.core.backend.TpuBackend.batch_conv_seconds` prices the
fused transforms with the MXU cycle model at the spec's rate).

Error bounds are part of the public contract: for symmetric quantization
with step ``s``, ``|x - dequantize(quantize(x))| <= s/2`` for all inputs
within range, which property tests assert;
:func:`quantized_conv_error_bound` extends that to a per-element bound
on the whole quantized convolution, which the quantized-batch ablation
checks against executed batched scores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor plus the scale that maps it back to reals.

    ``dequantized = values * scale``.  Symmetric quantization has no zero
    point: 0.0 always maps to integer 0, which keeps zero-padding (used
    heavily by the distillation masks) exact.
    """

    values: np.ndarray
    scale: float
    bits: int

    @property
    def qmax(self) -> int:
        return (1 << (self.bits - 1)) - 1


def quantization_scale(x: np.ndarray, bits: int = 8) -> float:
    """Return the symmetric per-tensor scale for ``x``.

    The scale maps ``max(|x|)`` to the largest representable integer.
    An all-zero tensor returns scale 1.0 so dequantization stays exact.
    """
    if bits < 2:
        raise ValueError(f"quantization needs at least 2 bits, got {bits}")
    max_abs = float(np.max(np.abs(x))) if np.asarray(x).size else 0.0
    if max_abs == 0.0:
        return 1.0
    qmax = (1 << (bits - 1)) - 1
    return max_abs / qmax


def quantize(x: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Symmetrically quantize a real tensor to ``bits``-bit integers."""
    if np.iscomplexobj(x):
        raise TypeError("quantize expects a real tensor; split complex parts first")
    array = np.asarray(x, dtype=np.float64)
    scale = quantization_scale(array, bits)
    qmax = (1 << (bits - 1)) - 1
    storage = np.int8 if bits <= 8 else (np.int16 if bits <= 16 else np.int32)
    values = np.clip(np.round(array / scale), -qmax, qmax).astype(storage)
    return QuantizedTensor(values=values, scale=scale, bits=bits)


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Map a quantized tensor back to floats."""
    return q.values.astype(np.float64) * q.scale


def quantization_error_bound(x: np.ndarray, bits: int = 8) -> float:
    """Worst-case absolute round-trip error: half a quantization step."""
    return quantization_scale(x, bits) / 2.0


def quantize_dequantize(x: np.ndarray, bits: int = 8) -> np.ndarray:
    """Symmetric integer round trip with **per-plane** scales.

    The quantization a batched device op applies to its operands: a 2-D
    array is one plane (one scale); a ``(batch, M, N)`` stack gives every
    plane its own scale, so ``quantize_dequantize(stack)[i]`` is
    bit-identical to ``quantize_dequantize(stack[i])`` -- the property
    that makes streamed, dense-batched and one-plane-at-a-time quantized
    execution agree exactly.  Complex arrays round their real and
    imaginary components independently (each with its own per-plane
    scale), which preserves Hermitian symmetry of real-signal spectra.
    """
    array = np.asarray(x)
    if np.iscomplexobj(array):
        return quantize_dequantize(array.real, bits) + 1j * quantize_dequantize(
            array.imag, bits
        )
    array = np.asarray(array, dtype=np.float64)
    if array.ndim <= 2:
        return dequantize(quantize(array, bits))
    if bits < 2:
        raise ValueError(f"quantization needs at least 2 bits, got {bits}")
    qmax = (1 << (bits - 1)) - 1
    flat = array.reshape(array.shape[0], -1)
    max_abs = np.max(np.abs(flat), axis=1)
    scales = np.where(max_abs == 0.0, 1.0, max_abs / qmax)
    shaped = scales.reshape((array.shape[0],) + (1,) * (array.ndim - 1))
    values = np.clip(np.round(array / shaped), -qmax, qmax)
    return values * shaped


def quantized_matmul(a: np.ndarray, b: np.ndarray, bits: int = 8) -> np.ndarray:
    """Integer matmul with 32-bit accumulation, rescaled to floats.

    This is the arithmetic the systolic array actually performs: both
    operands are quantized, multiplied on the integer grid (products
    accumulate exactly in int32/int64), and the result carries the
    product of the two scales.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"quantized_matmul expects 2-D operands, got {a.shape} and {b.shape}"
        )
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    qa = quantize(a, bits)
    qb = quantize(b, bits)
    accumulated = qa.values.astype(np.int64) @ qb.values.astype(np.int64)
    return accumulated.astype(np.float64) * (qa.scale * qb.scale)


def quantized_complex_matmul(
    a: np.ndarray, b: np.ndarray, bits: int = 8
) -> np.ndarray:
    """Complex matmul decomposed into four quantized real products.

    ``(Ar + jAi)(Br + jBi) = (ArBr - AiBi) + j(ArBi + AiBr)`` -- the
    decomposition the TPU backend uses to run complex DFT matmuls on a
    real-valued MXU.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    real = quantized_matmul(a.real, b.real, bits) - quantized_matmul(
        a.imag, b.imag, bits
    )
    imag = quantized_matmul(a.real, b.imag, bits) + quantized_matmul(
        a.imag, b.real, bits
    )
    return real + 1j * imag


def quantized_conv_error_bound(
    x: np.ndarray, kernel: np.ndarray, bits: int = 8
) -> float:
    """Worst-case per-element error of an int8-quantized circular convolution.

    Models the batched interpretation path: the input plane is quantized
    in the spatial domain (round-trip error ``b_x`` per element) and the
    kernel *spectrum* per complex component (``b_k`` per component).  By
    the triangle inequality over ``y = F^-1(F(x) o K_hat)``::

        |y_quantized - y_exact|  <=  b_x * (||k||_1 + M*N*b_k)
                                   + (||x||_1 + M*N*b_x) * b_k

    (``||.||_1`` summing absolute values over the plane; the ``M*N``
    terms bound how far the quantized operand's l1 mass can exceed the
    exact one's).  The bound is deliberately conservative -- it holds
    for *every* zero-fill masked variant of ``x``, since masking only
    shrinks ``||x||_1`` -- and is monotone in ``bits``.
    :func:`quantized_score_error_bound` lifts it to l2-reduced scores;
    the quantized-batch ablation asserts executed batched scores
    respect it.
    """
    from repro.fft.fft2d import fft2  # hw.quantize stays import-light

    x = np.asarray(x, dtype=np.float64)
    kernel = np.asarray(kernel, dtype=np.float64)
    if x.shape != kernel.shape or x.ndim != 2:
        raise ValueError(
            f"operands must be equal-shape planes, got {x.shape} and {kernel.shape}"
        )
    m, n = kernel.shape
    b_x = quantization_error_bound(x, bits)
    k_hat = fft2(kernel)
    b_k = quantization_error_bound(k_hat.real, bits) + quantization_error_bound(
        k_hat.imag, bits
    )
    kernel_l1 = float(np.sum(np.abs(kernel))) + m * n * b_k
    x_l1 = float(np.sum(np.abs(x))) + m * n * b_x
    return b_x * kernel_l1 + x_l1 * b_k


def quantized_score_error_bound(
    x: np.ndarray, kernel: np.ndarray, bits: int = 8
) -> float:
    """Worst-case error of an l2-reduced score under int8 quantization.

    The documented contract the quantized-batch ablation asserts: an
    l2-reduced Eq. 5 score differs from its exact value by at most
    ``sqrt(M*N)`` times the per-element bound of
    :func:`quantized_conv_error_bound` (reverse triangle inequality
    over the delta plane), for every zero-fill masked variant of ``x``.
    """
    m, n = np.asarray(kernel).shape
    return float(np.sqrt(m * n)) * quantized_conv_error_bound(x, kernel, bits)


def to_bfloat16(x: np.ndarray) -> np.ndarray:
    """Round a float array to bfloat16 precision (kept in float32 storage).

    bfloat16 is float32 with the mantissa truncated to 7 bits.  We
    implement round-to-nearest-even on the mantissa by integer
    manipulation of the float32 bit pattern -- the same numeric behaviour
    as TPU bf16 MXU inputs.
    """
    array = np.asarray(x)
    if np.iscomplexobj(array):
        return to_bfloat16(array.real) + 1j * to_bfloat16(array.imag)
    bits = np.asarray(array, dtype=np.float32).view(np.uint32)
    # Round to nearest even at bit 16.
    rounding_bias = ((bits >> 16) & 1) + np.uint32(0x7FFF)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32).astype(array.dtype if array.dtype == np.float64 else np.float32)


@dataclass(frozen=True)
class PrecisionSpec:
    """Numeric mode of an MXU datapath.

    ``int8``  -- quantized inference mode (paper Section II-A):
    :meth:`apply` performs the per-plane integer round trip of
    :func:`quantize_dequantize`;
    ``bf16``  -- bfloat16 mode used for the Fourier-domain solve:
    :meth:`apply` rounds via :func:`to_bfloat16`;
    ``fp32`` / ``fp64`` -- exact float modes (reference / validation):
    :meth:`apply` is the identity, so scores are bit-identical to
    unquantized execution and only the cost model differs.

    ``bytes_per_element`` drives the memory-traffic part of the timing
    model (a quantized stack streams over the host link at its storage
    width); ``macs_per_pe_per_cycle`` the compute part (int8/bf16 run
    the MXU at full rate, fp32 at a quarter, fp64 at an eighth).
    """

    name: str
    bytes_per_element: int
    macs_per_pe_per_cycle: float

    @property
    def is_exact(self) -> bool:
        """True when :meth:`apply` is the identity (no rounding)."""
        return self.name in ("fp32", "fp64")

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Round ``x`` to this precision, plane by plane (no-op for fp32/fp64).

        Only the four built-in modes have rounding semantics; a
        hand-built spec with any other name raises here rather than
        silently executing exact numerics while being priced (and
        gated) as lossy.
        """
        if self.name == "bf16":
            return to_bfloat16(x)
        if self.name == "int8":
            return quantize_dequantize(x, bits=8)
        if self.is_exact:
            return np.asarray(x)
        raise ValueError(
            f"precision {self.name!r} has no rounding semantics; "
            f"apply() implements only {tuple(_PRECISIONS)}"
        )


INT8 = PrecisionSpec(name="int8", bytes_per_element=1, macs_per_pe_per_cycle=1.0)
BF16 = PrecisionSpec(name="bf16", bytes_per_element=2, macs_per_pe_per_cycle=1.0)
FP32 = PrecisionSpec(name="fp32", bytes_per_element=4, macs_per_pe_per_cycle=0.25)
FP64 = PrecisionSpec(name="fp64", bytes_per_element=8, macs_per_pe_per_cycle=0.125)

_PRECISIONS = {"int8": INT8, "bf16": BF16, "fp32": FP32, "fp64": FP64}


def precision_spec(name: "str | PrecisionSpec") -> PrecisionSpec:
    """Look up a precision mode by name (specs pass through unchanged).

    The single parsing point for every ``precision=`` axis in the stack
    (:class:`~repro.core.pipeline.ExplanationPipeline`, the device conv
    ops, the cost models): an unknown name raises a :class:`ValueError`
    listing the valid vocabulary.
    """
    if isinstance(name, PrecisionSpec):
        return name
    try:
        return _PRECISIONS[name]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown precision {name!r}; expected one of "
            f"{tuple(_PRECISIONS)} or a PrecisionSpec"
        ) from None


def resolve_precision(
    precision: "str | PrecisionSpec | None",
) -> "PrecisionSpec | None":
    """Parse an optional ``precision=`` argument.

    ``None`` -- the default everywhere -- means "no precision handling":
    numerics and cost ledgers stay exactly as the unparameterized ops
    behave.  Anything else resolves through :func:`precision_spec`.
    """
    if precision is None:
        return None
    return precision_spec(precision)


def infeed_bytes_per_element(spec: "PrecisionSpec | None") -> int:
    """Storage width of one streamed real element, for fp32-feed models.

    The width rule of the surfaces whose legacy convention was an fp32
    feed -- the cost models' per-element arithmetic and the TPU's
    per-mask ``conv_round_trip`` payload: ``None`` preserves that
    legacy 4 bytes/element, while a spec streams at its own width (1
    byte/element for int8).  Distinct from
    :func:`repro.core.fleet.feed_bytes`, which sizes *program-scope*
    infeeds of concrete arrays and whose ``None`` case is the arrays'
    own nbytes (8 bytes/element for float64) -- the two conventions
    deliberately differ at ``None`` to keep both executed ledgers
    bit-compatible with their pre-precision history.
    """
    return 4 if spec is None else spec.bytes_per_element
