"""Quantization: the first of the TPU's two speed mechanisms (Section II-A).

The paper attributes TPU performance to *quantization* ("uses 8-bit
integers to approximate 16-bit or 32-bit floating-point numbers") and the
*systolic array*.  This module implements symmetric per-tensor integer
quantization exactly as a TPU front-end would:

* a real tensor is scaled into the signed ``bits``-bit integer grid,
  rounded, and clipped;
* matrix products are computed on the integer grid with 32-bit
  accumulation and rescaled back to floats;
* bfloat16 rounding is provided for the higher-precision MXU mode used
  by the Fourier-domain distillation solve (int8 FFTs would destroy the
  solve; TPUv2 MXUs natively support bfloat16).

Error bounds are part of the public contract: for symmetric quantization
with step ``s``, ``|x - dequantize(quantize(x))| <= s/2`` for all inputs
within range, which property tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor plus the scale that maps it back to reals.

    ``dequantized = values * scale``.  Symmetric quantization has no zero
    point: 0.0 always maps to integer 0, which keeps zero-padding (used
    heavily by the distillation masks) exact.
    """

    values: np.ndarray
    scale: float
    bits: int

    @property
    def qmax(self) -> int:
        return (1 << (self.bits - 1)) - 1


def quantization_scale(x: np.ndarray, bits: int = 8) -> float:
    """Return the symmetric per-tensor scale for ``x``.

    The scale maps ``max(|x|)`` to the largest representable integer.
    An all-zero tensor returns scale 1.0 so dequantization stays exact.
    """
    if bits < 2:
        raise ValueError(f"quantization needs at least 2 bits, got {bits}")
    max_abs = float(np.max(np.abs(x))) if np.asarray(x).size else 0.0
    if max_abs == 0.0:
        return 1.0
    qmax = (1 << (bits - 1)) - 1
    return max_abs / qmax


def quantize(x: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Symmetrically quantize a real tensor to ``bits``-bit integers."""
    if np.iscomplexobj(x):
        raise TypeError("quantize expects a real tensor; split complex parts first")
    array = np.asarray(x, dtype=np.float64)
    scale = quantization_scale(array, bits)
    qmax = (1 << (bits - 1)) - 1
    storage = np.int8 if bits <= 8 else (np.int16 if bits <= 16 else np.int32)
    values = np.clip(np.round(array / scale), -qmax, qmax).astype(storage)
    return QuantizedTensor(values=values, scale=scale, bits=bits)


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Map a quantized tensor back to floats."""
    return q.values.astype(np.float64) * q.scale


def quantization_error_bound(x: np.ndarray, bits: int = 8) -> float:
    """Worst-case absolute round-trip error: half a quantization step."""
    return quantization_scale(x, bits) / 2.0


def quantized_matmul(a: np.ndarray, b: np.ndarray, bits: int = 8) -> np.ndarray:
    """Integer matmul with 32-bit accumulation, rescaled to floats.

    This is the arithmetic the systolic array actually performs: both
    operands are quantized, multiplied on the integer grid (products
    accumulate exactly in int32/int64), and the result carries the
    product of the two scales.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"quantized_matmul expects 2-D operands, got {a.shape} and {b.shape}"
        )
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    qa = quantize(a, bits)
    qb = quantize(b, bits)
    accumulated = qa.values.astype(np.int64) @ qb.values.astype(np.int64)
    return accumulated.astype(np.float64) * (qa.scale * qb.scale)


def quantized_complex_matmul(
    a: np.ndarray, b: np.ndarray, bits: int = 8
) -> np.ndarray:
    """Complex matmul decomposed into four quantized real products.

    ``(Ar + jAi)(Br + jBi) = (ArBr - AiBi) + j(ArBi + AiBr)`` -- the
    decomposition the TPU backend uses to run complex DFT matmuls on a
    real-valued MXU.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    real = quantized_matmul(a.real, b.real, bits) - quantized_matmul(
        a.imag, b.imag, bits
    )
    imag = quantized_matmul(a.real, b.imag, bits) + quantized_matmul(
        a.imag, b.real, bits
    )
    return real + 1j * imag


def to_bfloat16(x: np.ndarray) -> np.ndarray:
    """Round a float array to bfloat16 precision (kept in float32 storage).

    bfloat16 is float32 with the mantissa truncated to 7 bits.  We
    implement round-to-nearest-even on the mantissa by integer
    manipulation of the float32 bit pattern -- the same numeric behaviour
    as TPU bf16 MXU inputs.
    """
    array = np.asarray(x)
    if np.iscomplexobj(array):
        return to_bfloat16(array.real) + 1j * to_bfloat16(array.imag)
    bits = np.asarray(array, dtype=np.float32).view(np.uint32)
    # Round to nearest even at bit 16.
    rounding_bias = ((bits >> 16) & 1) + np.uint32(0x7FFF)
    rounded = (bits + rounding_bias) & np.uint32(0xFFFF0000)
    return rounded.view(np.float32).astype(array.dtype if array.dtype == np.float64 else np.float32)


@dataclass(frozen=True)
class PrecisionSpec:
    """Numeric mode of an MXU.

    ``int8``  -- quantized inference mode (paper Section II-A);
    ``bf16``  -- bfloat16 mode used for the Fourier-domain solve;
    ``fp32``  -- exact float mode (reference / validation).

    ``bytes_per_element`` drives the memory-traffic part of the timing
    model; ``macs_per_pe_per_cycle`` the compute part.
    """

    name: str
    bytes_per_element: int
    macs_per_pe_per_cycle: float

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Round ``x`` to this precision (no-op for fp32)."""
        if self.name == "bf16":
            return to_bfloat16(x)
        return np.asarray(x)


INT8 = PrecisionSpec(name="int8", bytes_per_element=1, macs_per_pe_per_cycle=1.0)
BF16 = PrecisionSpec(name="bf16", bytes_per_element=2, macs_per_pe_per_cycle=1.0)
FP32 = PrecisionSpec(name="fp32", bytes_per_element=4, macs_per_pe_per_cycle=0.25)

_PRECISIONS = {"int8": INT8, "bf16": BF16, "fp32": FP32}


def precision_spec(name: str) -> PrecisionSpec:
    """Look up a precision mode by name."""
    try:
        return _PRECISIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown precision {name!r}; expected one of {sorted(_PRECISIONS)}"
        ) from None
