"""Analytic GPU execution model (the paper's state-of-the-art comparator).

Models the paper's external NVIDIA GTX 1080 driven by PyTorch: massive
fp32 throughput (2560 CUDA cores), GDDR5X bandwidth, but a *per-kernel
launch overhead* on every operation and PCIe transfers for host data.
Those overheads -- absent on the TPU once a program is dispatched, and
tiny on the CPU -- are what keeps the GPU only a small factor ahead of
the CPU at the paper's workload sizes (Table I shows CPU/GPU of only
2-3x), while the TPU's systolic pipeline pulls an order of magnitude
further ahead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import Device


@dataclass(frozen=True)
class GpuConfig:
    """Parameters of the modelled discrete GPU."""

    name: str = "GTX1080"
    clock_hz: float = 1.607e9
    cuda_cores: int = 2560
    flops_per_cycle_per_core: float = 2.0  # one FMA per core per cycle
    # Sustained fraction of peak under eager-mode fp32 PyTorch (~76
    # GFLOP/s effective, i.e. ~2.7x the CPU -- the paper's own Table I
    # shows CPU/GPU of only 2-3x at these workload sizes).  Calibrated
    # jointly with the CPU/TPU defaults; see EXPERIMENTS.md.
    efficiency: float = 0.0092
    memory_bandwidth_bytes_per_sec: float = 320e9
    kernel_launch_sec: float = 1.0e-5
    pcie_bandwidth_bytes_per_sec: float = 12e9
    pcie_latency_sec: float = 1e-5
    tdp_watts: float = 180.0
    # Price 2-D transforms as a cuFFT-style O(n log n) library call
    # instead of the paper's matmul-form deployment (ablation knob).
    use_library_fft: bool = False

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.cuda_cores <= 0:
            raise ValueError("clock and core count must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.memory_bandwidth_bytes_per_sec <= 0:
            raise ValueError("memory bandwidth must be positive")
        if self.kernel_launch_sec < 0 or self.pcie_latency_sec < 0:
            raise ValueError("overheads cannot be negative")

    @property
    def peak_flops(self) -> float:
        return self.clock_hz * self.cuda_cores * self.flops_per_cycle_per_core

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.efficiency


class GpuDevice(Device):
    """fp32 roofline with kernel-launch overhead and PCIe transfers."""

    def __init__(self, config: GpuConfig | None = None) -> None:
        self.config = config or GpuConfig()
        super().__init__(name=self.config.name)

    def matmul_seconds(self, m: int, k: int, n: int) -> float:
        flops = 2.0 * m * k * n
        compute = flops / self.config.effective_flops
        operand_bytes = 4 * (m * k + k * n + m * n)
        memory = operand_bytes / self.config.memory_bandwidth_bytes_per_sec
        return max(compute, memory) + self.config.kernel_launch_sec

    def elementwise_seconds(self, elements: int, flops_per_element: float = 1.0) -> float:
        flops = elements * flops_per_element
        compute = flops / self.config.effective_flops
        memory = 8.0 * elements / self.config.memory_bandwidth_bytes_per_sec
        return max(compute, memory) + self.config.kernel_launch_sec

    def transfer_seconds(self, nbytes: int) -> float:
        if nbytes == 0:
            return 0.0
        return (
            self.config.pcie_latency_sec
            + nbytes / self.config.pcie_bandwidth_bytes_per_sec
        )

    def fft2_seconds(self, m: int, n: int) -> float:
        if not self.config.use_library_fft:
            return super().fft2_seconds(m, n)
        from repro.hw.cpu import _library_fft_seconds

        return _library_fft_seconds(
            m,
            n,
            self.config.effective_flops,
            self.config.memory_bandwidth_bytes_per_sec,
            self.config.kernel_launch_sec,
        )

    def energy_joules(self, seconds: float) -> float:
        """Crude energy estimate at TDP for the elapsed simulated time."""
        return seconds * self.config.tdp_watts
