"""Analytic CPU execution model (the paper's baseline configuration).

The paper's baseline is "ordinary execution with CPU" on an Intel i7
3.70 GHz host.  The model prices every tensor operation with a roofline:
``max(compute, memory)`` plus a per-operation dispatch overhead that
reflects framework/interpreter costs (the paper's stack was Python +
PyTorch).  fp32 arithmetic, no systolic reuse, no quantization -- the
structural reasons the CPU loses that Section II-A lays out.

Default constants are calibrated (see ``benchmarks/``) so the three-way
CPU/GPU/TPU ratios land in the paper's reported bands; each constant is
physically plausible for the named part (an i7-class 6-core with AVX2
runs dense fp32 BLAS at a few hundred GFLOP/s peak; sustained library
throughput under a Python driver is far lower).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import Device


@dataclass(frozen=True)
class CpuConfig:
    """Parameters of the modelled host CPU."""

    name: str = "i7-3.70GHz"
    clock_hz: float = 3.7e9
    cores: int = 6
    flops_per_cycle_per_core: float = 32.0  # AVX2: 2 FMA ports x 8 lanes
    # Sustained fraction of peak under the paper's Python/PyTorch driver
    # (~28 GFLOP/s effective).  Calibrated jointly with the GPU/TPU
    # defaults so the three-way Table I/II and Figure 4 ratios land in
    # the paper's reported bands -- see EXPERIMENTS.md "Calibration".
    efficiency: float = 0.040
    memory_bandwidth_bytes_per_sec: float = 40e9
    op_overhead_sec: float = 2e-6  # per-op framework dispatch
    tdp_watts: float = 95.0
    # The paper deploys its matmul-form algorithm on every device
    # ("same optimization methods are also deployed on CPU and GPU").
    # Setting use_library_fft prices 2-D transforms with an O(n log n)
    # library FFT instead -- the stronger baseline probed by the
    # threat-to-validity ablation in benchmarks/bench_ablations.py.
    use_library_fft: bool = False

    def __post_init__(self) -> None:
        if self.clock_hz <= 0 or self.cores <= 0:
            raise ValueError("clock and core count must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.memory_bandwidth_bytes_per_sec <= 0:
            raise ValueError("memory bandwidth must be positive")
        if self.op_overhead_sec < 0:
            raise ValueError("op overhead cannot be negative")

    @property
    def peak_flops(self) -> float:
        return self.clock_hz * self.cores * self.flops_per_cycle_per_core

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.efficiency


class CpuDevice(Device):
    """The baseline device: fp32 roofline plus per-op overhead."""

    def __init__(self, config: CpuConfig | None = None) -> None:
        self.config = config or CpuConfig()
        super().__init__(name=self.config.name)

    def matmul_seconds(self, m: int, k: int, n: int) -> float:
        flops = 2.0 * m * k * n
        compute = flops / self.config.effective_flops
        operand_bytes = 4 * (m * k + k * n + m * n)  # fp32 in, fp32 out
        memory = operand_bytes / self.config.memory_bandwidth_bytes_per_sec
        return max(compute, memory) + self.config.op_overhead_sec

    def elementwise_seconds(self, elements: int, flops_per_element: float = 1.0) -> float:
        flops = elements * flops_per_element
        compute = flops / self.config.effective_flops
        memory = 8.0 * elements / self.config.memory_bandwidth_bytes_per_sec
        return max(compute, memory) + self.config.op_overhead_sec

    def transfer_seconds(self, nbytes: int) -> float:
        # Host memory is local to the CPU: a copy through DRAM.
        if nbytes == 0:
            return 0.0
        return nbytes / self.config.memory_bandwidth_bytes_per_sec

    def fft2_seconds(self, m: int, n: int) -> float:
        if not self.config.use_library_fft:
            return super().fft2_seconds(m, n)
        return _library_fft_seconds(
            m,
            n,
            self.config.effective_flops,
            self.config.memory_bandwidth_bytes_per_sec,
            self.config.op_overhead_sec,
        )

    def energy_joules(self, seconds: float) -> float:
        """Crude energy estimate at TDP for the elapsed simulated time."""
        return seconds * self.config.tdp_watts


def _library_fft_seconds(
    m: int,
    n: int,
    effective_flops: float,
    memory_bandwidth: float,
    overhead_sec: float,
) -> float:
    """Roofline cost of a library (Cooley-Tukey) 2-D FFT.

    The row-column algorithm performs ~5*N*log2(N) flops per 1-D
    transform; a full 2-D pass touches every element twice.
    """
    import math

    elements = m * n
    flops = 5.0 * elements * (math.log2(max(2, m)) + math.log2(max(2, n)))
    compute = flops / effective_flops
    memory = 2.0 * 16.0 * elements / memory_bandwidth  # complex128 in/out
    return max(compute, memory) + overhead_sec
