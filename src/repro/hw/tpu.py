"""The simulated TPU: cores built around the MXU, and the multi-core chip.

:class:`TpuCore` is one TPU core as the paper describes it: a Matrix
Multiply Unit (systolic array, Section II-A / Figure 1) fed from a
unified buffer, with a vector unit for elementwise work and an HBM
slice.  Every tensor operation is *lowered* to the small ISA of
:mod:`repro.hw.isa` and priced by the scheduler, so instruction mixes
are inspectable and overlap policies are ablatable.

:class:`TpuChip` aggregates ``num_cores`` cores (the paper's experiments
use a 128-core TPUv2 slice) behind a host link with a per-launch
dispatch latency, plus a ring interconnect implementing
``cross_replica_sum`` for the reassembly steps of Algorithm 1.

The chip intentionally does **not** implement the sharded 2-D FFT --
that *is* the paper's contribution and lives in
:mod:`repro.core.decomposition`, which drives the cores through this
interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.hw.device import Device
from repro.hw.interconnect import Interconnect, InterconnectConfig
from repro.hw.isa import Instruction, Opcode, Program, Scheduler
from repro.hw.memory import (
    GIB,
    MemoryRegion,
    hbm_spec,
    unified_buffer_spec,
)
from repro.hw.mxu import Mxu, MxuConfig, matmul_cycles


@dataclass(frozen=True)
class TpuCoreConfig:
    """Parameters of one TPU core."""

    clock_hz: float = 700e6
    mxu: MxuConfig = field(default_factory=MxuConfig)
    vpu_lanes: int = 128
    vpu_ops_per_lane_per_cycle: float = 2.0
    hbm_capacity_bytes: int = 8 * GIB
    hbm_bandwidth_bytes_per_sec: float = 300e9
    unified_buffer_bytes: int = 24 * 1024 * 1024
    overlap_dma: bool = True
    overlap_weight_load: bool = True
    tdp_watts: float = 40.0

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")
        if self.vpu_lanes <= 0 or self.vpu_ops_per_lane_per_cycle <= 0:
            raise ValueError("VPU geometry must be positive")


class TpuCore(Device):
    """One TPU core: MXU + VPU + unified buffer + HBM slice.

    Cost flows through the ISA: each public op lowers to instructions,
    the scheduler prices them, and (when ``trace`` is enabled) the
    lowered program is retained for inspection.
    """

    def __init__(self, config: TpuCoreConfig | None = None, core_id: int = 0,
                 trace: bool = False) -> None:
        self.config = config or TpuCoreConfig()
        super().__init__(name=f"tpu-core-{core_id}")
        self.core_id = core_id
        self.mxu = Mxu(self.config.mxu)
        self.hbm = MemoryRegion(
            hbm_spec(
                capacity_bytes=self.config.hbm_capacity_bytes,
                bandwidth=self.config.hbm_bandwidth_bytes_per_sec,
            )
        )
        self.unified_buffer = MemoryRegion(
            unified_buffer_spec(self.config.unified_buffer_bytes)
        )
        self.scheduler = Scheduler(
            clock_hz=self.config.clock_hz,
            overlap_dma=self.config.overlap_dma,
            overlap_weight_load=self.config.overlap_weight_load,
        )
        self.trace_enabled = trace
        self.trace_program = Program()

    # ------------------------------------------------------------------
    # Lowering helpers
    # ------------------------------------------------------------------
    def _price(self, program: Program) -> float:
        result = self.scheduler.run(program)
        if self.trace_enabled:
            self.trace_program.extend(program)
        return result.seconds

    def _matmul_program(self, m: int, k: int, n: int) -> Program:
        stats = matmul_cycles(m, k, n, self.config.mxu)
        program = Program()
        load_per_tile = self.config.mxu.rows
        stream_cycles = max(0, stats.cycles - stats.weight_load_cycles + stats.hidden_weight_load_cycles)
        per_tile_stream = max(1, stream_cycles // stats.tiles)
        for tile in range(stats.tiles):
            program.emit(Instruction(Opcode.LOAD_WEIGHTS, cycles=load_per_tile,
                                     label=f"w{tile}"))
            program.emit(Instruction(Opcode.MATMUL, cycles=per_tile_stream,
                                     label=f"mm{tile}"))
        return program

    # ------------------------------------------------------------------
    # Device cost hooks
    # ------------------------------------------------------------------
    def matmul_seconds(self, m: int, k: int, n: int, precision=None) -> float:
        """Cycle-model matmul time, optionally at an overridden precision.

        ``precision`` (a :class:`~repro.hw.quantize.PrecisionSpec` or
        name) reprices the product as if the MXU ran in that numeric
        mode -- the hook the quantized batched-convolution axis uses to
        translate int8/bf16 execution into cycles; ``None`` uses the
        core's configured :class:`~repro.hw.mxu.MxuConfig` precision.
        """
        mxu = self.config.mxu
        if precision is not None:
            from repro.hw.quantize import precision_spec

            mxu = replace(mxu, precision=precision_spec(precision).name)
        stats = matmul_cycles(m, k, n, mxu)
        return stats.cycles / self.config.clock_hz

    def elementwise_seconds(self, elements: int, flops_per_element: float = 1.0) -> float:
        lanes = self.config.vpu_lanes * self.config.vpu_ops_per_lane_per_cycle
        cycles = np.ceil(elements * flops_per_element / lanes)
        return float(cycles) / self.config.clock_hz

    def transfer_seconds(self, nbytes: int) -> float:
        # Core-local transfer between HBM and the unified buffer.
        return self.hbm.transfer_seconds(nbytes)

    # ------------------------------------------------------------------
    # Numeric hooks: int8 quantization / bf16 rounding via the MXU
    # ------------------------------------------------------------------
    def _matmul_compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        product, _ = self.mxu.matmul(a, b)
        return product

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product on the MXU, priced via the lowered ISA program."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError(f"matmul expects 2-D operands, got {a.shape} and {b.shape}")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
        m, k = a.shape
        n = b.shape[1]
        self._check_hbm_working_set(m, k, n, complex_values=np.iscomplexobj(a) or np.iscomplexobj(b))
        if np.iscomplexobj(a) or np.iscomplexobj(b):
            factor = self.complex_matmul_real_products
            program = Program()
            for _ in range(factor):
                program.extend(self._matmul_program(m, k, n))
            seconds = self._price(program)
            result = self._complex_matmul_compute(a, b)
            self.stats.record("matmul_complex", seconds, macs=factor * m * k * n)
            return result
        program = self._matmul_program(m, k, n)
        seconds = self._price(program)
        result = self._matmul_compute(a, b)
        self.stats.record("matmul", seconds, macs=m * k * n)
        return result

    def _check_hbm_working_set(
        self, m: int, k: int, n: int, complex_values: bool = False
    ) -> None:
        """Reject working sets the core's HBM slice cannot hold.

        Operands and the result must be resident; complex operands store
        separate real/imaginary planes.  A violation raises
        :class:`repro.hw.memory.MemoryCapacityError` instead of silently
        producing optimistic timing.
        """
        bytes_per_element = self.config.mxu.spec.bytes_per_element
        planes = 2 if complex_values else 1
        working_set = planes * bytes_per_element * (m * k + k * n + m * n)
        if working_set > self.hbm.spec.capacity_bytes:
            from repro.hw.memory import MemoryCapacityError

            raise MemoryCapacityError(
                f"{self.name}: matmul working set {working_set} B exceeds the "
                f"core's HBM slice of {self.hbm.spec.capacity_bytes} B "
                f"({m}x{k} @ {k}x{n}, {self.config.mxu.precision})"
            )

    def utilization(self) -> float:
        """Achieved-vs-peak MAC utilization over the accumulated stats."""
        peak = self.config.mxu.macs_per_cycle * self.config.clock_hz
        if self.stats.seconds == 0:
            return 0.0
        return self.stats.macs / (self.stats.seconds * peak)

    def energy_joules(self, seconds: float) -> float:
        """Crude energy estimate at core TDP."""
        return seconds * self.config.tdp_watts


@dataclass(frozen=True)
class TpuChipConfig:
    """A pod slice: many cores behind one host link.

    Defaults mirror the paper's setup: TPUv2, 128 cores, 64 GB of HBM in
    aggregate (8 GiB per core here), and a Colab-style networked host
    attachment whose round-trip ``dispatch_latency_sec`` dominates small
    launches -- the practical reason measured TPU speedups sit at
    10-70x rather than the raw ALU ratio of several thousand.
    """

    num_cores: int = 128
    core: TpuCoreConfig = field(default_factory=TpuCoreConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    # Colab-style networked attachment: ~0.6 GB/s effective gRPC feed
    # bandwidth and a 26 ms program-dispatch round trip.  These two
    # overheads -- not MXU throughput -- bound the measured speedups at
    # the paper's workload sizes (its own numbers imply the same), and
    # they are calibrated jointly with the CPU/GPU defaults; see
    # EXPERIMENTS.md "Calibration".
    host_bandwidth_bytes_per_sec: float = 0.6e9
    dispatch_latency_sec: float = 26e-3

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ValueError("need at least one core")
        if self.host_bandwidth_bytes_per_sec <= 0:
            raise ValueError("host bandwidth must be positive")
        if self.dispatch_latency_sec < 0:
            raise ValueError("dispatch latency cannot be negative")


class TpuChip:
    """A collection of TPU cores plus the fabric joining them.

    Not itself a :class:`Device`: op-level sharding policy (Algorithm 1,
    block-matmul parallelism) is the paper's contribution and lives in
    ``repro.core``.  The chip supplies the mechanisms those policies
    need: per-core execution, dispatch/infeed/outfeed accounting, and
    cross-replica reductions.
    """

    def __init__(self, config: TpuChipConfig | None = None, trace: bool = False) -> None:
        self.config = config or TpuChipConfig()
        self.cores = [
            TpuCore(self.config.core, core_id=i, trace=trace)
            for i in range(self.config.num_cores)
        ]
        self.interconnect = Interconnect(self.config.interconnect)
        self.stats_seconds = 0.0
        self.event_log: list[tuple[str, float]] = []

    @property
    def num_cores(self) -> int:
        return self.config.num_cores

    def _record(self, event: str, seconds: float) -> float:
        self.stats_seconds += seconds
        self.event_log.append((event, seconds))
        return seconds

    def dispatch(self) -> float:
        """One host->device program launch (round trip)."""
        return self._record("dispatch", self.config.dispatch_latency_sec)

    def infeed_seconds(self, nbytes: int) -> float:
        """Stream input bytes from host to chip."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return self._record(
            "infeed", nbytes / self.config.host_bandwidth_bytes_per_sec
        )

    def outfeed_seconds(self, nbytes: int) -> float:
        """Stream result bytes from chip to host."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return self._record(
            "outfeed", nbytes / self.config.host_bandwidth_bytes_per_sec
        )

    def infeed_overlap_seconds(self, seconds: float) -> float:
        """Credit host-link time hidden by double-buffered infeed.

        The chip's infeed queue holds the next program's data while the
        current one computes (the overlapped-infeed discipline the paper
        leans on to amortize the Colab host link), so a pipelined
        driver can hide part of each dispatch + infeed under the
        previous wave's compute.  Recorded as a *negative* event so the
        chip ledger shows the hidden time explicitly --
        ``event_count("infeed_overlap")`` audits how many pipeline
        scopes credited it -- while every dispatch/infeed/outfeed event
        stays exactly as serial execution logged it.
        """
        if seconds < 0:
            raise ValueError("cannot credit a negative overlap")
        return self._record("infeed_overlap", -seconds)

    def cross_replica_sum_seconds(self, nbytes: int, num_cores: int | None = None) -> float:
        """The paper's ``tf.cross_replica_sum`` reassembly barrier."""
        cores = self.num_cores if num_cores is None else num_cores
        return self._record(
            "cross_replica_sum",
            self.interconnect.all_reduce_seconds(nbytes, cores),
        )

    def all_gather_seconds(self, nbytes_per_core: int, num_cores: int | None = None) -> float:
        """Concatenate per-core shards onto every core (stage handoff)."""
        cores = self.num_cores if num_cores is None else num_cores
        return self._record(
            "all_gather",
            self.interconnect.all_gather_seconds(nbytes_per_core, cores),
        )

    def event_count(self, event: str) -> int:
        """Occurrences of one event kind (``dispatch``, ``infeed``, ...)
        in the chip ledger.

        The per-event audit trail behind fleet-scale claims: a wave-fused
        run should show one dispatch per *wave* where per-pair execution
        shows at least one per pair.
        """
        return sum(1 for name, _ in self.event_log if name == event)

    def reset(self) -> None:
        """Clear chip-level and per-core ledgers."""
        self.stats_seconds = 0.0
        self.event_log.clear()
        for core in self.cores:
            core.reset_stats()

    def total_core_seconds(self) -> float:
        """Sum of busy time across cores (not elapsed time)."""
        return sum(core.stats.seconds for core in self.cores)

    def max_core_seconds(self) -> float:
        """Elapsed compute time of the slowest core (the parallel critical path)."""
        if not self.cores:
            return 0.0
        return max(core.stats.seconds for core in self.cores)
