"""The common device abstraction shared by the CPU, GPU and TPU backends.

The paper deploys *the same algorithm* (matmul-form Fourier transforms,
data decomposition, parallel computation) on three hardware
configurations and compares time.  We mirror that: a :class:`Device`
executes tensor operations *functionally* (numpy math, with
device-specific numeric effects such as int8 quantization) while
accumulating *simulated time* in a :class:`DeviceStats` ledger.

Simulated seconds come from each backend's cost model -- they are the
numbers the paper's tables report.  Wall-clock time of the simulation
itself is irrelevant and never mixed in.

Backends implement the ``_*_seconds`` cost hooks and may override the
``_*_compute`` numeric hooks; the base class provides the operation
bookkeeping, composite ops (FFT-form convolution, chunk-streamed
batched convolution) and cost-only variants used by large workload
sweeps where materializing results is pointless.

Two program-level scopes model launch structure: :meth:`Device.program`
brackets one dispatched program (infeed / compute / outfeed), and
:meth:`Device.pipeline` double-buffers a *sequence* of programs --
while program ``i`` computes, program ``i+1``'s dispatch and infeed
stream into the spare buffer, so elapsed time follows
:func:`pipelined_elapsed_seconds` (``infeed_0 + sum(max(compute_i +
outfeed_i, infeed_{i+1})) + outfeed_last``, intermediate outfeeds
riding with their program's compute) and the hidden host-link time is
credited back to the ledger as a negative ``infeed_overlap`` row.
"""

from __future__ import annotations

import abc
import contextlib
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.fft.convolution import (
    _validate_batch_kernel,
    fft_circular_convolve2d,
    fft_circular_convolve2d_batch,
    fft_circular_convolve2d_chunks,
)
from repro.fft.fft2d import fft2, ifft2
from repro.hw.quantize import resolve_precision
from repro.obs.tracer import tracer

#: Real flops one complex point-wise op costs per element: a complex
#: multiply (or divide, to first order) is 4 real multiplies + 2 adds
#: on the critical multiplier path, priced as 4 flops; a complex add or
#: subtract is just 2 real adds.
_COMPLEX_HADAMARD_FLOPS = {"mul": 4.0, "div": 4.0, "add": 2.0, "sub": 2.0}


@dataclass(frozen=True)
class PipelineStage:
    """One program's cost split, as a double-buffering pipeline sees it.

    ``prologue`` is the host-link preamble that a double-buffered
    pipeline can hide under the *previous* stage's compute (program
    dispatch + input infeed); ``body`` is the on-device work; and
    ``epilogue`` the result outfeed.
    """

    prologue: float
    body: float
    epilogue: float

    @property
    def total(self) -> float:
        return self.prologue + self.body + self.epilogue


def pipelined_elapsed_seconds(stages) -> float:
    """Elapsed time of stages run double-buffered instead of serially.

    While stage ``i`` computes, stage ``i+1``'s prologue (dispatch +
    infeed) streams into the spare buffer, so only the part of each
    prologue that outlasts the previous compute is exposed::

        elapsed = prologue_0
                + sum_i max(body_i [+ epilogue_i], prologue_{i+1})
                + epilogue_last

    Intermediate epilogues ride with their stage's body (the host link
    is full duplex: wave ``i``'s outfeed and wave ``i+1``'s infeed are
    opposite directions); the last epilogue has nothing left to overlap
    and is charged in full.  A single stage degenerates to its serial
    total, and the result is never above the serial sum -- overlap can
    only hide time, not add it.
    """
    stages = list(stages)
    if not stages:
        return 0.0
    elapsed = stages[0].prologue
    for index, stage in enumerate(stages):
        last = index == len(stages) - 1
        work = stage.body + (0.0 if last else stage.epilogue)
        next_prologue = 0.0 if last else stages[index + 1].prologue
        elapsed += max(work, next_prologue)
    return elapsed + stages[-1].epilogue


class _PipelineLedger:
    """Stages observed inside one :meth:`Device.pipeline` scope."""

    def __init__(self) -> None:
        self.stages: list[PipelineStage] = []

    def add_stage(self, prologue: float, body: float, epilogue: float) -> None:
        self.stages.append(PipelineStage(prologue, body, epilogue))

    def overlap_savings(self) -> float:
        serial = sum(stage.total for stage in self.stages)
        return serial - pipelined_elapsed_seconds(self.stages)


@dataclass
class DeviceStats:
    """Accumulated simulated-execution ledger for one device."""

    seconds: float = 0.0
    macs: int = 0
    bytes_moved: int = 0
    op_counts: Counter = field(default_factory=Counter)
    op_seconds: dict[str, float] = field(default_factory=dict)

    def record(self, op: str, seconds: float, macs: int = 0, bytes_moved: int = 0) -> None:
        if seconds < 0:
            raise ValueError(f"negative simulated time for {op!r}")
        self.seconds += seconds
        self.macs += macs
        self.bytes_moved += bytes_moved
        self.op_counts[op] += 1
        self.op_seconds[op] = self.op_seconds.get(op, 0.0) + seconds

    def credit(self, op: str, seconds: float) -> None:
        """Subtract overlapped time from the ledger, leaving an audit row.

        The double-buffering credit of :meth:`Device.pipeline`: every
        individual op record stays untouched (op counts and per-op
        seconds audit exactly as serial execution), while ``op`` appears
        with *negative* accumulated seconds so the hidden time is
        visible rather than silently vanished.
        """
        if seconds < 0:
            raise ValueError(f"negative credit for {op!r}")
        self.seconds -= seconds
        self.op_counts[op] += 1
        self.op_seconds[op] = self.op_seconds.get(op, 0.0) - seconds

    def merge(self, other: "DeviceStats") -> None:
        self.seconds += other.seconds
        self.macs += other.macs
        self.bytes_moved += other.bytes_moved
        self.op_counts.update(other.op_counts)
        for op, sec in other.op_seconds.items():
            self.op_seconds[op] = self.op_seconds.get(op, 0.0) + sec

    def copy(self) -> "DeviceStats":
        fresh = DeviceStats()
        fresh.merge(self)
        return fresh


class Device(abc.ABC):
    """A hardware backend: functional execution + simulated timing.

    Numeric results flow back to the caller; simulated seconds accumulate
    in :attr:`stats` until :meth:`take_stats` harvests them.
    """

    #: Number of real multiplies one complex multiply costs on hardware
    #: without native complex support (4 = naive; 3 = Karatsuba-style).
    complex_matmul_real_products: int = 4

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = DeviceStats()
        self._program_depth = 0
        self._pipeline: _PipelineLedger | None = None
        #: Simulated seconds this device's trace lane has advanced past
        #: what :attr:`stats` currently holds -- harvested ledgers and
        #: overlap credits move the base forward so span positions stay
        #: monotone across ``take_stats`` / ``reset_stats`` / credits.
        self._trace_base = 0.0

    # ------------------------------------------------------------------
    # Stats plumbing
    # ------------------------------------------------------------------
    @property
    def trace_seconds(self) -> float:
        """This device's monotone trace-lane position (simulated s)."""
        return self._trace_base + self.stats.seconds

    def reset_stats(self) -> None:
        self._trace_base += self.stats.seconds
        self.stats = DeviceStats()

    def take_stats(self) -> DeviceStats:
        """Return the accumulated ledger and start a fresh one."""
        harvested = self.stats
        self._trace_base += harvested.seconds
        self.stats = DeviceStats()
        return harvested

    # ------------------------------------------------------------------
    # Cost hooks every backend must provide (simulated seconds)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def matmul_seconds(self, m: int, k: int, n: int) -> float:
        """Simulated time of one real ``m x k @ k x n`` product."""

    @abc.abstractmethod
    def elementwise_seconds(self, elements: int, flops_per_element: float = 1.0) -> float:
        """Simulated time of an elementwise kernel over ``elements`` values."""

    @abc.abstractmethod
    def transfer_seconds(self, nbytes: int) -> float:
        """Simulated time to move ``nbytes`` between host and device."""

    # ------------------------------------------------------------------
    # Capability introspection (pod placement consults these)
    # ------------------------------------------------------------------
    @property
    def launch_latency_seconds(self) -> float:
        """Host round-trip latency of one program launch.

        Zero for eager backends (their per-op overheads live in the op
        costs themselves); accelerator backends with an explicit
        dispatch round trip override this so the pod's asynchronous
        per-chip host links (:class:`~repro.hw.pod.HostLink`) know how
        much launch latency a wave can hide under compute.
        """
        return 0.0

    @property
    def hbm_capacity_bytes(self) -> int | None:
        """On-device memory capacity, or ``None`` when unmodeled.

        Pod placement (:meth:`repro.core.fleet.FleetSchedule.plan`)
        consults this so per-chip working sets are capacity-constrained
        rather than assumed to fit.
        """
        return None

    # ------------------------------------------------------------------
    # Numeric hooks (backends override to inject quantization etc.)
    # ------------------------------------------------------------------
    def _matmul_compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.asarray(a) @ np.asarray(b)

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Real or complex matrix product with simulated timing."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError(f"matmul expects 2-D operands, got {a.shape} and {b.shape}")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
        m, k = a.shape
        n = b.shape[1]
        if np.iscomplexobj(a) or np.iscomplexobj(b):
            factor = self.complex_matmul_real_products
            seconds = factor * self.matmul_seconds(m, k, n)
            result = self._complex_matmul_compute(a, b)
            self.stats.record("matmul_complex", seconds, macs=factor * m * k * n)
            return result
        seconds = self.matmul_seconds(m, k, n)
        result = self._matmul_compute(a, b)
        self.stats.record("matmul", seconds, macs=m * k * n)
        return result

    def _complex_matmul_compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.complex128)
        b = np.asarray(b, dtype=np.complex128)
        real = self._matmul_compute(a.real, b.real) - self._matmul_compute(a.imag, b.imag)
        imag = self._matmul_compute(a.real, b.imag) + self._matmul_compute(a.imag, b.real)
        return real + 1j * imag

    def hadamard(self, a: np.ndarray, b: np.ndarray, op: str = "mul") -> np.ndarray:
        """Point-wise combine: ``mul``, ``div``, ``add`` or ``sub``.

        ``div`` is the paper's Eq. 4 Hadamard division; callers wanting
        regularization add it to the denominator beforehand.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if a.shape != b.shape:
            raise ValueError(f"hadamard operands must match, got {a.shape} and {b.shape}")
        operations = {
            "mul": np.multiply,
            "div": np.divide,
            "add": np.add,
            "sub": np.subtract,
        }
        if op not in operations:
            raise ValueError(f"unknown hadamard op {op!r}; expected one of {sorted(operations)}")
        if np.iscomplexobj(a) or np.iscomplexobj(b):
            flops_per_element = _COMPLEX_HADAMARD_FLOPS[op]
        else:
            flops_per_element = 1.0
        seconds = self.elementwise_seconds(a.size, flops_per_element=flops_per_element)
        result = operations[op](a, b)
        self.stats.record(f"hadamard_{op}", seconds)
        return result

    def conjugate(self, a: np.ndarray) -> np.ndarray:
        """Complex conjugate (VPU sign-flip pass over the imaginary plane)."""
        a = np.asarray(a)
        seconds = self.elementwise_seconds(a.size, flops_per_element=0.5)
        result = np.conj(a)
        self.stats.record("conjugate", seconds)
        return result

    def scale(self, a: np.ndarray, factor: float) -> np.ndarray:
        """Multiply by a scalar (VPU elementwise pass)."""
        a = np.asarray(a)
        seconds = self.elementwise_seconds(a.size)
        result = a * factor
        self.stats.record("scale", seconds)
        return result

    def transpose(self, a: np.ndarray) -> np.ndarray:
        """Matrix transpose (memory shuffle, no arithmetic)."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError(f"transpose expects a matrix, got shape {a.shape}")
        seconds = self.elementwise_seconds(a.size, flops_per_element=0.5)
        result = a.T.copy()
        self.stats.record("transpose", seconds)
        return result

    @contextlib.contextmanager
    def program(self, infeed_bytes: int = 0, outfeed_bytes: int = 0):
        """Scope one dispatched program: charges data movement around it.

        Template method: the entry/exit cost semantics live in the
        :meth:`_begin_program` / :meth:`_end_program` hooks (CPU/GPU
        price the host transfers bracketing a batch of eager ops;
        accelerator backends add their launch round trip, e.g. the
        TPU's dispatch latency), while the depth bookkeeping behind
        :attr:`in_program` stays here so every backend gets it right.

        Inside a :meth:`pipeline` scope, each *top-level* program also
        registers as one pipeline stage, its ledger deltas split into
        prologue (dispatch + infeed), body (ops inside the scope) and
        epilogue (outfeed) for the double-buffering credit.
        """
        is_stage = self._pipeline is not None and self._program_depth == 0
        traced = tracer.enabled
        before = self.stats.seconds
        self._begin_program(infeed_bytes)
        after_begin = self.stats.seconds
        self._program_depth += 1
        try:
            yield self
        finally:
            self._program_depth -= 1
        before_end = self.stats.seconds
        self._end_program(outfeed_bytes)
        if is_stage and self._pipeline is not None:
            self._pipeline.add_stage(
                prologue=after_begin - before,
                body=before_end - after_begin,
                epilogue=self.stats.seconds - before_end,
            )
        if traced and tracer.enabled:
            end = self.stats.seconds
            base = tracer.origin + self._trace_base
            pid = tracer.pid_for(self)
            tracer.complete(
                "program", "device", base + before, end - before, pid, 0,
                {
                    "infeed_bytes": int(infeed_bytes),
                    "outfeed_bytes": int(outfeed_bytes),
                    "prologue": after_begin - before,
                    "body": before_end - after_begin,
                    "epilogue": end - before_end,
                    "depth": self._program_depth,
                },
            )
            if after_begin > before:
                tracer.complete(
                    "infeed", "device", base + before, after_begin - before,
                    pid, 0, {"bytes": int(infeed_bytes)},
                )
            if end > before_end:
                tracer.complete(
                    "outfeed", "device", base + before_end, end - before_end,
                    pid, 0, {"bytes": int(outfeed_bytes)},
                )

    @contextlib.contextmanager
    def pipeline(self):
        """Scope a double-buffered sequence of program launches.

        While one program computes, the next program's dispatch and
        infeed stream into the spare buffer -- the wave-aware infeed
        pipelining of the fleet executor.  Every program opened inside
        this scope becomes one stage; on exit the overlap savings
        (serial sum minus :func:`pipelined_elapsed_seconds`) are
        credited back to the ledger as a negative ``infeed_overlap``
        row, so elapsed time drops while every individual op record --
        dispatch counts, compute seconds, transfer bytes -- stays
        exactly as serial execution would have written it.

        With zero or one stage the credit is zero and the ledger is
        untouched, so a pipelined single-wave run times identically to
        a serial one.  Scopes do not nest.
        """
        if self._pipeline is not None:
            raise RuntimeError("pipeline scopes do not nest")
        self._pipeline = _PipelineLedger()
        traced = tracer.enabled
        start = self.stats.seconds
        try:
            yield self
        finally:
            ledger = self._pipeline
            self._pipeline = None
            savings = ledger.overlap_savings()
            if traced and tracer.enabled:
                end = self.stats.seconds  # before the credit lands
                base = tracer.origin + self._trace_base
                pid = tracer.pid_for(self)
                tracer.complete(
                    "pipeline", "device", base + start, end - start, pid, 0,
                    {"stages": len(ledger.stages), "infeed_overlap": savings},
                )
                if savings > 0:
                    tracer.instant(
                        "infeed_overlap", "device", base + end, pid, 0,
                        {"seconds": savings},
                    )
            if savings > 0:
                self._credit_overlap(savings)

    def _credit_overlap(self, seconds: float) -> None:
        """Apply the pipeline overlap credit (backends may extend)."""
        self.stats.credit("infeed_overlap", seconds)
        # Keep the trace lane monotone: the credit rewinds the ledger,
        # not the timeline -- spans already sit at their true positions.
        self._trace_base += seconds

    def _begin_program(self, infeed_bytes: int) -> None:
        """Cost of entering a program scope (override for launch semantics)."""
        if infeed_bytes:
            self.host_to_device(infeed_bytes)

    def _end_program(self, outfeed_bytes: int) -> None:
        """Cost of leaving a program scope (override for launch semantics)."""
        if outfeed_bytes:
            self.device_to_host(outfeed_bytes)

    @property
    def in_program(self) -> bool:
        """True while executing inside a :meth:`program` scope.

        Batched operations consult this to decide whether they are part
        of an already-dispatched program (no extra launch cost) or a
        standalone launch of their own.
        """
        return self._program_depth > 0

    def host_to_device(self, nbytes: int) -> None:
        """Account an input DMA transfer."""
        seconds = self.transfer_seconds(nbytes)
        self.stats.record("host_to_device", seconds, bytes_moved=nbytes)

    def device_to_host(self, nbytes: int) -> None:
        """Account an output DMA transfer."""
        seconds = self.transfer_seconds(nbytes)
        self.stats.record("device_to_host", seconds, bytes_moved=nbytes)

    # ------------------------------------------------------------------
    # Fourier operations (matmul form -- the paper's Eq. 13 dataflow)
    # ------------------------------------------------------------------
    def fft2_seconds(self, m: int, n: int) -> float:
        """Simulated time of one 2-D DFT in matmul form.

        ``(W_M . x) . W_N`` = two complex products.  Backends with a
        cheaper native FFT (CPU/GPU running library FFTs) override this.
        """
        factor = self.complex_matmul_real_products
        return factor * (self.matmul_seconds(m, m, n) + self.matmul_seconds(m, n, n))

    def fft2(self, x: np.ndarray) -> np.ndarray:
        """2-D DFT with simulated matmul-form timing.

        The functional result uses the fast row-column kernels (bit-exact
        enough for all downstream math); the *cost* is the matmul form
        actually lowered onto this device.
        """
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"fft2 expects a matrix, got shape {x.shape}")
        m, n = x.shape
        seconds = self.fft2_seconds(m, n)
        result = fft2(x)
        factor = self.complex_matmul_real_products
        self.stats.record("fft2", seconds, macs=factor * (m * m * n + m * n * n))
        return result

    def _record_fft2_op(self, m: int, n: int, name: str = "fft2") -> None:
        """Ledger row for one 2-D transform the simulated device executes.

        Same seconds/macs as :meth:`fft2`/:meth:`ifft2` would record --
        used when the functional result comes from the shared host hot
        path instead of composing the device ops directly.
        """
        factor = self.complex_matmul_real_products
        self.stats.record(
            name, self.fft2_seconds(m, n), macs=factor * (m * m * n + m * n * n)
        )

    def ifft2(self, x: np.ndarray) -> np.ndarray:
        """Inverse 2-D DFT; same cost structure as :meth:`fft2`."""
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"ifft2 expects a matrix, got shape {x.shape}")
        m, n = x.shape
        seconds = self.fft2_seconds(m, n)
        result = ifft2(x)
        factor = self.complex_matmul_real_products
        self.stats.record("ifft2", seconds, macs=factor * (m * m * n + m * n * n))
        return result

    def conv2d_circular(self, x: np.ndarray, k: np.ndarray, precision=None) -> np.ndarray:
        """Circular convolution via the convolution theorem (Eq. 3).

        Composite of fft2(x), fft2(k), a Hadamard product and one
        inverse transform -- each op individually accounted.

        ``precision`` (a name or :class:`~repro.hw.quantize
        .PrecisionSpec`) rounds the input plane spatially and the kernel
        spectrum per component before the Hadamard product -- the
        quantized MXU datapath, numerically identical to the batched
        precision axis plane for plane.  The op ledger is unchanged
        (rounding is infeed-side staging, not an accounted kernel);
        ``None`` preserves exact execution.

        The functional result is delegated to the host hot path
        (:func:`repro.fft.convolution.fft_circular_convolve2d`: real
        half-spectrum transforms and the process-level kernel-spectrum
        cache), which is value-identical to composing the individual
        device ops; the *simulated* ledger still records the full
        fft2(k), fft2(x), Hadamard, ifft2 chain this device would
        execute -- host-side shortcuts never change simulated cost.
        """
        x = np.asarray(x)
        k = np.asarray(k)
        if x.shape != k.shape:
            raise ValueError(f"operands must share a shape, got {x.shape} and {k.shape}")
        if x.ndim != 2:
            raise ValueError(f"fft2 expects a matrix, got shape {x.shape}")
        spec = resolve_precision(precision)
        result = fft_circular_convolve2d(x, k, precision=spec)
        m, n = x.shape
        self._record_fft2_op(m, n)
        self._record_fft2_op(m, n)
        self.stats.record(
            "hadamard_mul", self.elementwise_seconds(m * n, flops_per_element=4.0)
        )
        self._record_fft2_op(m, n, name="ifft2")
        return result

    # ------------------------------------------------------------------
    # Batched convolution (the occlusion engine's device hot path)
    # ------------------------------------------------------------------
    def batch_conv_seconds(self, batch: int, m: int, n: int, precision=None) -> float:
        """Simulated time of ``batch`` circular convolutions that share
        one already-transformed ``m x n`` kernel spectrum.

        Eager default (CPU/GPU semantics): every plane in the batch
        still launches its own forward transform, Hadamard product and
        inverse transform, each paying the backend's per-op overhead --
        the CPU's ``op_overhead_sec`` framework dispatch or the GPU's
        ``kernel_launch_sec`` per CUDA kernel, inside the inherited
        per-op rooflines (and library-FFT pricing when configured).
        Only the kernel spectrum is amortized (its single ``fft2`` is
        priced separately by :meth:`conv2d_circular_batch`); data is
        assumed resident, staged by the caller's :meth:`program` scope.
        Accelerator backends override this to price one fused batched
        program instead.

        ``precision`` is accepted for interface symmetry and ignored
        here: eager backends *emulate* quantized arithmetic in float
        math, so a quantized batch costs what the exact batch costs --
        the paper's structural point that only the MXU turns reduced
        precision into speed (see
        :meth:`repro.core.backend.TpuBackend.batch_conv_seconds`).
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        per_plane = 2.0 * self.fft2_seconds(m, n) + self.elementwise_seconds(
            m * n, flops_per_element=4.0
        )
        return batch * per_plane

    def conv2d_circular_batch(
        self,
        x_batch: np.ndarray,
        kernel: np.ndarray,
        row_kernel: np.ndarray | None = None,
        precision=None,
    ) -> np.ndarray:
        """Circular convolution of a ``(batch, M, N)`` stack against shared kernels.

        ``kernel`` is one ``(M, N)`` plane shared by every row (a single
        pair's mask plan) or a ``(P, M, N)`` stack with ``row_kernel``
        mapping each input row to its kernel plane (a cross-pair wave:
        many pairs' mask plans fused into one batch, each keeping its own
        distilled kernel).  Kernel spectra are computed (and accounted)
        exactly **once** per call -- the batched engine's structural
        saving over looping :meth:`conv2d_circular`, which re-transforms
        the same kernel on every mask; a kernel stack is transformed as
        one spectrum batch (:meth:`_record_kernel_spectra`), so
        equal-shape pairs share one kernel-spectrum batch.  Functional
        results use the vectorized batch-FFT kernels and are
        bit-identical to the looped path; simulated cost is delegated to
        :meth:`_record_batch_conv` so eager and compiled backends can
        model their dispatch semantics.

        ``precision`` (a name or :class:`~repro.hw.quantize
        .PrecisionSpec`) quantizes the data stack spatially and the
        kernel spectra per plane inside the batched convolution (see
        :func:`repro.fft.convolution.fft_circular_convolve2d_batch`);
        results stay bit-identical to quantized :meth:`conv2d_circular`
        loops, and the cost hooks receive the spec so compiled backends
        can price the quantized transforms.
        """
        x_batch = np.asarray(x_batch)
        kernel = np.asarray(kernel)
        spec = resolve_precision(precision)
        if x_batch.ndim != 3:
            raise ValueError(
                f"conv2d_circular_batch expects a (batch, M, N) stack, got {x_batch.shape}"
            )
        if 0 in x_batch.shape:
            raise ValueError("conv2d_circular_batch of an empty batch is undefined")
        if kernel.ndim not in (2, 3) or x_batch.shape[1:] != kernel.shape[-2:]:
            raise ValueError(
                "batched convolution needs matching plane shapes, got "
                f"{x_batch.shape[1:]} and {kernel.shape[-2:]}"
            )
        m, n = kernel.shape[-2], kernel.shape[-1]
        # Validate the row->kernel mapping before anything is recorded,
        # so an invalid call cannot leave phantom spectrum entries in
        # the stats ledger.
        if kernel.ndim == 3:
            if 0 in kernel.shape:
                raise ValueError("conv2d_circular_batch kernel stack is empty")
            if row_kernel is None:
                raise ValueError("a kernel stack needs a row_kernel mapping")
            row_kernel = np.asarray(row_kernel, dtype=np.intp)
            if row_kernel.shape != (x_batch.shape[0],):
                raise ValueError(
                    f"row_kernel must map all {x_batch.shape[0]} rows, "
                    f"got shape {row_kernel.shape}"
                )
            if row_kernel.min() < 0 or row_kernel.max() >= kernel.shape[0]:
                raise ValueError(
                    f"row_kernel indices must lie in [0, {kernel.shape[0]}), "
                    f"got range [{row_kernel.min()}, {row_kernel.max()}]"
                )
        elif row_kernel is not None:
            raise ValueError("row_kernel requires a (P, M, N) kernel stack")
        # The simulated ledger prices the kernel transforms here exactly
        # as before (one spectrum batch per wave, or one "fft2" per
        # plan); the *functional* spectra come from the process-level
        # kernel-spectrum cache inside the batched convolution, so the
        # host skips re-transforms the simulated device still accounts.
        if kernel.ndim == 3:
            self._record_kernel_spectra(kernel.shape[0], m, n, spec=spec)
        else:
            self._record_fft2_op(m, n)  # once per plan, recorded as "fft2"
        result = fft_circular_convolve2d_batch(
            x_batch, kernel, row_kernel=row_kernel, precision=spec,
        )
        self._record_batch_conv(x_batch.shape[0], m, n, spec=spec)
        return result

    def conv2d_circular_batch_chunks(
        self,
        chunks,
        kernel: np.ndarray,
        num_rows: int,
        row_kernel: np.ndarray | None = None,
        precision=None,
    ):
        """Streamed :meth:`conv2d_circular_batch`: chunk iterator in and out.

        ``chunks`` yields ``(chunk, row_range)`` slices of a conceptual
        ``(num_rows, M, N)`` stack that is never materialized -- the
        lazy-mask-plan execution of streamed scoring and fleet waves;
        convolved chunks are yielded back in order, so peak memory is
        one chunk regardless of ``num_rows``.  Kernel semantics and
        numeric results match the dense form exactly, and so does the
        ledger: the kernel spectra are computed (and recorded) once up
        front, and one batched-convolution record for all ``num_rows``
        planes is committed when the stream is created -- a streamed
        batch costs precisely what the dense batch costs, it just never
        holds the stack (and, like a dispatched program, the cost
        stands even if the consumer abandons the stream early).
        ``precision`` behaves exactly as in :meth:`conv2d_circular_batch`
        -- per-plane quantization keeps the stream bit-identical to the
        quantized dense batch at every chunk size.
        """
        kernel = np.asarray(kernel)
        spec = resolve_precision(precision)
        if kernel.ndim not in (2, 3):
            raise ValueError(
                f"conv2d_circular_batch_chunks expects a (M, N) or (P, M, N) "
                f"kernel, got shape {kernel.shape}"
            )
        num_rows = int(num_rows)
        if num_rows <= 0:
            raise ValueError(f"num_rows must be positive, got {num_rows}")
        kernel, _, row_kernel, _ = _validate_batch_kernel(
            kernel, row_kernel, None, num_rows, "conv2d_circular_batch_chunks"
        )
        m, n = kernel.shape[-2], kernel.shape[-1]
        if kernel.ndim == 3:
            self._record_kernel_spectra(kernel.shape[0], m, n, spec=spec)
        else:
            self._record_fft2_op(m, n)  # once per stream, as "fft2"
        # The cost of the full batch is committed now, like a dispatched
        # program: the simulated device performs all num_rows
        # convolutions whether or not the host finishes reading the
        # stream, so an aborted consumer cannot leave a ledger holding
        # kernel spectra but no convolution work.
        self._record_batch_conv(num_rows, m, n, spec=spec)
        return fft_circular_convolve2d_chunks(
            chunks,
            kernel,
            row_kernel=row_kernel,
            num_rows=num_rows,
            precision=spec,
        )

    def kernel_spectrum_batch_seconds(
        self, batch: int, m: int, n: int, precision=None
    ) -> float:
        """Simulated time to transform a ``(batch, M, N)`` kernel stack.

        Eager default (CPU/GPU semantics): each kernel launches its own
        forward transform; ``precision`` is ignored here just as in
        :meth:`batch_conv_seconds` (eager float emulation).  Accelerator
        backends override this to price one fused wide transform for the
        whole stack at the requested precision.
        """
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        return batch * self.fft2_seconds(m, n)

    def _record_kernel_spectra(self, batch: int, m: int, n: int, spec=None) -> None:
        """Eager ledger for a kernel-spectrum batch (CPU/GPU semantics).

        One ``fft2`` record per kernel: eager backends transform each
        pair's kernel as its own launch, mirroring the per-plane records
        of :meth:`_record_batch_conv`.  The recorded seconds sum exactly
        to :meth:`kernel_spectrum_batch_seconds` (``spec`` is ignored
        here, matching that hook's eager semantics).
        """
        transform_seconds = self.fft2_seconds(m, n)
        factor = self.complex_matmul_real_products
        transform_macs = factor * (m * m * n + m * n * n)
        for _ in range(batch):
            self.stats.record("fft2_kernel", transform_seconds, macs=transform_macs)

    def _record_batch_conv(self, batch: int, m: int, n: int, spec=None) -> None:
        """Eager ledger for one batched convolution (CPU/GPU semantics).

        One record per per-plane operation: the batch executes as
        ``batch`` independent op chains, so op counts and per-op
        overheads are preserved -- only the kernel transform was
        amortized by the caller.  The recorded seconds sum exactly to
        :meth:`batch_conv_seconds` (``spec`` ignored, eager semantics).
        """
        transform_seconds = self.fft2_seconds(m, n)
        hadamard_seconds = self.elementwise_seconds(m * n, flops_per_element=4.0)
        factor = self.complex_matmul_real_products
        transform_macs = factor * (m * m * n + m * n * n)
        for _ in range(batch):
            self.stats.record("fft2_batch", transform_seconds, macs=transform_macs)
            self.stats.record("hadamard_mul_batch", hadamard_seconds)
            self.stats.record("ifft2_batch", transform_seconds, macs=transform_macs)

    # ------------------------------------------------------------------
    # Cost-only accounting (large workloads, e.g. Table I training time)
    # ------------------------------------------------------------------
    def account_matmul(self, m: int, k: int, n: int, count: int = 1, complex_ops: bool = False) -> float:
        """Record the cost of ``count`` matmuls without executing them."""
        factor = self.complex_matmul_real_products if complex_ops else 1
        seconds = count * factor * self.matmul_seconds(m, k, n)
        self.stats.record("matmul_accounted", seconds, macs=count * factor * m * k * n)
        return seconds

    def account_elementwise(self, elements: int, flops_per_element: float = 1.0, count: int = 1) -> float:
        """Record the cost of ``count`` elementwise kernels without executing."""
        seconds = count * self.elementwise_seconds(elements, flops_per_element)
        self.stats.record("elementwise_accounted", seconds)
        return seconds

    def account_transfer(self, nbytes: int, count: int = 1) -> float:
        """Record the cost of ``count`` host transfers without executing."""
        seconds = count * self.transfer_seconds(nbytes)
        self.stats.record("transfer_accounted", seconds, bytes_moved=count * nbytes)
        return seconds

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
