"""Lowering tensor-level op graphs into TPU instruction programs.

The eager backends dispatch one kernel per op; a compiled TPU program
fuses a whole computation -- e.g. the distillation solve's three
transforms and Hadamard stages -- into a single instruction stream with
one host round trip.  This module provides that lowering:

* an :class:`OpGraph` of named tensor ops (matmul / hadamard /
  transpose / host transfers) in execution order;
* :func:`lower` -- translate the graph into a :class:`repro.hw.isa.Program`
  for a given core configuration, expanding complex matmuls into real
  MXU passes and sizing every instruction's cycle/second cost;
* :func:`solve_graph` -- the canonical graph of the paper's Eq. 4 solve
  (the thing Figure 4 times);
* :func:`compiled_seconds` -- price a graph end to end under the core's
  scheduler (one dispatch, overlapped DMA), the counterpart of summing
  eager per-op costs.

The ablation bench compares fused-program pricing against eager per-op
pricing on the same graph -- the quantitative version of the paper's
"simple computation equivalent to one forward pass" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.isa import Instruction, Opcode, Program
from repro.hw.mxu import matmul_cycles
from repro.hw.tpu import TpuCoreConfig


@dataclass(frozen=True)
class Op:
    """One tensor-level operation in an :class:`OpGraph`.

    ``kind`` is one of ``matmul``, ``hadamard``, ``transpose``,
    ``read_host``, ``write_host``.  Shapes are element counts or matmul
    geometry; ``complex_values`` expands matmuls into the 4 (or 3) real
    MXU products and quadruples elementwise flops.
    """

    kind: str
    name: str = ""
    m: int = 0
    k: int = 0
    n: int = 0
    elements: int = 0
    nbytes: int = 0
    complex_values: bool = False

    def __post_init__(self) -> None:
        kinds = ("matmul", "hadamard", "transpose", "read_host", "write_host")
        if self.kind not in kinds:
            raise ValueError(f"unknown op kind {self.kind!r}; expected one of {kinds}")
        if self.kind == "matmul" and (self.m <= 0 or self.k <= 0 or self.n <= 0):
            raise ValueError(f"matmul op {self.name!r} needs positive m, k, n")
        if self.kind in ("hadamard", "transpose") and self.elements <= 0:
            raise ValueError(f"{self.kind} op {self.name!r} needs positive elements")
        if self.kind in ("read_host", "write_host") and self.nbytes <= 0:
            raise ValueError(f"{self.kind} op {self.name!r} needs positive nbytes")


@dataclass
class OpGraph:
    """An ordered tensor-op sequence to be lowered as one program."""

    ops: list[Op] = field(default_factory=list)

    def matmul(self, m: int, k: int, n: int, name: str = "", complex_values: bool = False) -> "OpGraph":
        self.ops.append(Op("matmul", name=name, m=m, k=k, n=n, complex_values=complex_values))
        return self

    def hadamard(self, elements: int, name: str = "", complex_values: bool = False) -> "OpGraph":
        self.ops.append(Op("hadamard", name=name, elements=elements, complex_values=complex_values))
        return self

    def transpose(self, elements: int, name: str = "") -> "OpGraph":
        self.ops.append(Op("transpose", name=name, elements=elements))
        return self

    def read_host(self, nbytes: int, name: str = "") -> "OpGraph":
        self.ops.append(Op("read_host", name=name, nbytes=nbytes))
        return self

    def write_host(self, nbytes: int, name: str = "") -> "OpGraph":
        self.ops.append(Op("write_host", name=name, nbytes=nbytes))
        return self

    def __len__(self) -> int:
        return len(self.ops)


def lower(
    graph: OpGraph,
    core: TpuCoreConfig,
    host_bandwidth_bytes_per_sec: float,
    complex_matmul_real_products: int = 4,
) -> Program:
    """Translate an op graph into a priced instruction stream."""
    if host_bandwidth_bytes_per_sec <= 0:
        raise ValueError("host bandwidth must be positive")
    program = Program()
    vpu_rate = core.vpu_lanes * core.vpu_ops_per_lane_per_cycle
    for op in graph.ops:
        if op.kind == "matmul":
            passes = complex_matmul_real_products if op.complex_values else 1
            stats = matmul_cycles(op.m, op.k, op.n, core.mxu)
            load = core.mxu.rows
            stream = max(1, (stats.cycles - stats.weight_load_cycles
                             + stats.hidden_weight_load_cycles) // stats.tiles)
            for _ in range(passes):
                for tile in range(stats.tiles):
                    program.emit(Instruction(Opcode.LOAD_WEIGHTS, cycles=load,
                                             label=f"{op.name}/w{tile}"))
                    program.emit(Instruction(Opcode.MATMUL, cycles=stream,
                                             label=f"{op.name}/mm{tile}"))
        elif op.kind == "hadamard":
            flops = op.elements * (4.0 if op.complex_values else 1.0)
            cycles = max(1, int(flops / vpu_rate))
            program.emit(Instruction(Opcode.HADAMARD, cycles=cycles, label=op.name))
        elif op.kind == "transpose":
            cycles = max(1, int(op.elements * 0.5 / vpu_rate))
            program.emit(Instruction(Opcode.TRANSPOSE, cycles=cycles, label=op.name))
        elif op.kind == "read_host":
            program.emit(Instruction(
                Opcode.READ_HOST,
                seconds=op.nbytes / host_bandwidth_bytes_per_sec,
                label=op.name,
            ))
        else:  # write_host
            program.emit(Instruction(
                Opcode.WRITE_HOST,
                seconds=op.nbytes / host_bandwidth_bytes_per_sec,
                label=op.name,
            ))
    return program


def solve_graph(size: int, pairs: int = 1) -> OpGraph:
    """The paper's Eq. 4 distillation solve as an op graph.

    Per pair: read X and Y (fp32), transform both (two complex matmuls
    each, Eq. 13), accumulate the Wiener numerator/denominator (three
    complex Hadamards), then one division, one inverse transform, and
    the kernel write-back.
    """
    if size <= 0 or pairs <= 0:
        raise ValueError("size and pairs must be positive")
    elements = size * size
    graph = OpGraph()
    for pair in range(pairs):
        graph.read_host(2 * elements * 4, name=f"p{pair}/xy_in")
        for operand in ("x", "y"):
            graph.matmul(size, size, size, name=f"p{pair}/{operand}_rows",
                         complex_values=True)
            graph.matmul(size, size, size, name=f"p{pair}/{operand}_cols",
                         complex_values=True)
        graph.hadamard(elements, name=f"p{pair}/conj", complex_values=False)
        graph.hadamard(elements, name=f"p{pair}/num", complex_values=True)
        graph.hadamard(elements, name=f"p{pair}/den", complex_values=True)
    graph.hadamard(elements, name="wiener_div", complex_values=True)
    graph.matmul(size, size, size, name="k_rows", complex_values=True)
    graph.matmul(size, size, size, name="k_cols", complex_values=True)
    graph.write_host(elements * 8, name="k_out")
    return graph


def compiled_seconds(
    graph: OpGraph,
    core: TpuCoreConfig,
    host_bandwidth_bytes_per_sec: float,
    dispatch_latency_sec: float,
    clock_hz: float | None = None,
) -> float:
    """Price a graph as ONE fused program: single dispatch, DMA overlap."""
    from repro.hw.isa import Scheduler

    program = lower(graph, core, host_bandwidth_bytes_per_sec)
    scheduler = Scheduler(clock_hz or core.clock_hz)
    return dispatch_latency_sec + scheduler.run(program).seconds


def eager_seconds(
    graph: OpGraph,
    core: TpuCoreConfig,
    host_bandwidth_bytes_per_sec: float,
    dispatch_latency_sec: float,
    clock_hz: float | None = None,
) -> float:
    """Price a graph op by op: every op pays its own dispatch, no overlap."""
    from repro.hw.isa import Scheduler

    scheduler = Scheduler(
        clock_hz or core.clock_hz, overlap_dma=False, overlap_weight_load=False
    )
    total = 0.0
    for op in graph.ops:
        single = OpGraph(ops=[op])
        program = lower(single, core, host_bandwidth_bytes_per_sec)
        total += dispatch_latency_sec + scheduler.run(program).seconds
    return total
