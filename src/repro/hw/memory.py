"""Memory hierarchy models: HBM, unified buffer, accumulators, host link.

The TPU timing model needs three things from a memory: *capacity* (does
the working set fit -- the paper's 64 GB HBM), *bandwidth* (how many
cycles a transfer occupies) and *latency*.  This module provides a small
explicit allocator with peak tracking so capacity violations surface as
:class:`MemoryCapacityError` rather than silently optimistic timing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


class MemoryCapacityError(Exception):
    """Raised when an allocation exceeds a memory region's capacity."""


@dataclass(frozen=True)
class MemorySpec:
    """Static description of one memory region."""

    name: str
    capacity_bytes: int
    bandwidth_bytes_per_sec: float
    latency_sec: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.bandwidth_bytes_per_sec <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.latency_sec < 0:
            raise ValueError(f"{self.name}: latency cannot be negative")

    def transfer_seconds(self, nbytes: int) -> float:
        """Time to move ``nbytes`` through this region once."""
        if nbytes < 0:
            raise ValueError(f"cannot transfer a negative byte count ({nbytes})")
        if nbytes == 0:
            return 0.0
        return self.latency_sec + nbytes / self.bandwidth_bytes_per_sec


@dataclass(frozen=True)
class Allocation:
    """Handle returned by :meth:`MemoryRegion.alloc`."""

    region: str
    label: str
    nbytes: int
    serial: int


@dataclass
class MemoryRegion:
    """A memory region with explicit allocation accounting.

    Not a data store -- numeric payloads live in numpy; this tracks the
    *footprint* so the simulator can reject working sets that would not
    fit the modelled hardware.
    """

    spec: MemorySpec
    allocated_bytes: int = 0
    peak_bytes: int = 0
    _live: dict[int, Allocation] = field(default_factory=dict, repr=False)
    _serial: itertools.count = field(default_factory=itertools.count, repr=False)

    def alloc(self, nbytes: int, label: str = "") -> Allocation:
        """Reserve ``nbytes``; raises :class:`MemoryCapacityError` on overflow."""
        if nbytes < 0:
            raise ValueError(f"allocation size cannot be negative ({nbytes})")
        if self.allocated_bytes + nbytes > self.spec.capacity_bytes:
            raise MemoryCapacityError(
                f"{self.spec.name}: allocating {nbytes} B would exceed capacity "
                f"({self.allocated_bytes}/{self.spec.capacity_bytes} B in use, "
                f"label={label!r})"
            )
        handle = Allocation(
            region=self.spec.name,
            label=label,
            nbytes=nbytes,
            serial=next(self._serial),
        )
        self._live[handle.serial] = handle
        self.allocated_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
        return handle

    def free(self, handle: Allocation) -> None:
        """Release a previous allocation; double-free raises ``KeyError``."""
        stored = self._live.pop(handle.serial, None)
        if stored is None:
            raise KeyError(
                f"{self.spec.name}: allocation {handle.serial} ({handle.label!r}) "
                "is not live (double free?)"
            )
        self.allocated_bytes -= stored.nbytes

    def free_all(self) -> None:
        """Release every live allocation (end-of-program cleanup)."""
        self._live.clear()
        self.allocated_bytes = 0

    @property
    def live_allocations(self) -> tuple[Allocation, ...]:
        return tuple(self._live.values())

    def transfer_seconds(self, nbytes: int) -> float:
        """Delegate to the spec's bandwidth/latency model."""
        return self.spec.transfer_seconds(nbytes)


GIB = 1024**3
MIB = 1024**2


def hbm_spec(capacity_bytes: int = 8 * GIB, bandwidth: float = 300e9) -> MemorySpec:
    """Per-core HBM slice.

    The paper's TPUv2 setup exposes 64 GB HBM across the pod slice; per
    core that is 8 GiB at roughly 300 GB/s (one core's share of the
    600 GB/s chip bandwidth).
    """
    return MemorySpec(
        name="hbm",
        capacity_bytes=capacity_bytes,
        bandwidth_bytes_per_sec=bandwidth,
        latency_sec=5e-7,
    )


def unified_buffer_spec(capacity_bytes: int = 24 * MIB) -> MemorySpec:
    """On-chip unified buffer (activation storage feeding the MXU)."""
    return MemorySpec(
        name="unified_buffer",
        capacity_bytes=capacity_bytes,
        bandwidth_bytes_per_sec=4e12,
        latency_sec=0.0,
    )


def accumulator_spec(capacity_bytes: int = 4 * MIB) -> MemorySpec:
    """32-bit accumulator banks collecting MXU partial sums."""
    return MemorySpec(
        name="accumulators",
        capacity_bytes=capacity_bytes,
        bandwidth_bytes_per_sec=4e12,
        latency_sec=0.0,
    )


def host_link_spec(bandwidth: float = 12e9) -> MemorySpec:
    """Host-to-device link (PCIe-class), used by READ_HOST/WRITE_HOST."""
    return MemorySpec(
        name="host_link",
        capacity_bytes=64 * GIB,
        bandwidth_bytes_per_sec=bandwidth,
        latency_sec=2e-6,
    )
