"""Hardware substrate: simulated TPU, and CPU/GPU comparator models.

The paper's evaluation compares three hardware configurations running
the same algorithm (Section IV-A).  This package provides all three:

* :class:`~repro.hw.tpu.TpuCore` / :class:`~repro.hw.tpu.TpuChip` -- a
  cycle-level TPU built from a weight-stationary systolic array
  (:mod:`repro.hw.systolic`), int8/bf16 quantization
  (:mod:`repro.hw.quantize`), an MXU tiler (:mod:`repro.hw.mxu`), a
  small ISA with an overlap-aware scheduler (:mod:`repro.hw.isa`),
  explicit memory regions (:mod:`repro.hw.memory`) and a ring
  interconnect (:mod:`repro.hw.interconnect`);
* :class:`~repro.hw.cpu.CpuDevice` -- the paper's baseline host CPU;
* :class:`~repro.hw.gpu.GpuDevice` -- the paper's GTX 1080 comparator.

All three expose the common :class:`~repro.hw.device.Device` interface:
functional numpy execution plus *simulated seconds*, which is what every
table and figure in the paper reports.
"""

from repro.hw.cpu import CpuConfig, CpuDevice
from repro.hw.device import (
    Device,
    DeviceStats,
    PipelineStage,
    pipelined_elapsed_seconds,
)
from repro.hw.gpu import GpuConfig, GpuDevice
from repro.hw.compiler import (
    Op,
    OpGraph,
    compiled_seconds,
    eager_seconds,
    lower,
    solve_graph,
)
from repro.hw.interconnect import Interconnect, InterconnectConfig
from repro.hw.isa import Instruction, Opcode, Program, ScheduleResult, Scheduler
from repro.hw.memory import (
    Allocation,
    MemoryCapacityError,
    MemoryRegion,
    MemorySpec,
    accumulator_spec,
    hbm_spec,
    host_link_spec,
    unified_buffer_spec,
)
from repro.hw.mxu import Mxu, MxuConfig, MxuStats, matmul_cycles
from repro.hw.pod import PodWaveStats, TpuPod, clone_device
from repro.hw.perf import (
    AmdahlBreakdown,
    format_stats,
    matmul_operational_intensity,
    operational_intensity,
    roofline_attainable_flops,
    speedup,
)
from repro.hw.quantize import (
    BF16,
    FP32,
    FP64,
    INT8,
    PrecisionSpec,
    QuantizedTensor,
    dequantize,
    infeed_bytes_per_element,
    precision_spec,
    quantization_error_bound,
    quantization_scale,
    quantize,
    quantize_dequantize,
    quantized_complex_matmul,
    quantized_conv_error_bound,
    quantized_matmul,
    quantized_score_error_bound,
    resolve_precision,
    to_bfloat16,
)
from repro.hw.systolic import SystolicArray, SystolicResult, streaming_cycles
from repro.hw.trace import (
    SystolicTrace,
    trace_matmul,
    trace_pass,
    utilization_ascii,
    write_vcd,
)
from repro.hw.tpu import TpuChip, TpuChipConfig, TpuCore, TpuCoreConfig

__all__ = [
    "CpuConfig",
    "CpuDevice",
    "Device",
    "DeviceStats",
    "PipelineStage",
    "pipelined_elapsed_seconds",
    "PodWaveStats",
    "TpuPod",
    "clone_device",
    "GpuConfig",
    "GpuDevice",
    "Op",
    "OpGraph",
    "compiled_seconds",
    "eager_seconds",
    "lower",
    "solve_graph",
    "SystolicTrace",
    "trace_matmul",
    "trace_pass",
    "utilization_ascii",
    "write_vcd",
    "Interconnect",
    "InterconnectConfig",
    "Instruction",
    "Opcode",
    "Program",
    "ScheduleResult",
    "Scheduler",
    "Allocation",
    "MemoryCapacityError",
    "MemoryRegion",
    "MemorySpec",
    "accumulator_spec",
    "hbm_spec",
    "host_link_spec",
    "unified_buffer_spec",
    "Mxu",
    "MxuConfig",
    "MxuStats",
    "matmul_cycles",
    "AmdahlBreakdown",
    "format_stats",
    "matmul_operational_intensity",
    "operational_intensity",
    "roofline_attainable_flops",
    "speedup",
    "BF16",
    "FP32",
    "FP64",
    "INT8",
    "PrecisionSpec",
    "QuantizedTensor",
    "dequantize",
    "infeed_bytes_per_element",
    "precision_spec",
    "quantization_error_bound",
    "quantization_scale",
    "quantize",
    "quantize_dequantize",
    "quantized_complex_matmul",
    "quantized_conv_error_bound",
    "quantized_matmul",
    "quantized_score_error_bound",
    "resolve_precision",
    "to_bfloat16",
    "SystolicArray",
    "SystolicResult",
    "streaming_cycles",
    "TpuChip",
    "TpuChipConfig",
    "TpuCore",
    "TpuCoreConfig",
]
