"""A small TPU instruction set, program container, and scheduler.

The original TPU is a CISC coprocessor driven by a handful of
instructions (Read_Host_Memory, Read_Weights, MatrixMultiply/Convolve,
Activate, Write_Host_Memory).  We model that level of abstraction: the
device front-ends in :mod:`repro.hw.tpu` *lower* every tensor operation
into an instruction stream, and the :class:`Scheduler` prices the stream
under an explicit overlap policy:

* DMA instructions (READ_HOST / WRITE_HOST) run on the DMA engine and
  overlap with compute when ``overlap_dma`` is set (double buffering);
* LOAD_WEIGHTS overlaps with the preceding MATMUL thanks to the MXU's
  double weight FIFO;
* CROSS_REPLICA_SUM occupies the interconnect, serialized with compute
  (it is a barrier in the paper's reassembly step).

Having the program be inspectable data (rather than timing sprinkled
through the device code) is what makes the ablations honest: the same
stream can be re-priced with overlap disabled.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator


class Opcode(enum.Enum):
    """Instruction kinds understood by the scheduler."""

    READ_HOST = "read_host"
    WRITE_HOST = "write_host"
    LOAD_WEIGHTS = "load_weights"
    MATMUL = "matmul"
    HADAMARD = "hadamard"
    TRANSPOSE = "transpose"
    ACTIVATE = "activate"
    CROSS_REPLICA_SUM = "cross_replica_sum"
    SYNC = "sync"


# Engines an instruction can occupy.  COMPUTE = MXU+VPU pipeline,
# DMA = host/HBM transfers, NETWORK = inter-core links.
_ENGINE_BY_OPCODE = {
    Opcode.READ_HOST: "dma",
    Opcode.WRITE_HOST: "dma",
    Opcode.LOAD_WEIGHTS: "compute",
    Opcode.MATMUL: "compute",
    Opcode.HADAMARD: "compute",
    Opcode.TRANSPOSE: "compute",
    Opcode.ACTIVATE: "compute",
    Opcode.CROSS_REPLICA_SUM: "network",
    Opcode.SYNC: "compute",
}


@dataclass(frozen=True)
class Instruction:
    """One lowered instruction with its pre-computed cost.

    ``cycles`` is compute-pipeline occupancy; ``seconds`` is used for
    engines that are not clocked by the core (DMA, network).  Exactly one
    of the two is non-zero for any instruction.
    """

    opcode: Opcode
    cycles: int = 0
    seconds: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"{self.opcode}: negative cycle cost")
        if self.seconds < 0:
            raise ValueError(f"{self.opcode}: negative seconds cost")

    @property
    def engine(self) -> str:
        return _ENGINE_BY_OPCODE[self.opcode]


@dataclass
class Program:
    """An ordered instruction stream for one core."""

    instructions: list[Instruction] = field(default_factory=list)

    def emit(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def extend(self, other: "Program") -> None:
        self.instructions.extend(other.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def opcode_histogram(self) -> Counter:
        """Instruction mix, e.g. for asserting a lowering emitted DMA ops."""
        return Counter(instr.opcode for instr in self.instructions)

    def compute_cycles(self) -> int:
        """Raw (un-overlapped) compute-pipeline cycles in the stream."""
        return sum(i.cycles for i in self.instructions if i.engine == "compute")

    def disassemble(self, limit: int | None = None) -> str:
        """Human-readable listing of the instruction stream.

        One line per instruction: index, opcode, engine, cost, label.
        ``limit`` truncates long programs with an ellipsis summary.
        """
        lines = []
        shown = self.instructions if limit is None else self.instructions[:limit]
        for index, instruction in enumerate(shown):
            if instruction.engine == "compute":
                cost = f"{instruction.cycles:>8} cy"
            else:
                cost = f"{instruction.seconds * 1e6:>8.1f} us"
            label = f"  ; {instruction.label}" if instruction.label else ""
            lines.append(
                f"{index:>5}  {instruction.opcode.value:<18} "
                f"[{instruction.engine:<7}] {cost}{label}"
            )
        hidden = len(self.instructions) - len(shown)
        if hidden > 0:
            lines.append(f"  ... {hidden} more instruction(s)")
        return "\n".join(lines)


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of pricing a program."""

    seconds: float
    compute_seconds: float
    dma_seconds: float
    network_seconds: float
    hidden_weight_load_cycles: int

    @property
    def serial_seconds(self) -> float:
        """Time if no engine overlapped (the ablation upper bound)."""
        return self.compute_seconds + self.dma_seconds + self.network_seconds


@dataclass(frozen=True)
class Scheduler:
    """Prices a :class:`Program` under an overlap policy.

    ``clock_hz`` converts compute cycles to seconds.  With
    ``overlap_dma`` the DMA engine runs concurrently with compute, so
    elapsed time is ``max(compute, dma)``; the network (cross-replica
    sums) always serializes, acting as the barrier between the paper's
    decomposition stages.  With ``overlap_weight_load`` a LOAD_WEIGHTS
    that immediately follows a MATMUL is hidden up to that matmul's
    length (double-buffered weight FIFO).
    """

    clock_hz: float
    overlap_dma: bool = True
    overlap_weight_load: bool = True

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock must be positive")

    def run(self, program: Program) -> ScheduleResult:
        compute_cycles = 0
        dma_seconds = 0.0
        network_seconds = 0.0
        hidden_cycles = 0
        previous_matmul_cycles = 0

        for instruction in program:
            engine = instruction.engine
            if engine == "dma":
                dma_seconds += instruction.seconds
            elif engine == "network":
                network_seconds += instruction.seconds
            elif instruction.opcode == Opcode.LOAD_WEIGHTS:
                if self.overlap_weight_load:
                    hidden = min(instruction.cycles, previous_matmul_cycles)
                    hidden_cycles += hidden
                    compute_cycles += instruction.cycles - hidden
                else:
                    compute_cycles += instruction.cycles
                previous_matmul_cycles = 0
            else:
                compute_cycles += instruction.cycles
                if instruction.opcode == Opcode.MATMUL:
                    previous_matmul_cycles = instruction.cycles

        compute_seconds = compute_cycles / self.clock_hz
        if self.overlap_dma:
            elapsed = max(compute_seconds, dma_seconds) + network_seconds
        else:
            elapsed = compute_seconds + dma_seconds + network_seconds
        return ScheduleResult(
            seconds=elapsed,
            compute_seconds=compute_seconds,
            dma_seconds=dma_seconds,
            network_seconds=network_seconds,
            hidden_weight_load_cycles=hidden_cycles,
        )
