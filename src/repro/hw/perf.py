"""Performance-analysis utilities: rooflines, speedups, energy, reports.

Small, dependency-free helpers shared by the benchmark harness and the
ablation suite.  Nothing here affects simulation results; it only
interprets them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import DeviceStats


def speedup(baseline_seconds: float, accelerated_seconds: float) -> float:
    """How many times faster the accelerated run is (paper's "Nx" columns)."""
    if baseline_seconds < 0 or accelerated_seconds < 0:
        raise ValueError("times cannot be negative")
    if accelerated_seconds == 0:
        raise ZeroDivisionError("accelerated time is zero; speedup undefined")
    return baseline_seconds / accelerated_seconds


def roofline_attainable_flops(
    operational_intensity: float, peak_flops: float, memory_bandwidth: float
) -> float:
    """Classic roofline: min(peak, intensity * bandwidth).

    ``operational_intensity`` is FLOPs per byte moved.
    """
    if operational_intensity < 0:
        raise ValueError("operational intensity cannot be negative")
    if peak_flops <= 0 or memory_bandwidth <= 0:
        raise ValueError("peaks must be positive")
    return min(peak_flops, operational_intensity * memory_bandwidth)


def operational_intensity(flops: float, bytes_moved: float) -> float:
    """FLOPs per byte; infinite traffic-free kernels return ``inf``."""
    if flops < 0 or bytes_moved < 0:
        raise ValueError("counts cannot be negative")
    if bytes_moved == 0:
        return float("inf")
    return flops / bytes_moved


def matmul_operational_intensity(m: int, k: int, n: int, bytes_per_element: int = 4) -> float:
    """Intensity of a dense matmul reading both operands and writing the result."""
    flops = 2.0 * m * k * n
    traffic = bytes_per_element * (m * k + k * n + m * n)
    return operational_intensity(flops, traffic)


@dataclass(frozen=True)
class AmdahlBreakdown:
    """Serial-vs-parallel decomposition of one accelerated workload."""

    serial_seconds: float
    parallel_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.serial_seconds + self.parallel_seconds

    def speedup_with_cores(self, cores: int) -> float:
        """Amdahl's law: the ceiling Algorithm 1 runs into as p grows."""
        if cores <= 0:
            raise ValueError("core count must be positive")
        if self.total_seconds == 0:
            return 1.0
        accelerated = self.serial_seconds + self.parallel_seconds / cores
        return self.total_seconds / accelerated


def format_stats(stats: DeviceStats, label: str = "") -> str:
    """Human-readable one-stop summary of a simulated-run ledger."""
    lines = []
    header = f"DeviceStats {label}".strip()
    lines.append(header)
    lines.append(f"  simulated seconds: {stats.seconds:.6f}")
    lines.append(f"  MACs:              {stats.macs:,}")
    lines.append(f"  bytes moved:       {stats.bytes_moved:,}")
    for op in sorted(stats.op_counts):
        count = stats.op_counts[op]
        sec = stats.op_seconds.get(op, 0.0)
        lines.append(f"  {op:<22} x{count:<6} {sec:.6f}s")
    return "\n".join(lines)
