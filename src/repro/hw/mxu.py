"""The Matrix Multiply Unit: tiling arbitrary matmuls onto the systolic array.

A real MXU is a fixed ``rows x cols`` grid (the paper's is 256x256); any
larger product must be *tiled*: the weight operand is cut into
``rows x cols`` tiles, each tile is loaded (``rows`` cycles, hidden
behind the previous tile's streaming by the double weight FIFO), the
activation rows stream through, and partial results accumulate across
the reduction-dimension tiles in the accumulator banks.

Two execution paths share one cycle model:

* ``exact=True`` drives :class:`repro.hw.systolic.SystolicArray` tile by
  tile -- the ground truth, quadratic in array size, used for small
  shapes and for validating the analytic path;
* ``exact=False`` (default) computes the product numerically (with the
  configured precision's rounding) and prices it with the closed-form
  tile count -- what the benchmarks use for 1024x1024 sweeps.

**Precision model.**  :class:`MxuConfig.precision` names the datapath's
numeric mode via :func:`repro.hw.quantize.precision_spec` (the single
parsing point): ``int8`` and ``bf16`` stream one MAC per PE per cycle,
``fp32`` a quarter and ``fp64`` an eighth
(:attr:`~repro.hw.quantize.PrecisionSpec.macs_per_pe_per_cycle` scales
the streaming phase of :func:`matmul_cycles`).  The same cycle model
prices the *quantized batched-convolution axis*: when a wave of the
fleet executor runs at ``precision="int8"``,
:meth:`repro.core.backend.TpuBackend.batch_conv_seconds` reprices its
wide fused transforms through :meth:`repro.hw.tpu.TpuCore
.matmul_seconds` with the MXU config swapped to that precision -- so
the speed side of the accuracy-vs-precision trade-off comes from this
one model, whether the MXU mode is fixed chip-wide or chosen per wave.

Tests assert both paths return identical cycle counts and matching
numerics on randomized shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hw.quantize import (
    PrecisionSpec,
    precision_spec,
    quantized_matmul,
)
from repro.hw.systolic import SystolicArray, streaming_cycles


@dataclass(frozen=True)
class MxuConfig:
    """Geometry and numeric mode of one MXU."""

    rows: int = 256
    cols: int = 256
    precision: str = "int8"

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(f"MXU geometry must be positive, got {self.rows}x{self.cols}")
        precision_spec(self.precision)  # validate eagerly

    @property
    def spec(self) -> PrecisionSpec:
        return precision_spec(self.precision)

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def macs_per_cycle(self) -> float:
        """Peak MACs per cycle (65,536 for the paper's 256x256 int8 MXU)."""
        return self.num_pes * self.spec.macs_per_pe_per_cycle


@dataclass(frozen=True)
class MxuStats:
    """Cycle breakdown of one tiled matmul."""

    cycles: int
    weight_load_cycles: int
    hidden_weight_load_cycles: int
    tiles: int
    macs: int

    @property
    def total_cycles(self) -> int:
        return self.cycles

    def utilization(self, config: MxuConfig) -> float:
        """Achieved MACs over peak MAC capacity for the elapsed cycles."""
        if self.cycles == 0:
            return 0.0
        return self.macs / (self.cycles * config.macs_per_cycle)


def _tile_count(total: int, tile: int) -> int:
    return max(1, math.ceil(total / tile))


def matmul_cycles(m: int, k: int, n: int, config: MxuConfig) -> MxuStats:
    """Closed-form cycle count for an ``m x k @ k x n`` product.

    Per weight tile ``(kt, nt)``: the tile's weights load in ``rows``
    cycles (hidden behind the previous tile's streaming when ``m`` covers
    it -- double buffering), then ``m`` activation rows stream with a
    ``rows + cols - 2`` pipeline drain.  The first tile's load cannot be
    hidden.  fp32 mode runs each PE at a quarter MAC per cycle, which
    scales the streaming phase.
    """
    if m <= 0 or k <= 0 or n <= 0:
        raise ValueError(f"matmul dimensions must be positive, got {m}x{k}x{n}")
    tiles_k = _tile_count(k, config.rows)
    tiles_n = _tile_count(n, config.cols)
    tiles = tiles_k * tiles_n

    slowdown = 1.0 / config.spec.macs_per_pe_per_cycle
    stream_per_tile = int(round(streaming_cycles(m, config.rows, config.cols) * slowdown))

    load = config.rows  # cycles to install one weight tile
    hidden_per_tile = min(load, stream_per_tile)
    # First load is exposed; subsequent loads hide behind streaming.
    exposed_loads = load + (tiles - 1) * (load - hidden_per_tile)
    hidden = (tiles - 1) * hidden_per_tile

    cycles = tiles * stream_per_tile + exposed_loads
    return MxuStats(
        cycles=cycles,
        weight_load_cycles=tiles * load,
        hidden_weight_load_cycles=hidden,
        tiles=tiles,
        macs=m * k * n,
    )


@dataclass
class Mxu:
    """One Matrix Multiply Unit with a numeric mode and a cycle model."""

    config: MxuConfig = MxuConfig()

    def matmul(
        self, a: np.ndarray, b: np.ndarray, exact: bool = False
    ) -> tuple[np.ndarray, MxuStats]:
        """Multiply real matrices ``a @ b`` on this MXU.

        Returns the (precision-rounded) product and the cycle breakdown.
        ``exact=True`` runs the cycle-level systolic simulator tile by
        tile instead of the analytic model.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError(f"MXU multiplies 2-D matrices, got {a.shape} and {b.shape}")
        if a.shape[1] != b.shape[0]:
            raise ValueError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
        if np.iscomplexobj(a) or np.iscomplexobj(b):
            raise TypeError(
                "MXU operands are real; decompose complex products first "
                "(see TpuCore.complex_matmul)"
            )
        m, k = a.shape
        n = b.shape[1]
        stats = matmul_cycles(m, k, n, self.config)
        if exact:
            product = self._exact_tiled_product(a, b)
        else:
            product = self._numeric_product(a, b)
        return product, stats

    def _numeric_product(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.config.precision == "int8":
            return quantized_matmul(a, b, bits=8)
        spec = self.config.spec
        return np.asarray(spec.apply(a), dtype=np.float64) @ np.asarray(
            spec.apply(b), dtype=np.float64
        )

    def _exact_tiled_product(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Drive the cycle-level systolic array over every weight tile."""
        m, k = a.shape
        n = b.shape[1]
        rows, cols = self.config.rows, self.config.cols

        if self.config.precision == "int8":
            # Mirror the quantized path: integer grids, scales reapplied.
            from repro.hw.quantize import quantize  # local to avoid cycle

            qa = quantize(a, bits=8)
            qb = quantize(b, bits=8)
            a_vals = qa.values.astype(np.int64)
            b_vals = qb.values.astype(np.int64)
            rescale = qa.scale * qb.scale
        else:
            spec = self.config.spec
            a_vals = np.asarray(spec.apply(a), dtype=np.float64)
            b_vals = np.asarray(spec.apply(b), dtype=np.float64)
            rescale = 1.0

        array = SystolicArray(rows=rows, cols=cols)
        out = np.zeros((m, n), dtype=np.float64)
        for k0 in range(0, k, rows):
            k1 = min(k0 + rows, k)
            a_tile = np.zeros((m, rows), dtype=a_vals.dtype)
            a_tile[:, : k1 - k0] = a_vals[:, k0:k1]
            for n0 in range(0, n, cols):
                n1 = min(n0 + cols, n)
                w_tile = np.zeros((rows, cols), dtype=b_vals.dtype)
                w_tile[: k1 - k0, : n1 - n0] = b_vals[k0:k1, n0:n1]
                result = array.matmul(a_tile, w_tile)
                out[:, n0:n1] += result.output[:, : n1 - n0].astype(np.float64)
        return out * rescale
