"""Inter-core communication model (ring all-reduce).

The paper implements reassembly with ``tf.cross_replica_sum``, "required
at every iteration of reassembly process to compute the summation of the
partial matrices across the cores", and argues the decomposition needs
*minimal communication time*.  We model the standard bandwidth-optimal
ring all-reduce: each of ``p`` cores sends ``2*(p-1)/p`` of the payload
over its link, plus per-hop latency.
"""

from __future__ import annotations

from dataclasses import dataclass


def _near_square_side(p: int) -> int:
    """Largest divisor of ``p`` not exceeding ``sqrt(p)`` (grid width)."""
    side = int(p**0.5)
    while side > 1 and p % side:
        side -= 1
    return max(1, side)


@dataclass(frozen=True)
class InterconnectConfig:
    """Link parameters of the inter-core network."""

    link_bandwidth_bytes_per_sec: float = 496e9
    link_latency_sec: float = 1e-6
    topology: str = "ring"

    def __post_init__(self) -> None:
        if self.link_bandwidth_bytes_per_sec <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.link_latency_sec < 0:
            raise ValueError("link latency cannot be negative")
        if self.topology not in ("ring", "all-to-all", "torus2d"):
            raise ValueError(f"unsupported topology {self.topology!r}")


@dataclass(frozen=True)
class Interconnect:
    """Collective-communication cost model over ``InterconnectConfig``."""

    config: InterconnectConfig = InterconnectConfig()

    def _check(self, nbytes: int, num_cores: int) -> None:
        if nbytes < 0:
            raise ValueError(f"payload cannot be negative ({nbytes})")
        if num_cores < 1:
            raise ValueError(f"need at least one core, got {num_cores}")

    def all_reduce_seconds(self, nbytes: int, num_cores: int) -> float:
        """Cost of summing an ``nbytes`` payload across ``num_cores``.

        ``ring``: the bandwidth-optimal single ring -- ``2*(p-1)`` steps
        of ``nbytes/p`` each, all links concurrent.

        ``torus2d``: TPU pods are wired as a 2-D torus; the all-reduce
        runs as two concurrent-ring phases, one along each dimension of
        a near-square core grid.  Per-link traffic matches the ring's
        asymptotics but the latency term scales with ``2*sqrt(p)``
        rather than ``2*p`` hops -- the reason large slices prefer it
        (at ``p=16`` the latency term is ``12`` hops against the ring's
        ``30``).  A *prime* core count has no 2-D grid at all
        (``_near_square_side`` returns 1, which would degenerate to a
        zero-cost phase plus one full single ring); that case falls
        back to the ``ring`` formula explicitly -- same seconds the
        degenerate grid would produce, but as a documented fallback
        rather than a silent accident.

        ``all-to-all``: idealized two-step exchange (lower bound).
        """
        self._check(nbytes, num_cores)
        if num_cores == 1 or nbytes == 0:
            return 0.0
        p = num_cores
        if self.config.topology == "torus2d":
            side_x = _near_square_side(p)
            if side_x > 1:
                side_y = p // side_x
                return self._ring_phase(nbytes, side_x) + self._ring_phase(
                    nbytes / side_x, side_y
                )
            # Prime p: no non-trivial grid exists; use the single ring.
        steps = 2 * (p - 1)
        if self.config.topology == "all-to-all":
            steps = 2  # one scatter + one gather exchange, idealized
        chunk = nbytes / p
        transfer = steps * chunk / self.config.link_bandwidth_bytes_per_sec
        return transfer + steps * self.config.link_latency_sec

    def _ring_phase(self, nbytes: float, cores: int) -> float:
        """One ring all-reduce phase among ``cores`` peers."""
        if cores <= 1 or nbytes <= 0:
            return 0.0
        steps = 2 * (cores - 1)
        transfer = steps * (nbytes / cores) / self.config.link_bandwidth_bytes_per_sec
        return transfer + steps * self.config.link_latency_sec

    def all_gather_seconds(self, nbytes_per_core: int, num_cores: int) -> float:
        """Cost of concatenating per-core shards onto every core.

        ``p-1`` ring steps, each moving one shard per link.
        """
        self._check(nbytes_per_core, num_cores)
        if num_cores == 1 or nbytes_per_core == 0:
            return 0.0
        steps = num_cores - 1
        transfer = steps * nbytes_per_core / self.config.link_bandwidth_bytes_per_sec
        return transfer + steps * self.config.link_latency_sec

    def broadcast_seconds(self, nbytes: int, num_cores: int) -> float:
        """Cost of sending one payload from a root to all cores (pipelined ring)."""
        self._check(nbytes, num_cores)
        if num_cores == 1 or nbytes == 0:
            return 0.0
        transfer = nbytes / self.config.link_bandwidth_bytes_per_sec
        return transfer + (num_cores - 1) * self.config.link_latency_sec

    def broadcast_stream_seconds(
        self, nbytes_each: int, num_messages: int, num_cores: int
    ) -> float:
        """Cost of ``num_messages`` back-to-back root broadcasts.

        The streamed-spectra pattern of the pod's overlapped chunk
        placement: the root emits one small payload per solved kernel
        and the messages ride the same pipelined ring, so the
        ``(p-1)``-hop pipeline fill is paid once for the whole stream
        while every message still pays its bandwidth term.  Equals
        :meth:`broadcast_seconds` for a single message.
        """
        self._check(nbytes_each, num_cores)
        if num_messages < 0:
            raise ValueError(f"message count cannot be negative ({num_messages})")
        if num_cores == 1 or nbytes_each == 0 or num_messages == 0:
            return 0.0
        transfer = (
            num_messages * nbytes_each / self.config.link_bandwidth_bytes_per_sec
        )
        return transfer + (num_cores - 1) * self.config.link_latency_sec

    def point_to_point_seconds(self, nbytes: int) -> float:
        """Cost of one direct core-to-core transfer."""
        self._check(nbytes, 1)
        if nbytes == 0:
            return 0.0
        return (
            nbytes / self.config.link_bandwidth_bytes_per_sec
            + self.config.link_latency_sec
        )
