"""Cycle-level simulation of a weight-stationary systolic array.

This is the paper's Figure 1: the Matrix Multiply Unit is a grid of
``rows x cols`` multiply-accumulate cells.  "Each cell receives a weight
parameter along with an input signal at a time, and performs accumulation
of their products" -- weights stay resident (weight-stationary dataflow),
activations stream in from the left edge one diagonal per cycle, partial
sums flow downward, and finished dot products drain out of the bottom
edge.

The simulator advances the grid one cycle at a time with explicit
activation and partial-sum registers, so the *schedule* (which value is
where on which cycle) is modelled, not just the result.  Exactness is the
contract: for any operand matrices the drained output equals the
mathematical product, which unit and property tests assert against numpy.

Timing facts the rest of the stack relies on (all asserted in tests):

* streaming an ``m``-row activation matrix through an ``R x C`` array
  takes ``m + R + C - 2`` cycles from first feed to last drain;
* loading a weight tile takes ``R`` cycles (one row per cycle);
* utilization approaches 100% as ``m`` grows -- the data-reuse argument
  behind the paper's "higher throughput while consuming less memory
  bandwidth" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SystolicResult:
    """Output of one streaming pass through the array."""

    output: np.ndarray
    cycles: int
    weight_load_cycles: int
    active_pe_cycles: int
    total_pe_cycles: int

    @property
    def total_cycles(self) -> int:
        """Weight load plus streaming."""
        return self.cycles + self.weight_load_cycles

    @property
    def utilization(self) -> float:
        """Fraction of PE-cycles that performed a useful MAC."""
        if self.total_pe_cycles == 0:
            return 0.0
        return self.active_pe_cycles / self.total_pe_cycles


def streaming_cycles(m: int, rows: int, cols: int) -> int:
    """Closed-form cycle count for streaming ``m`` activation rows."""
    if m <= 0:
        raise ValueError(f"need at least one activation row, got {m}")
    return m + rows + cols - 2


@dataclass
class SystolicArray:
    """A ``rows x cols`` weight-stationary multiply-accumulate grid.

    ``rows`` is the reduction (dot-product) dimension; ``cols`` is the
    number of independent output columns.  One pass computes
    ``activations (m x rows) @ weights (rows x cols)``.
    """

    rows: int
    cols: int
    _weights: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError(
                f"array dimensions must be positive, got {self.rows}x{self.cols}"
            )

    @property
    def num_pes(self) -> int:
        """Number of multiply-accumulate cells (65,536 for the paper's MXU)."""
        return self.rows * self.cols

    def load_weights(self, weights: np.ndarray) -> int:
        """Install a weight tile; returns the load cost in cycles.

        Weights shift in row-by-row from the top, so a full tile costs
        ``rows`` cycles regardless of content.
        """
        weights = np.asarray(weights)
        if weights.shape != (self.rows, self.cols):
            raise ValueError(
                f"weight tile must be {self.rows}x{self.cols}, got {weights.shape}"
            )
        self._weights = weights
        return self.rows

    def stream(self, activations: np.ndarray) -> SystolicResult:
        """Stream activation rows through the loaded weights, cycle by cycle.

        ``activations`` has shape ``(m, rows)``; the result is the exact
        matrix product ``activations @ weights`` with shape ``(m, cols)``.
        """
        if self._weights is None:
            raise RuntimeError("no weights loaded; call load_weights() first")
        activations = np.asarray(activations)
        if activations.ndim != 2 or activations.shape[1] != self.rows:
            raise ValueError(
                f"activations must be (m, {self.rows}), got {activations.shape}"
            )
        m = activations.shape[0]
        if m == 0:
            raise ValueError("cannot stream an empty activation matrix")

        weights = self._weights
        accumulate_dtype = np.result_type(activations.dtype, weights.dtype)
        if np.issubdtype(accumulate_dtype, np.integer):
            # Model the TPU's widened accumulators (int8 MACs -> int32).
            accumulate_dtype = np.int64

        total_cycles = streaming_cycles(m, self.rows, self.cols)
        x_reg = np.zeros((self.rows, self.cols), dtype=accumulate_dtype)
        ps_reg = np.zeros((self.rows, self.cols), dtype=accumulate_dtype)
        output = np.zeros((m, self.cols), dtype=accumulate_dtype)
        active_pe_cycles = 0

        for cycle in range(total_cycles):
            # Left-edge feed: element A[i, r] enters row r at cycle i + r,
            # skewing the matrix along the diagonal wavefront.
            feed = np.zeros(self.rows, dtype=accumulate_dtype)
            row_indices = cycle - np.arange(self.rows)
            valid = (row_indices >= 0) & (row_indices < m)
            feed[valid] = activations[row_indices[valid], np.arange(self.rows)[valid]]

            # Combinational step for every PE simultaneously:
            #   x_in  <- left neighbour's register (or the edge feed)
            #   ps_in <- upper neighbour's register (or zero at the top)
            #   ps_out = ps_in + w * x_in
            x_in = np.empty_like(x_reg)
            x_in[:, 0] = feed
            x_in[:, 1:] = x_reg[:, :-1]
            ps_in = np.empty_like(ps_reg)
            ps_in[0, :] = 0
            ps_in[1:, :] = ps_reg[:-1, :]
            ps_out = ps_in + weights * x_in

            active_pe_cycles += int(np.count_nonzero(x_in))

            x_reg = x_in
            ps_reg = ps_out

            # Bottom-edge drain: output row i leaves column c at cycle
            # i + (rows - 1) + c.
            col_indices = np.arange(self.cols)
            out_rows = cycle - (self.rows - 1) - col_indices
            drained = (out_rows >= 0) & (out_rows < m)
            output[out_rows[drained], col_indices[drained]] = ps_reg[
                self.rows - 1, col_indices[drained]
            ]

        return SystolicResult(
            output=output,
            cycles=total_cycles,
            weight_load_cycles=self.rows,
            active_pe_cycles=active_pe_cycles,
            total_pe_cycles=total_cycles * self.num_pes,
        )

    def matmul(self, activations: np.ndarray, weights: np.ndarray) -> SystolicResult:
        """Convenience wrapper: load ``weights`` then stream ``activations``."""
        self.load_weights(weights)
        return self.stream(activations)
