"""A pod of simulated chips behind the common device interface.

The fleet executor saturates one simulated chip; the paper's multi-core
argument ("parallel computation of multiple inputs", Section III-D, and
the cross-replica reassembly sums) extends one level up: a **pod** of K
chips wired by an :class:`~repro.hw.interconnect.Interconnect` shards a
wave's cross-pair stack, scatters plane bytes out, and gathers score
rows back over the modeled links.

:class:`TpuPod` is itself a :class:`~repro.hw.device.Device`, so every
consumer that holds a device -- :class:`~repro.core.pipeline
.ExplanationPipeline`, the online :class:`~repro.serve.loop
.ExplanationService` clock, ``take_stats`` harvesting -- works unchanged
with a pod in the socket.  The pod does not execute sharded work itself;
the fleet executor drives the member chips and then calls
:meth:`TpuPod.commit_run` with the per-wave accounting, and the pod
reconciles its ledger:

* every chip's op rows are merged in (**sum over chips = total work**,
  the audit view);
* each wave's collectives land as positive ``pod_scatter`` /
  ``pod_broadcast`` / ``pod_gather`` rows;
* two negative credit rows bring ``stats.seconds`` down to **elapsed**
  time: ``pod_compute_overlap`` (work hidden because chips run
  concurrently -- ``sum`` minus ``max`` per wave) and
  ``collective_overlap`` (collectives hidden under the previous wave's
  compute, the :func:`~repro.hw.device.pipelined_elapsed_seconds`
  double-buffering model that :meth:`Device.pipeline` applies to
  infeed).

So ``pod.stats.seconds`` is pod elapsed time, per-chip ledgers stay
auditable in :attr:`TpuPod.chip_stats`, and
:attr:`TpuPod.collective_log` itemizes every wave's collective seconds.

Single ops executed directly on the pod (outside the fleet path)
delegate their cost and numerics to the root chip -- a pod prices like
its root for unsharded work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import (
    Device,
    DeviceStats,
    PipelineStage,
    pipelined_elapsed_seconds,
)
from repro.hw.interconnect import Interconnect, InterconnectConfig


def clone_device(device: Device) -> Device:
    """A fresh device of the same configuration (for pod replication).

    Prefers an explicit ``clone()`` method (``TpuBackend`` provides one
    rebuilding a chip from its config); otherwise rebuilds from the
    device's ``config`` dataclass (``CpuDevice``, ``GpuDevice``,
    ``TpuCore``).  The clone starts with a clean ledger and shares no
    mutable state with the original.
    """
    clone = getattr(device, "clone", None)
    if callable(clone):
        return clone()
    config = getattr(device, "config", None)
    if config is None:
        raise TypeError(
            f"cannot replicate {type(device).__name__}: it has neither a "
            "clone() method nor a config to rebuild from; construct the "
            "pod's member devices explicitly"
        )
    return type(device)(config)


@dataclass(frozen=True)
class PodWaveStats:
    """Collective and compute accounting of one wave on a pod.

    ``chip_seconds[c]`` is chip ``c``'s ledger delta for this wave
    (zero for chips the placement left idle); the collective fields are
    interconnect-priced seconds (and payload bytes) of distributing the
    wave's planes (``scatter``), its kernel spectra (``broadcast``,
    chunk placement only) and collecting the score rows (``gather``).
    """

    wave_index: int
    placement: str
    num_pairs: int
    num_rows: int
    active_chips: int
    chip_seconds: tuple[float, ...]
    scatter_seconds: float = 0.0
    scatter_bytes: int = 0
    broadcast_seconds: float = 0.0
    broadcast_bytes: int = 0
    gather_seconds: float = 0.0
    gather_bytes: int = 0

    @property
    def collective_seconds(self) -> float:
        return self.scatter_seconds + self.broadcast_seconds + self.gather_seconds

    @property
    def body_seconds(self) -> float:
        """Wave elapsed on-chip time: the slowest chip (max, not sum)."""
        return max(self.chip_seconds, default=0.0)

    @property
    def stage(self) -> PipelineStage:
        """The wave as a double-buffering pipeline stage.

        Pre-compute collectives (scatter + broadcast) are the prologue a
        pipelined pod hides under the previous wave's compute; the
        gather is the epilogue riding opposite the next wave's scatter.
        """
        return PipelineStage(
            prologue=self.scatter_seconds + self.broadcast_seconds,
            body=self.body_seconds,
            epilogue=self.gather_seconds,
        )


class TpuPod(Device):
    """K member chips plus a shared interconnect, presented as one device."""

    def __init__(
        self,
        devices,
        interconnect: Interconnect | InterconnectConfig | None = None,
        name: str | None = None,
    ) -> None:
        devices = list(devices)
        if not devices:
            raise ValueError("a pod needs at least one chip device")
        for device in devices:
            if not isinstance(device, Device):
                raise TypeError(
                    f"pod members must be Device instances, got {type(device).__name__}"
                )
            if isinstance(device, TpuPod):
                raise TypeError("pods do not nest")
        if isinstance(interconnect, InterconnectConfig):
            interconnect = Interconnect(interconnect)
        self.devices = devices
        self.interconnect = interconnect if interconnect is not None else Interconnect()
        super().__init__(name=name or f"pod-{len(devices)}x[{devices[0].name}]")
        self.chip_stats: list[DeviceStats] = [DeviceStats() for _ in devices]
        self.collective_log: list[PodWaveStats] = []

    @classmethod
    def like(
        cls,
        device: Device,
        num_chips: int,
        interconnect: Interconnect | InterconnectConfig | None = None,
    ) -> "TpuPod":
        """A pod of ``num_chips`` fresh clones of ``device``.

        Every member (including chip 0) is a clone, so the template
        device's ledger is never aliased by the pod -- callers keep
        reading their own device while the pod accounts separately.
        """
        if isinstance(device, TpuPod):
            raise TypeError("cannot build a pod from a pod; pass the chip device")
        num_chips = int(num_chips)
        if num_chips < 1:
            raise ValueError(f"a pod needs at least one chip, got {num_chips}")
        return cls(
            [clone_device(device) for _ in range(num_chips)],
            interconnect=interconnect,
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def num_chips(self) -> int:
        return len(self.devices)

    @property
    def root(self) -> Device:
        """Chip 0: holds the host link, scatters inputs, gathers results."""
        return self.devices[0]

    # ------------------------------------------------------------------
    # Stats plumbing: the pod ledger is the roll-up
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        super().reset_stats()
        for device in self.devices:
            device.reset_stats()
        self.chip_stats = [DeviceStats() for _ in self.devices]
        self.collective_log.clear()

    def commit_run(self, wave_stats, pipelined: bool = True) -> float:
        """Fold one sharded fleet run into the pod ledger; returns elapsed.

        Harvests every chip's ledger delta (merging the rows into both
        the per-chip audit ledgers and the pod roll-up), records the
        waves' collective rows, and reconciles ``stats.seconds`` from
        *total work* down to *elapsed* with the two negative credits
        described in the module docstring.  ``pipelined=False`` keeps
        the serial stage sum (no ``collective_overlap`` credit).
        """
        wave_stats = list(wave_stats)
        work = DeviceStats()
        for index, device in enumerate(self.devices):
            delta = device.take_stats()
            self.chip_stats[index].merge(delta)
            work.merge(delta)
        self.stats.merge(work)
        bodies = 0.0
        for ws in wave_stats:
            bodies += ws.body_seconds
            if ws.scatter_seconds:
                self.stats.record(
                    "pod_scatter", ws.scatter_seconds, bytes_moved=ws.scatter_bytes
                )
            if ws.broadcast_seconds:
                self.stats.record(
                    "pod_broadcast", ws.broadcast_seconds, bytes_moved=ws.broadcast_bytes
                )
            if ws.gather_seconds:
                self.stats.record(
                    "pod_gather", ws.gather_seconds, bytes_moved=ws.gather_bytes
                )
        stages = [ws.stage for ws in wave_stats]
        serial = sum(stage.total for stage in stages)
        elapsed = pipelined_elapsed_seconds(stages) if pipelined else serial
        compute_overlap = work.seconds - bodies
        if compute_overlap > 0:
            self.stats.credit("pod_compute_overlap", compute_overlap)
        savings = serial - elapsed
        if savings > 0:
            self.stats.credit("collective_overlap", savings)
        self.collective_log.extend(wave_stats)
        return elapsed

    # ------------------------------------------------------------------
    # Cost and numeric hooks: unsharded work prices like the root chip
    # ------------------------------------------------------------------
    def matmul_seconds(self, m: int, k: int, n: int) -> float:
        return self.root.matmul_seconds(m, k, n)

    def elementwise_seconds(self, elements: int, flops_per_element: float = 1.0) -> float:
        return self.root.elementwise_seconds(elements, flops_per_element)

    def transfer_seconds(self, nbytes: int) -> float:
        return self.root.transfer_seconds(nbytes)

    def fft2_seconds(self, m: int, n: int) -> float:
        return self.root.fft2_seconds(m, n)

    def batch_conv_seconds(self, batch: int, m: int, n: int, precision=None) -> float:
        return self.root.batch_conv_seconds(batch, m, n, precision=precision)

    def kernel_spectrum_batch_seconds(
        self, batch: int, m: int, n: int, precision=None
    ) -> float:
        return self.root.kernel_spectrum_batch_seconds(batch, m, n, precision=precision)

    def _matmul_compute(self, a, b):
        return self.root._matmul_compute(a, b)
