"""A pod of simulated chips behind the common device interface.

The fleet executor saturates one simulated chip; the paper's multi-core
argument ("parallel computation of multiple inputs", Section III-D, and
the cross-replica reassembly sums) extends one level up: a **pod** of K
chips wired by an :class:`~repro.hw.interconnect.Interconnect` shards a
wave's cross-pair stack across the chips and prices the data movement
between them on the modeled links.

**Sharded host links.**  Every member chip owns a :class:`HostLink` --
its private host attachment, priced by the chip's own
``transfer_seconds`` / launch latency.  Pair shards stream to each chip
concurrently from the host (there is no chip-0 fabric scatter on the
data path any more), and each chip outfeeds its own score rows, so a
wave's host-side cost is the *slowest link*, not the sum.  The link's
program launch is **asynchronously queued**: the host enqueues the
wave's SPMD launch on all links and the round trip completes while the
chips already stream and compute, so only the part of the launch
latency that outlasts the wave's busy time is exposed -- a wave can
never finish faster than one launch round trip, but K chips never pay
K round trips on the critical path.  Per wave::

    elapsed = max(launch_round_trip,
                  max_c(infeed_c + compute_c + outfeed_c) + trailing collectives)
            + leading collectives

:class:`TpuPod` is itself a :class:`~repro.hw.device.Device`, so every
consumer that holds a device -- :class:`~repro.core.pipeline
.ExplanationPipeline`, the online :class:`~repro.serve.loop
.ExplanationService` clock, ``take_stats`` harvesting -- works unchanged
with a pod in the socket.  The pod does not execute sharded work itself;
the fleet executor drives the member chips and then calls
:meth:`TpuPod.commit_run` with the per-wave accounting, and the pod
reconciles its ledger:

* every chip's op rows are merged in (**sum over chips = total work**,
  the audit view);
* each wave's collectives land as positive ``pod_scatter`` /
  ``pod_broadcast`` / ``pod_gather`` rows;
* three negative credit rows bring ``stats.seconds`` down to
  **elapsed** time: ``pod_compute_overlap`` (work hidden because chips
  run concurrently -- ``sum`` minus the wave's critical path),
  ``host_link_overlap`` (launch round trips hidden by the asynchronous
  per-chip host links) and ``collective_overlap`` (stage time hidden
  under the previous wave's compute, the
  :func:`~repro.hw.device.pipelined_elapsed_seconds` double-buffering
  model that :meth:`Device.pipeline` applies to infeed).

So ``pod.stats.seconds`` is pod elapsed time, per-chip ledgers stay
auditable in :attr:`TpuPod.chip_stats`, and
:attr:`TpuPod.collective_log` itemizes every wave's collective seconds
plus its per-chip host-link columns.

Single ops executed directly on the pod (outside the fleet path)
delegate their cost and numerics to the root chip -- a pod prices like
its root for unsharded work.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.hw.device import (
    Device,
    DeviceStats,
    PipelineStage,
    pipelined_elapsed_seconds,
)
from repro.hw.interconnect import Interconnect, InterconnectConfig
from repro.obs.tracer import tracer


def clone_device(device: Device, hbm_bytes: int | None = None) -> Device:
    """A fresh device of the same configuration (for pod replication).

    Prefers an explicit ``clone()`` method (``TpuBackend`` provides one
    rebuilding a chip from its config); otherwise rebuilds from the
    device's ``config`` dataclass (``CpuDevice``, ``GpuDevice``,
    ``TpuCore``).  The clone starts with a clean ledger and shares no
    mutable state with the original.  ``hbm_bytes`` overrides the
    clone's modeled memory capacity -- the per-chip HBM knob of
    capacity-constrained pod placement; it requires a capacity-aware
    ``clone()`` (``TpuBackend`` has one).
    """
    clone = getattr(device, "clone", None)
    if callable(clone):
        if hbm_bytes is None:
            return clone()
        try:
            accepts = "hbm_bytes" in inspect.signature(clone).parameters
        except (TypeError, ValueError):
            accepts = False
        if not accepts:
            raise TypeError(
                f"{type(device).__name__}.clone() does not take hbm_bytes; "
                "cannot build a capacity-overridden pod from it"
            )
        return clone(hbm_bytes=hbm_bytes)
    if hbm_bytes is not None:
        raise TypeError(
            f"cannot override HBM capacity on {type(device).__name__}: it "
            "has no capacity-aware clone()"
        )
    config = getattr(device, "config", None)
    if config is None:
        raise TypeError(
            f"cannot replicate {type(device).__name__}: it has neither a "
            "clone() method nor a config to rebuild from; construct the "
            "pod's member devices explicitly"
        )
    return type(device)(config)


@dataclass(frozen=True)
class HostLink:
    """One chip's private host attachment in a sharded pod.

    The pod's Amdahl fix: instead of chip 0 serially feeding the whole
    fleet and scattering shards over the fabric, every chip streams its
    own shard through its own link, priced by the chip's existing
    ``transfer_seconds`` model.  Launches are queued asynchronously --
    :attr:`launch_latency_seconds` is a *floor* on wave completion, not
    a serial prefix (see :class:`PodWaveStats`).
    """

    device: Device

    def feed_seconds(self, nbytes: int) -> float:
        """Host-link seconds to stream ``nbytes`` to or from the chip."""
        if nbytes < 0:
            raise ValueError(f"cannot transfer a negative byte count ({nbytes})")
        if nbytes == 0:
            return 0.0
        return self.device.transfer_seconds(nbytes)

    @property
    def launch_latency_seconds(self) -> float:
        """The chip's program-launch round trip over this link."""
        return self.device.launch_latency_seconds


@dataclass(frozen=True)
class PodWaveStats:
    """Collective and host-link accounting of one wave on a pod.

    ``chip_seconds[c]`` is chip ``c``'s full ledger delta for this wave
    (zero for chips the placement left idle); ``infeed_seconds`` /
    ``outfeed_seconds`` are the per-chip :class:`HostLink` columns
    (each chip's own shard feed, concurrent across chips);
    ``dispatch_seconds`` the launch round trip each launching chip
    recorded (``launched_chips`` of them), hidden by the asynchronous
    host links up to the wave floor; the collective fields are
    interconnect-priced seconds (and payload bytes) of the *remaining
    true collectives* -- for the overlapped chunk placement, the
    streamed kernel-spectra broadcast.  ``gated_body_seconds``
    optionally overrides the wave's busy critical path with a
    placement-computed pipeline timeline (the chunk placement's
    solve-overlap model); ``solve_seconds`` is the root's kernel-solve
    span inside it, kept for the audit columns.
    """

    wave_index: int
    placement: str
    num_pairs: int
    num_rows: int
    active_chips: int
    chip_seconds: tuple[float, ...]
    scatter_seconds: float = 0.0
    scatter_bytes: int = 0
    broadcast_seconds: float = 0.0
    broadcast_bytes: int = 0
    gather_seconds: float = 0.0
    gather_bytes: int = 0
    dispatch_seconds: float = 0.0
    launched_chips: int = 0
    infeed_seconds: tuple[float, ...] = ()
    outfeed_seconds: tuple[float, ...] = ()
    solve_seconds: float = 0.0
    gated_body_seconds: float | None = None
    chip_index: int | None = None  # wave placement: the chip this wave ran on

    @property
    def collective_seconds(self) -> float:
        return self.scatter_seconds + self.broadcast_seconds + self.gather_seconds

    @property
    def busy_seconds(self) -> tuple[float, ...]:
        """Per-chip infeed + compute + outfeed: the ledger delta minus
        the launch round trip the asynchronous host link hides."""
        dispatch = self.dispatch_seconds
        return tuple(
            max(0.0, seconds - dispatch) if seconds > 0.0 else 0.0
            for seconds in self.chip_seconds
        )

    @property
    def body_seconds(self) -> float:
        """The wave's busy critical path: the slowest chip's infeed +
        compute + outfeed (or the placement's gated timeline)."""
        if self.gated_body_seconds is not None:
            return self.gated_body_seconds
        return max(self.busy_seconds, default=0.0)

    @property
    def launch_exposed_seconds(self) -> float:
        """Launch latency the wave cannot hide: a wave never completes
        faster than one launch round trip."""
        trailing = self.body_seconds + self.gather_seconds
        return max(0.0, self.dispatch_seconds - trailing)

    @property
    def launch_hidden_seconds(self) -> float:
        """Launch round trips the asynchronous host links absorbed."""
        recorded = self.dispatch_seconds * self.launched_chips
        return max(0.0, recorded - self.launch_exposed_seconds)

    @property
    def stage(self) -> PipelineStage:
        """The wave as a double-buffering pipeline stage.

        The prologue -- leading collectives plus the exposed launch
        residual -- is what a pipelined pod hides under the previous
        wave's compute (the next wave's launch is already queued on
        the host links); the gather is the epilogue riding opposite
        the next wave's infeed.  A broadcast counts as a leading
        collective only for plain waves: a placement-gated body
        (``gated_body_seconds``) already carries its broadcast waits
        inside the timeline.
        """
        prologue = self.scatter_seconds + self.launch_exposed_seconds
        if self.gated_body_seconds is None:
            prologue += self.broadcast_seconds
        return PipelineStage(
            prologue=prologue,
            body=self.body_seconds,
            epilogue=self.gather_seconds,
        )


@dataclass(frozen=True)
class WaveWindow:
    """One wave's absolute position inside a committed run's timeline.

    All values are simulated seconds from the run's local zero:
    ``prologue_start`` is where the wave's leading collectives begin,
    ``body_start``/``body_end`` bracket the busy critical path, and
    ``end`` adds the gather epilogue.
    """

    prologue_start: float
    body_start: float
    body_end: float
    end: float


def wave_timeline(wave_stats, pipelined: bool = True):
    """Per-wave :class:`WaveWindow` positions plus the run's elapsed.

    Walks the committed waves exactly the way :meth:`TpuPod.commit_run`
    prices them -- shared waves chain (double-buffered when
    ``pipelined``), chip-pinned waves partition into concurrent
    per-chip chains starting after the shared segment -- and returns
    ``(windows, elapsed)`` with ``windows`` aligned to the input order.
    The ``elapsed`` float is **bit-identical** to the ledger's: the
    accumulation order matches :func:`~repro.hw.device
    .pipelined_elapsed_seconds` / the serial stage sum term for term,
    so span positions derived from the windows reconcile with the pod
    ledger by ``==``, not by tolerance.
    """
    wave_stats = list(wave_stats)
    shared = [ws for ws in wave_stats if ws.chip_index is None]
    pinned: dict[int, list[PodWaveStats]] = {}
    for ws in wave_stats:
        if ws.chip_index is not None:
            pinned.setdefault(ws.chip_index, []).append(ws)

    def chain_elapsed(waves) -> float:
        stages = [ws.stage for ws in waves]
        if pipelined:
            return pipelined_elapsed_seconds(stages)
        return sum(stage.total for stage in stages)

    def chain_windows(waves, base: float) -> dict:
        windows: dict[int, WaveWindow] = {}
        stages = [ws.stage for ws in waves]
        if not stages:
            return windows
        if pipelined:
            # Mirror pipelined_elapsed_seconds' accumulator: stage i's
            # body begins at the accumulated elapsed (its prologue has
            # streamed under the previous stage's work).
            elapsed = stages[0].prologue
            for index, (ws, stage) in enumerate(zip(waves, stages)):
                last = index == len(stages) - 1
                body_start = base + elapsed
                body_end = body_start + stage.body
                windows[id(ws)] = WaveWindow(
                    prologue_start=body_start - stage.prologue,
                    body_start=body_start,
                    body_end=body_end,
                    end=body_end + stage.epilogue,
                )
                work = stage.body + (0.0 if last else stage.epilogue)
                next_prologue = 0.0 if last else stages[index + 1].prologue
                elapsed += max(work, next_prologue)
        else:
            cursor = base
            for ws, stage in zip(waves, stages):
                body_start = cursor + stage.prologue
                body_end = body_start + stage.body
                end = body_end + stage.epilogue
                windows[id(ws)] = WaveWindow(cursor, body_start, body_end, end)
                cursor = end
        return windows

    shared_elapsed = chain_elapsed(shared) if shared else 0.0
    windows = chain_windows(shared, 0.0)
    elapsed = shared_elapsed
    if pinned:
        elapsed += max(chain_elapsed(waves) for waves in pinned.values())
        for waves in pinned.values():
            windows.update(chain_windows(waves, shared_elapsed))
    return [windows[id(ws)] for ws in wave_stats], elapsed


@dataclass(frozen=True)
class PodCommit:
    """One :meth:`TpuPod.commit_run` entry in the pod's commit log.

    ``trace_base`` is the absolute session timestamp of the run's local
    zero when the commit was traced (``None`` when tracing was off), so
    the reconciler can re-derive every span position from the logged
    waves and compare against the recorded trace exactly.
    """

    num_waves: int
    pipelined: bool
    elapsed: float
    serial: float
    credits: tuple  # ((op, seconds) pairs actually credited)
    trace_base: float | None


#: tid scheme of pod-category spans: shared waves use lanes 0..2
#: (body / leading collectives / gather); waves pinned to chip ``c``
#: use ``3 * (1 + c)`` upward; per-chip busy bars sit at ``64 + c``.
_POD_CHIP_BAR_TID = 64


class TpuPod(Device):
    """K member chips plus a shared interconnect, presented as one device."""

    def __init__(
        self,
        devices,
        interconnect: Interconnect | InterconnectConfig | None = None,
        name: str | None = None,
        hbm_bytes=None,
    ) -> None:
        devices = list(devices)
        if not devices:
            raise ValueError("a pod needs at least one chip device")
        for device in devices:
            if not isinstance(device, Device):
                raise TypeError(
                    f"pod members must be Device instances, got {type(device).__name__}"
                )
            if isinstance(device, TpuPod):
                raise TypeError("pods do not nest")
        if isinstance(interconnect, InterconnectConfig):
            interconnect = Interconnect(interconnect)
        self.devices = devices
        self.interconnect = interconnect if interconnect is not None else Interconnect()
        if hbm_bytes is None:
            overrides = [None] * len(devices)
        elif isinstance(hbm_bytes, (int, float)):
            overrides = [int(hbm_bytes)] * len(devices)
        else:
            overrides = [None if v is None else int(v) for v in hbm_bytes]
            if len(overrides) != len(devices):
                raise ValueError(
                    f"{len(overrides)} hbm_bytes entries for {len(devices)} chips"
                )
        for value in overrides:
            if value is not None and value <= 0:
                raise ValueError(f"hbm_bytes must be positive, got {value}")
        self._hbm_overrides = tuple(overrides)
        super().__init__(name=name or f"pod-{len(devices)}x[{devices[0].name}]")
        self.host_links = [HostLink(device) for device in devices]
        self.chip_stats: list[DeviceStats] = [DeviceStats() for _ in devices]
        self.collective_log: list[PodWaveStats] = []
        self.commit_log: list[PodCommit] = []

    @classmethod
    def like(
        cls,
        device: Device,
        num_chips: int,
        interconnect: Interconnect | InterconnectConfig | None = None,
        hbm_bytes: int | None = None,
    ) -> "TpuPod":
        """A pod of ``num_chips`` fresh clones of ``device``.

        Every member (including chip 0) is a clone, so the template
        device's ledger is never aliased by the pod -- callers keep
        reading their own device while the pod accounts separately.
        ``hbm_bytes`` overrides each clone's modeled HBM capacity (the
        capacity-constrained-placement knob).
        """
        if isinstance(device, TpuPod):
            raise TypeError("cannot build a pod from a pod; pass the chip device")
        num_chips = int(num_chips)
        if num_chips < 1:
            raise ValueError(f"a pod needs at least one chip, got {num_chips}")
        return cls(
            [clone_device(device, hbm_bytes=hbm_bytes) for _ in range(num_chips)],
            interconnect=interconnect,
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def num_chips(self) -> int:
        return len(self.devices)

    @property
    def root(self) -> Device:
        """Chip 0: solves shared kernels (chunk placement), reassembles."""
        return self.devices[0]

    @property
    def chip_hbm_bytes(self) -> tuple:
        """Per-chip modeled HBM capacity (``None`` = unmodeled)."""
        return tuple(
            override if override is not None else device.hbm_capacity_bytes
            for override, device in zip(self._hbm_overrides, self.devices)
        )

    @property
    def min_chip_hbm_bytes(self) -> int | None:
        """The tightest member capacity, or ``None`` when unmodeled.

        What :meth:`repro.core.fleet.FleetSchedule.plan` consults: a
        placement decision must fit the smallest chip it may land on.
        """
        known = [v for v in self.chip_hbm_bytes if v is not None]
        return min(known) if known else None

    @property
    def hbm_capacity_bytes(self) -> int | None:
        return self.min_chip_hbm_bytes

    @property
    def launch_latency_seconds(self) -> float:
        return self.root.launch_latency_seconds

    # ------------------------------------------------------------------
    # Stats plumbing: the pod ledger is the roll-up
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        super().reset_stats()
        for device in self.devices:
            device.reset_stats()
        self.chip_stats = [DeviceStats() for _ in self.devices]
        self.collective_log.clear()
        self.commit_log.clear()

    def commit_run(self, wave_stats, pipelined: bool = True) -> float:
        """Fold one sharded fleet run into the pod ledger; returns elapsed.

        Harvests every chip's ledger delta (merging the rows into both
        the per-chip audit ledgers and the pod roll-up), records the
        waves' collective rows, and reconciles ``stats.seconds`` from
        *total work* down to *elapsed* with the three negative credits
        described in the module docstring.  Waves carrying a
        ``chip_index`` (the ``"wave"`` placement) run **concurrently
        across chips**: their stages group per chip, each chip's
        sequence pipelines (or sums, under ``pipelined=False``), and
        elapsed is the slowest chip's sequence plus the remaining
        serial waves.  ``pipelined=False`` keeps the serial stage sum
        (no ``collective_overlap`` credit beyond the per-chip launch
        hiding, which is a property of the asynchronous host links, not
        of cross-wave double-buffering).
        """
        wave_stats = list(wave_stats)
        traced = tracer.enabled
        entry_trace = self.trace_seconds  # the run's local zero
        work = DeviceStats()
        for index, device in enumerate(self.devices):
            delta = device.take_stats()
            self.chip_stats[index].merge(delta)
            work.merge(delta)
        self.stats.merge(work)
        rows_total = 0.0
        launch_hidden = 0.0
        for ws in wave_stats:
            launch_hidden += ws.launch_hidden_seconds
            if ws.scatter_seconds:
                self.stats.record(
                    "pod_scatter", ws.scatter_seconds, bytes_moved=ws.scatter_bytes
                )
                rows_total += ws.scatter_seconds
            if ws.broadcast_seconds:
                self.stats.record(
                    "pod_broadcast", ws.broadcast_seconds, bytes_moved=ws.broadcast_bytes
                )
                rows_total += ws.broadcast_seconds
            if ws.gather_seconds:
                self.stats.record(
                    "pod_gather", ws.gather_seconds, bytes_moved=ws.gather_bytes
                )
                rows_total += ws.gather_seconds
        serial = sum(ws.stage.total for ws in wave_stats)
        windows, elapsed = wave_timeline(wave_stats, pipelined)
        credits = []
        if launch_hidden > 0:
            self.stats.credit("host_link_overlap", launch_hidden)
            credits.append(("host_link_overlap", launch_hidden))
        # What remains after the hidden launches and the wave-stage
        # shape is cross-chip concurrency: total work plus collective
        # rows, minus the serial stage walk, minus the launches already
        # credited.
        compute_overlap = work.seconds + rows_total - serial - launch_hidden
        if compute_overlap > 0:
            self.stats.credit("pod_compute_overlap", compute_overlap)
            credits.append(("pod_compute_overlap", compute_overlap))
        savings = serial - elapsed
        if savings > 0:
            self.stats.credit("collective_overlap", savings)
            credits.append(("collective_overlap", savings))
        self.collective_log.extend(wave_stats)
        base = tracer.origin + entry_trace if traced else None
        self.commit_log.append(
            PodCommit(
                num_waves=len(wave_stats),
                pipelined=pipelined,
                elapsed=elapsed,
                serial=serial,
                credits=tuple(credits),
                trace_base=base,
            )
        )
        if traced and tracer.enabled:
            self._trace_commit(wave_stats, windows, elapsed, serial, base, credits)
            # Park the lane at the run's far edge: the next commit's
            # spans must not regress into this one even when the ledger
            # (post-credit) sits below the timeline extent.
            run_extent = max([elapsed] + [w.end for w in windows])
            self._trace_base = entry_trace + run_extent - self.stats.seconds
        return elapsed

    def _elapsed(self, wave_stats, pipelined: bool) -> float:
        """Elapsed seconds of the committed waves.

        Waves without a ``chip_index`` run one after another across the
        whole pod (data / chunk placements): their stages chain, double
        buffered when ``pipelined``.  Waves pinned to chips (``"wave"``
        placement) partition round-robin: each chip chains its own
        waves and the chips run concurrently, so that segment costs the
        slowest chip's chain.  Delegates to :func:`wave_timeline`, the
        shared walk that also positions the trace spans.
        """
        _, elapsed = wave_timeline(wave_stats, pipelined)
        return elapsed

    def _trace_commit(
        self, wave_stats, windows, elapsed, serial, base, credits
    ) -> None:
        """Emit one committed run's span tree onto the pod's trace lanes.

        Lane scheme (per :data:`_POD_CHIP_BAR_TID`): shared waves put
        their body on tid 0, leading collectives (scatter, exposed
        launch, broadcast) on tid 1 and the gather epilogue on tid 2;
        chip-pinned waves shift the same three roles to ``3 * (1 +
        chip)``.  Per-chip busy bars (infeed / compute / outfeed, the
        :func:`repro.obs.export.format_wave_timeline` decomposition)
        land on ``64 + chip``.  Overlap credits become flow arrows from
        the run's start to its end, carrying the credited seconds; the
        reconciler rebuilds the pod ledger from exactly these events.
        """
        commit_index = len(self.commit_log) - 1
        pid = tracer.pid_for(self)
        tracer.set_thread_name(pid, 0, "waves")
        tracer.set_thread_name(pid, 1, "collectives")
        tracer.set_thread_name(pid, 2, "gather")
        tracer.instant(
            "commit", "pod", base, pid, 0,
            {
                "commit": commit_index,
                "elapsed": elapsed,
                "serial": serial,
                "num_waves": len(wave_stats),
            },
        )
        for ws, win in zip(wave_stats, windows):
            stage = ws.stage
            gated = ws.gated_body_seconds is not None
            if ws.chip_index is None:
                lane = 0
            else:
                lane = 3 * (1 + ws.chip_index)
                tracer.set_thread_name(pid, lane, f"chip {ws.chip_index} waves")
                tracer.set_thread_name(pid, lane + 1, f"chip {ws.chip_index} collectives")
                tracer.set_thread_name(pid, lane + 2, f"chip {ws.chip_index} gather")
            tags = {"commit": commit_index, "wave": ws.wave_index}
            tracer.complete(
                "wave", "pod", base + win.body_start, stage.body, pid, lane,
                {
                    **tags,
                    "placement": ws.placement,
                    "pairs": ws.num_pairs,
                    "rows": ws.num_rows,
                    "active_chips": ws.active_chips,
                    "gated": gated,
                },
            )
            cursor = base + win.prologue_start
            if ws.scatter_seconds > 0.0:
                tracer.complete(
                    "scatter", "pod", cursor, ws.scatter_seconds, pid, lane + 1,
                    {**tags, "bytes": ws.scatter_bytes},
                )
                cursor += ws.scatter_seconds
            if ws.launch_exposed_seconds > 0.0:
                tracer.complete(
                    "launch_exposed", "pod", cursor, ws.launch_exposed_seconds,
                    pid, lane + 1, dict(tags),
                )
                cursor += ws.launch_exposed_seconds
            if ws.dispatch_seconds > 0.0 or ws.launched_chips > 0:
                tracer.instant(
                    "launch", "pod", base + win.prologue_start, pid, lane + 1,
                    {
                        **tags,
                        "dispatch_seconds": ws.dispatch_seconds,
                        "launched_chips": ws.launched_chips,
                        "exposed": ws.launch_exposed_seconds,
                        "hidden": ws.launch_hidden_seconds,
                    },
                )
            if ws.broadcast_seconds > 0.0:
                if gated:
                    # A gated body already carries its broadcast waits
                    # inside the timeline; annotate instead of spanning.
                    tracer.instant(
                        "broadcast", "pod", base + win.body_start, pid, lane + 1,
                        {**tags, "seconds": ws.broadcast_seconds,
                         "bytes": ws.broadcast_bytes},
                    )
                else:
                    tracer.complete(
                        "broadcast", "pod", cursor, ws.broadcast_seconds,
                        pid, lane + 1, {**tags, "bytes": ws.broadcast_bytes},
                    )
                    cursor += ws.broadcast_seconds
            if ws.gather_seconds > 0.0:
                tracer.complete(
                    "gather", "pod", base + win.body_end, ws.gather_seconds,
                    pid, lane + 2, {**tags, "bytes": ws.gather_bytes},
                )
            busy = ws.busy_seconds
            for chip, chip_busy in enumerate(busy):
                if ws.chip_seconds[chip] <= 0.0:
                    continue
                tid = _POD_CHIP_BAR_TID + chip
                tracer.set_thread_name(pid, tid, f"chip {chip}")
                infeed = (
                    ws.infeed_seconds[chip]
                    if chip < len(ws.infeed_seconds) else 0.0
                )
                outfeed = (
                    ws.outfeed_seconds[chip]
                    if chip < len(ws.outfeed_seconds) else 0.0
                )
                compute = max(0.0, chip_busy - infeed - outfeed)
                cursor = base + win.body_start
                for name, dur in (
                    ("infeed", infeed), ("compute", compute), ("outfeed", outfeed)
                ):
                    if dur > 0.0:
                        tracer.complete(
                            name, "pod", cursor, dur, pid, tid,
                            {**tags, "chip": chip},
                        )
                    cursor += dur
        for op, seconds in credits:
            tracer.flow(
                op, "pod",
                src=(base, pid, 1),
                dst=(base + elapsed, pid, 2),
                args={"commit": commit_index, "seconds": seconds},
            )

    # ------------------------------------------------------------------
    # Cost and numeric hooks: unsharded work prices like the root chip
    # ------------------------------------------------------------------
    def matmul_seconds(self, m: int, k: int, n: int) -> float:
        return self.root.matmul_seconds(m, k, n)

    def elementwise_seconds(self, elements: int, flops_per_element: float = 1.0) -> float:
        return self.root.elementwise_seconds(elements, flops_per_element)

    def transfer_seconds(self, nbytes: int) -> float:
        return self.root.transfer_seconds(nbytes)

    def fft2_seconds(self, m: int, n: int) -> float:
        return self.root.fft2_seconds(m, n)

    def batch_conv_seconds(self, batch: int, m: int, n: int, precision=None) -> float:
        return self.root.batch_conv_seconds(batch, m, n, precision=precision)

    def kernel_spectrum_batch_seconds(
        self, batch: int, m: int, n: int, precision=None
    ) -> float:
        return self.root.kernel_spectrum_batch_seconds(batch, m, n, precision=precision)

    def _matmul_compute(self, a, b):
        return self.root._matmul_compute(a, b)
