"""Ledger↔span reconciliation: the trace as a *checked* model.

The acceptance invariant of the observability layer: the span tree a
traced pod run emits must reproduce the pod ledger's elapsed
decomposition **exactly** -- max-over-chips body, launch floor,
collective rows, overlap credits -- with ``==`` on floats, never a
tolerance.  :func:`reconcile_pod_trace` recomputes every span position
from ``pod.commit_log`` + ``pod.collective_log`` via
:func:`~repro.hw.pod.wave_timeline` (the same walk the emitter and the
ledger use) and cross-checks the recorded trace events and the
``DeviceStats`` rows against it.

This module imports :mod:`repro.hw.pod` and is therefore **not**
re-exported from ``repro.obs`` (the hardware layer imports the tracer;
pulling pod back in at package import would close the cycle) -- import
it directly: ``from repro.obs.reconcile import assert_reconciles``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.pod import TpuPod, wave_timeline
from repro.obs.tracer import Tracer, tracer as _global_tracer

#: The negative ledger rows a pod commit may write, in commit order.
CREDIT_OPS = ("host_link_overlap", "pod_compute_overlap", "collective_overlap")

#: The positive collective rows, paired with their wave-stat fields.
COLLECTIVE_OPS = (
    ("pod_scatter", "scatter_seconds"),
    ("pod_broadcast", "broadcast_seconds"),
    ("pod_gather", "gather_seconds"),
)


@dataclass
class ReconciliationReport:
    """Outcome of one reconciliation pass."""

    num_commits: int = 0
    num_traced_commits: int = 0
    num_waves: int = 0
    checks: int = 0
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def check(self, condition: bool, message: str) -> None:
        self.checks += 1
        if not condition:
            self.failures.append(message)

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"{len(self.failures)} failures"
        return (
            f"<ReconciliationReport {state}: {self.checks} checks over "
            f"{self.num_traced_commits}/{self.num_commits} traced commits, "
            f"{self.num_waves} waves>"
        )


def _span_key(event) -> tuple:
    return (event.name, event.args.get("wave"), event.args.get("chip"))


def reconcile_pod_trace(
    pod: TpuPod, trace: Tracer | None = None, stats=None
) -> ReconciliationReport:
    """Cross-check a pod's recorded trace against its ledger, exactly.

    Walks every traced commit in ``pod.commit_log``: recomputes the
    per-wave :class:`~repro.hw.pod.WaveWindow` positions with
    :func:`~repro.hw.pod.wave_timeline`, asserts the recomputed elapsed
    equals the committed one, and requires every pod-category event --
    wave bodies, scatter/launch/broadcast prologue spans, gathers,
    per-chip infeed/compute/outfeed bars, credit flow arrows -- to sit
    at exactly the recomputed position with exactly the ledger
    duration (a missing span must correspond to a zero quantity).
    Then rebuilds the pod ledger's collective and credit rows from the
    logs in commit order and compares them ``==`` against ``stats``
    (default ``pod.stats``; pass a harvested copy when the ledger has
    been taken).
    """
    trace = trace if trace is not None else _global_tracer
    stats = stats if stats is not None else pod.stats
    report = ReconciliationReport(num_commits=len(pod.commit_log))

    pid = trace._pids.get(id(pod))
    events_by_commit: dict[int, list] = {}
    for event in trace.events:
        if event.category != "pod" or (pid is not None and event.pid != pid):
            continue
        commit = event.args.get("commit")
        if commit is not None:
            events_by_commit.setdefault(commit, []).append(event)

    offset = 0
    for index, commit in enumerate(pod.commit_log):
        waves = pod.collective_log[offset:offset + commit.num_waves]
        offset += commit.num_waves
        if commit.trace_base is None:
            continue
        report.num_traced_commits += 1
        report.num_waves += len(waves)
        base = commit.trace_base
        windows, elapsed = wave_timeline(waves, commit.pipelined)
        report.check(
            elapsed == commit.elapsed,
            f"commit {index}: recomputed elapsed {elapsed!r} != "
            f"committed {commit.elapsed!r}",
        )
        events = events_by_commit.get(index, [])
        spans: dict[tuple, list] = {}
        instants: dict[tuple, list] = {}
        flows: dict[str, float] = {}
        for event in events:
            if event.ph == "X":
                spans.setdefault(_span_key(event), []).append(event)
            elif event.ph == "i":
                instants.setdefault(_span_key(event), []).append(event)
            elif event.ph == "s":
                flows[event.name] = event.args.get("seconds")

        def expect_span(name, wave, chip, ts, dur, label):
            key = (name, wave, chip)
            found = spans.get(key, [])
            if dur > 0.0:
                report.check(
                    len(found) == 1,
                    f"commit {index} {label}: expected one {name!r} span, "
                    f"found {len(found)}",
                )
                if len(found) == 1:
                    event = found[0]
                    report.check(
                        event.ts == ts,
                        f"commit {index} {label}: {name!r} ts {event.ts!r} "
                        f"!= {ts!r}",
                    )
                    report.check(
                        event.dur == dur,
                        f"commit {index} {label}: {name!r} dur {event.dur!r} "
                        f"!= {dur!r}",
                    )
            else:
                report.check(
                    not found,
                    f"commit {index} {label}: {name!r} span recorded for a "
                    f"zero quantity",
                )

        for ws, win in zip(waves, windows):
            label = f"wave {ws.wave_index}"
            stage = ws.stage
            gated = ws.gated_body_seconds is not None
            expect_span(
                "wave", ws.wave_index, None,
                base + win.body_start, stage.body, label,
            )
            cursor = base + win.prologue_start
            expect_span(
                "scatter", ws.wave_index, None, cursor, ws.scatter_seconds, label
            )
            cursor += ws.scatter_seconds if ws.scatter_seconds > 0.0 else 0.0
            expect_span(
                "launch_exposed", ws.wave_index, None,
                cursor, ws.launch_exposed_seconds, label,
            )
            cursor += (
                ws.launch_exposed_seconds
                if ws.launch_exposed_seconds > 0.0 else 0.0
            )
            if gated:
                expect_span(
                    "broadcast", ws.wave_index, None, cursor, 0.0, label
                )
                if ws.broadcast_seconds > 0.0:
                    found = instants.get(("broadcast", ws.wave_index, None), [])
                    report.check(
                        len(found) == 1
                        and found[0].args.get("seconds") == ws.broadcast_seconds,
                        f"commit {index} {label}: gated broadcast instant "
                        f"missing or wrong",
                    )
            else:
                expect_span(
                    "broadcast", ws.wave_index, None,
                    cursor, ws.broadcast_seconds, label,
                )
            expect_span(
                "gather", ws.wave_index, None,
                base + win.body_end, ws.gather_seconds, label,
            )
            if ws.dispatch_seconds > 0.0 or ws.launched_chips > 0:
                found = instants.get(("launch", ws.wave_index, None), [])
                good = (
                    len(found) == 1
                    and found[0].args.get("dispatch_seconds") == ws.dispatch_seconds
                    and found[0].args.get("launched_chips") == ws.launched_chips
                    and found[0].args.get("exposed") == ws.launch_exposed_seconds
                    and found[0].args.get("hidden") == ws.launch_hidden_seconds
                )
                report.check(
                    good,
                    f"commit {index} {label}: launch instant missing or its "
                    f"args disagree with the wave stats",
                )
            busy = ws.busy_seconds
            for chip, chip_busy in enumerate(busy):
                if ws.chip_seconds[chip] <= 0.0:
                    continue
                infeed = (
                    ws.infeed_seconds[chip]
                    if chip < len(ws.infeed_seconds) else 0.0
                )
                outfeed = (
                    ws.outfeed_seconds[chip]
                    if chip < len(ws.outfeed_seconds) else 0.0
                )
                compute = max(0.0, chip_busy - infeed - outfeed)
                bar_cursor = base + win.body_start
                for name, dur in (
                    ("infeed", infeed),
                    ("compute", compute),
                    ("outfeed", outfeed),
                ):
                    expect_span(
                        name, ws.wave_index, chip, bar_cursor, dur,
                        f"{label} chip {chip}",
                    )
                    bar_cursor += dur
        report.check(
            flows == {op: seconds for op, seconds in commit.credits},
            f"commit {index}: credit flow events {flows!r} != committed "
            f"credits {dict(commit.credits)!r}",
        )

    # ------------------------------------------------------------------
    # Ledger rows: rebuild every pod row from the logs, in commit order,
    # with the same accumulation the ledger used.
    # ------------------------------------------------------------------
    for op, attr in COLLECTIVE_OPS:
        expected = 0.0
        for ws in pod.collective_log:
            value = getattr(ws, attr)
            if value:
                expected += value
        report.check(
            stats.op_seconds.get(op, 0.0) == expected,
            f"ledger row {op!r}: {stats.op_seconds.get(op, 0.0)!r} != "
            f"rebuilt {expected!r}",
        )
    for op in CREDIT_OPS:
        expected = 0.0
        for commit in pod.commit_log:
            for name, seconds in commit.credits:
                if name == op:
                    expected -= seconds
        report.check(
            stats.op_seconds.get(op, 0.0) == expected,
            f"credit row {op!r}: {stats.op_seconds.get(op, 0.0)!r} != "
            f"rebuilt {expected!r}",
        )
    return report


def assert_reconciles(
    pod: TpuPod, trace: Tracer | None = None, stats=None
) -> ReconciliationReport:
    """:func:`reconcile_pod_trace`, raising ``AssertionError`` on failure."""
    report = reconcile_pod_trace(pod, trace=trace, stats=stats)
    if not report.ok:
        detail = "\n  ".join(report.failures[:20])
        raise AssertionError(
            f"trace does not reconcile with the pod ledger "
            f"({len(report.failures)} failures):\n  {detail}"
        )
    return report
