"""A process-wide metrics registry: every counter behind one snapshot.

The simulator accumulates counters in scattered places -- FFT plan
caches (:func:`repro.fft.fft.fft_plan_cache_info`), the kernel-spectrum
cache, the explanation cache, the micro-batcher, the admission
controller, the cache warmer.  This module unifies them: each *source*
registers a supplier callable returning a flat ``{counter: value}``
dict (and optionally a reset callable), and :func:`metrics_snapshot`
returns the whole picture as ``{source: {counter: value}}``.

Sources with bounded lifetimes (an :class:`~repro.serve.loop
.ExplanationService`, say) register **weakly**: the registry holds a
:class:`weakref.WeakMethod` to the supplier, and a snapshot silently
drops sources whose owner has been garbage-collected -- registering a
service never extends its lifetime.

:func:`reset_metrics` invokes every registered reset callable (the
reset-for-tests hook); sources without one are left alone.
"""

from __future__ import annotations

import weakref

__all__ = [
    "MetricsRegistry",
    "default_registry",
    "register_metrics_source",
    "unregister_metrics_source",
    "metrics_snapshot",
    "reset_metrics",
]


class MetricsRegistry:
    """Named counter sources behind one ``snapshot()`` / ``reset()``."""

    def __init__(self) -> None:
        self._sources: dict[str, tuple] = {}  # name -> (supplier, reset)

    def register(self, name, supplier, reset=None, weak: bool = False) -> None:
        """Register ``supplier`` (→ flat counter dict) under ``name``.

        ``weak=True`` stores :class:`weakref.WeakMethod` handles (the
        callables must be bound methods); a dead owner drops the source
        from future snapshots instead of raising.  Re-registering a
        name replaces the previous source (latest wins).
        """
        if weak:
            supplier = weakref.WeakMethod(supplier)
            reset = weakref.WeakMethod(reset) if reset is not None else None
        self._sources[str(name)] = (supplier, reset, weak)

    def unregister(self, name) -> None:
        self._sources.pop(str(name), None)

    def sources(self) -> list[str]:
        return sorted(self._sources)

    def _resolve(self, handle, weak: bool):
        if not weak or handle is None:
            return handle
        return handle()  # WeakMethod → bound method or None

    def snapshot(self) -> dict:
        """``{source: {counter: value}}`` across live sources."""
        out: dict = {}
        dead = []
        for name, (supplier, _reset, weak) in self._sources.items():
            fn = self._resolve(supplier, weak)
            if fn is None:
                dead.append(name)
                continue
            out[name] = dict(fn())
        for name in dead:
            del self._sources[name]
        return out

    def reset(self) -> None:
        """Invoke every live reset callable (sources without one skip)."""
        for _name, (_supplier, reset, weak) in list(self._sources.items()):
            fn = self._resolve(reset, weak)
            if fn is not None:
                fn()

    def __repr__(self) -> str:
        return f"<MetricsRegistry {self.sources()}>"


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry the module-level helpers act on."""
    return _DEFAULT


def register_metrics_source(name, supplier, reset=None, weak: bool = False) -> None:
    _DEFAULT.register(name, supplier, reset=reset, weak=weak)


def unregister_metrics_source(name) -> None:
    _DEFAULT.unregister(name)


def metrics_snapshot() -> dict:
    """One ``{source: {counter: value}}`` view of every live source."""
    return _DEFAULT.snapshot()


def reset_metrics() -> None:
    """Reset every source that registered a reset callable."""
    _DEFAULT.reset()


# ----------------------------------------------------------------------
# Built-in sources: the FFT layer's process-wide caches.  Importing the
# fft modules here is cycle-free (repro.fft does not import repro.obs);
# the serving layer registers itself at construction instead.
# ----------------------------------------------------------------------
from repro.fft.fft import clear_fft_plan_cache, fft_plan_cache_info  # noqa: E402
from repro.fft.spectra import (  # noqa: E402
    clear_kernel_spectrum_cache,
    kernel_spectrum_cache_info,
)

register_metrics_source("fft_plans", fft_plan_cache_info, clear_fft_plan_cache)
register_metrics_source(
    "kernel_spectra", kernel_spectrum_cache_info, clear_kernel_spectrum_cache
)
