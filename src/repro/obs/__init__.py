"""Observability: span tracing, trace export, and the metrics registry.

This package deliberately stays import-light: :mod:`repro.obs.tracer`
imports nothing from the rest of the package (the hardware layer
imports *it*), and this ``__init__`` pulls in only the tracer, the
exporters and the registry.  The ledger↔span reconciler lives in
:mod:`repro.obs.reconcile` and must be imported directly -- it imports
:mod:`repro.hw.pod`, which would otherwise close an import cycle.
"""

from repro.obs.export import (
    chrome_trace_events,
    format_trace_ascii,
    format_wave_timeline,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.registry import (
    MetricsRegistry,
    default_registry,
    metrics_snapshot,
    register_metrics_source,
    reset_metrics,
    unregister_metrics_source,
)
from repro.obs.tracer import PHASES, TraceEvent, Tracer, tracer

__all__ = [
    "PHASES",
    "TraceEvent",
    "Tracer",
    "tracer",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "format_trace_ascii",
    "format_wave_timeline",
    "MetricsRegistry",
    "default_registry",
    "register_metrics_source",
    "unregister_metrics_source",
    "metrics_snapshot",
    "reset_metrics",
]
