"""Span tracing on the simulated clock.

Every layer of the simulator keeps a faithful ledger of *how much*
simulated time it spent (:class:`~repro.hw.device.DeviceStats`), but
not *where on the timeline* that time sat.  This module records the
missing axis: **spans** -- named intervals in simulated seconds with a
``pid`` (which chip or host process) and ``tid`` (which stream on it)
-- plus instants and flow arrows, in the vocabulary of the Chrome
trace-event format so :mod:`repro.obs.export` can hand the buffer
straight to Perfetto.

The tracer is a process-wide singleton (:data:`tracer`), **disabled by
default**.  Disabled, instrumentation sites do nothing beyond one
``if tracer.enabled`` check -- no events, no allocation, no arithmetic
-- so ledgers, scores and report signatures are bit-identical with and
without the module imported.  This file deliberately imports nothing
from the rest of the package: the hardware layer imports the tracer,
never the other way around.

Timestamps are *simulated seconds*.  Offline layers (device, pod,
fleet) emit spans positioned by their own monotone trace clocks; the
serving layer aligns them onto the service clock by setting
:attr:`Tracer.origin` before a dispatch -- emitters add ``origin`` to
their run-local positions at emission time, so recorded events always
hold absolute session timestamps.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass, field

#: Event phases in the Chrome trace-event vocabulary that this tracer
#: records: complete spans, instants, and flow start/finish arrows.
PHASES = ("X", "i", "s", "f")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    ``ts`` is the start in simulated seconds and ``dur`` the duration
    (zero for instants and flow endpoints).  Storing the duration --
    rather than the end -- keeps duration equality checks exact: the
    reconciler compares ``dur`` against ledger quantities with ``==``
    and float subtraction never re-enters the comparison.
    """

    ph: str
    name: str
    category: str
    ts: float
    dur: float = 0.0
    pid: int = 0
    tid: int = 0
    args: dict = field(default_factory=dict)
    flow_id: int | None = None

    @property
    def end(self) -> float:
        return self.ts + self.dur


class Tracer:
    """An append-only buffer of :class:`TraceEvent`, plus name metadata.

    ``process_names[pid]`` and ``thread_names[(pid, tid)]`` become the
    ``M``-phase metadata events of the Chrome export, so Perfetto shows
    ``chip 3 / infeed`` instead of ``7 / 1``.  :meth:`pid_for` hands
    out stable pids per traced object (keyed by identity), so a pod and
    its member chips each own a process row.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.events: list[TraceEvent] = []
        self.process_names: dict[int, str] = {}
        self.thread_names: dict[tuple[int, int], str] = {}
        #: Offset (simulated seconds) emitters add to run-local
        #: positions; the serving layer points it at the service clock.
        self.origin = 0.0
        self._pids: dict[int, int] = {}
        self._next_pid = 1  # pid 0 is reserved for the serve host
        self._next_flow = 1

    # ------------------------------------------------------------------
    # Session control
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop every event, name and pid mapping; keep enablement."""
        self.events.clear()
        self.process_names.clear()
        self.thread_names.clear()
        self._pids.clear()
        self._next_pid = 1
        self._next_flow = 1
        self.origin = 0.0

    @contextlib.contextmanager
    def tracing(self):
        """Enable tracing for the scope, restoring the prior state after."""
        previous = self.enabled
        self.enabled = True
        try:
            yield self
        finally:
            self.enabled = previous

    # ------------------------------------------------------------------
    # Identity and naming
    # ------------------------------------------------------------------
    def pid_for(self, obj, name: str | None = None) -> int:
        """A stable pid for ``obj`` (allocated on first use).

        Keyed by object identity, so each device/pod in a session owns
        one process row; ``name`` (default ``obj.name`` / ``repr``)
        labels the row on first allocation.
        """
        pid = self._pids.get(id(obj))
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
            self._pids[id(obj)] = pid
            if name is None:
                name = getattr(obj, "name", None) or repr(obj)
            self.process_names.setdefault(pid, str(name))
        return pid

    def set_process_name(self, pid: int, name: str) -> None:
        self.process_names[int(pid)] = str(name)

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        self.thread_names[(int(pid), int(tid))] = str(name)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def complete(
        self,
        name: str,
        category: str,
        ts: float,
        dur: float,
        pid: int = 0,
        tid: int = 0,
        args: dict | None = None,
    ) -> TraceEvent | None:
        """Record one complete (``"X"``) span; no-op while disabled."""
        if not self.enabled:
            return None
        dur = float(dur)
        if not math.isfinite(dur) or dur < 0.0:
            raise ValueError(f"span {name!r} has invalid duration {dur}")
        event = TraceEvent(
            ph="X", name=name, category=category, ts=float(ts), dur=dur,
            pid=int(pid), tid=int(tid), args=dict(args or {}),
        )
        self.events.append(event)
        return event

    def instant(
        self,
        name: str,
        category: str,
        ts: float,
        pid: int = 0,
        tid: int = 0,
        args: dict | None = None,
    ) -> TraceEvent | None:
        """Record one instant (``"i"``) event; no-op while disabled."""
        if not self.enabled:
            return None
        event = TraceEvent(
            ph="i", name=name, category=category, ts=float(ts),
            pid=int(pid), tid=int(tid), args=dict(args or {}),
        )
        self.events.append(event)
        return event

    def flow(
        self,
        name: str,
        category: str,
        src: tuple[float, int, int],
        dst: tuple[float, int, int],
        args: dict | None = None,
    ) -> int | None:
        """Record a flow arrow: an ``"s"``/``"f"`` pair sharing one id.

        ``src``/``dst`` are ``(ts, pid, tid)`` endpoints.  Both events
        carry ``args`` (the overlap-credit seconds ride here), and the
        shared id is returned for tests.  No-op while disabled.
        """
        if not self.enabled:
            return None
        flow_id = self._next_flow
        self._next_flow += 1
        shared = dict(args or {})
        for ph, (ts, pid, tid) in (("s", src), ("f", dst)):
            self.events.append(
                TraceEvent(
                    ph=ph, name=name, category=category, ts=float(ts),
                    pid=int(pid), tid=int(tid), args=dict(shared),
                    flow_id=flow_id,
                )
            )
        return flow_id

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def spans(self, category: str | None = None) -> list[TraceEvent]:
        """The ``"X"`` events, optionally filtered by category."""
        return [
            e for e in self.events
            if e.ph == "X" and (category is None or e.category == category)
        ]

    def by_category(self) -> dict[str, int]:
        """Event counts per category (the coverage summary)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Tracer {state}, {len(self.events)} events>"


#: The process-wide tracer every instrumentation site consults.
tracer = Tracer()
