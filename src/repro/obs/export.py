"""Trace export: Chrome trace-event JSON and ASCII timelines.

:func:`to_chrome_trace` serializes a :class:`~repro.obs.tracer.Tracer`
buffer into the Chrome trace-event format (the JSON Perfetto and
``chrome://tracing`` load directly): complete spans as ``ph: "X"`` with
microsecond ``ts``/``dur``, instants as ``ph: "i"``, flow arrows as
paired ``ph: "s"``/``"f"`` events sharing an ``id``, and
``process_name`` / ``thread_name`` / ``process_sort_index`` metadata
(``ph: "M"``) so the UI labels every lane.  One simulated second is
exported as one second of trace time (``ts_us = ts * 1e6``).

:func:`validate_chrome_trace` is the schema gate the CI smoke step and
the trace benchmark run over every emitted artifact: required keys per
phase, numeric microsecond timestamps, non-negative durations, paired
flow ids.

For terminal inspection there are two renderers in the style of
:func:`repro.hw.trace.utilization_ascii`: :func:`format_trace_ascii`
(one bar row per ``(pid, tid)`` lane) and :func:`format_wave_timeline`
(per-chip infeed/compute/outfeed bars for each pod wave, straight from
``pod.collective_log`` -- no tracer required).
"""

from __future__ import annotations

import json

from repro.obs.tracer import Tracer, tracer as _global_tracer

#: Microseconds per simulated second in the exported timestamps.
US_PER_SECOND = 1e6


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace_events(trace: Tracer | None = None) -> list[dict]:
    """The tracer buffer as a list of Chrome trace-event dicts."""
    trace = trace if trace is not None else _global_tracer
    events: list[dict] = []
    for index, (pid, name) in enumerate(sorted(trace.process_names.items())):
        events.append(
            {
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": name},
            }
        )
        events.append(
            {
                "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
                "args": {"sort_index": index},
            }
        )
    for (pid, tid), name in sorted(trace.thread_names.items()):
        events.append(
            {
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": name},
            }
        )
    for event in trace.events:
        record: dict = {
            "ph": event.ph,
            "name": event.name,
            "cat": event.category or "default",
            "ts": event.ts * US_PER_SECOND,
            "pid": event.pid,
            "tid": event.tid,
            "args": dict(event.args),
        }
        if event.ph == "X":
            record["dur"] = event.dur * US_PER_SECOND
        elif event.ph == "i":
            record["s"] = "t"  # thread-scoped instant
        elif event.ph in ("s", "f"):
            record["id"] = event.flow_id
            if event.ph == "f":
                record["bp"] = "e"  # bind to the enclosing slice
        events.append(record)
    return events


def to_chrome_trace(trace: Tracer | None = None) -> dict:
    """The full Perfetto-loadable trace document."""
    return {
        "traceEvents": chrome_trace_events(trace),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path, trace: Tracer | None = None) -> dict:
    """Serialize the trace to ``path``; returns the written document."""
    document = to_chrome_trace(trace)
    with open(path, "w") as handle:
        json.dump(document, handle)
    return document


def validate_chrome_trace(document) -> list[str]:
    """Schema problems of a Chrome trace document (empty = valid).

    Checks what a loader relies on: a ``traceEvents`` list whose every
    event names its phase, pid and tid; numeric microsecond ``ts`` on
    every non-metadata event; ``dur >= 0`` on complete spans; named
    metadata payloads; and every flow ``s`` paired with an ``f`` of the
    same id (and vice versa).
    """
    problems: list[str] = []
    if not isinstance(document, dict) or "traceEvents" not in document:
        return ["document must be a dict with a 'traceEvents' list"]
    events = document["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    starts: dict = {}
    finishes: dict = {}
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not a dict")
            continue
        for key in ("ph", "name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        ph = event.get("ph")
        if ph == "M":
            args = event.get("args")
            if not isinstance(args, dict) or (
                "name" not in args and "sort_index" not in args
            ):
                problems.append(f"{where}: metadata event without a payload")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: non-numeric ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete span with bad dur {dur!r}")
        elif ph == "i":
            pass
        elif ph in ("s", "f"):
            flow_id = event.get("id")
            if flow_id is None:
                problems.append(f"{where}: flow event without an id")
            else:
                (starts if ph == "s" else finishes).setdefault(flow_id, 0)
                if ph == "s":
                    starts[flow_id] += 1
                else:
                    finishes[flow_id] += 1
        else:
            problems.append(f"{where}: unknown phase {ph!r}")
    for flow_id, count in starts.items():
        if finishes.get(flow_id, 0) != count:
            problems.append(f"flow {flow_id}: {count} starts, "
                            f"{finishes.get(flow_id, 0)} finishes")
    for flow_id, count in finishes.items():
        if flow_id not in starts:
            problems.append(f"flow {flow_id}: {count} finishes without a start")
    return problems


# ----------------------------------------------------------------------
# ASCII renderers
# ----------------------------------------------------------------------
def _lane_label(trace: Tracer, pid: int, tid: int) -> str:
    process = trace.process_names.get(pid, f"pid {pid}")
    thread = trace.thread_names.get((pid, tid), f"tid {tid}")
    return f"{process}/{thread}"


def format_trace_ascii(trace: Tracer | None = None, width: int = 60) -> str:
    """Render the span buffer as one ASCII bar row per (pid, tid) lane.

    The terminal sibling of the Perfetto view, in the style of
    :func:`repro.hw.trace.utilization_ascii`: a ``#`` marks a column
    any span on the lane covers, lanes are labeled
    ``process/thread``, and the caption states the time range.
    """
    if width <= 0:
        raise ValueError("plot width must be positive")
    trace = trace if trace is not None else _global_tracer
    spans = trace.spans()
    if not spans:
        return "(no spans recorded)"
    t0 = min(span.ts for span in spans)
    t1 = max(span.end for span in spans)
    extent = max(t1 - t0, 1e-30)
    lanes: dict[tuple[int, int], list] = {}
    for span in spans:
        lanes.setdefault((span.pid, span.tid), []).append(span)
    labels = {
        lane: _lane_label(trace, *lane) for lane in lanes
    }
    pad = max(len(label) for label in labels.values())
    lines = []
    for lane in sorted(lanes):
        row = [" "] * width
        for span in lanes[lane]:
            lo = int((span.ts - t0) / extent * width)
            hi = int((span.end - t0) / extent * width)
            lo = min(max(lo, 0), width - 1)
            hi = min(max(hi, lo + 1), width)
            for col in range(lo, hi):
                row[col] = "#"
        lines.append(f"{labels[lane]:>{pad}} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(
        " " * pad
        + f"  {t0 * 1e3:.3f} .. {t1 * 1e3:.3f} ms "
        f"({len(spans)} spans, {len(lanes)} lanes)"
    )
    return "\n".join(lines)


def format_wave_timeline(collective_log, width: int = 48) -> str:
    """Per-chip infeed/compute/outfeed bars for each logged pod wave.

    Renders ``pod.collective_log`` (a list of :class:`~repro.hw.pod
    .PodWaveStats`) directly -- no tracer needed: one block per wave
    with a bar per busy chip (``=`` infeed, ``#`` compute, ``-``
    outfeed, scaled to the wave's slowest chip) and a collectives
    footer when the wave moved fabric or launch time.
    """
    if width <= 0:
        raise ValueError("plot width must be positive")
    waves = list(collective_log)
    if not waves:
        return "(no waves logged)"
    lines = []
    for ws in waves:
        busy = ws.busy_seconds
        span = max(max(busy, default=0.0), 1e-30)
        pinned = "" if ws.chip_index is None else f"  chip {ws.chip_index}"
        lines.append(
            f"wave {ws.wave_index:3d}  {ws.placement:<5s} "
            f"{ws.num_pairs:4d} pairs {ws.num_rows:6d} rows   "
            f"body {ws.body_seconds * 1e3:8.3f} ms{pinned}"
        )
        for chip, chip_busy in enumerate(busy):
            if chip_busy <= 0.0:
                continue
            infeed = ws.infeed_seconds[chip] if chip < len(ws.infeed_seconds) else 0.0
            outfeed = (
                ws.outfeed_seconds[chip] if chip < len(ws.outfeed_seconds) else 0.0
            )
            compute = max(0.0, chip_busy - infeed - outfeed)
            in_cols = int(round(infeed / span * width))
            out_cols = int(round(outfeed / span * width))
            comp_cols = max(0, int(round(chip_busy / span * width)) - in_cols - out_cols)
            bar = "=" * in_cols + "#" * comp_cols + "-" * out_cols
            lines.append(
                f"  chip {chip:2d} |{bar:<{width}s}| "
                f"in {infeed * 1e3:7.3f} comp {compute * 1e3:7.3f} "
                f"out {outfeed * 1e3:7.3f} ms"
            )
        collectives = []
        if ws.scatter_seconds:
            collectives.append(f"scatter {ws.scatter_seconds * 1e3:.3f} ms")
        if ws.broadcast_seconds:
            collectives.append(f"broadcast {ws.broadcast_seconds * 1e3:.3f} ms")
        if ws.gather_seconds:
            collectives.append(f"gather {ws.gather_seconds * 1e3:.3f} ms")
        if ws.dispatch_seconds:
            collectives.append(
                f"launch {ws.dispatch_seconds * 1e6:.1f} us x{ws.launched_chips} "
                f"(exposed {ws.launch_exposed_seconds * 1e6:.1f} us)"
            )
        if collectives:
            lines.append("  " + "  ".join(collectives))
    lines.append(f"({len(waves)} waves; bars scale per wave: "
                 "'=' infeed, '#' compute, '-' outfeed)")
    return "\n".join(lines)
