"""Synthetic MIRAI-style malware trace tables.

The paper's second benchmark feeds a ResNet50 detector with "running
data of MIRAI malware ... in the format of a trace table, where each row
represents the hex values in a register in specific clock cycles (each
column represents a specific clock cycle)" (Figure 6).  Real MIRAI
traces are not redistributable, so this generator reproduces the
*explanation target* of that experiment:

* benign traces are ordinary register activity (correlated random-walk
  hex values);
* malicious traces additionally perform the bot's **ATTACK_VECTOR
  assignment** at a known clock cycle: one register latches the attack
  mode constant and dependent registers react in the following cycles --
  the causally label-determining event the explainer must rank first.

Traces are ``(registers, cycles)`` float matrices normalized to [0, 1]
(hex byte values / 255); :meth:`MiraiTraceDataset.format_table` renders
the hex view shown in the paper's Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

ATTACK_MODES = ("UDP", "DNS", "SYN", "ACK", "GREIP")


@dataclass(frozen=True)
class MiraiTraceSpec:
    """Generator parameters."""

    registers: int = 8
    cycles: int = 8
    attack_register: int = 2
    noise_level: float = 0.08
    attack_strength: float = 1.2
    reaction_strength: float = 0.12
    reacting_registers: int = 2

    def __post_init__(self) -> None:
        if self.registers <= 0 or self.cycles <= 0:
            raise ValueError("trace geometry must be positive")
        if not 0 <= self.attack_register < self.registers:
            raise ValueError(
                f"attack register {self.attack_register} outside "
                f"[0, {self.registers})"
            )
        if self.noise_level < 0 or self.reaction_strength < 0:
            raise ValueError("signal strengths cannot be negative")
        if self.reacting_registers < 0:
            raise ValueError("reacting register count cannot be negative")


class MiraiTraceDataset:
    """Labelled malware/benign trace generator with planted ground truth."""

    def __init__(self, spec: MiraiTraceSpec | None = None, seed: int = 0) -> None:
        self.spec = spec or MiraiTraceSpec()
        self.seed = seed
        root = np.random.default_rng(seed)
        # The attack cycle is a dataset-level constant (like the malware
        # binary's control flow), away from the table edges.
        low = max(1, self.spec.cycles // 4)
        high = max(low + 1, 3 * self.spec.cycles // 4)
        self.attack_cycle = int(root.integers(low, high))
        self._mode_values = root.uniform(0.7, 1.0, size=len(ATTACK_MODES))

    def _benign_activity(self, rng: np.random.Generator) -> np.ndarray:
        """Correlated register random walks, normalized to [0, 1]."""
        spec = self.spec
        steps = rng.standard_normal((spec.registers, spec.cycles)) * 0.1
        walk = np.cumsum(steps, axis=1) + rng.uniform(
            0.2, 0.5, size=(spec.registers, 1)
        )
        walk += spec.noise_level * rng.standard_normal(walk.shape)
        return np.clip(walk, 0.0, 0.6)

    def sample(
        self, malicious: bool, rng: np.random.Generator
    ) -> tuple[np.ndarray, dict]:
        """One trace plus its ground-truth metadata."""
        spec = self.spec
        trace = self._benign_activity(rng)
        info = {
            "malicious": malicious,
            "attack_cycle": None,
            "attack_register": None,
            "attack_mode": None,
        }
        if malicious:
            mode_index = int(rng.integers(0, len(ATTACK_MODES)))
            cycle = self.attack_cycle
            register = spec.attack_register
            # The ATTACK_VECTOR assignment: the register latches the mode
            # constant at the attack cycle.  The assignment is the
            # dominant event of the trace -- the explanation ground truth.
            trace[register, cycle] = spec.attack_strength * self._mode_values[mode_index]
            # A few downstream registers react weakly in later cycles
            # (the bot dispatching the chosen attack routine); kept well
            # below the assignment itself so the causal cycle dominates.
            reacting = [r for r in range(spec.registers) if r != register][
                : spec.reacting_registers
            ]
            for lag, other in enumerate(reacting):
                follow = min(spec.cycles - 1, cycle + 1 + lag % 2)
                trace[other, follow] = np.clip(
                    trace[other, follow]
                    + spec.reaction_strength * self._mode_values[mode_index],
                    0,
                    1,
                )
            info.update(
                attack_cycle=cycle,
                attack_register=register,
                attack_mode=ATTACK_MODES[mode_index],
            )
        return trace.astype(np.float64), info

    def batch(
        self, count: int, seed: int = 0
    ) -> tuple[np.ndarray, np.ndarray, list[dict]]:
        """``count`` traces, half malicious (labels 1) half benign (0)."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        rng = np.random.default_rng((self.seed, seed))
        traces = []
        labels = []
        infos = []
        for index in range(count):
            malicious = index % 2 == 1
            trace, info = self.sample(malicious, rng)
            traces.append(trace)
            labels.append(1 if malicious else 0)
            infos.append(info)
        return np.stack(traces), np.asarray(labels, dtype=np.int64), infos

    def as_images(self, traces: np.ndarray) -> np.ndarray:
        """Add the channel axis expected by the CNN detector."""
        traces = np.asarray(traces)
        if traces.ndim != 3:
            raise ValueError(f"expected (batch, registers, cycles), got {traces.shape}")
        return traces[:, np.newaxis, :, :].astype(np.float32)

    def format_table(
        self, trace: np.ndarray, weights: np.ndarray | None = None, max_cols: int = 8
    ) -> str:
        """Render the paper's Figure 6 view: hex rows plus a weight row."""
        trace = np.asarray(trace)
        if trace.ndim != 2:
            raise ValueError(f"expected one (registers, cycles) trace, got {trace.shape}")
        registers, cycles = trace.shape
        shown = min(cycles, max_cols)
        lines = []
        header = "Reg    " + " ".join(f"  C{c:<3}" for c in range(shown))
        lines.append(header)
        for r in range(registers):
            cells = " ".join(
                f"0x{int(np.clip(trace[r, c], 0, 1) * 255):02X} " for c in range(shown)
            )
            lines.append(f"R{r:<3}   {cells}")
        if weights is not None:
            weights = np.asarray(weights)
            if weights.shape[0] < shown:
                raise ValueError(
                    f"need at least {shown} weights, got {weights.shape[0]}"
                )
            row = " ".join(f"{weights[c]:5.2f}" for c in range(shown))
            lines.append(f"wgt    {row}")
        return "\n".join(lines)
