"""Synthetic CIFAR-100-like image dataset.

The paper's first benchmark classifies CIFAR-100 with VGG19.  This
environment has no network access, so we generate a *class-structured*
substitute preserving the two properties the experiments rely on:

1. models genuinely learn it (class evidence exists and generalizes),
   so the accuracy column of Table I is a real number, not a prop;
2. class evidence is *spatially localized* -- each class plants a
   distinctive motif block (plus a class-keyed global texture), so the
   Figure 5 experiment has a ground-truth "face block" that a correct
   explainer must surface.

Images are ``(3, size, size)`` float32 in [0, 1], CIFAR-shaped by
default (32x32).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CifarLikeSpec:
    """Generator parameters."""

    num_classes: int = 100
    image_size: int = 32
    channels: int = 3
    motif_size: int = 8
    noise_level: float = 0.25
    texture_strength: float = 0.3
    motif_strength: float = 1.0

    def __post_init__(self) -> None:
        if self.num_classes <= 0:
            raise ValueError("need at least one class")
        if self.image_size <= 0 or self.channels <= 0:
            raise ValueError("invalid image geometry")
        if self.motif_size <= 0 or self.motif_size > self.image_size:
            raise ValueError(
                f"motif size {self.motif_size} does not fit image {self.image_size}"
            )
        if self.noise_level < 0:
            raise ValueError("noise level cannot be negative")


class SyntheticCifar100:
    """Deterministic class-structured image generator.

    Each class ``c`` owns (a) a low-frequency texture with class-keyed
    orientation/frequency, and (b) a high-contrast motif patch placed at
    a class-keyed grid position.  :meth:`motif_block` exposes that
    position as the explanation ground truth.
    """

    def __init__(self, spec: CifarLikeSpec | None = None, seed: int = 0) -> None:
        self.spec = spec or CifarLikeSpec()
        self.seed = seed
        root = np.random.default_rng(seed)
        spec_local = self.spec
        # Per-class style parameters, fixed for the dataset's lifetime.
        self._frequencies = root.uniform(1.0, 4.0, size=spec_local.num_classes)
        self._orientations = root.uniform(0.0, np.pi, size=spec_local.num_classes)
        self._phases = root.uniform(0.0, 2 * np.pi, size=spec_local.num_classes)
        slots_per_side = spec_local.image_size // spec_local.motif_size
        self._motif_slots = root.integers(
            0, slots_per_side, size=(spec_local.num_classes, 2)
        )
        self._motif_patterns = root.standard_normal(
            (
                spec_local.num_classes,
                spec_local.channels,
                spec_local.motif_size,
                spec_local.motif_size,
            )
        )

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    def motif_block(self, label: int) -> tuple[int, int]:
        """Grid position (block row, block col) of the class motif --
        the ground truth for Figure 5-style block explanations."""
        self._check_label(label)
        row, col = self._motif_slots[label]
        return int(row), int(col)

    def _check_label(self, label: int) -> None:
        if not 0 <= label < self.spec.num_classes:
            raise ValueError(
                f"label {label} outside [0, {self.spec.num_classes})"
            )

    def _texture(self, label: int) -> np.ndarray:
        size = self.spec.image_size
        coordinates = np.arange(size) / size
        xx, yy = np.meshgrid(coordinates, coordinates, indexing="ij")
        angle = self._orientations[label]
        wave = np.sin(
            2 * np.pi * self._frequencies[label] * (xx * np.cos(angle) + yy * np.sin(angle))
            + self._phases[label]
        )
        return np.broadcast_to(wave, (self.spec.channels, size, size))

    def sample(self, label: int, rng: np.random.Generator) -> np.ndarray:
        """Generate one image of class ``label``."""
        self._check_label(label)
        spec = self.spec
        image = 0.5 + spec.texture_strength * self._texture(label) * 0.5
        image = image + spec.noise_level * rng.standard_normal(image.shape)
        row, col = self.motif_block(label)
        ms = spec.motif_size
        patch = self._motif_patterns[label]
        sl_r = slice(row * ms, (row + 1) * ms)
        sl_c = slice(col * ms, (col + 1) * ms)
        image = image.copy()
        image[:, sl_r, sl_c] = 0.5 + spec.motif_strength * np.tanh(patch) * 0.5
        return np.clip(image, 0.0, 1.0).astype(np.float32)

    def batch(
        self, count: int, seed: int = 0, labels: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``count`` labelled images.

        Labels cycle through the classes unless given explicitly, so
        every class is represented in splits of reasonable size.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        rng = np.random.default_rng((self.seed, seed))
        if labels is None:
            labels = np.arange(count) % self.spec.num_classes
        else:
            labels = np.asarray(labels)
            if labels.shape != (count,):
                raise ValueError(f"need {count} labels, got shape {labels.shape}")
        images = np.stack([self.sample(int(label), rng) for label in labels])
        return images, labels.astype(np.int64)

    def train_test_split(
        self, train_count: int, test_count: int, seed: int = 0
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Disjoint-seed train and test batches."""
        train_x, train_y = self.batch(train_count, seed=seed)
        test_x, test_y = self.batch(test_count, seed=seed + 1)
        return train_x, train_y, test_x, test_y


def make_cat_image(
    size: int = 32, block: int = 8, seed: int = 7
) -> tuple[np.ndarray, tuple[int, int], tuple[int, int]]:
    """A Figure 5 style test image with known salient blocks.

    Returns ``(grayscale image, face_block, ear_block)`` where the face
    block is the grid's center (high-contrast structure) and the ear
    block sits above it -- mirroring the paper's cat example where "the
    cat's face (central block) and ear (mid-up block) are the keys".
    """
    if size % block:
        raise ValueError(f"block {block} does not tile image {size}")
    rng = np.random.default_rng(seed)
    image = 0.1 * rng.standard_normal((size, size))
    grid = size // block
    face = (grid // 2, grid // 2)
    ear = (max(0, grid // 2 - 1), grid // 2)
    # Face: dense high-contrast checkerboard texture.
    fr, fc = face
    face_rows = slice(fr * block, (fr + 1) * block)
    face_cols = slice(fc * block, (fc + 1) * block)
    checker = np.indices((block, block)).sum(axis=0) % 2
    image[face_rows, face_cols] += 3.0 * (checker - 0.5)
    # Ear: strong triangular wedge, weaker than the face.
    er, ec = ear
    ear_rows = slice(er * block, (er + 1) * block)
    ear_cols = slice(ec * block, (ec + 1) * block)
    wedge = np.tril(np.ones((block, block)))
    image[ear_rows, ear_cols] += 2.0 * (wedge - 0.5)
    return image, face, ear
