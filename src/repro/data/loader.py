"""Dataset utilities shared by training and benchmarking code."""

from __future__ import annotations

import numpy as np


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels -> one-hot rows."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError(f"expected a label vector, got shape {labels.shape}")
    if num_classes <= 0:
        raise ValueError("class count must be positive")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("label outside class range")
    encoded = np.zeros((labels.shape[0], num_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def normalize_images(images: np.ndarray) -> np.ndarray:
    """Shift/scale image batches to zero mean, unit variance per channel."""
    images = np.asarray(images, dtype=np.float64)
    if images.ndim != 4:
        raise ValueError(f"expected (batch, channels, H, W), got {images.shape}")
    mean = images.mean(axis=(0, 2, 3), keepdims=True)
    std = images.std(axis=(0, 2, 3), keepdims=True)
    return (images - mean) / np.maximum(std, 1e-8)


def to_grayscale(images: np.ndarray) -> np.ndarray:
    """Channel-mean grayscale: (batch, C, H, W) -> (batch, H, W).

    The distillation experiments operate on single-plane matrices; this
    is the standard reduction for multi-channel inputs.
    """
    images = np.asarray(images)
    if images.ndim != 4:
        raise ValueError(f"expected (batch, channels, H, W), got {images.shape}")
    return images.mean(axis=1)


def train_test_indices(
    count: int, test_fraction: float, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled disjoint train/test index split."""
    if count <= 0:
        raise ValueError("count must be positive")
    if not 0 < test_fraction < 1:
        raise ValueError(f"test fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(count)
    cut = max(1, int(round(count * test_fraction)))
    return order[cut:], order[:cut]
