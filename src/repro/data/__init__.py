"""Dataset substrate: synthetic stand-ins for the paper's benchmarks.

* :mod:`repro.data.cifar` -- class-structured CIFAR-100-like images
  with planted motif blocks (the Figure 5 ground truth);
* :mod:`repro.data.mirai` -- MIRAI-style register/clock-cycle trace
  tables with a planted ATTACK_VECTOR assignment cycle (the Figure 6
  ground truth);
* :mod:`repro.data.loader` -- batching and preprocessing helpers.

See DESIGN.md section 2 for why these substitutions preserve the
behaviour the experiments measure.
"""

from repro.data.cifar import CifarLikeSpec, SyntheticCifar100, make_cat_image
from repro.data.loader import (
    normalize_images,
    one_hot,
    to_grayscale,
    train_test_indices,
)
from repro.data.windows import (
    TraceWindow,
    locate_cycle,
    pad_trace,
    sliding_windows,
)
from repro.data.mirai import (
    ATTACK_MODES,
    MiraiTraceDataset,
    MiraiTraceSpec,
)

__all__ = [
    "CifarLikeSpec",
    "SyntheticCifar100",
    "make_cat_image",
    "normalize_images",
    "one_hot",
    "to_grayscale",
    "train_test_indices",
    "TraceWindow",
    "locate_cycle",
    "pad_trace",
    "sliding_windows",
    "ATTACK_MODES",
    "MiraiTraceDataset",
    "MiraiTraceSpec",
]
