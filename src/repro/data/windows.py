"""Windowing utilities for long execution traces.

Real malware traces run for millions of cycles; detectors (and the
paper's trace-table interpretation) consume fixed-size register x cycle
windows.  These helpers slice long traces into model-ready windows and
map window-level explanations back to absolute cycle indices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TraceWindow:
    """One window cut from a longer trace."""

    data: np.ndarray  # (registers, window_cycles)
    start_cycle: int

    @property
    def end_cycle(self) -> int:
        return self.start_cycle + self.data.shape[1]

    def to_absolute_cycle(self, column: int) -> int:
        """Map a window-local column index to the trace's cycle number."""
        if not 0 <= column < self.data.shape[1]:
            raise IndexError(
                f"column {column} outside window of {self.data.shape[1]} cycles"
            )
        return self.start_cycle + column


def sliding_windows(
    trace: np.ndarray, window_cycles: int, stride: int | None = None
) -> list[TraceWindow]:
    """Cut a ``(registers, cycles)`` trace into overlapping windows.

    ``stride`` defaults to the window length (non-overlapping).  A final
    partial window is dropped, matching fixed-input detectors.
    """
    trace = np.asarray(trace)
    if trace.ndim != 2:
        raise ValueError(f"expected a (registers, cycles) trace, got {trace.shape}")
    if window_cycles <= 0:
        raise ValueError(f"window length must be positive, got {window_cycles}")
    stride = window_cycles if stride is None else stride
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    total = trace.shape[1]
    windows = []
    for start in range(0, total - window_cycles + 1, stride):
        windows.append(
            TraceWindow(data=trace[:, start : start + window_cycles], start_cycle=start)
        )
    return windows


def locate_cycle(
    windows: list[TraceWindow], window_scores: list[np.ndarray]
) -> tuple[int, float]:
    """Find the globally most contributing cycle across windows.

    ``window_scores[i]`` holds per-column contributions of window ``i``
    (e.g. from :func:`repro.core.interpretation.column_contributions`).
    Overlapping windows vote; the absolute cycle with the highest summed
    score wins.  Returns ``(cycle, score)``.
    """
    if len(windows) != len(window_scores):
        raise ValueError(
            f"{len(windows)} windows but {len(window_scores)} score vectors"
        )
    if not windows:
        raise ValueError("no windows given")
    totals: dict[int, float] = {}
    for window, scores in zip(windows, window_scores):
        scores = np.asarray(scores)
        if scores.shape != (window.data.shape[1],):
            raise ValueError(
                f"score vector of shape {scores.shape} does not match window "
                f"of {window.data.shape[1]} cycles"
            )
        for column, score in enumerate(scores):
            cycle = window.to_absolute_cycle(column)
            totals[cycle] = totals.get(cycle, 0.0) + float(score)
    best_cycle = max(totals, key=totals.get)
    return best_cycle, totals[best_cycle]


def pad_trace(trace: np.ndarray, window_cycles: int, fill_value: float = 0.0) -> np.ndarray:
    """Right-pad a trace so its length is a multiple of the window."""
    trace = np.asarray(trace)
    if trace.ndim != 2:
        raise ValueError(f"expected a (registers, cycles) trace, got {trace.shape}")
    if window_cycles <= 0:
        raise ValueError(f"window length must be positive, got {window_cycles}")
    remainder = trace.shape[1] % window_cycles
    if remainder == 0:
        return trace.copy()
    padding = window_cycles - remainder
    return np.pad(trace, ((0, 0), (0, padding)), constant_values=fill_value)
