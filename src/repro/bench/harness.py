"""Experiment harness: regenerates every table and figure of the paper.

Each ``run_*`` function returns a structured result object; each
``format_*`` renders it in the paper's layout.  The module doubles as a
CLI::

    python -m repro.bench.harness table1
    python -m repro.bench.harness table2
    python -m repro.bench.harness figure4
    python -m repro.bench.harness figure5
    python -m repro.bench.harness figure6
    python -m repro.bench.harness all

All times are *simulated seconds* from the device cost models (see
DESIGN.md "Fidelity contract"); accuracies come from really training the
CI-scale model variants on the synthetic datasets.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np

from repro.bench.workloads import (
    FIGURE4_SIZES,
    ClassificationWorkload,
    cpu_classification_times,
    default_devices,
    figure4_solve_seconds,
    gpu_classification_times,
    interpretation_seconds,
    resnet50_interpretation_workload,
    resnet50_workload,
    tpu_classification_times,
    vgg19_interpretation_workload,
    vgg19_workload,
)
from repro.core.backend import TpuBackend, make_tpu_chip
from repro.core.distillation import ConvolutionDistiller
from repro.core.interpretation import (
    block_contributions,
    column_contributions,
    normalize_scores,
    top_k_features,
)
from repro.data.cifar import CifarLikeSpec, SyntheticCifar100, make_cat_image
from repro.data.mirai import MiraiTraceDataset, MiraiTraceSpec
from repro.fft import fft_circular_convolve2d
from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice
from repro.nn.optim import Adam
from repro.nn.resnet import resnet_scaled
from repro.nn.train import Trainer
from repro.nn.vgg import vgg19_scaled


# ----------------------------------------------------------------------
# Accuracy runs (real training of the CI-scale variants)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AccuracyResult:
    """Accuracy triple for one benchmark row.

    CPU and GPU run the float model; the TPU column re-evaluates with
    int8-quantized weights (the quantization the paper's Section II-A
    describes), so the three columns can genuinely differ.
    """

    float_accuracy: float
    quantized_accuracy: float


def _quantized_eval_accuracy(model, trainer, inputs, labels) -> float:
    """Evaluate with every weight tensor round-tripped through int8."""
    from repro.nn.quantized import quantized_accuracy

    return quantized_accuracy(
        model, inputs, labels, bits=8, batch_size=trainer.batch_size
    )


def train_vgg_accuracy(
    train_count: int = 192, test_count: int = 96, epochs: int = 6, seed: int = 0
) -> AccuracyResult:
    """Really train the scaled VGG19 on synthetic CIFAR-100-like data."""
    dataset = SyntheticCifar100(
        CifarLikeSpec(num_classes=4, noise_level=0.15), seed=seed
    )
    train_x, train_y, test_x, test_y = dataset.train_test_split(
        train_count, test_count, seed=seed
    )
    model = vgg19_scaled(num_classes=4, seed=seed)
    trainer = Trainer(
        model, Adam(model.parameters(), lr=2e-3), batch_size=32, seed=seed
    )
    trainer.fit(train_x, train_y, epochs=epochs)
    float_acc = trainer.evaluate(test_x, test_y)
    quant_acc = _quantized_eval_accuracy(model, trainer, test_x, test_y)
    return AccuracyResult(float_accuracy=float_acc, quantized_accuracy=quant_acc)


def train_resnet_accuracy(
    train_count: int = 256, test_count: int = 96, epochs: int = 10, seed: int = 0
) -> AccuracyResult:
    """Really train the scaled ResNet on synthetic MIRAI traces."""
    dataset = MiraiTraceDataset(
        MiraiTraceSpec(registers=32, cycles=32), seed=seed
    )
    train_traces, train_y, _ = dataset.batch(train_count, seed=seed)
    test_traces, test_y, _ = dataset.batch(test_count, seed=seed + 1)
    train_x = dataset.as_images(train_traces)
    test_x = dataset.as_images(test_traces)
    model = resnet_scaled(num_classes=2, in_channels=1, seed=seed)
    trainer = Trainer(
        model, Adam(model.parameters(), lr=3e-3), batch_size=32, seed=seed
    )
    trainer.fit(train_x, train_y, epochs=epochs)
    float_acc = trainer.evaluate(test_x, test_y)
    quant_acc = _quantized_eval_accuracy(model, trainer, test_x, test_y)
    return AccuracyResult(float_accuracy=float_acc, quantized_accuracy=quant_acc)


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One benchmark row of Table I."""

    bench: str
    cpu_accuracy: float
    cpu_train: float
    cpu_test: float
    gpu_accuracy: float
    gpu_train: float
    gpu_test: float
    tpu_accuracy: float
    tpu_train: float
    tpu_test: float

    @property
    def speedup_vs_cpu(self) -> float:
        return (self.cpu_train + self.cpu_test) / (self.tpu_train + self.tpu_test)

    @property
    def speedup_vs_gpu(self) -> float:
        return (self.gpu_train + self.gpu_test) / (self.tpu_train + self.tpu_test)


@dataclass(frozen=True)
class Table1Result:
    rows: list[Table1Row]


def run_table1(
    with_accuracy: bool = True, accuracy_epochs: int | None = None
) -> Table1Result:
    """Regenerate Table I: accuracy plus per-10-epoch train/test time.

    ``accuracy_epochs`` overrides both models' training length (mainly
    for quick smoke runs); by default each model uses its own tuned
    epoch count.
    """
    rows = []
    override = {} if accuracy_epochs is None else {"epochs": accuracy_epochs}
    accuracy_runs = {
        "VGG19": (lambda: train_vgg_accuracy(**override)),
        "ResNet50": (lambda: train_resnet_accuracy(**override)),
    }
    for workload in (vgg19_workload(), resnet50_workload()):
        cpu_times = cpu_classification_times(workload)
        gpu_times = gpu_classification_times(workload)
        tpu_times = tpu_classification_times(workload)
        if with_accuracy:
            accuracy = accuracy_runs[workload.name]()
            float_pct = 100.0 * accuracy.float_accuracy
            quant_pct = 100.0 * accuracy.quantized_accuracy
        else:
            float_pct = float("nan")
            quant_pct = float("nan")
        rows.append(
            Table1Row(
                bench=workload.name,
                cpu_accuracy=float_pct,
                cpu_train=cpu_times.train_seconds,
                cpu_test=cpu_times.test_seconds,
                gpu_accuracy=float_pct,
                gpu_train=gpu_times.train_seconds,
                gpu_test=gpu_times.test_seconds,
                tpu_accuracy=quant_pct,
                tpu_train=tpu_times.train_seconds,
                tpu_test=tpu_times.test_seconds,
            )
        )
    return Table1Result(rows=rows)


def format_table1(result: Table1Result) -> str:
    header = (
        f"{'bench':<10}"
        f"{'CPU acc%':>9}{'CPU-train':>11}{'CPU-test':>10}"
        f"{'GPU acc%':>9}{'GPU-train':>11}{'GPU-test':>10}"
        f"{'TPU acc%':>9}{'TPU-train':>11}{'TPU-test':>10}"
        f"{'Spd/CPU':>9}{'Spd/GPU':>9}"
    )
    lines = [
        "TABLE I: Comparison of accuracy and classification time "
        "(simulated seconds per 10 epochs)",
        header,
        "-" * len(header),
    ]
    for row in result.rows:
        lines.append(
            f"{row.bench:<10}"
            f"{row.cpu_accuracy:>9.2f}{row.cpu_train:>11.1f}{row.cpu_test:>10.1f}"
            f"{row.gpu_accuracy:>9.2f}{row.gpu_train:>11.1f}{row.gpu_test:>10.1f}"
            f"{row.tpu_accuracy:>9.2f}{row.tpu_train:>11.1f}{row.tpu_test:>10.2f}"
            f"{row.speedup_vs_cpu:>8.1f}x{row.speedup_vs_gpu:>8.1f}x"
        )
    avg_cpu = float(np.mean([row.speedup_vs_cpu for row in result.rows]))
    avg_gpu = float(np.mean([row.speedup_vs_gpu for row in result.rows]))
    lines.append(
        f"{'Average':<10}{'':>60}{'':>30}{avg_cpu:>8.1f}x{avg_gpu:>8.1f}x"
    )
    lines.append(
        "(paper: VGG19 65x/25.7x, ResNet50 44.5x/23.9x, average 54.7x/24.8x)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    model: str
    cpu_seconds: float
    gpu_seconds: float
    tpu_seconds: float

    @property
    def improvement_vs_cpu(self) -> float:
        return self.cpu_seconds / self.tpu_seconds

    @property
    def improvement_vs_gpu(self) -> float:
        return self.gpu_seconds / self.tpu_seconds


@dataclass(frozen=True)
class Table2Result:
    rows: list[Table2Row]


def run_table2(pairs: int = 10) -> Table2Result:
    """Regenerate Table II: interpretation time per ``pairs`` pairs.

    Models the paper's *measured* execution explicitly
    (``method="loop"``: host-side masking, one launch per feature) --
    the executable pipeline has since switched its default to the
    batched engine, which `benchmarks/bench_batched_interpretation.py`
    compares against this baseline.
    """
    devices = default_devices()
    rows = []
    for workload in (
        vgg19_interpretation_workload(pairs=pairs),
        resnet50_interpretation_workload(pairs=pairs),
    ):
        rows.append(
            Table2Row(
                model=workload.name,
                cpu_seconds=interpretation_seconds(devices["CPU"], workload, method="loop"),
                gpu_seconds=interpretation_seconds(devices["GPU"], workload, method="loop"),
                tpu_seconds=interpretation_seconds(devices["TPU"], workload, method="loop"),
            )
        )
    return Table2Result(rows=rows)


def format_table2(result: Table2Result) -> str:
    header = (
        f"{'Model':<10}{'CPU':>10}{'GPU':>10}{'TPU':>10}"
        f"{'Impro./CPU':>12}{'Impro./GPU':>12}"
    )
    lines = [
        "TABLE II: Average time (simulated seconds) for outcome "
        "interpretation per 10 input-output pairs",
        header,
        "-" * len(header),
    ]
    for row in result.rows:
        lines.append(
            f"{row.model:<10}{row.cpu_seconds:>10.1f}{row.gpu_seconds:>10.1f}"
            f"{row.tpu_seconds:>10.1f}"
            f"{row.improvement_vs_cpu:>11.1f}x{row.improvement_vs_gpu:>11.1f}x"
        )
    avg = Table2Row(
        model="Average",
        cpu_seconds=float(np.mean([r.cpu_seconds for r in result.rows])),
        gpu_seconds=float(np.mean([r.gpu_seconds for r in result.rows])),
        tpu_seconds=float(np.mean([r.tpu_seconds for r in result.rows])),
    )
    lines.append(
        f"{avg.model:<10}{avg.cpu_seconds:>10.1f}{avg.gpu_seconds:>10.1f}"
        f"{avg.tpu_seconds:>10.1f}"
        f"{avg.improvement_vs_cpu:>11.1f}x{avg.improvement_vs_gpu:>11.1f}x"
    )
    lines.append(
        "(paper: VGG19 550.7/168/15.2s -> 36.2x/11x; "
        "ResNet50 1456.1/502/36.8s -> 39.5x/13.6x)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Figure4Point:
    size: int
    cpu_seconds: float
    gpu_seconds: float
    tpu_seconds: float


@dataclass(frozen=True)
class Figure4Result:
    points: list[Figure4Point]

    def speedup_vs_cpu(self, size: int) -> float:
        for point in self.points:
            if point.size == size:
                return point.cpu_seconds / point.tpu_seconds
        raise KeyError(f"size {size} not in sweep")


def run_figure4(sizes=FIGURE4_SIZES) -> Figure4Result:
    """Regenerate Figure 4: solve time vs matrix size on each device."""
    devices = default_devices()
    points = [
        Figure4Point(
            size=size,
            cpu_seconds=figure4_solve_seconds(devices["CPU"], size),
            gpu_seconds=figure4_solve_seconds(devices["GPU"], size),
            tpu_seconds=figure4_solve_seconds(devices["TPU"], size),
        )
        for size in sizes
    ]
    return Figure4Result(points=points)


def format_figure4(result: Figure4Result) -> str:
    header = f"{'size':>6}{'CPU (s)':>12}{'GPU (s)':>12}{'TPU (s)':>12}{'TPU/CPU':>10}{'TPU/GPU':>10}"
    lines = [
        "FIGURE 4: Scalability of the interpretation solve "
        "(simulated seconds per matrix)",
        header,
        "-" * len(header),
    ]
    for point in result.points:
        lines.append(
            f"{point.size:>6}{point.cpu_seconds:>12.4f}{point.gpu_seconds:>12.4f}"
            f"{point.tpu_seconds:>12.4f}"
            f"{point.cpu_seconds / point.tpu_seconds:>9.1f}x"
            f"{point.gpu_seconds / point.tpu_seconds:>9.1f}x"
        )
    lines.append("(paper: TPU more than 30x faster than CPU at 1024x1024)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Figure5Result:
    image: np.ndarray
    grid: np.ndarray
    face_block: tuple[int, int]
    ear_block: tuple[int, int]
    top_blocks: list[tuple[int, ...]]

    @property
    def face_is_top(self) -> bool:
        return tuple(self.top_blocks[0]) == self.face_block

    @property
    def ear_in_top_two(self) -> bool:
        return self.ear_block in [tuple(b) for b in self.top_blocks[:2]]


def run_figure5(
    size: int = 32, block: int = 8, seed: int = 7, fit_pairs: int = 12
) -> Figure5Result:
    """Regenerate Figure 5: block-level interpretation of a cat image.

    A synthetic image with known face/ear blocks passes through a
    convolutional "classifier" (a planted circular-convolution response,
    the model family the distiller is exact for).  The distilled model
    is fitted on a small batch of noisy variants of the image -- the
    paper's setting, where distillation sees the model's input-output
    dataset -- which also makes the multi-pair Wiener solve well-posed
    without any spectrum anchoring.  The fitted kernel's block
    contributions must surface the face first and the ear in the top
    two: the paper's qualitative claim.
    """
    image, face, ear = make_cat_image(size=size, block=block, seed=seed)
    rng = np.random.default_rng(seed)
    response_kernel = rng.standard_normal((size, size))

    variants = np.stack(
        [image + 0.05 * rng.standard_normal(image.shape) for _ in range(fit_pairs)]
    )
    outputs = np.stack(
        [fft_circular_convolve2d(x, response_kernel) for x in variants]
    )
    distiller = ConvolutionDistiller(eps=1e-6).fit(variants, outputs)

    output = fft_circular_convolve2d(image, response_kernel)
    grid = block_contributions(
        image, distiller.kernel_, output, block_shape=(block, block)
    )
    return Figure5Result(
        image=image,
        grid=normalize_scores(grid),
        face_block=face,
        ear_block=ear,
        top_blocks=top_k_features(grid, 3),
    )


def format_figure5(result: Figure5Result) -> str:
    lines = [
        "FIGURE 5: Interpretation of a CIFAR-style image "
        "(normalized block contribution factors)",
    ]
    for row in result.grid:
        lines.append("  " + " ".join(f"{value:5.2f}" for value in row))
    lines.append(f"face block {result.face_block} is top-1: {result.face_is_top}")
    lines.append(f"ear block {result.ear_block} in top-2:  {result.ear_in_top_two}")
    lines.append(
        "(paper: the cat's face (central block) and ear (mid-up block) "
        "are the keys to recognition)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Figure6Result:
    trace: np.ndarray
    weights: np.ndarray
    attack_cycle: int
    attack_mode: str
    table_text: str

    @property
    def attack_cycle_is_top(self) -> bool:
        return int(np.argmax(self.weights)) == self.attack_cycle


def run_figure6(
    registers: int = 8, cycles: int = 8, seed: int = 3, fit_pairs: int = 12
) -> Figure6Result:
    """Regenerate Figure 6: per-clock-cycle weights of a MIRAI trace.

    The distilled model is fitted on a batch of traces from the
    detector's input-output behaviour (malicious traces all carry the
    ATTACK_VECTOR assignment at the dataset's attack cycle); column
    contributions on one malicious trace must put that cycle on top.
    """
    dataset = MiraiTraceDataset(
        MiraiTraceSpec(registers=registers, cycles=cycles), seed=seed
    )
    rng = np.random.default_rng(seed)
    detector_kernel = rng.standard_normal((registers, cycles))

    fit_traces = np.stack(
        [dataset.sample(index % 2 == 1, rng)[0] for index in range(fit_pairs)]
    )
    fit_outputs = np.stack(
        [fft_circular_convolve2d(t, detector_kernel) for t in fit_traces]
    )
    distiller = ConvolutionDistiller(eps=1e-6).fit(fit_traces, fit_outputs)

    trace, info = dataset.sample(True, rng)
    output = fft_circular_convolve2d(trace, detector_kernel)
    weights = column_contributions(trace, distiller.kernel_, output)
    normalized = normalize_scores(weights)
    table_text = dataset.format_table(trace, weights=normalized, max_cols=cycles)
    return Figure6Result(
        trace=trace,
        weights=normalized,
        attack_cycle=info["attack_cycle"],
        attack_mode=info["attack_mode"],
        table_text=table_text,
    )


def format_figure6(result: Figure6Result) -> str:
    lines = [
        "FIGURE 6: Interpretation of MIRAI malware traced signals",
        result.table_text,
        f"ATTACK_VECTOR assignment at cycle C{result.attack_cycle} "
        f"(mode {result.attack_mode})",
        f"attack cycle has the largest weight: {result.attack_cycle_is_top}",
        "(paper: the weight of C2 is significantly larger than the others; "
        "C2 is the ATTACK_VECTOR assignment)",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

_EXPERIMENTS = {
    "table1": lambda: format_table1(run_table1()),
    "table2": lambda: format_table2(run_table2()),
    "figure4": lambda: format_figure4(run_figure4()),
    "figure5": lambda: format_figure5(run_figure5()),
    "figure6": lambda: format_figure6(run_figure6()),
}


def _csv_exporters():
    from repro.bench import report

    return {
        "table1": lambda: report.table1_csv(run_table1()),
        "table2": lambda: report.table2_csv(run_table2()),
        "figure4": lambda: report.figure4_csv(run_figure4()),
        "figure5": lambda: report.figure5_csv(run_figure5()),
        "figure6": lambda: report.figure6_csv(run_figure6()),
    }


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    write_csv_files = "--csv" in argv
    argv = [argument for argument in argv if argument != "--csv"]
    if not argv or argv[0] not in (*_EXPERIMENTS, "all"):
        names = ", ".join([*_EXPERIMENTS, "all"])
        print(f"usage: python -m repro.bench.harness <{names}> [--csv]")
        return 2
    targets = list(_EXPERIMENTS) if argv[0] == "all" else [argv[0]]
    exporters = _csv_exporters() if write_csv_files else {}
    for name in targets:
        print(_EXPERIMENTS[name]())
        print()
        if write_csv_files:
            from repro.bench.report import write_csv

            path = f"results_{name}.csv"
            write_csv(path, exporters[name]())
            print(f"[csv written to {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
