"""Result export: CSV serialization of every experiment's outputs.

Keeps the harness's structured results machine-readable so downstream
analysis (plots, regression tracking across simulator changes) does not
scrape the pretty-printed tables.
"""

from __future__ import annotations

import csv
import io

from repro.bench.harness import (
    Figure4Result,
    Figure5Result,
    Figure6Result,
    Table1Result,
    Table2Result,
)


def table1_csv(result: Table1Result) -> str:
    """Table I rows as CSV (one line per benchmark)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "bench",
            "cpu_accuracy_pct", "cpu_train_s", "cpu_test_s",
            "gpu_accuracy_pct", "gpu_train_s", "gpu_test_s",
            "tpu_accuracy_pct", "tpu_train_s", "tpu_test_s",
            "speedup_vs_cpu", "speedup_vs_gpu",
        ]
    )
    for row in result.rows:
        writer.writerow(
            [
                row.bench,
                f"{row.cpu_accuracy:.4f}", f"{row.cpu_train:.6f}", f"{row.cpu_test:.6f}",
                f"{row.gpu_accuracy:.4f}", f"{row.gpu_train:.6f}", f"{row.gpu_test:.6f}",
                f"{row.tpu_accuracy:.4f}", f"{row.tpu_train:.6f}", f"{row.tpu_test:.6f}",
                f"{row.speedup_vs_cpu:.4f}", f"{row.speedup_vs_gpu:.4f}",
            ]
        )
    return buffer.getvalue()


def table2_csv(result: Table2Result) -> str:
    """Table II rows as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["model", "cpu_s", "gpu_s", "tpu_s", "improvement_vs_cpu", "improvement_vs_gpu"]
    )
    for row in result.rows:
        writer.writerow(
            [
                row.model,
                f"{row.cpu_seconds:.6f}", f"{row.gpu_seconds:.6f}",
                f"{row.tpu_seconds:.6f}",
                f"{row.improvement_vs_cpu:.4f}", f"{row.improvement_vs_gpu:.4f}",
            ]
        )
    return buffer.getvalue()


def figure4_csv(result: Figure4Result) -> str:
    """Figure 4 series as CSV (one line per matrix size)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["size", "cpu_s", "gpu_s", "tpu_s", "tpu_vs_cpu", "tpu_vs_gpu"])
    for point in result.points:
        writer.writerow(
            [
                point.size,
                f"{point.cpu_seconds:.6f}", f"{point.gpu_seconds:.6f}",
                f"{point.tpu_seconds:.6f}",
                f"{point.cpu_seconds / point.tpu_seconds:.4f}",
                f"{point.gpu_seconds / point.tpu_seconds:.4f}",
            ]
        )
    return buffer.getvalue()


def figure5_csv(result: Figure5Result) -> str:
    """Figure 5 block grid as CSV (block_row, block_col, weight, role)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["block_row", "block_col", "weight", "role"])
    for (row_index, col_index), weight in _iter_grid(result.grid):
        role = ""
        if (row_index, col_index) == result.face_block:
            role = "face"
        elif (row_index, col_index) == result.ear_block:
            role = "ear"
        writer.writerow([row_index, col_index, f"{weight:.6f}", role])
    return buffer.getvalue()


def figure6_csv(result: Figure6Result) -> str:
    """Figure 6 per-cycle weights as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["cycle", "weight", "is_attack_cycle"])
    for cycle, weight in enumerate(result.weights):
        writer.writerow(
            [cycle, f"{weight:.6f}", int(cycle == result.attack_cycle)]
        )
    return buffer.getvalue()


def _iter_grid(grid):
    rows, cols = grid.shape
    for row_index in range(rows):
        for col_index in range(cols):
            yield (row_index, col_index), float(grid[row_index, col_index])


def write_csv(path: str, content: str) -> None:
    """Write a CSV payload to disk."""
    if not content.strip():
        raise ValueError("refusing to write an empty CSV")
    with open(path, "w", newline="") as handle:
        handle.write(content)
