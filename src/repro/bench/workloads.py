"""Canonical experiment workloads (Section IV of the paper).

Defines, as data plus cost arithmetic, the three timed experiments:

* **Table I** -- classification: training/testing time per 10 epochs for
  VGG19 (CIFAR-100-scale) and ResNet50 (MIRAI-scale) on CPU / GPU / TPU;
* **Table II** -- interpretation: average time to distill and compute
  contribution factors for every 10 input-output pairs;
* **Figure 4** -- scalability: one 2-D Fourier transform at growing
  matrix sizes on all three devices.

Time semantics (see DESIGN.md "Fidelity contract"): all numbers are
*simulated seconds* from the device cost models.

Execution-model assumptions, mirroring the paper's setup:

* CPU and GPU run eagerly: one kernel per layer per batch, each paying
  that device's per-op overhead; data is host-resident (CPU) or moved
  over PCIe per batch (GPU).
* The TPU runs compiled programs: one dispatch round trip per training
  step / interpretation pair, int8 MXU arithmetic for classification,
  bf16 for the Fourier solve, batch sharded over the chip's cores with
  a gradient cross-replica sum per step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.backend import TpuBackend, make_tpu_chip
from repro.hw.cpu import CpuDevice
from repro.hw.device import PipelineStage, pipelined_elapsed_seconds
from repro.hw.gpu import GpuDevice
from repro.hw.quantize import infeed_bytes_per_element, resolve_precision
from repro.nn.flops import ModelCensus, model_census
from repro.nn.resnet import resnet50
from repro.nn.vgg import vgg19


@dataclass(frozen=True)
class ClassificationWorkload:
    """Everything Table I needs to cost one benchmark row."""

    name: str
    census: ModelCensus
    train_samples: int
    test_samples: int
    batch_size: int = 128
    epochs_per_report: int = 10  # the paper reports per-10-epoch times
    bytes_per_value: int = 4  # fp32 host data
    backward_multiplier: float = 2.0

    @property
    def steps_per_epoch(self) -> int:
        return math.ceil(self.train_samples / self.batch_size)

    @property
    def test_steps(self) -> int:
        return math.ceil(self.test_samples / self.batch_size)

    @property
    def sample_bytes(self) -> int:
        channels, height, width = self.census.input_shape
        return channels * height * width * self.bytes_per_value


def vgg19_workload() -> ClassificationWorkload:
    """Benchmark 1: VGG19 on CIFAR-100 (50k train / 10k test images)."""
    census = model_census(vgg19(num_classes=100), (3, 32, 32), name="VGG19")
    return ClassificationWorkload(
        name="VGG19", census=census, train_samples=50_000, test_samples=10_000
    )


def resnet50_workload() -> ClassificationWorkload:
    """Benchmark 2: ResNet50 on MIRAI trace tables (32x32 windows)."""
    census = model_census(
        resnet50(num_classes=2, in_channels=1), (1, 32, 32), name="ResNet50"
    )
    return ClassificationWorkload(
        name="ResNet50", census=census, train_samples=50_000, test_samples=10_000
    )


@dataclass(frozen=True)
class TrainTestSeconds:
    """One Table I cell pair."""

    train_seconds: float
    test_seconds: float


def _eager_step_seconds(device, census: ModelCensus, batch: int, passes: float) -> float:
    """One eager-mode step: every layer launches its own kernel.

    ``passes`` = 1 for inference, ``1 + backward_multiplier`` for
    training (forward, grad-input, grad-weight sweeps share shapes).
    """
    seconds = 0.0
    for shape in census.matmuls:
        seconds += passes * device.matmul_seconds(batch * shape.m, shape.k, shape.n)
    seconds += passes * device.elementwise_seconds(batch * census.elementwise_elements)
    return seconds


def cpu_classification_times(
    workload: ClassificationWorkload, device: CpuDevice | None = None
) -> TrainTestSeconds:
    """Table I baseline column: host-resident eager execution."""
    device = device or CpuDevice()
    passes_train = 1.0 + workload.backward_multiplier
    step = _eager_step_seconds(device, workload.census, workload.batch_size, passes_train)
    train = step * workload.steps_per_epoch * workload.epochs_per_report
    test_step = _eager_step_seconds(device, workload.census, workload.batch_size, 1.0)
    test = test_step * workload.test_steps
    return TrainTestSeconds(train_seconds=train, test_seconds=test)


def gpu_classification_times(
    workload: ClassificationWorkload, device: GpuDevice | None = None
) -> TrainTestSeconds:
    """Table I GPU column: eager kernels plus per-batch PCIe transfers."""
    device = device or GpuDevice()
    passes_train = 1.0 + workload.backward_multiplier
    batch_bytes = workload.batch_size * workload.sample_bytes
    step = (
        _eager_step_seconds(device, workload.census, workload.batch_size, passes_train)
        + device.transfer_seconds(batch_bytes)
    )
    train = step * workload.steps_per_epoch * workload.epochs_per_report
    test_step = (
        _eager_step_seconds(device, workload.census, workload.batch_size, 1.0)
        + device.transfer_seconds(batch_bytes)
    )
    test = test_step * workload.test_steps
    return TrainTestSeconds(train_seconds=train, test_seconds=test)


def tpu_classification_times(
    workload: ClassificationWorkload, backend: TpuBackend | None = None
) -> TrainTestSeconds:
    """Table I proposed-approach column.

    Per training step: one dispatch, int8 infeed of the batch, the
    compiled per-core forward+backward (batch sharded across cores), and
    one gradient cross-replica sum.  Per test step: dispatch + infeed +
    per-core forward.
    """
    backend = backend or TpuBackend(make_tpu_chip(precision="int8"))
    chip = backend.chip
    core = chip.cores[0]
    cores = chip.num_cores

    per_core_batch = max(1, math.ceil(workload.batch_size / cores))
    passes_train = 1.0 + workload.backward_multiplier

    def compiled_pass(passes: float) -> float:
        seconds = 0.0
        for shape in workload.census.matmuls:
            seconds += passes * core.matmul_seconds(
                per_core_batch * shape.m, shape.k, shape.n
            )
        seconds += passes * core.elementwise_seconds(
            per_core_batch * workload.census.elementwise_elements
        )
        return seconds

    # int8 infeed: quantized samples are 1 byte per value.
    batch_bytes_int8 = workload.batch_size * workload.sample_bytes // workload.bytes_per_value
    host_bw = chip.config.host_bandwidth_bytes_per_sec
    dispatch = chip.config.dispatch_latency_sec
    infeed = batch_bytes_int8 / host_bw
    # Gradient reassembly: bf16 gradients for every parameter.
    grad_bytes = workload.census.parameter_count * 2
    allreduce = chip.interconnect.all_reduce_seconds(grad_bytes, cores)
    # Host-side optimizer round trip (the paper's 2020-era PyTorch/XLA
    # Colab stack keeps optimizer state on the host): bf16 gradients
    # stream out, updated bf16 weights stream back, every step.
    optimizer_round_trip = 2 * workload.census.parameter_count * 2 / host_bw

    train_step = (
        dispatch
        + infeed
        + compiled_pass(passes_train)
        + allreduce
        + optimizer_round_trip
    )
    train = train_step * workload.steps_per_epoch * workload.epochs_per_report
    test_step = dispatch + infeed + compiled_pass(1.0)
    test = test_step * workload.test_steps
    return TrainTestSeconds(train_seconds=train, test_seconds=test)


# ----------------------------------------------------------------------
# Table II: interpretation cost
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class InterpretationWorkload:
    """Everything Table II needs to cost one benchmark row.

    ``plane`` is the feature-plane size the distillation operates on
    (the embedded model-I/O matrix); ``num_features`` the count of
    maskable features (blocks for images, clock-cycle columns for trace
    tables); ``pairs`` the batch the paper averages over (10).
    """

    name: str
    plane: tuple[int, int]
    num_features: int
    pairs: int = 10

    def __post_init__(self) -> None:
        if self.plane[0] <= 0 or self.plane[1] <= 0:
            raise ValueError(f"invalid plane {self.plane}")
        if self.num_features <= 0 or self.pairs <= 0:
            raise ValueError("features and pairs must be positive")


def vgg19_interpretation_workload(pairs: int = 10) -> InterpretationWorkload:
    """VGG19 row: 1024x1024 embedded plane, 64 occluded image blocks."""
    return InterpretationWorkload(
        name="VGG19", plane=(1024, 1024), num_features=64, pairs=pairs
    )


def resnet50_interpretation_workload(pairs: int = 10) -> InterpretationWorkload:
    """ResNet50 row: 1024x1024 trace window, 160 clock-cycle columns.

    More maskable features than the image row -- the reason the paper's
    ResNet50 interpretation times are uniformly larger.
    """
    return InterpretationWorkload(
        name="ResNet50", plane=(1024, 1024), num_features=160, pairs=pairs
    )


def planted_interpretation_pairs(
    count: int,
    shape: tuple[int, int] = (16, 16),
    seed: int = 0,
    spike: float = 5.0,
):
    """Planted ``(x, y)`` fleets for *executed* interpretation benches.

    Each pair is a standard-normal plane with a ``spike * sqrt(M*N)``
    feature planted at ``[0, 0]`` (so occlusion scoring has an
    unambiguous top feature and int8 quantization error stays
    meaningful relative to the signal), convolved against a random
    kernel for the exact target.  The single recipe shared by the fleet
    benchmark and the quantized-batch ablation, so their contracts
    exercise the same data distribution.
    """
    from repro.fft.convolution import fft_circular_convolve2d

    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        x = rng.standard_normal(shape)
        x[0, 0] += spike * float(np.prod(shape)) ** 0.5
        kernel = rng.standard_normal(shape)
        pairs.append((x, fft_circular_convolve2d(x, kernel)))
    return pairs


def planted_request_pairs(
    count: int,
    shape: tuple[int, int] = (16, 16),
    seed: int = 0,
    repeat_fraction: float = 0.0,
    spike: float = 5.0,
):
    """Planted pairs for *serving* benches: repeated-input traffic.

    Like :func:`planted_interpretation_pairs`, but a seeded fraction of
    entries repeat an earlier pair's exact arrays -- the
    duplicate-request traffic a content-addressed explanation cache
    monetizes (repeated inputs share a digest, so a warm service
    answers them without touching the device).  ``repeat_fraction=0``
    degenerates to all-unique pairs; the repeats are drawn from the
    same seeded generator, so a trace is fully determined by
    ``(count, shape, seed, repeat_fraction)``.
    """
    from repro.fft.convolution import fft_circular_convolve2d

    if not 0.0 <= repeat_fraction <= 1.0:
        raise ValueError(
            f"repeat_fraction must lie in [0, 1], got {repeat_fraction}"
        )
    rng = np.random.default_rng(seed)
    pairs = []
    for index in range(count):
        if index and rng.random() < repeat_fraction:
            source = int(rng.integers(index))
            pairs.append(pairs[source])  # same arrays => same digest
            continue
        x = rng.standard_normal(shape)
        x[0, 0] += spike * float(np.prod(shape)) ** 0.5
        kernel = rng.standard_normal(shape)
        pairs.append((x, fft_circular_convolve2d(x, kernel)))
    return pairs


def _solve_seconds(device, m: int, n: int) -> float:
    """One Eq. 4 distillation solve on an ``m x n`` plane.

    Three 2-D transforms plus the Hadamard stages: conjugate, two
    complex multiplies, the eps regularizer add, and the Hadamard
    division.  Shared by every interpretation cost model so the solve
    arithmetic cannot drift between the per-pair and fleet variants.
    """
    elements = m * n
    seconds = 3 * device.fft2_seconds(m, n)
    seconds += device.elementwise_seconds(elements, 0.5)  # conjugate
    seconds += 3 * device.elementwise_seconds(elements, 4.0)  # complex mul/mul/div
    seconds += device.elementwise_seconds(elements, 2.0)  # eps regularizer add
    return seconds


def interpretation_seconds(
    device, workload: InterpretationWorkload, method: str = "loop",
    precision=None,
) -> float:
    """Cost of the full distill-and-interpret batch on one device.

    Mirrors :class:`repro.core.pipeline.ExplanationPipeline` operation
    for operation (asserted by an integration test), in either
    execution mode, for the mask-plan granularities the workloads
    describe -- ``num_features`` counts occlusion masks (image blocks,
    trace columns/rows).  Per-element workloads are out of scope: the
    pipeline's ``elements`` granularity uses the closed-form linearity
    fast path (one convolution total), which this per-feature
    arithmetic deliberately does not model.

    The default, ``method="loop"``, deliberately models the *paper's
    measured* execution so Table II regenerates faithfully; note the
    executable :class:`~repro.core.pipeline.ExplanationPipeline`
    defaults to the batched engine, so pass ``method`` explicitly
    whenever comparing the model against an executed run.

    ``method="loop"`` -- the paper's measured execution (host-side
    masking, one launch per masked feature)::

        per pair = program overhead
                 + solve:   2 fft2 + 1 ifft2 + 1 conjugate + 4 hadamard
                 + residual + per-feature masked re-run:
                   (features + 1) x (2 fft2 + 1 ifft2 + 1 hadamard)

    ``method="batched"`` -- the batched occlusion engine (the
    pipeline's default): the residual convolution stays eager, then the
    whole mask plan runs as one batched program whose kernel spectrum
    is transformed once (``device.batch_conv_seconds``); on the TPU the
    per-mask host round trips disappear because the plan executes
    inside the pair's already-dispatched program.

    ``precision`` mirrors the executable pipeline's axis: the batched
    convolution (and on TPU each masked plane's infeed) is priced at
    that numeric mode -- int8/bf16 at full MXU rate with 1-/2-byte
    feeds, fp32/fp64 at reduced rate.  ``None`` (default) keeps the
    legacy arithmetic, so Table II regenerates unchanged.
    """
    if method not in ("loop", "batched"):
        raise ValueError(f"unknown method {method!r}; expected 'loop' or 'batched'")
    spec = resolve_precision(precision)
    m, n = workload.plane
    elements = m * n
    transform = device.fft2_seconds(m, n)
    solve = _solve_seconds(device, m, n)
    conv = 3 * transform + device.elementwise_seconds(elements, 4.0)

    if method == "loop":
        per_pair = solve + (workload.num_features + 1) * conv
    else:
        # residual conv stays eager; the plan batches: one kernel fft2
        # plus the device's batched-convolution cost for all features.
        per_pair = solve + conv + transform + device.batch_conv_seconds(
            workload.num_features, m, n, precision=spec
        )

    if isinstance(device, TpuBackend):
        # One fused program per pair (dispatch; x/y stream in as fp32,
        # the fp64 kernel streams back).  In loop mode, every masked
        # convolution adds a host round trip: the feature mask is
        # applied host-side, so the fp32 masked plane streams in and
        # the fp64 Eq. 5 residual streams back on every feature -- see
        # TpuBackend.conv2d_circular.  In batched mode only the eager
        # residual convolution pays that round trip.
        dispatch = device.chip.config.dispatch_latency_sec
        # x/y and every masked plane stream at the precision's storage
        # width (the executed feed_bytes / TpuBackend.conv2d_circular
        # payloads); fp64 results stream back at full width either way.
        stream_width = infeed_bytes_per_element(spec)
        program = dispatch + device.transfer_seconds(
            elements * (stream_width + stream_width + 8)
        )
        conv_round_trip = dispatch + device.transfer_seconds(
            elements * (stream_width + 8)
        )
        eager_convs = (workload.num_features + 1) if method == "loop" else 1
        overhead = program + eager_convs * conv_round_trip
    else:
        stream_width = infeed_bytes_per_element(spec)
        overhead = device.transfer_seconds(elements * (stream_width + stream_width + 8))
    return workload.pairs * (per_pair + overhead)


def fleet_interpretation_seconds(
    device,
    workload: InterpretationWorkload,
    method: str = "batched",
    fusion: str = "wave",
    pairs_per_wave: int | None = None,
    pipelined: bool = False,
    precision=None,
) -> float:
    """Cost of the distill-and-interpret fleet under cross-pair fusion.

    Mirrors :class:`repro.core.pipeline.ExplanationPipeline` with its
    ``fusion`` axis.  ``fusion="pair"`` (and ``method="loop"``, which is
    inherently pair-at-a-time) reduces exactly to
    :func:`interpretation_seconds` -- the per-pair arithmetic is
    unchanged, keeping the Table II numbers stable.  ``fusion="wave"``
    models the wave-fused executor: the fleet's ``pairs`` fuse into
    waves of ``pairs_per_wave`` (default: one wave for the whole
    fleet), and each wave costs

    * one per-pair Eq. 4 solve (unchanged),
    * one kernel-spectrum batch for the wave's kernels
      (``device.kernel_spectrum_batch_seconds``),
    * **one** batched convolution over every pair's masks *plus* its
      unmasked residual plane
      (``device.batch_conv_seconds(P * (features + 1))``),
    * and, on the TPU, **one** program round trip for the wave --
      dispatch count drops from ~N per fleet to ~1 per wave.

    Whatever ``pipelined`` says, each wave's feed is modeled as two
    DMA calls -- a prologue (dispatch + fp32 infeed of the wave's x/y
    pairs) and an epilogue (fp64 kernel outfeed) -- mirroring the
    executed program scope's separate ``host_to_device`` /
    ``device_to_host`` transfers.  (On links with a per-call latency,
    e.g. the GPU's PCIe model, serial wave totals therefore carry one
    extra transfer latency per wave relative to the historical
    single-call feed; ``method="loop"`` and ``fusion="pair"`` numbers
    are untouched.)  ``pipelined=True`` models the double-buffered
    executor (``FleetExecutor.run(pipelined=True)``): stages combine
    via :func:`repro.hw.device.pipelined_elapsed_seconds`, wave
    ``i+1``'s prologue hiding under wave ``i``'s compute --
    ``infeed_0 + sum(max(compute_i + outfeed_i, infeed_{i+1})) +
    outfeed_last`` (intermediate outfeeds ride with their wave's
    compute on the full-duplex link; the last wave's outfeed is charged
    in full).  With a single wave (the default split) pipelining
    changes nothing; ``False`` sums the stages serially.

    ``precision`` models the quantized wave path
    (``FleetExecutor(precision=...)``): the kernel-spectrum batch and
    the fused batched convolution are priced with the MXU cycle hooks
    at that numeric mode, and the wave's x/y infeed streams at the
    spec's storage width (1 byte/element for int8) instead of the
    legacy fp32 feed.  ``None`` keeps every number exactly as before.
    """
    if method not in ("loop", "batched"):
        raise ValueError(f"unknown method {method!r}; expected 'loop' or 'batched'")
    if fusion not in ("wave", "pair"):
        raise ValueError(f"unknown fusion {fusion!r}; expected 'wave' or 'pair'")
    spec = resolve_precision(precision)
    if method == "loop" or fusion == "pair":
        return interpretation_seconds(
            device, workload, method=method, precision=spec
        )
    if pairs_per_wave is None:
        pairs_per_wave = workload.pairs
    if pairs_per_wave <= 0:
        raise ValueError(f"pairs_per_wave must be positive, got {pairs_per_wave}")

    m, n = workload.plane
    elements = m * n
    solve = _solve_seconds(device, m, n)
    stream_width = infeed_bytes_per_element(spec)

    stages: list[PipelineStage] = []
    remaining = workload.pairs
    while remaining > 0:
        wave_pairs = min(pairs_per_wave, remaining)
        remaining -= wave_pairs
        rows = wave_pairs * (workload.num_features + 1)  # masks + residuals
        body = wave_pairs * solve
        body += device.kernel_spectrum_batch_seconds(wave_pairs, m, n, precision=spec)
        body += device.batch_conv_seconds(rows, m, n, precision=spec)
        # One program per wave: x/y stream in as fp32 (or the quantized
        # storage width) per pair (the prologue a double-buffered
        # pipeline can hide), the fp64 kernels stream back (the
        # epilogue) -- the loop model's per-pair feed, amortized over
        # one launch.
        infeed = device.transfer_seconds(wave_pairs * elements * 2 * stream_width)
        outfeed = device.transfer_seconds(wave_pairs * elements * 8)
        if isinstance(device, TpuBackend):
            infeed += device.chip.config.dispatch_latency_sec
        stages.append(PipelineStage(prologue=infeed, body=body, epilogue=outfeed))
    if pipelined:
        return pipelined_elapsed_seconds(stages)
    return sum(stage.total for stage in stages)


# ----------------------------------------------------------------------
# Figure 4: scalability of one 2-D transform
# ----------------------------------------------------------------------

FIGURE4_SIZES = (64, 128, 256, 512, 1024)


def figure4_solve_seconds(device, size: int) -> float:
    """One distillation solve on a ``size x size`` matrix (Figure 4).

    The paper's scalability figure times its interpretation operation on
    "randomly selected matrices with varying sizes": one task-transformed
    solve = three 2-D transforms plus the Hadamard stages (Eq. 4),
    end-to-end including the host round trip.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    elements = size * size
    # x and y stream in as fp32, the solved fp64 kernel streams back.
    feed_bytes = elements * (4 + 4 + 8)
    compute = _solve_seconds(device, size, size)
    if isinstance(device, TpuBackend):
        return (
            device.chip.config.dispatch_latency_sec
            + device.transfer_seconds(feed_bytes)
            + compute
        )
    return device.transfer_seconds(feed_bytes) + compute


def default_devices() -> dict[str, object]:
    """The paper's three hardware configurations with default calibration."""
    return {
        "CPU": CpuDevice(),
        "GPU": GpuDevice(),
        "TPU": TpuBackend(make_tpu_chip(num_cores=128, precision="bf16")),
    }
