"""Deterministic simulated time for the online explanation service.

The serving layer measures latency the same way the rest of the repo
measures everything: in *simulated seconds*, never wall clock.  A
:class:`SimulatedClock` is the service's single time authority -- it
advances only on two kinds of events, both deterministic:

* **arrivals**: the event loop jumps the clock to the next request's
  arrival timestamp (drawn up front by the seeded arrival processes of
  :mod:`repro.serve.workload`);
* **device work**: after each dispatched wave batch the clock advances
  by exactly the simulated seconds the device ledger accumulated for
  that run.

No ``time.sleep``, no wall-clock reads: the same seed and trace replay
to the identical latency ledger, which the service tests assert --
MLPerf's server-scenario measurement (arrival-driven latency under
load) made reproducible in CI.
"""

from __future__ import annotations


class SimulatedClock:
    """A monotone simulated-seconds counter.

    Time can be advanced by a duration (:meth:`advance`, device work) or
    to an absolute timestamp (:meth:`advance_to`, arrivals); it never
    moves backwards -- a request whose arrival timestamp is already in
    the past (it arrived while the device was busy serving the previous
    batch) leaves the clock untouched, which is exactly how queueing
    delay enters its measured latency.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move forward by a non-negative duration; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance by negative time, got {seconds}")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move forward to ``timestamp`` (a past timestamp is a no-op)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def __repr__(self) -> str:
        return f"<SimulatedClock t={self._now:.6f}s>"
