"""Per-request latency ledger and the service report.

Everything here is derived from the :class:`~repro.serve.clock
.SimulatedClock`: a request's latency is ``completion - arrival`` in
simulated seconds, including the time it queued behind the device and
behind the micro-batcher's max-wait window.  The report surfaces the
server-scenario quantities MLPerf Inference defines -- tail latency
percentiles (nearest-rank p50/p95/p99) and **goodput**, completed
requests per elapsed simulated second (rejected requests count against
goodput by not counting at all).

Determinism is part of the contract: :meth:`LatencyLedger.signature`
flattens the ledger into plain tuples so tests can assert that the same
seed and trace replay to the *identical* ledger.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.device import DeviceStats

#: Request outcomes recorded on the ledger.
STATUSES = ("completed", "rejected")


@dataclass(frozen=True)
class RequestRecord:
    """One request's lifecycle, timestamped by the simulated clock.

    ``enqueue_time`` is when the admitted request joined its batch
    queue (equal to ``arrival_time`` unless the server was busy);
    ``dispatch_time``/``completion_time`` bracket its batch's device
    run.  A cache hit completes at admission: no dispatch, no device
    work, ``cache_hit=True``.  A rejected request carries only its
    ``reject_reason``.  ``result`` is the
    :class:`~repro.core.fleet.PairResult` handed back to the client
    (present on every completed record, cached or cold).
    """

    request_id: int
    arrival_time: float
    status: str
    batch_key: tuple = ()
    enqueue_time: float | None = None
    dispatch_time: float | None = None
    completion_time: float | None = None
    dispatch_index: int | None = None
    cache_hit: bool = False
    reject_reason: str | None = None
    result: object = None

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(
                f"unknown status {self.status!r}; expected one of {STATUSES}"
            )

    @property
    def latency(self) -> float | None:
        """Simulated seconds from arrival to completion (``None`` if rejected)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time


class LatencyLedger:
    """Append-only record of every request's outcome."""

    def __init__(self) -> None:
        self.records: list[RequestRecord] = []

    def add(self, record: RequestRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def completed(self) -> list[RequestRecord]:
        return [r for r in self.records if r.status == "completed"]

    @property
    def rejected(self) -> list[RequestRecord]:
        return [r for r in self.records if r.status == "rejected"]

    @property
    def cache_hits(self) -> list[RequestRecord]:
        return [r for r in self.records if r.cache_hit]

    def latencies(self) -> list[float]:
        """Sorted completed-request latencies (simulated seconds)."""
        return sorted(r.latency for r in self.completed)

    # ------------------------------------------------------------------
    # Per-key views (the fairness instrumentation)
    # ------------------------------------------------------------------
    def completed_for(self, batch_key: tuple) -> list[RequestRecord]:
        """Completed records whose batch key equals ``batch_key``."""
        return [r for r in self.completed if r.batch_key == batch_key]

    def latencies_for(self, batch_key: tuple) -> list[float]:
        """Sorted completed latencies for one batch key."""
        return sorted(r.latency for r in self.completed_for(batch_key))

    def percentile_for(self, batch_key: tuple, p: float) -> float:
        """Nearest-rank percentile over one batch key's completions."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile must lie in (0, 100], got {p}")
        latencies = self.latencies_for(batch_key)
        if not latencies:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * len(latencies)))
        return latencies[rank - 1]

    def batch_keys(self) -> list[tuple]:
        """Every batch key on the ledger, in first-appearance order."""
        seen: dict[tuple, None] = {}
        for record in self.records:
            if record.batch_key and record.batch_key not in seen:
                seen[record.batch_key] = None
        return list(seen)

    # ------------------------------------------------------------------
    # Percentiles (nearest-rank, so values are actual observed latencies)
    # ------------------------------------------------------------------
    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of completed latencies (0 when none)."""
        if not 0 < p <= 100:
            raise ValueError(f"percentile must lie in (0, 100], got {p}")
        latencies = self.latencies()
        if not latencies:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * len(latencies)))
        return latencies[rank - 1]

    def signature(self) -> tuple:
        """The ledger as plain tuples: the determinism contract.

        Two runs of the same seeded trace must produce equal
        signatures -- every timestamp, status, batch key and dispatch
        index, in order.  Array payloads are deliberately excluded
        (bit-identity of results is asserted separately, value by
        value).
        """
        return tuple(
            (
                r.request_id,
                r.arrival_time,
                r.status,
                r.batch_key,
                r.enqueue_time,
                r.dispatch_time,
                r.completion_time,
                r.dispatch_index,
                r.cache_hit,
                r.reject_reason,
            )
            for r in self.records
        )


@dataclass(frozen=True)
class ServiceReport:
    """Outcome of one :meth:`~repro.serve.loop.ExplanationService.process`.

    ``elapsed_seconds`` is the simulated makespan (clock time when the
    last request completed); ``stats`` the harvested device ledger for
    the whole run; ``num_dispatches`` how many non-empty batches went to
    the fleet executor and ``num_waves`` the scheduler waves they
    resolved to; the cache counters snapshot the service cache's
    activity during this run; ``num_warmed`` counts explanations the
    speculative warmer re-distilled during idle drain gaps.
    """

    ledger: LatencyLedger
    elapsed_seconds: float
    stats: DeviceStats
    num_dispatches: int = 0
    num_waves: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    num_warmed: int = 0

    # ------------------------------------------------------------------
    # Headline serving metrics
    # ------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        return len(self.ledger.completed)

    @property
    def rejected_count(self) -> int:
        return len(self.ledger.rejected)

    @property
    def goodput(self) -> float:
        """Completed requests per elapsed simulated second."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.completed_count / self.elapsed_seconds

    @property
    def p50(self) -> float:
        return self.ledger.percentile(50)

    @property
    def p95(self) -> float:
        return self.ledger.percentile(95)

    @property
    def p99(self) -> float:
        return self.ledger.percentile(99)

    @property
    def mean_latency(self) -> float:
        latencies = self.ledger.latencies()
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    def results_by_id(self) -> dict[int, object]:
        """Completed results keyed by request id (bit-identity checks)."""
        return {r.request_id: r.result for r in self.ledger.completed}

    def signature(self) -> tuple:
        """The whole report as plain tuples: the determinism contract.

        Extends :meth:`LatencyLedger.signature` with the run-level
        counters, so two replays of the same seeded trace must agree
        not just record by record but also on the makespan, dispatch
        structure, cache activity and warming work.
        """
        return (
            self.ledger.signature(),
            self.elapsed_seconds,
            self.num_dispatches,
            self.num_waves,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.num_warmed,
        )
