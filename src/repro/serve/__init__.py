"""The serving layer: online explanation requests over the fleet executor.

Everything below the offline stack explains *lists*; this package
serves *traffic*.  It is the repo's fifth accelerator layer -- the one
that turns batch economics into goodput under live load:

* :mod:`repro.serve.clock`      -- deterministic simulated time (no
  wall-clock sleeps anywhere on the request path);
* :mod:`repro.serve.workload`   -- :class:`Request` plus seeded Poisson
  and bursty arrival processes (and :func:`merge_traces` for
  multi-tenant mixes);
* :mod:`repro.serve.batcher`    -- dynamic micro-batching per
  ``(granularity, block_shape, precision)`` key under a
  max-wait/max-batch policy, with weighted-fair dispatch across keys;
* :mod:`repro.serve.controller` -- the serving autopilot: an AIMD
  :class:`BatchController` steering each key's policy toward a p95
  target;
* :mod:`repro.serve.cache`      -- content-addressed, byte-budgeted LRU
  of finished explanations (hits are bit-identical and device-free),
  plus the :class:`SpeculativeWarmer` that re-distills recurring
  evicted entries during idle gaps;
* :mod:`repro.serve.admission`  -- queue-depth/byte backpressure,
  global and per key;
* :mod:`repro.serve.metrics`    -- the latency ledger, p50/p95/p99 and
  goodput report;
* :mod:`repro.serve.capacity`   -- chips-needed-at-rate-R and simulated
  cost-per-million-explanations, projected from a report;
* :mod:`repro.serve.loop`       -- :class:`ExplanationService`, the
  event loop tying them together (also reachable as
  :meth:`ExplanationPipeline.service()
  <repro.core.pipeline.ExplanationPipeline.service>`).

See ``benchmarks/bench_serve.py`` for the arrival-rate sweep comparing
the batched service against the per-request serial baseline and the
autopilot against the best static policy.
"""

from repro.serve.admission import (
    ADMITTED,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.batcher import (
    DISPATCH_POLICIES,
    BatchKey,
    MicroBatcher,
    QueuedRequest,
)
from repro.serve.cache import (
    DEFAULT_CACHE_BYTES,
    ExplanationCache,
    SpeculativeWarmer,
    explanation_digest,
    result_nbytes,
)
from repro.serve.capacity import (
    DEFAULT_CHIP_COST_PER_HOUR,
    CapacityPlan,
    capacity_table,
    format_capacity_table,
    plan_capacity,
)
from repro.serve.clock import SimulatedClock
from repro.serve.controller import BatchController, nearest_rank_percentile
from repro.serve.loop import ExplanationService
from repro.serve.metrics import (
    LatencyLedger,
    RequestRecord,
    ServiceReport,
)
from repro.serve.workload import (
    Request,
    bursty_requests,
    merge_traces,
    poisson_requests,
)

__all__ = [
    "ADMITTED",
    "AdmissionController",
    "AdmissionDecision",
    "DISPATCH_POLICIES",
    "BatchKey",
    "MicroBatcher",
    "QueuedRequest",
    "DEFAULT_CACHE_BYTES",
    "ExplanationCache",
    "SpeculativeWarmer",
    "explanation_digest",
    "result_nbytes",
    "DEFAULT_CHIP_COST_PER_HOUR",
    "CapacityPlan",
    "capacity_table",
    "format_capacity_table",
    "plan_capacity",
    "SimulatedClock",
    "BatchController",
    "nearest_rank_percentile",
    "ExplanationService",
    "LatencyLedger",
    "RequestRecord",
    "ServiceReport",
    "Request",
    "bursty_requests",
    "merge_traces",
    "poisson_requests",
]
