"""The serving layer: online explanation requests over the fleet executor.

Everything below the offline stack explains *lists*; this package
serves *traffic*.  It is the repo's fifth accelerator layer -- the one
that turns batch economics into goodput under live load:

* :mod:`repro.serve.clock`     -- deterministic simulated time (no
  wall-clock sleeps anywhere on the request path);
* :mod:`repro.serve.workload`  -- :class:`Request` plus seeded Poisson
  and bursty arrival processes;
* :mod:`repro.serve.batcher`   -- dynamic micro-batching per
  ``(granularity, block_shape, precision)`` key under a
  max-wait/max-batch policy;
* :mod:`repro.serve.cache`     -- content-addressed, byte-budgeted LRU
  of finished explanations (hits are bit-identical and device-free);
* :mod:`repro.serve.admission` -- queue-depth/byte backpressure;
* :mod:`repro.serve.metrics`   -- the latency ledger, p50/p95/p99 and
  goodput report;
* :mod:`repro.serve.loop`      -- :class:`ExplanationService`, the
  event loop tying them together (also reachable as
  :meth:`ExplanationPipeline.service()
  <repro.core.pipeline.ExplanationPipeline.service>`).

See ``benchmarks/bench_serve.py`` for the arrival-rate sweep comparing
the batched service against the per-request serial baseline.
"""

from repro.serve.admission import (
    ADMITTED,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.batcher import BatchKey, MicroBatcher, QueuedRequest
from repro.serve.cache import (
    DEFAULT_CACHE_BYTES,
    ExplanationCache,
    explanation_digest,
    result_nbytes,
)
from repro.serve.clock import SimulatedClock
from repro.serve.loop import ExplanationService
from repro.serve.metrics import (
    LatencyLedger,
    RequestRecord,
    ServiceReport,
)
from repro.serve.workload import Request, bursty_requests, poisson_requests

__all__ = [
    "ADMITTED",
    "AdmissionController",
    "AdmissionDecision",
    "BatchKey",
    "MicroBatcher",
    "QueuedRequest",
    "DEFAULT_CACHE_BYTES",
    "ExplanationCache",
    "explanation_digest",
    "result_nbytes",
    "SimulatedClock",
    "ExplanationService",
    "LatencyLedger",
    "RequestRecord",
    "ServiceReport",
    "Request",
    "bursty_requests",
    "poisson_requests",
]
