"""Seeded arrival processes: the service's request traffic.

The offline stack explains *lists* of pairs; a serving benchmark needs
*requests* -- pairs that arrive over time.  This module defines the
request record and two seeded arrival processes:

* :func:`poisson_requests` -- memoryless traffic at a target rate
  (exponential inter-arrivals), the MLPerf-Inference server-scenario
  arrival model;
* :func:`bursty_requests` -- closed bursts separated by idle gaps, the
  adversarial case for a micro-batcher (a burst should coalesce into
  few waves; the idle gap exercises the max-wait flush).

Both draw every random quantity -- inter-arrival gaps, pair planes,
repeat choices, per-request precisions -- from one
``numpy.random.default_rng(seed)`` stream plus the seeded pair recipe
of :func:`repro.bench.workloads.planted_request_pairs`, so a trace is a
pure function of its arguments and the service's latency ledger replays
bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.bench.workloads import planted_request_pairs


@dataclass(frozen=True, eq=False)
class Request:
    """One online explanation request.

    ``granularity`` / ``block_shape`` / ``precision`` default to
    ``None`` = "use the service's configured default"; a request that
    sets them explicitly is routed to its own batch key (requests with
    different keys never share a wave -- notably mixed precisions).
    Compared by identity (``eq=False``): the payload is ndarrays.
    """

    request_id: int
    arrival_time: float
    x: np.ndarray
    y: np.ndarray
    granularity: str | None = None
    block_shape: tuple[int, int] | None = None
    precision: object = None  # a name, a PrecisionSpec, or None

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ValueError(
                f"request {self.request_id} arrives before time zero "
                f"({self.arrival_time})"
            )
        object.__setattr__(self, "x", np.asarray(self.x))
        object.__setattr__(self, "y", np.asarray(self.y))


def _requests_from_arrivals(
    arrivals,
    rng: np.random.Generator,
    shape: tuple[int, int],
    seed: int,
    repeat_fraction: float,
    granularity: str | None,
    block_shape: tuple[int, int] | None,
    precision,
    precisions,
) -> list[Request]:
    """Attach planted pairs (and optional per-request precisions) to times."""
    arrivals = list(arrivals)
    pairs = planted_request_pairs(
        len(arrivals), shape=shape, seed=seed, repeat_fraction=repeat_fraction
    )
    if precisions is not None:
        precisions = list(precisions)
        if not precisions:
            raise ValueError("precisions must name at least one mode")
    requests = []
    for index, ((x, y), arrival) in enumerate(zip(pairs, arrivals)):
        chosen = precision
        if precisions is not None:
            chosen = precisions[int(rng.integers(len(precisions)))]
        requests.append(
            Request(
                request_id=index,
                arrival_time=float(arrival),
                x=x,
                y=y,
                granularity=granularity,
                block_shape=block_shape,
                precision=chosen,
            )
        )
    return requests


def poisson_requests(
    count: int,
    rate: float,
    seed: int = 0,
    shape: tuple[int, int] = (16, 16),
    repeat_fraction: float = 0.0,
    granularity: str | None = None,
    block_shape: tuple[int, int] | None = None,
    precision=None,
    precisions=None,
) -> list[Request]:
    """A seeded Poisson request trace at ``rate`` requests/simulated-second.

    Inter-arrival gaps are exponential with mean ``1/rate``;
    ``repeat_fraction`` of the requests repeat an earlier pair's exact
    arrays (cache-hit traffic); ``precisions`` optionally draws each
    request's precision uniformly from the given modes (requests of
    different precisions never share a wave).  ``count=0`` is a legal
    idle trace.
    """
    if count < 0:
        raise ValueError(f"count cannot be negative, got {count}")
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=count))
    return _requests_from_arrivals(
        arrivals, rng, shape, seed, repeat_fraction,
        granularity, block_shape, precision, precisions,
    )


def bursty_requests(
    count: int,
    burst_size: int,
    burst_gap: float,
    seed: int = 0,
    shape: tuple[int, int] = (16, 16),
    repeat_fraction: float = 0.0,
    granularity: str | None = None,
    block_shape: tuple[int, int] | None = None,
    precision=None,
    precisions=None,
    jitter: float = 0.0,
) -> list[Request]:
    """A bursty trace: closed bursts of ``burst_size`` simultaneous
    requests, one burst every ``burst_gap`` simulated seconds.

    Every request of burst ``k`` arrives at exactly ``k * burst_gap`` --
    the micro-batcher should coalesce each burst into few waves, and the
    idle gap between bursts exercises the max-wait flush path.
    ``jitter > 0`` smears each arrival uniformly over ``[0, jitter)``
    seconds after its burst instant (seeded, then re-sorted), turning
    the perfectly-closed bursts into ragged ones -- the adaptive
    controller's harder case.  ``jitter=0`` draws nothing and is
    bit-identical to the pre-jitter trace.
    """
    if count < 0:
        raise ValueError(f"count cannot be negative, got {count}")
    if burst_size <= 0:
        raise ValueError(f"burst size must be positive, got {burst_size}")
    if burst_gap < 0:
        raise ValueError(f"burst gap cannot be negative, got {burst_gap}")
    if jitter < 0:
        raise ValueError(f"jitter cannot be negative, got {jitter}")
    rng = np.random.default_rng(seed)
    arrivals = [(index // burst_size) * burst_gap for index in range(count)]
    if jitter > 0:
        offsets = rng.uniform(0.0, jitter, size=count)
        arrivals = sorted(a + o for a, o in zip(arrivals, offsets))
    return _requests_from_arrivals(
        arrivals, rng, shape, seed, repeat_fraction,
        granularity, block_shape, precision, precisions,
    )


def merge_traces(*traces) -> list[Request]:
    """Interleave several traces into one multi-tenant arrival stream.

    Requests are ordered by ``(arrival_time, trace position)`` --
    ties broken by the order the traces were passed, then within a
    trace by its own order -- and renumbered with fresh sequential
    ``request_id``\\ s (the service requires ids to disambiguate
    results; two independent traces both start at id 0).  Each
    request's planes and batch-key overrides ride along untouched, so
    merging a hot single-key trace with sparse other-key traces builds
    the fairness stress case directly.
    """
    tagged = []
    for trace_index, trace in enumerate(traces):
        for position, request in enumerate(trace):
            tagged.append(
                (request.arrival_time, trace_index, position, request)
            )
    tagged.sort(key=lambda item: item[:3])
    return [
        replace(request, request_id=new_id)
        for new_id, (_, _, _, request) in enumerate(tagged)
    ]
