"""Admission control: queue-depth and byte backpressure.

An online service that batches aggressively still has a finite host:
the micro-batcher's queues hold each pending request's input planes
until a wave picks them up, so unbounded admission under overload turns
into unbounded host memory and unbounded tail latency.  The controller
applies the two classic backpressure signals *at arrival time*:

* **queue depth** -- pending requests already waiting for a wave;
* **queued bytes** -- the host-link footprint of those requests' input
  planes, priced by :func:`repro.core.fleet.feed_bytes` at each
  request's precision storage width (an int8 request queues 8x fewer
  bytes than an fp64 one -- quantization buys admission headroom, not
  just MXU rate).

A rejected request is cheap by design: it never touches the device, the
cache, or the batcher; it is recorded on the latency ledger with its
rejection reason and excluded from goodput.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str | None = None


#: The unconditional yes, shared by every admit() fast path.
ADMITTED = AdmissionDecision(admitted=True)


class AdmissionController:
    """Reject arrivals that would overfill the pending queues.

    ``max_queue_depth`` bounds how many requests may be pending across
    the batch queues; ``max_queued_bytes`` bounds their total input
    footprint (the arriving request's own bytes count toward the
    check).  ``None`` disables a bound; the default controller admits
    everything.
    """

    def __init__(
        self,
        max_queue_depth: int | None = None,
        max_queued_bytes: int | None = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth <= 0:
            raise ValueError(
                f"max_queue_depth must be positive, got {max_queue_depth}"
            )
        if max_queued_bytes is not None and max_queued_bytes <= 0:
            raise ValueError(
                f"max_queued_bytes must be positive, got {max_queued_bytes}"
            )
        self.max_queue_depth = max_queue_depth
        self.max_queued_bytes = max_queued_bytes

    def admit(
        self,
        request_nbytes: int,
        queue_depth: int,
        queued_bytes: int,
    ) -> AdmissionDecision:
        """Decide one arrival given the current pending-queue pressure."""
        if (
            self.max_queue_depth is not None
            and queue_depth >= self.max_queue_depth
        ):
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"queue depth {queue_depth} at the "
                    f"{self.max_queue_depth}-request limit"
                ),
            )
        if (
            self.max_queued_bytes is not None
            and queued_bytes + request_nbytes > self.max_queued_bytes
        ):
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"queued bytes {queued_bytes} + request "
                    f"{request_nbytes} over the "
                    f"{self.max_queued_bytes}-byte budget"
                ),
            )
        return ADMITTED
