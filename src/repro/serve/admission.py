"""Admission control: queue-depth and byte backpressure.

An online service that batches aggressively still has a finite host:
the micro-batcher's queues hold each pending request's input planes
until a wave picks them up, so unbounded admission under overload turns
into unbounded host memory and unbounded tail latency.  The controller
applies the two classic backpressure signals *at arrival time*:

* **queue depth** -- pending requests already waiting for a wave;
* **queued bytes** -- the host-link footprint of those requests' input
  planes, priced by :func:`repro.core.fleet.feed_bytes` at each
  request's precision storage width (an int8 request queues 8x fewer
  bytes than an fp64 one -- quantization buys admission headroom, not
  just MXU rate).

Both signals exist at two scopes: **global** (the whole pending set,
the host-memory bound) and **per key** (one :class:`~repro.serve
.batcher.BatchKey`'s share of it, the fairness bound).  Per-key budgets
keep one hot granularity/precision key from monopolizing the queues: a
saturating key hits its own depth/byte budget and sheds load while
sparse keys keep admitting -- backpressure lands on the tenant causing
it.

A rejected request is cheap by design: it never touches the device, the
cache, or the batcher; it is recorded on the latency ledger with its
rejection reason and excluded from goodput.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str | None = None


#: The unconditional yes, shared by every admit() fast path.
ADMITTED = AdmissionDecision(admitted=True)


class AdmissionController:
    """Reject arrivals that would overfill the pending queues.

    ``max_queue_depth`` bounds how many requests may be pending across
    the batch queues; ``max_queued_bytes`` bounds their total input
    footprint (the arriving request's own bytes count toward the
    check).  ``max_queue_depth_per_key`` / ``max_queued_bytes_per_key``
    apply the same two bounds to the arriving request's own batch key,
    so a single hot key saturates its own budget instead of the whole
    host's.  ``None`` disables a bound; the default controller admits
    everything.
    """

    def __init__(
        self,
        max_queue_depth: int | None = None,
        max_queued_bytes: int | None = None,
        max_queue_depth_per_key: int | None = None,
        max_queued_bytes_per_key: int | None = None,
    ) -> None:
        for name, bound in (
            ("max_queue_depth", max_queue_depth),
            ("max_queued_bytes", max_queued_bytes),
            ("max_queue_depth_per_key", max_queue_depth_per_key),
            ("max_queued_bytes_per_key", max_queued_bytes_per_key),
        ):
            if bound is not None and bound <= 0:
                raise ValueError(f"{name} must be positive, got {bound}")
        self.max_queue_depth = max_queue_depth
        self.max_queued_bytes = max_queued_bytes
        self.max_queue_depth_per_key = max_queue_depth_per_key
        self.max_queued_bytes_per_key = max_queued_bytes_per_key
        #: Lifetime decision counters (the metrics-registry surface):
        #: admissions, sheds, and sheds broken down by which bound hit.
        self.admitted = 0
        self.shed = 0
        self.sheds_by_reason: dict[str, int] = {}

    def _shed(self, bound: str, reason: str) -> AdmissionDecision:
        self.shed += 1
        self.sheds_by_reason[bound] = self.sheds_by_reason.get(bound, 0) + 1
        return AdmissionDecision(admitted=False, reason=reason)

    def admit(
        self,
        request_nbytes: int,
        queue_depth: int,
        queued_bytes: int,
        key_depth: int = 0,
        key_bytes: int = 0,
    ) -> AdmissionDecision:
        """Decide one arrival given the current pending-queue pressure.

        ``queue_depth``/``queued_bytes`` are the global pending totals;
        ``key_depth``/``key_bytes`` the arriving request's own batch
        key's share of them (default 0, which disarms the per-key
        bounds for callers that don't track keys).
        """
        if (
            self.max_queue_depth is not None
            and queue_depth >= self.max_queue_depth
        ):
            return self._shed(
                "queue_depth",
                f"queue depth {queue_depth} at the "
                f"{self.max_queue_depth}-request limit",
            )
        if (
            self.max_queued_bytes is not None
            and queued_bytes + request_nbytes > self.max_queued_bytes
        ):
            return self._shed(
                "queued_bytes",
                f"queued bytes {queued_bytes} + request "
                f"{request_nbytes} over the "
                f"{self.max_queued_bytes}-byte budget",
            )
        if (
            self.max_queue_depth_per_key is not None
            and key_depth >= self.max_queue_depth_per_key
        ):
            return self._shed(
                "key_depth",
                f"per-key queue depth {key_depth} at the "
                f"{self.max_queue_depth_per_key}-request budget",
            )
        if (
            self.max_queued_bytes_per_key is not None
            and key_bytes + request_nbytes > self.max_queued_bytes_per_key
        ):
            return self._shed(
                "key_bytes",
                f"per-key queued bytes {key_bytes} + request "
                f"{request_nbytes} over the "
                f"{self.max_queued_bytes_per_key}-byte budget",
            )
        self.admitted += 1
        return ADMITTED
