"""The serving autopilot: an AIMD control loop over the micro-batcher.

The PR-5 serving layer exposed two static knobs -- ``max_wait_seconds``
(latency deliberately spent buying batch width) and ``max_batch_pairs``
(how many pairs one dispatch may fuse) -- and the right setting depends
on the arrival rate: a 50 ms window is wasted latency at 100 req/s and
a 32-pair cap is a throughput ceiling at 1600 req/s (each program
dispatch pays a fixed launch round trip, so wide batches amortize it
and narrow ones drown in it).  No single static pair holds a p95 SLO
across an arrival-rate sweep.

:class:`BatchController` closes the loop Clipper-style: it observes
every dispatched batch's request lifecycles (arrival, enqueue,
dispatch, completion -- all on the simulated clock) **per batch key**
and steers that key's policy toward a configurable p95 target:

* **batch cap, multiplicative increase** -- a batch that dispatched
  *full* is a saturation signal: the queue had more than one cap's
  worth, so the cap (not the window) is the binding constraint and the
  next dispatch can amortize its launch over twice as many pairs.  The
  cap doubles (clamped to ``max_batch_pairs``).  This is the knob that
  survives overload: at high rates the per-pair cost asymptotes to
  compute, not launch, and the device keeps up.
* **batch cap, multiplicative decrease** -- if the *service* component
  alone (completion minus dispatch, i.e. the batch's own device time)
  overshoots the target, no window tuning can help; the cap halves
  (clamped to ``min_batch_pairs``).
* **max wait, AIMD against the p95 estimate** -- the controller keeps
  a sliding window of recent latencies per key and estimates
  nearest-rank p95 exactly as :class:`~repro.serve.metrics
  .LatencyLedger` reports it.  Over target with the *window* component
  dominant: multiplicative decrease (the wait is the latency).  Over
  target with the *queue* component dominant and the batch not full:
  additive increase (requests queue because dispatches are too
  frequent to amortize -- coalescing harder sheds launch overhead).
  Under target with batches spanning the whole window: additive
  increase (spend the latency headroom on batch width).

Every decision is a pure function of ledger timestamps, so a seeded
trace replays to the identical policy trajectory and the identical
:meth:`~repro.serve.metrics.ServiceReport.signature` -- the controller
moves *when* work happens, never what the explanations are.

Hand a controller to :class:`~repro.serve.loop.ExplanationService`
(``controller=``) and the micro-batcher consults
:meth:`BatchController.policy` per key instead of the static knobs;
:meth:`observe` is called after every dispatch with that batch's
completed records.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field


def nearest_rank_percentile(latencies, p: float) -> float:
    """Nearest-rank percentile (the ledger's definition; 0 when empty)."""
    if not 0 < p <= 100:
        raise ValueError(f"percentile must lie in (0, 100], got {p}")
    ordered = sorted(latencies)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class KeyPolicy:
    """One batch key's current policy plus its observation window."""

    max_wait_seconds: float
    max_batch_pairs: int
    latencies: deque = field(default_factory=deque)
    num_observations: int = 0

    def as_tuple(self) -> tuple[float, int]:
        return (self.max_wait_seconds, self.max_batch_pairs)


@dataclass(frozen=True)
class ControllerDecision:
    """One knob movement and why it happened (the decision log entry).

    ``time`` is the latest completion in the observed batch (when the
    controller acted, on the simulated clock); ``dominant`` names the
    largest mean latency component of that batch (``"queue"``,
    ``"window"`` or ``"service"``); ``reasons`` lists the control-law
    branches that fired, in the order the law applies them.
    """

    time: float
    key: object
    old_wait: float
    new_wait: float
    old_cap: int
    new_cap: int
    dominant: str
    p95_estimate: float
    reasons: tuple


class BatchController:
    """SLO-driven per-key tuning of the micro-batching policy.

    Parameters
    ----------
    target_p95_seconds:
        The latency SLO: the controller steers each key's estimated
        nearest-rank p95 toward (and under) this many simulated
        seconds.
    base_wait_seconds, base_batch_pairs:
        Every key's starting policy (a fresh key adopts these until its
        first observation).
    min_wait_seconds, max_wait_seconds:
        Clamp of the wait window; the additive-increase step is
        ``wait_step_seconds``.
    min_batch_pairs, max_batch_pairs:
        Clamp of the batch cap; increases and decreases are
        multiplicative (double / halve).
    window:
        How many recent latencies per key the p95 estimate covers.
        Small windows adapt within a few dispatches; the default (48)
        spans one or two full batches at common caps.
    decrease_factor:
        Multiplicative decrease applied to the wait window when it is
        the dominant latency component over target.
    headroom:
        The under-target band: below ``headroom * target`` the
        controller may spend latency on batch width.
    """

    def __init__(
        self,
        target_p95_seconds: float = 0.1,
        base_wait_seconds: float = 0.02,
        base_batch_pairs: int = 16,
        min_wait_seconds: float = 0.001,
        max_wait_seconds: float = 0.2,
        wait_step_seconds: float = 0.005,
        min_batch_pairs: int = 1,
        max_batch_pairs: int = 256,
        window: int = 48,
        decrease_factor: float = 0.5,
        headroom: float = 0.7,
    ) -> None:
        if target_p95_seconds <= 0:
            raise ValueError(
                f"target p95 must be positive, got {target_p95_seconds}"
            )
        if base_wait_seconds < 0 or min_wait_seconds < 0:
            raise ValueError("wait seconds cannot be negative")
        if min_wait_seconds > max_wait_seconds:
            raise ValueError(
                f"min_wait_seconds {min_wait_seconds} exceeds "
                f"max_wait_seconds {max_wait_seconds}"
            )
        if base_batch_pairs <= 0 or min_batch_pairs <= 0:
            raise ValueError("batch pairs must be positive")
        if min_batch_pairs > max_batch_pairs:
            raise ValueError(
                f"min_batch_pairs {min_batch_pairs} exceeds "
                f"max_batch_pairs {max_batch_pairs}"
            )
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not 0 < decrease_factor < 1:
            raise ValueError(
                f"decrease_factor must lie in (0, 1), got {decrease_factor}"
            )
        if not 0 < headroom <= 1:
            raise ValueError(f"headroom must lie in (0, 1], got {headroom}")
        self.target_p95_seconds = float(target_p95_seconds)
        self.base_wait_seconds = float(base_wait_seconds)
        self.base_batch_pairs = int(base_batch_pairs)
        self.min_wait_seconds = float(min_wait_seconds)
        self.max_wait_seconds = float(max_wait_seconds)
        self.wait_step_seconds = float(wait_step_seconds)
        self.min_batch_pairs = int(min_batch_pairs)
        self.max_batch_pairs = int(max_batch_pairs)
        self.window = int(window)
        self.decrease_factor = float(decrease_factor)
        self.headroom = float(headroom)
        self._keys: dict = {}
        #: Every knob movement, in observation order -- why each key's
        #: (wait, cap) sits where it does.  Purely explanatory: logging
        #: never changes the control law or the policy trajectory.
        self.decision_log: list[ControllerDecision] = []

    # ------------------------------------------------------------------
    # The policy surface consulted by the micro-batcher
    # ------------------------------------------------------------------
    def _state(self, key) -> KeyPolicy:
        state = self._keys.get(key)
        if state is None:
            state = KeyPolicy(
                max_wait_seconds=min(
                    max(self.base_wait_seconds, self.min_wait_seconds),
                    self.max_wait_seconds,
                ),
                max_batch_pairs=min(
                    max(self.base_batch_pairs, self.min_batch_pairs),
                    self.max_batch_pairs,
                ),
                latencies=deque(maxlen=self.window),
            )
            self._keys[key] = state
        return state

    def policy(self, key) -> tuple[float, int]:
        """The key's current ``(max_wait_seconds, max_batch_pairs)``."""
        return self._state(key).as_tuple()

    def policies(self) -> dict:
        """Every observed key's current policy (for reports and tests)."""
        return {key: state.as_tuple() for key, state in self._keys.items()}

    # ------------------------------------------------------------------
    # The control law
    # ------------------------------------------------------------------
    def observe(self, key, records) -> None:
        """Fold one dispatched batch's completed records into the policy.

        ``records`` are the batch's :class:`~repro.serve.metrics
        .RequestRecord`\\ s (all completed, all sharing this dispatch).
        The update is deterministic: timestamps in, knob movements out.
        """
        records = list(records)
        if not records:
            return
        state = self._state(key)
        was_full = len(records) >= state.max_batch_pairs
        count = len(records)
        queue_part = window_part = service_part = 0.0
        for record in records:
            latency = record.completion_time - record.arrival_time
            state.latencies.append(latency)
            queue_part += record.enqueue_time - record.arrival_time
            window_part += record.dispatch_time - record.enqueue_time
            service_part += record.completion_time - record.dispatch_time
        queue_part /= count
        window_part /= count
        service_part /= count
        state.num_observations += 1
        target = self.target_p95_seconds
        estimate = nearest_rank_percentile(state.latencies, 95)
        old_wait = state.max_wait_seconds
        old_cap = state.max_batch_pairs
        reasons: list[str] = []

        # Saturation: a full dispatch means the cap, not the window,
        # bounded this batch -- double it so the next launch amortizes
        # over twice the pairs (the overload-surviving move).
        if was_full:
            state.max_batch_pairs = min(
                self.max_batch_pairs, state.max_batch_pairs * 2
            )
            reasons.append("full_cap_double")

        if estimate > target:
            if service_part > target:
                # The batch's own device time blows the SLO: no window
                # can fix that -- halve the cap.
                state.max_batch_pairs = max(
                    self.min_batch_pairs, state.max_batch_pairs // 2
                )
                reasons.append("service_cap_halve")
            if window_part >= max(queue_part, service_part):
                # The wait window is the latency: multiplicative decrease.
                state.max_wait_seconds = max(
                    self.min_wait_seconds,
                    state.max_wait_seconds * self.decrease_factor,
                )
                reasons.append("window_wait_decrease")
            elif not was_full and queue_part >= service_part:
                # Queueing dominates with non-full batches: dispatches
                # are too frequent to amortize their launches -- widen
                # the window to coalesce harder.
                state.max_wait_seconds = min(
                    self.max_wait_seconds,
                    state.max_wait_seconds + self.wait_step_seconds,
                )
                reasons.append("queue_wait_increase")
        elif estimate <= self.headroom * target:
            # Under target with room to spare: spend latency on batch
            # width -- but only when arrivals actually span the window
            # (a window-edge dispatch), otherwise a longer wait buys
            # nothing (e.g. a closed burst already fully coalesced).
            enqueues = [r.enqueue_time for r in records]
            span = max(enqueues) - min(enqueues)
            if span >= 0.8 * state.max_wait_seconds:
                state.max_wait_seconds = min(
                    self.max_wait_seconds,
                    state.max_wait_seconds + self.wait_step_seconds,
                )
                reasons.append("headroom_wait_increase")

        if reasons:
            parts = {
                "queue": queue_part,
                "window": window_part,
                "service": service_part,
            }
            self.decision_log.append(
                ControllerDecision(
                    time=max(r.completion_time for r in records),
                    key=key,
                    old_wait=old_wait,
                    new_wait=state.max_wait_seconds,
                    old_cap=old_cap,
                    new_cap=state.max_batch_pairs,
                    dominant=max(parts, key=parts.get),
                    p95_estimate=estimate,
                    reasons=tuple(reasons),
                )
            )

    def __repr__(self) -> str:
        return (
            f"<BatchController target p95 {self.target_p95_seconds * 1e3:.0f}ms, "
            f"{len(self._keys)} keys>"
        )
