"""The online explanation service: an arrival-driven event loop.

This is the request path the offline stack never had: where
:class:`~repro.core.pipeline.ExplanationPipeline` takes a pre-collected
list of pairs, :class:`ExplanationService` accepts single
``(x, y, granularity, precision)`` **requests** arriving over simulated
time and turns the accelerator's batch economics into serving
throughput:

1. arrivals are pulled from a seeded trace
   (:mod:`repro.serve.workload`) in timestamp order, driving a
   :class:`~repro.serve.clock.SimulatedClock` -- no wall-clock sleeps,
   so every run is reproducible;
2. each arrival passes **admission control**
   (:mod:`repro.serve.admission`) -- queue-depth/byte backpressure
   priced by :func:`repro.core.fleet.feed_bytes`; a rejected request
   does no further work of any kind (not even the cache digest);
3. admitted arrivals are checked against the **content-addressed
   cache** (:mod:`repro.serve.cache`): a hit completes immediately,
   bit-identical to the cold result, with zero device work; misses
   join the **micro-batcher** (:mod:`repro.serve.batcher`), whose
   max-wait/max-batch policy coalesces them per
   ``(granularity, block_shape, precision)`` key;
4. a full or due batch dispatches through
   :meth:`FleetExecutor.run(pipelined=True) <repro.core.fleet
   .FleetExecutor.run>` -- one wave-fused, double-buffered program
   train -- with submit-time **plan reuse** (each plane shape's
   :class:`~repro.core.masking.MaskSpec` is built once, ever) and
   chunk-adaptive wave planning, and the clock advances by exactly the
   device's simulated seconds;
5. every lifecycle event lands on the **latency ledger**
   (:mod:`repro.serve.metrics`), from which the report derives
   p50/p95/p99 tail latency and goodput.

The numbers contract of the whole repo carries over: a request's
explanation is bit-identical whether it was served solo, coalesced into
any wave, or answered from cache -- batching and caching change only
*when* the answer arrives, never what it is.
"""

from __future__ import annotations

import math

from repro.core.fleet import (
    GRANULARITIES,
    PLACEMENTS,
    FleetExecutor,
    check_precision_granularity,
    feed_bytes,
)
from repro.core.masking import (
    DEFAULT_STACK_BUDGET_BYTES,
    REDUCTIONS,
    MaskSpec,
)
from repro.core.transform import OutputEmbedding
from repro.hw.device import Device
from repro.hw.pod import TpuPod
from repro.hw.quantize import resolve_precision
from repro.obs.registry import register_metrics_source
from repro.obs.tracer import tracer
from repro.serve.admission import ADMITTED, AdmissionController
from repro.serve.batcher import (
    DISPATCH_POLICIES,
    BatchKey,
    MicroBatcher,
    QueuedRequest,
)
from repro.serve.cache import (
    DEFAULT_CACHE_BYTES,
    DigestMemo,
    ExplanationCache,
    SpeculativeWarmer,
    explanation_digest,
)
from repro.serve.clock import SimulatedClock
from repro.serve.controller import BatchController
from repro.serve.metrics import LatencyLedger, RequestRecord, ServiceReport
from repro.serve.workload import Request


class ExplanationService:
    """Serve explanation requests by micro-batching them into fleet waves.

    Parameters
    ----------
    device:
        The backend every dispatch runs on.  The service owns the
        device ledger for the duration of :meth:`process`.
    granularity, block_shape, precision:
        Defaults applied to requests that leave theirs unset; a request
        naming its own values is routed to its own batch key.
    eps, embedding, reduction, fill_value:
        The per-pair solve and Eq. 5 scoring configuration, shared by
        every dispatch (part of the cache digest).
    max_stack_bytes, chunk_rows, max_pairs_per_wave, dense_budget:
        Forwarded to each key's :class:`~repro.core.fleet.FleetExecutor`
        (chunk-adaptive wave planning by default, so a big batch fuses
        into few waves).
    max_wait_seconds, max_batch_pairs:
        The micro-batching policy: a batch dispatches when it holds
        ``max_batch_pairs`` requests or its oldest has waited
        ``max_wait_seconds`` -- the latency the service deliberately
        spends buying batch width.  ``max_batch_pairs=1`` with
        ``max_wait_seconds=0.0`` is the per-request serial baseline the
        serving benchmark compares against.
    cache, cache_max_bytes:
        Pass an :class:`~repro.serve.cache.ExplanationCache` to share
        one across services, let the default build one of
        ``cache_max_bytes``, or set ``cache_max_bytes=None`` to disable
        caching.  The cache persists across :meth:`process` calls.
    admission:
        Optional :class:`~repro.serve.admission.AdmissionController`;
        ``None`` admits everything.  Per-key budgets on the controller
        are fed each arrival's own key pressure automatically.
    controller:
        Optional :class:`~repro.serve.controller.BatchController` (the
        serving autopilot).  When present it replaces the static
        ``max_wait_seconds``/``max_batch_pairs`` pair: the micro-batcher
        consults the controller's live per-key policy at every decision
        point, and the service feeds every dispatched batch's records
        back through :meth:`~repro.serve.controller.BatchController
        .observe`.  Controller state persists across :meth:`process`
        calls, like the cache.
    dispatch_policy, key_weights:
        How simultaneously-ripe batch keys are ordered: ``"fair"``
        (weighted fair queueing on served pairs -- the default; a hot
        key yields contended rounds to starved ones) or ``"fifo"``
        (first-seen key order, the pre-autopilot baseline).
        ``key_weights`` maps :class:`~repro.serve.batcher.BatchKey`\\ s
        (or their ``as_tuple()`` forms) to relative service weights.
    warm_cache, warm_min_gap_seconds, warm_max_per_gap, warm_tracked:
        Speculative cache warming: with ``warm_cache=True`` (requires a
        cache) the service re-distills recurring evicted explanations
        during idle drain gaps -- when the queues are empty and the
        next arrival is at least ``warm_min_gap_seconds`` away, up to
        ``warm_max_per_gap`` staged candidates recompute through the
        normal executor path (honest simulated time, never past the
        next arrival) and re-enter the cache.  ``warm_tracked`` bounds
        how many recent digests the warmer remembers planes for.
        Warming converts drain time into hit rate and never changes
        what any explanation is.
    num_chips, placement, interconnect, hbm_bytes:
        Pod scaling: ``num_chips=K > 1`` replicates ``device`` into a
        :class:`~repro.hw.pod.TpuPod` of K clones (handing a pod in as
        ``device`` works too), each with its own sharded
        :class:`~repro.hw.pod.HostLink`; every dispatch then shards its
        waves across the chips along ``placement`` (``"data"`` over
        pairs, ``"chunk"`` over the row space with the root solve
        overlapped, ``"wave"`` whole waves round-robin) with remaining
        collectives priced on ``interconnect``, and ``hbm_bytes``
        overrides each chip's modeled HBM capacity (wave budgeting
        clamps to it).  Served explanations stay bit-identical to
        single-chip dispatches -- the pod moves only the clock.
    """

    def __init__(
        self,
        device: Device,
        granularity: str = "blocks",
        block_shape: tuple[int, int] | None = None,
        precision=None,
        eps: float = 1e-6,
        embedding: OutputEmbedding | None = None,
        reduction: str = "l2",
        fill_value: float = 0.0,
        max_stack_bytes: int | None = DEFAULT_STACK_BUDGET_BYTES,
        chunk_rows: int | None = None,
        max_pairs_per_wave: int | None = None,
        dense_budget: bool = False,
        max_wait_seconds: float = 0.05,
        max_batch_pairs: int = 32,
        cache: ExplanationCache | None = None,
        cache_max_bytes: int | None = DEFAULT_CACHE_BYTES,
        admission: AdmissionController | None = None,
        num_chips: int | None = None,
        placement: str = "data",
        interconnect=None,
        hbm_bytes: int | None = None,
        controller: BatchController | None = None,
        dispatch_policy: str = "fair",
        key_weights: dict | None = None,
        warm_cache: bool = False,
        warm_min_gap_seconds: float = 0.25,
        warm_max_per_gap: int = 4,
        warm_tracked: int = 64,
        metrics_name: str | None = "serve",
    ) -> None:
        if granularity not in GRANULARITIES:
            raise ValueError(
                f"unknown granularity {granularity!r}; expected one of {GRANULARITIES}"
            )
        if granularity == "blocks" and block_shape is None:
            raise ValueError("blocks granularity requires a block_shape")
        if reduction not in REDUCTIONS:
            raise ValueError(
                f"unknown reduction {reduction!r}; expected one of {REDUCTIONS}"
            )
        if placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
            )
        self.precision = resolve_precision(precision)
        check_precision_granularity(self.precision, granularity)
        # Pod resolution once, up front: self.device is the pod, its
        # ledger is the service clock's time source, and every batch
        # key's executor shards through it.
        if num_chips is not None and int(num_chips) > 1 and not isinstance(device, TpuPod):
            device = TpuPod.like(
                device, int(num_chips), interconnect=interconnect,
                hbm_bytes=hbm_bytes,
            )
        if (
            isinstance(device, TpuPod)
            and num_chips is not None
            and int(num_chips) != device.num_chips
        ):
            raise ValueError(
                f"num_chips={num_chips} disagrees with the supplied "
                f"{device.num_chips}-chip pod"
            )
        self.placement = placement
        self.device = device
        self.granularity = granularity
        self.block_shape = block_shape
        self.eps = eps
        self.embedding = embedding or OutputEmbedding("identity")
        self.reduction = reduction
        self.fill_value = fill_value
        self.max_stack_bytes = max_stack_bytes
        self.chunk_rows = chunk_rows
        self.max_pairs_per_wave = max_pairs_per_wave
        self.dense_budget = dense_budget
        self.max_wait_seconds = max_wait_seconds
        self.max_batch_pairs = max_batch_pairs
        if cache is not None:
            self.cache: ExplanationCache | None = cache
        elif cache_max_bytes is None:
            self.cache = None
        else:
            self.cache = ExplanationCache(max_bytes=cache_max_bytes)
        self.admission = admission
        if dispatch_policy not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch_policy {dispatch_policy!r}; "
                f"expected one of {DISPATCH_POLICIES}"
            )
        self.controller = controller
        self.dispatch_policy = dispatch_policy
        self.key_weights = dict(key_weights) if key_weights else {}
        if warm_min_gap_seconds <= 0:
            raise ValueError(
                f"warm_min_gap_seconds must be positive, got "
                f"{warm_min_gap_seconds}"
            )
        if warm_max_per_gap <= 0:
            raise ValueError(
                f"warm_max_per_gap must be positive, got {warm_max_per_gap}"
            )
        self.warm_min_gap_seconds = float(warm_min_gap_seconds)
        self.warm_max_per_gap = int(warm_max_per_gap)
        self.warmer: SpeculativeWarmer | None = None
        if warm_cache:
            if self.cache is None:
                raise ValueError(
                    "warm_cache=True requires a cache (cache_max_bytes "
                    "must not be None)"
                )
            self.warmer = SpeculativeWarmer(max_tracked=warm_tracked)
            self.cache.on_evict = self.warmer.note_eviction
        # Conservative per-warm cost estimate (simulated seconds),
        # learned from actual warm dispatches so a gap never overruns
        # into the next arrival after the first warm of a session.
        self._warm_cost_estimate = 0.0
        self.hbm_bytes = None if hbm_bytes is None else int(hbm_bytes)
        # One executor per batch key and one lazy mask plan per
        # (granularity, block_shape, plane shape): built on first use,
        # reused for every later request and every later process() call.
        self._executors: dict[BatchKey, FleetExecutor] = {}
        self._plans: dict[tuple, MaskSpec | None] = {}
        # Replay hot-path memos: per-request Python bookkeeping (key
        # resolution, precision specs, content digests) dominates warm
        # replay once explanations come from cache, so each resolves
        # once per distinct input instead of once per request.
        self._key_memo: dict = {}
        self._spec_memo: dict = {}
        self._digest_memo = DigestMemo()
        # Lifetime observability counters (across process() calls) and
        # the weak metrics-registry hookup: registering never extends
        # the service's lifetime, and a dead service drops out of
        # snapshots silently.
        self._lifetime = {
            "requests": 0,
            "completed": 0,
            "rejected": 0,
            "cache_hit_completions": 0,
            "dispatches": 0,
            "waves": 0,
            "warm_recomputes": 0,
        }
        self.dispatch_counts: dict[tuple, int] = {}
        if metrics_name is not None:
            register_metrics_source(
                metrics_name, self.metrics_counters,
                reset=self.reset_metrics_counters, weak=True,
            )

    # ------------------------------------------------------------------
    # Metrics surface
    # ------------------------------------------------------------------
    def metrics_counters(self) -> dict:
        """Flat labeled counters for the metrics registry.

        Lifetime lifecycle counters, cache hit/miss/eviction totals,
        admission admit/shed totals (per bound), warmer recomputes, and
        per-key dispatch counts (labeled by the key tuple).
        """
        out = dict(self._lifetime)
        if self.cache is not None:
            out["cache_hits"] = self.cache.hits
            out["cache_misses"] = self.cache.misses
            out["cache_evictions"] = self.cache.evictions
        if self.admission is not None:
            out["admitted"] = self.admission.admitted
            out["shed"] = self.admission.shed
            for bound, count in sorted(self.admission.sheds_by_reason.items()):
                out[f"shed_{bound}"] = count
        if self.warmer is not None:
            out["warmed"] = self.warmer.warmed
        for key_tuple, count in sorted(self.dispatch_counts.items(), key=repr):
            label = ":".join(str(part) for part in key_tuple)
            out[f"dispatches[{label}]"] = count
        return out

    def reset_metrics_counters(self) -> None:
        """Zero the service's own lifetime counters (reset-for-tests)."""
        for name in self._lifetime:
            self._lifetime[name] = 0
        self.dispatch_counts.clear()

    # ------------------------------------------------------------------
    # Request resolution
    # ------------------------------------------------------------------
    def batch_key(self, request: Request) -> BatchKey:
        """The compatibility key this request batches under.

        Memoized on the request's raw ``(granularity, block_shape,
        precision)`` override triple -- replay traffic resolves and
        validates each distinct triple once, not once per request (an
        unhashable override simply skips the memo).
        """
        token: tuple | None
        try:
            token = (
                request.granularity,
                None
                if request.block_shape is None
                else tuple(request.block_shape),
                request.precision,
            )
            key = self._key_memo.get(token)
        except TypeError:
            token, key = None, None
        if key is None:
            key = self._resolve_batch_key(request)
            if token is not None:
                self._key_memo[token] = key
        return key

    def _resolve_batch_key(self, request: Request) -> BatchKey:
        granularity = request.granularity or self.granularity
        if granularity not in GRANULARITIES:
            raise ValueError(
                f"request {request.request_id}: unknown granularity "
                f"{granularity!r}; expected one of {GRANULARITIES}"
            )
        if granularity == "blocks":
            block_shape = (
                request.block_shape
                if request.block_shape is not None
                else self.block_shape
            )
            if block_shape is None:
                raise ValueError(
                    f"request {request.request_id}: blocks granularity "
                    "requires a block_shape"
                )
            block_shape = tuple(int(v) for v in block_shape)
        else:
            block_shape = None  # irrelevant to (and rejected by) the plan
        spec = resolve_precision(
            request.precision if request.precision is not None else self.precision
        )
        check_precision_granularity(spec, granularity)
        return BatchKey(
            granularity=granularity,
            block_shape=block_shape,
            precision=None if spec is None else spec.name,
        )

    def _executor(self, key: BatchKey) -> FleetExecutor:
        executor = self._executors.get(key)
        if executor is None:
            executor = FleetExecutor(
                self.device,
                granularity=key.granularity,
                block_shape=key.block_shape,
                eps=self.eps,
                embedding=self.embedding,
                reduction=self.reduction,
                fill_value=self.fill_value,
                max_stack_bytes=self.max_stack_bytes,
                max_pairs_per_wave=self.max_pairs_per_wave,
                chunk_rows=self.chunk_rows,
                precision=key.precision,
                dense_budget=self.dense_budget,
                placement=self.placement,
                hbm_bytes=self.hbm_bytes,
            )
            self._executors[key] = executor
        return executor

    def _spec(self, precision_name: str | None):
        """Per-key precision spec, resolved once per distinct name."""
        if precision_name not in self._spec_memo:
            self._spec_memo[precision_name] = resolve_precision(precision_name)
        return self._spec_memo[precision_name]

    def _plan(self, key: BatchKey, plane_shape: tuple[int, int]) -> MaskSpec | None:
        """Submit-time plan reuse: one MaskSpec per (key, plane shape)."""
        plan_key = (key.granularity, key.block_shape, tuple(plane_shape))
        if plan_key not in self._plans:
            if key.granularity == "elements":
                self._plans[plan_key] = None
            else:
                self._plans[plan_key] = MaskSpec.for_granularity(
                    key.granularity, plane_shape, block_shape=key.block_shape
                )
        return self._plans[plan_key]

    def _digest(self, request: Request, key: BatchKey) -> str:
        """Content digest, memoized by plane identity for warm replay."""
        return self._digest_memo.lookup(
            request.x,
            request.y,
            key.as_tuple(),
            lambda: explanation_digest(
                request.x,
                request.y,
                granularity=key.granularity,
                block_shape=key.block_shape,
                precision_name=key.precision,
                eps=self.eps,
                reduction=self.reduction,
                fill_value=self.fill_value,
                embedding_strategy=self.embedding.strategy,
            ),
        )

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def process(self, requests, clock: SimulatedClock | None = None) -> ServiceReport:
        """Serve a trace of requests to completion; returns the report.

        Deterministic discrete-event execution: requests are taken in
        ``(arrival_time, request_id)`` order; between arrivals the only
        events are batch deadlines, and the clock advances by device
        simulated seconds whenever a batch dispatches (or, with
        warming on, whenever an idle gap re-distills an evicted
        explanation).  Once the trace is exhausted pending batches
        flush immediately -- no future arrival can widen them, so the
        clock never advances past the last completion.  The loop ends
        with an idle drain that flushes every known batch key --
        including empty ones, the path that exercises the empty-fleet
        guards.  The device ledger is reset on entry and harvested into
        the report.
        """
        requests = sorted(
            requests, key=lambda r: (r.arrival_time, r.request_id)
        )
        clock = clock if clock is not None else SimulatedClock()
        batcher = MicroBatcher(
            max_wait_seconds=self.max_wait_seconds,
            max_batch_pairs=self.max_batch_pairs,
            controller=self.controller,
            dispatch_policy=self.dispatch_policy,
            weights=self.key_weights,
        )
        ledger = LatencyLedger()
        if tracer.enabled:
            # The serve host owns pid 0; device/pod lanes are aligned
            # onto the service clock via tracer.origin at dispatch time.
            tracer.set_process_name(0, "service")
            tracer.set_thread_name(0, 0, "requests")
            tracer.set_thread_name(0, 1, "dispatch")
            tracer.set_thread_name(0, 2, "controller")
            tracer.set_thread_name(0, 3, "warmer")
        self.device.reset_stats()
        cache_before = (
            (self.cache.hits, self.cache.misses, self.cache.evictions)
            if self.cache is not None
            else (0, 0, 0)
        )
        counters = {"dispatches": 0, "waves": 0, "warmed": 0}

        index = 0
        while index < len(requests) or batcher.pending_count:
            # Release everything already full or past its max-wait.
            for key in batcher.ripe_keys(clock.now):
                self._dispatch(key, batcher, ledger, clock, counters)
            if index >= len(requests):
                # Trace exhausted: no future arrival can widen any
                # batch, so flush pending keys now instead of burning
                # the remainder of their max-wait windows.
                for key in batcher.drain_keys():
                    self._dispatch(key, batcher, ledger, clock, counters)
                continue
            next_arrival = requests[index].arrival_time
            deadline = batcher.next_deadline()
            if next_arrival <= deadline:
                if batcher.pending_count == 0:
                    # An idle gap mid-trace: the only place speculative
                    # warming may spend device time.
                    self._warm(next_arrival, clock, counters)
                clock.advance_to(next_arrival)
                self._accept(requests[index], batcher, ledger, clock)
                index += 1
            else:
                # The oldest pending request's window expires first:
                # jump there and let the next iteration dispatch it.
                clock.advance_to(deadline)

        # Idle drain: flush every key the service has ever built an
        # executor for.  Drained-empty keys run FleetExecutor.run([]),
        # which must cost nothing -- the empty-input guard the service
        # hits constantly between traffic spells.
        for key in list(self._executors):
            self._dispatch(key, batcher, ledger, clock, counters)

        cache_after = (
            (self.cache.hits, self.cache.misses, self.cache.evictions)
            if self.cache is not None
            else (0, 0, 0)
        )
        return ServiceReport(
            ledger=ledger,
            elapsed_seconds=clock.now,
            stats=self.device.take_stats(),
            num_dispatches=counters["dispatches"],
            num_waves=counters["waves"],
            cache_hits=cache_after[0] - cache_before[0],
            cache_misses=cache_after[1] - cache_before[1],
            cache_evictions=cache_after[2] - cache_before[2],
            num_warmed=counters["warmed"],
        )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _accept(
        self,
        request: Request,
        batcher: MicroBatcher,
        ledger: LatencyLedger,
        clock: SimulatedClock,
    ) -> None:
        """One arrival: admission first, then cache, then the batch queue.

        Backpressure precedes everything else so a rejected request is
        genuinely cheap -- no digest hashing, no cache traffic, no
        skewed miss counters; only admitted arrivals get the cache
        lookup (a hit then completes without queueing).
        """
        key = self.batch_key(request)
        spec = self._spec(key.precision)
        self._lifetime["requests"] += 1
        if tracer.enabled:
            tracer.instant(
                "arrival", "serve", clock.now, 0, 0,
                {"id": request.request_id, "key": list(key.as_tuple())},
            )

        feed_nbytes = feed_bytes([request.x, request.y], spec)
        decision = ADMITTED
        if self.admission is not None:
            decision = self.admission.admit(
                feed_nbytes,
                batcher.pending_count,
                batcher.pending_bytes,
                key_depth=batcher.pending_count_for(key),
                key_bytes=batcher.pending_bytes_for(key),
            )
        if not decision.admitted:
            self._lifetime["rejected"] += 1
            if tracer.enabled:
                tracer.instant(
                    "admission_shed", "serve", clock.now, 0, 0,
                    {"id": request.request_id, "reason": decision.reason},
                )
            ledger.add(
                RequestRecord(
                    request_id=request.request_id,
                    arrival_time=request.arrival_time,
                    status="rejected",
                    batch_key=key.as_tuple(),
                    reject_reason=decision.reason,
                )
            )
            return

        digest = None
        if self.cache is not None:
            digest = self._digest(request, key)
            if self.warmer is not None:
                self.warmer.note_request(
                    digest, request.x, request.y, key,
                    self._plan(key, request.x.shape),
                )
            hit = self.cache.get(digest)
            if hit is not None:
                # Served from memory: bit-identical to the cold result,
                # zero device work, completion at the current clock.
                self._lifetime["completed"] += 1
                self._lifetime["cache_hit_completions"] += 1
                if tracer.enabled:
                    tracer.instant(
                        "cache_hit", "serve", clock.now, 0, 0,
                        {"id": request.request_id, "digest": digest},
                    )
                ledger.add(
                    RequestRecord(
                        request_id=request.request_id,
                        arrival_time=request.arrival_time,
                        status="completed",
                        batch_key=key.as_tuple(),
                        enqueue_time=clock.now,
                        completion_time=clock.now,
                        cache_hit=True,
                        result=hit,
                    )
                )
                return

        plan = self._plan(key, request.x.shape)
        self._executor(key)  # ensure the drain path knows this key
        if tracer.enabled:
            tracer.instant(
                "enqueue", "serve", clock.now, 0, 0,
                {"id": request.request_id, "key": list(key.as_tuple())},
            )
        batcher.enqueue(
            key,
            QueuedRequest(
                request=request,
                enqueue_time=clock.now,
                feed_nbytes=feed_nbytes,
                plan=plan,
                digest=digest,
            ),
        )

    def _dispatch(
        self,
        key: BatchKey,
        batcher: MicroBatcher,
        ledger: LatencyLedger,
        clock: SimulatedClock,
        counters: dict,
    ) -> None:
        """Run one key's coalesced batch through the fleet executor."""
        batch = batcher.pop(key)
        executor = self._executor(key)
        dispatch_time = clock.now
        before = self.device.stats.seconds
        traced = tracer.enabled
        if traced:
            # Align the device/pod trace lanes onto the service clock:
            # emitters add the origin to their run-local positions, so
            # this dispatch's device spans start at dispatch_time.
            tracer.origin = dispatch_time - self.device.trace_seconds
        fleet = executor.run(
            [(q.request.x, q.request.y) for q in batch],
            pipelined=True,
            plans=[q.plan for q in batch],
        )
        # Device time is the only non-arrival source of simulated time.
        clock.advance(self.device.stats.seconds - before)
        if not batch:
            return  # the idle drain of an empty key: free by contract
        dispatch_index = counters["dispatches"]
        counters["dispatches"] += 1
        counters["waves"] += fleet.num_waves
        self._lifetime["dispatches"] += 1
        self._lifetime["waves"] += fleet.num_waves
        key_tuple = key.as_tuple()
        self.dispatch_counts[key_tuple] = (
            self.dispatch_counts.get(key_tuple, 0) + 1
        )
        if traced and tracer.enabled:
            tracer.complete(
                "dispatch", "serve", dispatch_time,
                clock.now - dispatch_time, 0, 1,
                {
                    "key": list(key_tuple),
                    "batch": len(batch),
                    "waves": fleet.num_waves,
                    "dispatch_index": dispatch_index,
                },
            )
            for queued in batch:
                tracer.flow(
                    "queued", "serve",
                    src=(queued.enqueue_time, 0, 0),
                    dst=(dispatch_time, 0, 1),
                    args={
                        "id": queued.request.request_id,
                        "wait": dispatch_time - queued.enqueue_time,
                    },
                )
        records = []
        for queued, result in zip(batch, fleet.results):
            if self.cache is not None and queued.digest is not None:
                self.cache.put(queued.digest, result)
            record = RequestRecord(
                request_id=queued.request.request_id,
                arrival_time=queued.request.arrival_time,
                status="completed",
                batch_key=key_tuple,
                enqueue_time=queued.enqueue_time,
                dispatch_time=dispatch_time,
                completion_time=clock.now,
                dispatch_index=dispatch_index,
                result=result,
            )
            records.append(record)
            ledger.add(record)
            self._lifetime["completed"] += 1
            if traced and tracer.enabled:
                tracer.instant(
                    "completion", "serve", clock.now, 0, 0,
                    {
                        "id": queued.request.request_id,
                        "dispatch_index": dispatch_index,
                    },
                )
        if self.controller is not None:
            # Close the autopilot loop: this batch's lifecycles steer
            # the key's (max_wait, max_batch) for the next dispatch.
            log_mark = len(self.controller.decision_log)
            self.controller.observe(key, records)
            if traced and tracer.enabled:
                for decision in self.controller.decision_log[log_mark:]:
                    tracer.instant(
                        "controller_decision", "serve", decision.time, 0, 2,
                        {
                            "key": list(key_tuple),
                            "reasons": list(decision.reasons),
                            "dominant": decision.dominant,
                            "old_wait": decision.old_wait,
                            "new_wait": decision.new_wait,
                            "old_cap": decision.old_cap,
                            "new_cap": decision.new_cap,
                            "p95_estimate": decision.p95_estimate,
                        },
                    )

    def _warm(
        self,
        next_arrival: float,
        clock: SimulatedClock,
        counters: dict,
    ) -> None:
        """Spend an idle drain gap re-distilling evicted explanations.

        Runs only mid-trace with empty queues.  Each staged recurring
        candidate recomputes through the key's normal executor path --
        honest simulated device time, bit-identical artifacts -- and
        re-enters the cache.  A learned per-warm cost estimate keeps
        the gap from overrunning into the next arrival.
        """
        if self.warmer is None or self.cache is None:
            return
        gap = next_arrival - clock.now
        if gap < self.warm_min_gap_seconds:
            return
        for _ in range(self.warm_max_per_gap):
            if next_arrival - clock.now < self._warm_cost_estimate:
                break
            candidates = self.warmer.pop_candidates(self.cache, 1)
            if not candidates:
                break
            digest, x, y, key, plan = candidates[0]
            executor = self._executor(key)
            before = self.device.stats.seconds
            start = clock.now
            traced = tracer.enabled
            if traced:
                tracer.origin = start - self.device.trace_seconds
            fleet = executor.run([(x, y)], pipelined=True, plans=[plan])
            cost = self.device.stats.seconds - before
            clock.advance(cost)
            self._warm_cost_estimate = max(self._warm_cost_estimate, cost)
            self.cache.put(digest, fleet.results[0])
            self.warmer.warmed += 1
            counters["warmed"] += 1
            self._lifetime["warm_recomputes"] += 1
            if traced and tracer.enabled:
                tracer.complete(
                    "warm", "serve", start, cost, 0, 3,
                    {"digest": digest, "key": list(key.as_tuple())},
                )
