"""Content-addressed explanation cache: byte-budgeted LRU over digests.

The serving-layer analogue of Clipper's prediction cache: an
explanation is a pure function of ``(x, y, granularity, block_shape,
precision, eps, reduction, fill_value)``, so a repeated request can be
answered from memory without re-distilling the kernel or re-scoring the
mask plan -- zero device dispatches, zero kernel-spectrum batches, and
a response **bit-identical** to the cold one (the cache stores the
exact arrays the fleet executor produced; nothing is recomputed or
re-rounded on the hit path).

Keys are content digests (:func:`explanation_digest`): SHA-256 over the
*bytes* of both planes plus the scoring configuration.  Two requests
hit the same entry iff their inputs are byte-equal under the same
config -- content addressing, not object identity, so replayed traffic
(the common case for monitoring dashboards re-explaining the same
flagged inputs) hits regardless of which array objects carry it.

Eviction is least-recently-used under a byte budget priced by the
stored artifacts (kernel + score planes + the residual scalar); an
entry larger than the whole budget is simply not cached.

:class:`DigestMemo` rides alongside: warm replay traffic tends to carry
the *same array objects* repeatedly, and re-hashing megabytes of plane
bytes per request dominates the served-from-memory path -- the memo
short-circuits :func:`explanation_digest` by object identity (weakly
referenced, so recycled ids never alias) while content addressing stays
authoritative for distinct objects.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict

import numpy as np

from repro.core.fleet import PairResult

#: Default cache budget: plenty for benches, small enough that the
#: eviction path is exercised by modest traffic at image-plane sizes.
DEFAULT_CACHE_BYTES = 64 * 1024**2

_RESIDUAL_BYTES = 8  # the cached residual scalar (a python float)


def explanation_digest(
    x: np.ndarray,
    y: np.ndarray,
    granularity: str,
    block_shape: tuple[int, int] | None,
    precision_name: str | None,
    eps: float,
    reduction: str,
    fill_value: float,
    embedding_strategy: str = "identity",
) -> str:
    """Content digest of one explanation request.

    SHA-256 over both planes' dtype, shape and raw bytes plus the
    scoring configuration -- everything the explanation is a function
    of, including the output-embedding strategy (it changes how vector
    outputs lift onto the plane, so services sharing one cache with
    different embeddings must not collide).  Byte-equal inputs under
    the same config collide by construction; anything else (a different
    fill value, a different precision, one flipped input bit) lands
    elsewhere.
    """
    digest = hashlib.sha256()
    for plane in (x, y):
        plane = np.ascontiguousarray(np.asarray(plane))
        digest.update(str(plane.dtype).encode())
        digest.update(str(plane.shape).encode())
        digest.update(plane.tobytes())
    digest.update(
        repr(
            (
                granularity,
                None if block_shape is None else tuple(block_shape),
                precision_name,
                float(eps),
                reduction,
                float(fill_value),
                embedding_strategy,
            )
        ).encode()
    )
    return digest.hexdigest()


class DigestMemo:
    """Identity-keyed memo of :func:`explanation_digest` values.

    The serve-replay hot path: hashing both planes dominates warm
    request handling once the explanation itself is cached, and
    replayed traffic (monitoring dashboards re-explaining the same
    flagged inputs) typically carries the *same array objects* through
    every replay.  The memo keys on the planes' object identity plus
    the config tuple and holds weak references, so a recycled ``id()``
    after garbage collection can never alias a stale digest and the
    memo never keeps request arrays alive.

    The immutability contract: a caller that mutates a request plane
    in place after submitting it gets the old digest for the same
    object, exactly as it would get a stale cached explanation -- the
    service already freezes cached results for the same reason, and
    content addressing stays authoritative for distinct objects.
    """

    def __init__(self) -> None:
        self._memo: dict = {}

    def __len__(self) -> int:
        return len(self._memo)

    def lookup(self, x, y, config, compute):
        """The digest of ``(x, y, config)``, computing once per identity."""
        token = (id(x), id(y), config)
        hit = self._memo.get(token)
        if hit is not None:
            ref_x, ref_y, value = hit
            if ref_x() is x and ref_y() is y:
                return value
        value = compute()
        try:
            drop = lambda _, token=token: self._memo.pop(token, None)
            self._memo[token] = (
                weakref.ref(x, drop), weakref.ref(y, drop), value,
            )
        except TypeError:
            pass  # non-weakref-able planes: memoization is best-effort
        return value


def result_nbytes(result: PairResult) -> int:
    """Bytes one cached explanation occupies (kernel + scores + residual)."""
    return int(result.kernel.nbytes) + int(result.scores.nbytes) + _RESIDUAL_BYTES


class ExplanationCache:
    """Byte-budgeted LRU of :class:`~repro.core.fleet.PairResult`\\ s."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError(f"cache budget must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, PairResult]" = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def get(self, digest: str) -> PairResult | None:
        """The cached explanation, or ``None`` (counted as a miss)."""
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)  # most recently used
        self.hits += 1
        return entry

    def put(self, digest: str, result: PairResult) -> bool:
        """Store an explanation; returns whether it was cached.

        An entry bigger than the whole budget is not cached (returns
        ``False``); otherwise least-recently-used entries are evicted
        until the new entry fits.  The entry's arrays are frozen
        read-only: the same objects are handed to clients, and a
        client mutating its response in place must get a loud
        ``ValueError``, not silently poison every later hit.
        """
        nbytes = result_nbytes(result)
        if nbytes > self.max_bytes:
            return False
        result.kernel.setflags(write=False)
        result.scores.setflags(write=False)
        if digest in self._entries:
            # Same content, same artifacts: refresh recency only.
            self._entries.move_to_end(digest)
            return True
        while self.current_bytes + nbytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self.current_bytes -= result_nbytes(evicted)
            self.evictions += 1
        self._entries[digest] = result
        self.current_bytes += nbytes
        return True

    def __repr__(self) -> str:
        return (
            f"<ExplanationCache {len(self._entries)} entries, "
            f"{self.current_bytes}/{self.max_bytes} bytes, "
            f"{self.hits} hits / {self.misses} misses / "
            f"{self.evictions} evictions>"
        )
