"""Content-addressed explanation cache: byte-budgeted LRU over digests.

The serving-layer analogue of Clipper's prediction cache: an
explanation is a pure function of ``(x, y, granularity, block_shape,
precision, eps, reduction, fill_value)``, so a repeated request can be
answered from memory without re-distilling the kernel or re-scoring the
mask plan -- zero device dispatches, zero kernel-spectrum batches, and
a response **bit-identical** to the cold one (the cache stores the
exact arrays the fleet executor produced; nothing is recomputed or
re-rounded on the hit path).

Keys are content digests (:func:`explanation_digest`): SHA-256 over the
*bytes* of both planes plus the scoring configuration.  Two requests
hit the same entry iff their inputs are byte-equal under the same
config -- content addressing, not object identity, so replayed traffic
(the common case for monitoring dashboards re-explaining the same
flagged inputs) hits regardless of which array objects carry it.

Eviction is least-recently-used under a byte budget priced by the
stored artifacts (kernel + score planes + the residual scalar); an
entry larger than the whole budget is simply not cached.

:class:`DigestMemo` rides alongside: warm replay traffic tends to carry
the *same array objects* repeatedly, and re-hashing megabytes of plane
bytes per request dominates the served-from-memory path -- the memo
short-circuits :func:`explanation_digest` by object identity (weakly
referenced, so recycled ids never alias) while content addressing stays
authoritative for distinct objects.

:class:`SpeculativeWarmer` closes the loop between eviction and idle
time: it tracks how often each digest recurs, and when the LRU evicts a
*recurring* entry (one the trace has asked for at least twice) it keeps
that request's planes as a warming candidate.  During idle drain gaps
-- the event loop waiting on a distant next arrival with empty queues
-- the service re-distills queued candidates and re-inserts them,
converting drain time into cache hits instead of wasted simulated
seconds.  Warming never changes *what* an explanation is (the recompute
runs the same executor path), only when the work happens.
"""

from __future__ import annotations

import hashlib
import weakref
from collections import OrderedDict

import numpy as np

from repro.core.fleet import PairResult

#: Default cache budget: plenty for benches, small enough that the
#: eviction path is exercised by modest traffic at image-plane sizes.
DEFAULT_CACHE_BYTES = 64 * 1024**2

_RESIDUAL_BYTES = 8  # the cached residual scalar (a python float)


def explanation_digest(
    x: np.ndarray,
    y: np.ndarray,
    granularity: str,
    block_shape: tuple[int, int] | None,
    precision_name: str | None,
    eps: float,
    reduction: str,
    fill_value: float,
    embedding_strategy: str = "identity",
) -> str:
    """Content digest of one explanation request.

    SHA-256 over both planes' dtype, shape and raw bytes plus the
    scoring configuration -- everything the explanation is a function
    of, including the output-embedding strategy (it changes how vector
    outputs lift onto the plane, so services sharing one cache with
    different embeddings must not collide).  Byte-equal inputs under
    the same config collide by construction; anything else (a different
    fill value, a different precision, one flipped input bit) lands
    elsewhere.
    """
    digest = hashlib.sha256()
    for plane in (x, y):
        plane = np.ascontiguousarray(np.asarray(plane))
        digest.update(str(plane.dtype).encode())
        digest.update(str(plane.shape).encode())
        digest.update(plane.tobytes())
    digest.update(
        repr(
            (
                granularity,
                None if block_shape is None else tuple(block_shape),
                precision_name,
                float(eps),
                reduction,
                float(fill_value),
                embedding_strategy,
            )
        ).encode()
    )
    return digest.hexdigest()


class DigestMemo:
    """Identity-keyed memo of :func:`explanation_digest` values.

    The serve-replay hot path: hashing both planes dominates warm
    request handling once the explanation itself is cached, and
    replayed traffic (monitoring dashboards re-explaining the same
    flagged inputs) typically carries the *same array objects* through
    every replay.  The memo keys on the planes' object identity plus
    the config tuple and holds weak references, so a recycled ``id()``
    after garbage collection can never alias a stale digest and the
    memo never keeps request arrays alive.

    The immutability contract: a caller that mutates a request plane
    in place after submitting it gets the old digest for the same
    object, exactly as it would get a stale cached explanation -- the
    service already freezes cached results for the same reason, and
    content addressing stays authoritative for distinct objects.
    """

    def __init__(self) -> None:
        self._memo: dict = {}

    def __len__(self) -> int:
        return len(self._memo)

    def lookup(self, x, y, config, compute):
        """The digest of ``(x, y, config)``, computing once per identity."""
        token = (id(x), id(y), config)
        hit = self._memo.get(token)
        if hit is not None:
            ref_x, ref_y, value = hit
            if ref_x() is x and ref_y() is y:
                return value
        value = compute()
        try:
            drop = lambda _, token=token: self._memo.pop(token, None)
            self._memo[token] = (
                weakref.ref(x, drop), weakref.ref(y, drop), value,
            )
        except TypeError:
            pass  # non-weakref-able planes: memoization is best-effort
        return value


def result_nbytes(result: PairResult) -> int:
    """Bytes one cached explanation occupies (kernel + scores + residual)."""
    return int(result.kernel.nbytes) + int(result.scores.nbytes) + _RESIDUAL_BYTES


class ExplanationCache:
    """Byte-budgeted LRU of :class:`~repro.core.fleet.PairResult`\\ s."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError(f"cache budget must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, PairResult]" = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Optional ``callable(digest)`` invoked on every LRU eviction
        #: (the :class:`SpeculativeWarmer` wiring point).
        self.on_evict = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def get(self, digest: str) -> PairResult | None:
        """The cached explanation, or ``None`` (counted as a miss)."""
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)  # most recently used
        self.hits += 1
        return entry

    def put(self, digest: str, result: PairResult) -> bool:
        """Store an explanation; returns whether it was cached.

        An entry bigger than the whole budget is not cached (returns
        ``False``); otherwise least-recently-used entries are evicted
        until the new entry fits.  The entry's arrays are frozen
        read-only: the same objects are handed to clients, and a
        client mutating its response in place must get a loud
        ``ValueError``, not silently poison every later hit.
        """
        nbytes = result_nbytes(result)
        if nbytes > self.max_bytes:
            return False
        result.kernel.setflags(write=False)
        result.scores.setflags(write=False)
        if digest in self._entries:
            # Same content, same artifacts: refresh recency only.
            self._entries.move_to_end(digest)
            return True
        while self.current_bytes + nbytes > self.max_bytes:
            evicted_digest, evicted = self._entries.popitem(last=False)
            self.current_bytes -= result_nbytes(evicted)
            self.evictions += 1
            if self.on_evict is not None:
                self.on_evict(evicted_digest)
        self._entries[digest] = result
        self.current_bytes += nbytes
        return True

    def __repr__(self) -> str:
        return (
            f"<ExplanationCache {len(self._entries)} entries, "
            f"{self.current_bytes}/{self.max_bytes} bytes, "
            f"{self.hits} hits / {self.misses} misses / "
            f"{self.evictions} evictions>"
        )


class SpeculativeWarmer:
    """Track recurring evicted digests and stage them for idle warming.

    The warmer is pure bookkeeping -- the service decides *when* to
    warm (idle drain gaps) and does the recompute itself; the warmer
    decides *what* is worth warming:

    * :meth:`note_request` counts how often each digest arrives and
      remembers the most recent request planes/plan for it (a bounded
      LRU of ``max_tracked`` digests -- warming needs the inputs to
      recompute from);
    * :meth:`note_eviction` (wired to :attr:`ExplanationCache
      .on_evict`) stages an evicted digest as a warming candidate iff
      it has recurred at least ``min_recurrences`` times -- a
      one-shot digest will likely never be asked again, so re-warming
      it would waste idle device time;
    * :meth:`pop_candidates` hands back up to ``limit`` staged
      candidates that are still absent from the cache, oldest eviction
      first, each at most once.

    Everything is insertion-ordered plain dicts: given the same trace,
    the same candidates stage in the same order -- warming is as
    replayable as the rest of the event loop.
    """

    def __init__(
        self, max_tracked: int = 64, min_recurrences: int = 2
    ) -> None:
        if max_tracked <= 0:
            raise ValueError(
                f"max_tracked must be positive, got {max_tracked}"
            )
        if min_recurrences < 2:
            raise ValueError(
                "min_recurrences below 2 would warm one-shot digests, "
                f"got {min_recurrences}"
            )
        self.max_tracked = int(max_tracked)
        self.min_recurrences = int(min_recurrences)
        self._counts: dict[str, int] = {}
        #: digest -> (x, y, batch key, plan): the inputs a recompute needs.
        self._planes: "OrderedDict[str, tuple]" = OrderedDict()
        self._staged: "OrderedDict[str, None]" = OrderedDict()
        self.warmed = 0  # incremented by the service per warmed entry

    def note_request(self, digest: str, x, y, key, plan) -> None:
        """Record one arrival of ``digest`` (hit or miss alike)."""
        self._counts[digest] = self._counts.get(digest, 0) + 1
        if digest in self._planes:
            self._planes.move_to_end(digest)
        self._planes[digest] = (x, y, key, plan)
        while len(self._planes) > self.max_tracked:
            dropped, _ = self._planes.popitem(last=False)
            self._staged.pop(dropped, None)

    def note_eviction(self, digest: str) -> None:
        """Stage an evicted digest for warming if it recurs."""
        if (
            self._counts.get(digest, 0) >= self.min_recurrences
            and digest in self._planes
        ):
            self._staged[digest] = None

    @property
    def staged_count(self) -> int:
        return len(self._staged)

    def pop_candidates(self, cache: ExplanationCache, limit: int) -> list:
        """Up to ``limit`` staged ``(digest, x, y, key, plan)`` tuples.

        Skips digests the cache re-acquired since staging (a later
        miss already refilled them); popped candidates are consumed --
        re-staging requires another eviction.
        """
        candidates = []
        while self._staged and len(candidates) < limit:
            digest, _ = self._staged.popitem(last=False)
            if digest in cache:
                continue
            planes = self._planes.get(digest)
            if planes is not None:
                candidates.append((digest, *planes))
        return candidates

    def __repr__(self) -> str:
        return (
            f"<SpeculativeWarmer {len(self._counts)} digests tracked, "
            f"{len(self._staged)} staged, {self.warmed} warmed>"
        )
