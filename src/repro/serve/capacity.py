"""Capacity planning: from the latency ledger to chips and dollars.

The serving report says what one simulated chip (or pod replica) did
under one trace; an operator needs the next two derivatives -- **how
many replicas** hold a target arrival rate, and **what a million
explanations cost** at that rate.  This module derives both from
quantities the :class:`~repro.serve.metrics.ServiceReport` already
carries, with no new measurement:

* **utilization** -- device-busy simulated seconds over elapsed
  simulated seconds for the measured run: how much of the wall the
  replica actually computed;
* **per-replica service rate** -- completed requests per device-*busy*
  second: the replica's intrinsic throughput with idle time factored
  out, so the projection does not reward a sparse trace;
* **replicas needed at rate R** -- ``ceil(R / (service_rate *
  max_utilization))``: enough replicas that each runs at or below the
  target utilization (the headroom that keeps tail latency from
  exploding as the queueing-theory knee approaches);
* **cost per million explanations** -- replicas times an hourly chip
  price, normalized by the explanation rate.

All of it is simulated economics on simulated time: the point is the
*shape* (how cost scales with rate, where batching bends the curve),
not a cloud invoice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.serve.metrics import ServiceReport

#: Simulated price of one chip-hour, loosely shaped on public
#: accelerator on-demand pricing.  Every cost is linear in it, so the
#: comparisons (batched vs serial, controller vs static) are
#: price-independent.
DEFAULT_CHIP_COST_PER_HOUR = 1.35


@dataclass(frozen=True)
class CapacityPlan:
    """What it takes to serve ``rate`` requests/second, projected from one run."""

    rate: float  # target arrival rate (requests / simulated second)
    per_chip_rate: float  # intrinsic service rate of one replica
    utilization: float  # measured busy fraction of the source run
    max_utilization: float  # headroom target the plan provisions to
    chips_needed: int
    cost_per_hour: float
    cost_per_million: float  # simulated cost per 1e6 explanations


def plan_capacity(
    report: ServiceReport,
    rate: float | None = None,
    max_utilization: float = 0.7,
    chip_cost_per_hour: float = DEFAULT_CHIP_COST_PER_HOUR,
) -> CapacityPlan:
    """Project one measured run onto a target arrival rate.

    ``rate`` defaults to the run's own completed-request rate (plan for
    the traffic you measured).  ``max_utilization`` is the busy-fraction
    ceiling each replica is provisioned to -- the latency-headroom
    knob; provisioning to 1.0 means queueing delay diverges at the
    target rate.
    """
    if not 0 < max_utilization <= 1:
        raise ValueError(
            f"max_utilization must lie in (0, 1], got {max_utilization}"
        )
    if chip_cost_per_hour < 0:
        raise ValueError(
            f"chip_cost_per_hour cannot be negative, got {chip_cost_per_hour}"
        )
    completed = report.completed_count
    busy = report.stats.seconds
    if completed <= 0 or busy <= 0:
        raise ValueError(
            "capacity planning needs a run with completed requests and "
            f"device work (completed={completed}, busy={busy})"
        )
    per_chip_rate = completed / busy
    utilization = busy / report.elapsed_seconds if report.elapsed_seconds > 0 else 1.0
    if rate is None:
        rate = report.goodput
    if rate <= 0:
        raise ValueError(f"target rate must be positive, got {rate}")
    chips = max(1, math.ceil(rate / (per_chip_rate * max_utilization)))
    cost_per_hour = chips * chip_cost_per_hour
    explanations_per_hour = rate * 3600.0
    cost_per_million = cost_per_hour / explanations_per_hour * 1e6
    return CapacityPlan(
        rate=float(rate),
        per_chip_rate=per_chip_rate,
        utilization=utilization,
        max_utilization=float(max_utilization),
        chips_needed=chips,
        cost_per_hour=cost_per_hour,
        cost_per_million=cost_per_million,
    )


def capacity_table(
    report: ServiceReport,
    rates,
    max_utilization: float = 0.7,
    chip_cost_per_hour: float = DEFAULT_CHIP_COST_PER_HOUR,
) -> list[CapacityPlan]:
    """One :func:`plan_capacity` row per target rate."""
    return [
        plan_capacity(
            report,
            rate=rate,
            max_utilization=max_utilization,
            chip_cost_per_hour=chip_cost_per_hour,
        )
        for rate in rates
    ]


def format_capacity_table(plans) -> str:
    """A fixed-width text table of capacity plans (for bench output)."""
    header = (
        f"{'rate (req/s)':>14} {'chips':>7} {'per-chip (req/s)':>18} "
        f"{'cost ($/h)':>12} {'cost ($/1M)':>13}"
    )
    lines = [header, "-" * len(header)]
    for plan in plans:
        lines.append(
            f"{plan.rate:>14.1f} {plan.chips_needed:>7d} "
            f"{plan.per_chip_rate:>18.1f} {plan.cost_per_hour:>12.2f} "
            f"{plan.cost_per_million:>13.3f}"
        )
    return "\n".join(lines)
