"""Dynamic micro-batching: coalesce queued requests into fleet waves.

The throughput lever of the serving layer (Clipper's adaptive batching
applied to the occlusion engine): single requests are queued per
**batch key** -- ``(granularity, block_shape, precision)`` -- and
released to the wave-fused :class:`~repro.core.fleet.FleetExecutor` as
one batch under a *max-wait / max-batch* policy:

* a key's queue is **full** once it holds ``max_batch_pairs`` requests
  (dispatch immediately -- waiting longer buys nothing);
* a key's queue is **due** once its oldest request has waited
  ``max_wait_seconds`` (dispatch whatever has coalesced -- waiting
  longer only buys latency).

Keys are the compatibility contract: requests of different
granularities, block shapes or precisions never share a dispatch, so
**mixed-precision requests never share a wave** -- each key's batch
runs through an executor configured for exactly that precision, and the
fleet scheduler further splits a batch by plane shape and dtype class.
Within a key, requests dispatch in arrival order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.masking import MaskSpec
from repro.serve.workload import Request


@dataclass(frozen=True)
class BatchKey:
    """What must match for two requests to share a dispatch."""

    granularity: str
    block_shape: tuple[int, int] | None
    precision: str | None  # spec name, or None for the exact legacy mode

    def as_tuple(self) -> tuple:
        return (self.granularity, self.block_shape, self.precision)


@dataclass(frozen=True)
class QueuedRequest:
    """A pending request plus everything resolved at admission time."""

    request: Request
    enqueue_time: float
    feed_nbytes: int  # host-link bytes of (x, y) at the key's precision
    plan: MaskSpec | None  # prebuilt lazy mask plan (submit-time reuse)
    digest: str | None  # content digest, for cache fill after dispatch


class MicroBatcher:
    """Per-key FIFO queues under the max-wait / max-batch policy."""

    def __init__(
        self,
        max_wait_seconds: float = 0.05,
        max_batch_pairs: int = 32,
    ) -> None:
        if max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds cannot be negative, got {max_wait_seconds}"
            )
        if max_batch_pairs <= 0:
            raise ValueError(
                f"max_batch_pairs must be positive, got {max_batch_pairs}"
            )
        self.max_wait_seconds = float(max_wait_seconds)
        self.max_batch_pairs = int(max_batch_pairs)
        self._queues: dict[BatchKey, list[QueuedRequest]] = {}

    # ------------------------------------------------------------------
    # Enqueue / pressure
    # ------------------------------------------------------------------
    def enqueue(self, key: BatchKey, queued: QueuedRequest) -> None:
        self._queues.setdefault(key, []).append(queued)

    @property
    def pending_count(self) -> int:
        """Requests waiting across every key (the admission depth signal)."""
        return sum(len(queue) for queue in self._queues.values())

    @property
    def pending_bytes(self) -> int:
        """Host-link bytes queued across every key (the byte signal)."""
        return sum(
            queued.feed_nbytes
            for queue in self._queues.values()
            for queued in queue
        )

    # ------------------------------------------------------------------
    # Dispatch policy
    # ------------------------------------------------------------------
    def next_deadline(self) -> float:
        """When the oldest pending request's max-wait expires (inf if idle)."""
        deadlines = [
            queue[0].enqueue_time + self.max_wait_seconds
            for queue in self._queues.values()
            if queue
        ]
        return min(deadlines) if deadlines else math.inf

    def ripe_keys(self, now: float) -> list[BatchKey]:
        """Keys that should dispatch at ``now``: full or past max-wait.

        Insertion-ordered and duplicate-free, so the event loop's
        dispatch order is deterministic.
        """
        ripe = []
        for key, queue in self._queues.items():
            if not queue:
                continue
            full = len(queue) >= self.max_batch_pairs
            due = queue[0].enqueue_time + self.max_wait_seconds <= now
            if full or due:
                ripe.append(key)
        return ripe

    def pop(self, key: BatchKey) -> list[QueuedRequest]:
        """Release up to ``max_batch_pairs`` of a key's oldest requests.

        Anything past the batch cap stays queued with its original
        enqueue time (its max-wait deadline keeps running), so a
        saturating key drains as a train of full batches.
        """
        queue = self._queues.get(key, [])
        batch = queue[: self.max_batch_pairs]
        self._queues[key] = queue[self.max_batch_pairs :]
        return batch
