"""Dynamic micro-batching: coalesce queued requests into fleet waves.

The throughput lever of the serving layer (Clipper's adaptive batching
applied to the occlusion engine): single requests are queued per
**batch key** -- ``(granularity, block_shape, precision)`` -- and
released to the wave-fused :class:`~repro.core.fleet.FleetExecutor` as
one batch under a *max-wait / max-batch* policy:

* a key's queue is **full** once it holds ``max_batch_pairs`` requests
  (dispatch immediately -- waiting longer buys nothing);
* a key's queue is **due** once its oldest request has waited
  ``max_wait_seconds`` (dispatch whatever has coalesced -- waiting
  longer only buys latency);
* once the arrival trace is exhausted a key is **drained**: no future
  arrival can widen any batch, so pending queues flush without burning
  the remainder of their max-wait window (:meth:`MicroBatcher
  .drain_keys`).

The policy is per key: a static ``(max_wait_seconds,
max_batch_pairs)`` pair by default, or -- when a
:class:`~repro.serve.controller.BatchController` is attached -- the
controller's current per-key setting, re-read at every decision point
so AIMD updates take effect on the very next dispatch.

**Dispatch fairness.**  When several keys are ripe in the same event-
loop iteration (typically after a long dispatch advanced the clock
past many deadlines), ``dispatch_policy`` orders them:

* ``"fair"`` (weighted fair queueing, the default) -- keys dispatch in
  ascending order of *served credit*, the pairs a key has already had
  dispatched divided by its weight (``weights``, default 1.0).  A hot
  key that constantly fills batches accumulates credit and yields the
  head of each contended round to starved keys, bounding how long a
  sparse key can sit behind a saturating one; a weight > 1 entitles a
  key to proportionally more service before yielding.
* ``"fifo"`` -- first-seen key order (the pre-autopilot behaviour,
  kept as the comparison baseline: a hot key inserted first dispatches
  first in every contended round).

Keys are the compatibility contract: requests of different
granularities, block shapes or precisions never share a dispatch, so
**mixed-precision requests never share a wave** -- each key's batch
runs through an executor configured for exactly that precision, and the
fleet scheduler further splits a batch by plane shape and dtype class.
Within a key, requests dispatch in arrival order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.masking import MaskSpec
from repro.serve.workload import Request

#: Orders for draining several simultaneously-ripe keys.
DISPATCH_POLICIES = ("fair", "fifo")


@dataclass(frozen=True)
class BatchKey:
    """What must match for two requests to share a dispatch."""

    granularity: str
    block_shape: tuple[int, int] | None
    precision: str | None  # spec name, or None for the exact legacy mode

    def as_tuple(self) -> tuple:
        return (self.granularity, self.block_shape, self.precision)


@dataclass(frozen=True)
class QueuedRequest:
    """A pending request plus everything resolved at admission time."""

    request: Request
    enqueue_time: float
    feed_nbytes: int  # host-link bytes of (x, y) at the key's precision
    plan: MaskSpec | None  # prebuilt lazy mask plan (submit-time reuse)
    digest: str | None  # content digest, for cache fill after dispatch


class MicroBatcher:
    """Per-key FIFO queues under the max-wait / max-batch policy."""

    def __init__(
        self,
        max_wait_seconds: float = 0.05,
        max_batch_pairs: int = 32,
        controller=None,
        dispatch_policy: str = "fair",
        weights: dict | None = None,
    ) -> None:
        if max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds cannot be negative, got {max_wait_seconds}"
            )
        if max_batch_pairs <= 0:
            raise ValueError(
                f"max_batch_pairs must be positive, got {max_batch_pairs}"
            )
        if dispatch_policy not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch_policy {dispatch_policy!r}; "
                f"expected one of {DISPATCH_POLICIES}"
            )
        if weights is not None:
            for key, weight in weights.items():
                if weight <= 0:
                    raise ValueError(
                        f"dispatch weight for {key} must be positive, got {weight}"
                    )
        self.max_wait_seconds = float(max_wait_seconds)
        self.max_batch_pairs = int(max_batch_pairs)
        self.controller = controller
        self.dispatch_policy = dispatch_policy
        self.weights = dict(weights) if weights else {}
        self._queues: dict[BatchKey, list[QueuedRequest]] = {}
        self._order: dict[BatchKey, int] = {}  # first-seen key order
        self._served: dict[BatchKey, float] = {}  # weighted pairs dispatched
        #: Non-empty dispatches per key (the metrics-registry surface).
        self.dispatch_counts: dict[BatchKey, int] = {}

    # ------------------------------------------------------------------
    # Per-key policy
    # ------------------------------------------------------------------
    def policy_for(self, key: BatchKey) -> tuple[float, int]:
        """The ``(max_wait_seconds, max_batch_pairs)`` governing ``key``.

        The attached controller's live per-key setting when present,
        else the static construction-time pair -- re-read at every
        deadline/ripeness/pop decision so controller updates apply to
        the very next dispatch.
        """
        if self.controller is not None:
            return self.controller.policy(key)
        return (self.max_wait_seconds, self.max_batch_pairs)

    def weight_for(self, key: BatchKey) -> float:
        """The key's fairness weight (keys or their tuples both index)."""
        if key in self.weights:
            return self.weights[key]
        return self.weights.get(key.as_tuple(), 1.0)

    # ------------------------------------------------------------------
    # Enqueue / pressure
    # ------------------------------------------------------------------
    def enqueue(self, key: BatchKey, queued: QueuedRequest) -> None:
        if key not in self._order:
            self._order[key] = len(self._order)
        self._queues.setdefault(key, []).append(queued)

    @property
    def pending_count(self) -> int:
        """Requests waiting across every key (the admission depth signal)."""
        return sum(len(queue) for queue in self._queues.values())

    @property
    def pending_bytes(self) -> int:
        """Host-link bytes queued across every key (the byte signal)."""
        return sum(
            queued.feed_nbytes
            for queue in self._queues.values()
            for queued in queue
        )

    def pending_count_for(self, key: BatchKey) -> int:
        """Requests one key has waiting (the per-key admission signal)."""
        return len(self._queues.get(key, ()))

    def pending_bytes_for(self, key: BatchKey) -> int:
        """Host-link bytes one key has queued."""
        return sum(q.feed_nbytes for q in self._queues.get(key, ()))

    # ------------------------------------------------------------------
    # Dispatch policy
    # ------------------------------------------------------------------
    def next_deadline(self) -> float:
        """When the oldest pending request's max-wait expires (inf if idle)."""
        deadlines = [
            queue[0].enqueue_time + self.policy_for(key)[0]
            for key, queue in self._queues.items()
            if queue
        ]
        return min(deadlines) if deadlines else math.inf

    def _dispatch_order(self, keys: list[BatchKey]) -> list[BatchKey]:
        """Order simultaneously-ripe keys per the dispatch policy."""
        if self.dispatch_policy == "fifo":
            return sorted(keys, key=lambda key: self._order[key])
        return sorted(
            keys,
            key=lambda key: (self._served.get(key, 0.0), self._order[key]),
        )

    def ripe_keys(self, now: float) -> list[BatchKey]:
        """Keys that should dispatch at ``now``: full or past max-wait.

        Ordered by the dispatch policy (weighted fair queueing by
        default, first-seen under ``"fifo"``) and duplicate-free, so
        the event loop's dispatch order is deterministic.
        """
        ripe = []
        for key, queue in self._queues.items():
            if not queue:
                continue
            max_wait, max_pairs = self.policy_for(key)
            full = len(queue) >= max_pairs
            due = queue[0].enqueue_time + max_wait <= now
            if full or due:
                ripe.append(key)
        return self._dispatch_order(ripe)

    def drain_keys(self) -> list[BatchKey]:
        """Every key with pending requests, in dispatch-policy order.

        The trace-exhausted flush: once no further arrival can join a
        batch, waiting out the max-wait window buys width that will
        never come -- the event loop drains these keys immediately.
        """
        return self._dispatch_order(
            [key for key, queue in self._queues.items() if queue]
        )

    def pop(self, key: BatchKey) -> list[QueuedRequest]:
        """Release up to the key's ``max_batch_pairs`` oldest requests.

        Anything past the batch cap stays queued with its original
        enqueue time (its max-wait deadline keeps running), so a
        saturating key drains as a train of full batches.  The key's
        served credit grows by the weighted batch size -- the fairness
        bookkeeping behind ``dispatch_policy="fair"``.
        """
        _, max_pairs = self.policy_for(key)
        queue = self._queues.get(key, [])
        batch = queue[:max_pairs]
        self._queues[key] = queue[max_pairs:]
        if batch:
            self._served[key] = (
                self._served.get(key, 0.0) + len(batch) / self.weight_for(key)
            )
            self.dispatch_counts[key] = self.dispatch_counts.get(key, 0) + 1
        return batch
