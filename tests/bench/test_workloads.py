"""Workload definitions and device-time arithmetic."""

import pytest

from repro.bench.workloads import (
    FIGURE4_SIZES,
    ClassificationWorkload,
    InterpretationWorkload,
    cpu_classification_times,
    default_devices,
    figure4_solve_seconds,
    gpu_classification_times,
    interpretation_seconds,
    resnet50_interpretation_workload,
    resnet50_workload,
    tpu_classification_times,
    vgg19_interpretation_workload,
    vgg19_workload,
)
from repro.core.backend import TpuBackend, make_tpu_chip
from repro.hw import CpuDevice, GpuDevice


class TestWorkloadDefinitions:
    def test_vgg_workload_shape(self):
        workload = vgg19_workload()
        assert workload.name == "VGG19"
        assert workload.census.input_shape == (3, 32, 32)
        assert workload.batch_size == 128
        assert workload.epochs_per_report == 10
        assert workload.steps_per_epoch == 391  # ceil(50000 / 128)
        assert workload.sample_bytes == 3 * 32 * 32 * 4

    def test_resnet_workload_shape(self):
        workload = resnet50_workload()
        assert workload.census.input_shape == (1, 32, 32)
        assert workload.test_steps == 79  # ceil(10000 / 128)

    def test_census_scale_sanity(self):
        # Full VGG19 at 32x32 is ~400M MACs; ResNet50 trace variant ~325M.
        assert 3e8 < vgg19_workload().census.forward_macs < 5e8
        assert 2e8 < resnet50_workload().census.forward_macs < 5e8

    def test_interpretation_workloads(self):
        vgg = vgg19_interpretation_workload()
        resnet = resnet50_interpretation_workload()
        assert vgg.plane == (1024, 1024)
        assert resnet.num_features > vgg.num_features
        assert vgg.pairs == 10

    def test_invalid_interpretation_workload(self):
        with pytest.raises(ValueError):
            InterpretationWorkload(name="x", plane=(0, 4), num_features=4)
        with pytest.raises(ValueError):
            InterpretationWorkload(name="x", plane=(4, 4), num_features=0)


class TestClassificationTimes:
    @pytest.fixture(scope="class")
    def workload(self):
        return vgg19_workload()

    def test_cpu_ordering(self, workload):
        times = cpu_classification_times(workload)
        assert times.train_seconds > times.test_seconds > 0

    def test_gpu_faster_than_cpu(self, workload):
        cpu = cpu_classification_times(workload)
        gpu = gpu_classification_times(workload)
        assert gpu.train_seconds < cpu.train_seconds
        assert gpu.test_seconds < cpu.test_seconds

    def test_tpu_fastest(self, workload):
        gpu = gpu_classification_times(workload)
        tpu = tpu_classification_times(workload)
        assert tpu.train_seconds < gpu.train_seconds
        assert tpu.test_seconds < gpu.test_seconds

    def test_training_scales_with_epochs(self):
        short = ClassificationWorkload(
            name="x",
            census=vgg19_workload().census,
            train_samples=50_000,
            test_samples=10_000,
            epochs_per_report=1,
        )
        long = vgg19_workload()  # 10 epochs
        assert cpu_classification_times(long).train_seconds == pytest.approx(
            10 * cpu_classification_times(short).train_seconds
        )

    def test_tpu_training_is_transfer_bound(self, workload):
        """The optimizer round trip dominates the simulated TPU step --
        the structural reason measured speedups are 40-70x, not 1000x."""
        backend = TpuBackend(make_tpu_chip(precision="int8"))
        times = tpu_classification_times(workload, backend)
        steps = workload.steps_per_epoch * workload.epochs_per_report
        per_step = times.train_seconds / steps
        chip = backend.chip
        round_trip = (
            2 * workload.census.parameter_count * 2
            / chip.config.host_bandwidth_bytes_per_sec
        )
        assert round_trip > 0.5 * per_step


class TestInterpretationSeconds:
    def test_device_ordering_at_paper_scale(self):
        devices = default_devices()
        workload = vgg19_interpretation_workload()
        cpu = interpretation_seconds(devices["CPU"], workload)
        gpu = interpretation_seconds(devices["GPU"], workload)
        tpu = interpretation_seconds(devices["TPU"], workload)
        assert cpu > gpu > tpu

    def test_scales_linearly_with_pairs(self):
        device = CpuDevice()
        one = interpretation_seconds(device, vgg19_interpretation_workload(pairs=1))
        ten = interpretation_seconds(device, vgg19_interpretation_workload(pairs=10))
        assert ten == pytest.approx(10 * one)

    def test_more_features_cost_more(self):
        device = GpuDevice()
        few = InterpretationWorkload(name="x", plane=(256, 256), num_features=16)
        many = InterpretationWorkload(name="x", plane=(256, 256), num_features=64)
        assert interpretation_seconds(device, many) > interpretation_seconds(device, few)


class TestFigure4Solve:
    def test_monotone_in_size(self):
        device = CpuDevice()
        times = [figure4_solve_seconds(device, s) for s in FIGURE4_SIZES]
        assert times == sorted(times)

    def test_tpu_overhead_floor(self):
        """At tiny sizes the TPU cost approaches dispatch + transfer."""
        backend = TpuBackend(make_tpu_chip())
        tiny = figure4_solve_seconds(backend, 8)
        assert tiny >= backend.chip.config.dispatch_latency_sec

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            figure4_solve_seconds(CpuDevice(), 0)

    def test_default_devices_complete(self):
        devices = default_devices()
        assert set(devices) == {"CPU", "GPU", "TPU"}
        assert isinstance(devices["TPU"], TpuBackend)


class TestFleetInterpretationSeconds:
    def _mini(self, pairs=4):
        return InterpretationWorkload(
            name="mini", plane=(64, 64), num_features=8, pairs=pairs
        )

    def test_pair_fusion_reduces_to_table2_model(self):
        from repro.bench.workloads import fleet_interpretation_seconds

        for device in (CpuDevice(), GpuDevice(), TpuBackend(make_tpu_chip())):
            assert fleet_interpretation_seconds(
                device, self._mini(), fusion="pair"
            ) == interpretation_seconds(device, self._mini(), method="batched")
            assert fleet_interpretation_seconds(
                device, self._mini(), method="loop"
            ) == interpretation_seconds(device, self._mini(), method="loop")

    def test_wave_fusion_cheaper_on_every_device(self):
        from repro.bench.workloads import fleet_interpretation_seconds

        workload = self._mini(pairs=10)
        for device in (CpuDevice(), GpuDevice(), TpuBackend(make_tpu_chip())):
            wave = fleet_interpretation_seconds(device, workload, fusion="wave")
            pair = fleet_interpretation_seconds(device, workload, fusion="pair")
            assert wave < pair

    def test_tpu_wave_gain_grows_with_fleet_size(self):
        """Dispatch amortization: the wave-vs-pair factor at 100 pairs
        must beat the factor at 1 pair on the TPU."""
        from repro.bench.workloads import fleet_interpretation_seconds

        def factor(pairs):
            device = TpuBackend(make_tpu_chip())
            w = fleet_interpretation_seconds(device, self._mini(pairs), fusion="wave")
            p = fleet_interpretation_seconds(device, self._mini(pairs), fusion="pair")
            return p / w

        assert factor(100) > factor(1)

    def test_wave_splitting_adds_dispatches(self):
        from repro.bench.workloads import fleet_interpretation_seconds

        device = TpuBackend(make_tpu_chip())
        whole = fleet_interpretation_seconds(device, self._mini(8), fusion="wave")
        split = fleet_interpretation_seconds(
            device, self._mini(8), fusion="wave", pairs_per_wave=2
        )
        assert split > whole

    def test_validation(self):
        from repro.bench.workloads import fleet_interpretation_seconds

        with pytest.raises(ValueError):
            fleet_interpretation_seconds(CpuDevice(), self._mini(), method="magic")
        with pytest.raises(ValueError):
            fleet_interpretation_seconds(CpuDevice(), self._mini(), fusion="galaxy")
        with pytest.raises(ValueError):
            fleet_interpretation_seconds(
                CpuDevice(), self._mini(), pairs_per_wave=0
            )
