"""Export contracts: Chrome trace-event schema, lanes, ASCII renderers.

The schema assertions run against a *real* traced pod-fleet run, not a
hand-built buffer: required keys per phase, microsecond timestamps
monotone per lane, properly nested complete spans on the device
program lane, paired flow ids, and labeled metadata.
"""

import json

import numpy as np
import pytest

from repro.core import FleetExecutor, TpuBackend, make_tpu_chip
from repro.obs.export import (
    US_PER_SECOND,
    chrome_trace_events,
    format_trace_ascii,
    format_wave_timeline,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.tracer import tracer

PLANE = (16, 16)
BLOCK = (4, 4)


def fleet_pairs(count=12, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal(PLANE), rng.standard_normal(PLANE))
        for _ in range(count)
    ]


def traced_fleet(num_chips=2, placement="data"):
    executor = FleetExecutor(
        TpuBackend(make_tpu_chip(num_cores=8)),
        granularity="blocks", block_shape=BLOCK,
        num_chips=num_chips, placement=placement,
        max_pairs_per_wave=4,
    )
    tracer.enable()
    executor.run(fleet_pairs())
    tracer.disable()
    return executor


class TestChromeSchema:
    def test_document_shape_and_validator(self):
        traced_fleet()
        document = to_chrome_trace(tracer)
        assert document["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(document) == []
        assert json.loads(json.dumps(document)) == document

    def test_required_keys_per_phase(self):
        traced_fleet()
        for event in chrome_trace_events(tracer):
            for key in ("ph", "name", "pid", "tid"):
                assert key in event
            if event["ph"] == "M":
                assert "name" in event["args"] or "sort_index" in event["args"]
                continue
            assert isinstance(event["ts"], float)
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            elif event["ph"] == "i":
                assert event["s"] == "t"
            elif event["ph"] in ("s", "f"):
                assert event["id"] is not None
                if event["ph"] == "f":
                    assert event["bp"] == "e"

    def test_timestamps_are_microseconds(self):
        tracer.enable()
        tracer.complete("a", "c", 0.25, 0.5)
        (record,) = (
            e for e in chrome_trace_events(tracer) if e["ph"] == "X"
        )
        assert record["ts"] == 0.25 * US_PER_SECOND
        assert record["dur"] == 0.5 * US_PER_SECOND

    def test_metadata_labels_every_process(self):
        traced_fleet()
        events = chrome_trace_events(tracer)
        named = {
            e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        used = {e["pid"] for e in events if e["ph"] != "M"}
        assert used <= named

    def test_flow_ids_pair_in_export(self):
        tracer.enable()
        tracer.flow("q", "serve", (0.0, 0, 0), (1.0, 0, 1))
        events = [e for e in chrome_trace_events(tracer) if e["ph"] in "sf"]
        assert [e["ph"] for e in events] == ["s", "f"]
        assert events[0]["id"] == events[1]["id"]
        assert validate_chrome_trace(to_chrome_trace(tracer)) == []

    def test_write_chrome_trace_round_trips(self, tmp_path):
        traced_fleet()
        path = tmp_path / "run.trace.json"
        written = write_chrome_trace(path, tracer)
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert validate_chrome_trace(loaded) == []


class TestValidatorCatchesProblems:
    def test_rejects_non_document(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"events": []}) != []

    def test_flags_missing_keys_and_bad_phases(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0.0, "dur": -1},
            {"ph": "?", "name": "b", "pid": 0, "tid": 0, "ts": 0.0},
            {"name": "c", "pid": 0, "tid": 0},
        ]}
        problems = validate_chrome_trace(doc)
        assert any("bad dur" in p for p in problems)
        assert any("unknown phase" in p for p in problems)
        assert any("missing 'ph'" in p for p in problems)

    def test_flags_unpaired_flows(self):
        doc = {"traceEvents": [
            {"ph": "s", "name": "q", "pid": 0, "tid": 0, "ts": 0.0, "id": 9},
        ]}
        assert any("flow 9" in p for p in validate_chrome_trace(doc))


class TestLaneStructure:
    def test_timestamps_monotone_per_device_program_lane(self):
        """Device tid-0 lanes replay in order: program starts never
        step backwards on any chip's program lane."""
        executor = traced_fleet(num_chips=4)
        chip_pids = {
            tracer._pids[id(device)] for device in executor.pod.devices
        }
        for pid in chip_pids:
            starts = [
                e.ts for e in tracer.events
                if e.pid == pid and e.tid == 0 and e.ph == "X"
                and e.name == "program"
            ]
            assert starts == sorted(starts)

    def test_program_spans_nest_their_feed_children(self):
        """On each device program lane, infeed/outfeed child spans sit
        inside their program parent (proper X nesting)."""
        executor = traced_fleet(num_chips=2)
        chip_pids = {
            tracer._pids[id(device)] for device in executor.pod.devices
        }
        checked = 0
        for pid in chip_pids:
            lane = [
                e for e in tracer.events
                if e.pid == pid and e.tid == 0 and e.ph == "X"
            ]
            programs = [e for e in lane if e.name == "program"]
            for child in lane:
                if child.name == "program":
                    continue
                parents = [
                    p for p in programs
                    if p.ts <= child.ts and child.end <= p.end
                ]
                assert parents, f"{child.name} span outside any program"
                checked += 1
        assert checked > 0


class TestAsciiRenderers:
    def test_format_trace_ascii_covers_every_lane(self):
        traced_fleet()
        art = format_trace_ascii(tracer)
        assert "#" in art
        assert "pod" in art  # the pod process label
        assert "ms" in art

    def test_format_trace_ascii_empty(self):
        assert format_trace_ascii(tracer) == "(no spans recorded)"

    def test_format_trace_ascii_rejects_bad_width(self):
        with pytest.raises(ValueError):
            format_trace_ascii(tracer, width=0)

    def test_format_wave_timeline_bars_and_footer(self):
        executor = traced_fleet(num_chips=2)
        art = format_wave_timeline(executor.pod.collective_log)
        assert "wave " in art
        assert "chip" in art
        assert "#" in art
        assert "launch" in art
        assert art.splitlines()[-1].startswith("(")

    def test_format_wave_timeline_empty(self):
        assert format_wave_timeline([]) == "(no waves logged)"
