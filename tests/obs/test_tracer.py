"""Contracts of the span tracer itself: recording, gating, identity."""

import pytest

from repro.obs.tracer import PHASES, TraceEvent, Tracer, tracer


class TestGating:
    def test_disabled_by_default_and_records_nothing(self):
        assert tracer.enabled is False
        assert tracer.complete("a", "c", 0.0, 1.0) is None
        assert tracer.instant("b", "c", 0.0) is None
        assert tracer.flow("f", "c", (0.0, 0, 0), (1.0, 0, 1)) is None
        assert len(tracer) == 0

    def test_enable_disable_round_trip(self):
        tracer.enable()
        assert tracer.complete("a", "c", 0.0, 1.0) is not None
        tracer.disable()
        assert tracer.complete("b", "c", 0.0, 1.0) is None
        assert [e.name for e in tracer.events] == ["a"]

    def test_tracing_context_restores_prior_state(self):
        with tracer.tracing():
            assert tracer.enabled
            tracer.complete("inside", "c", 0.0, 1.0)
        assert not tracer.enabled
        tracer.enable()
        with tracer.tracing():
            pass
        assert tracer.enabled

    def test_clear_drops_events_but_keeps_enablement(self):
        tracer.enable()
        tracer.complete("a", "c", 0.0, 1.0)
        tracer.set_process_name(3, "chip")
        tracer.origin = 5.0
        tracer.clear()
        assert tracer.enabled
        assert len(tracer) == 0
        assert tracer.process_names == {}
        assert tracer.origin == 0.0


class TestRecording:
    def test_complete_span_fields(self):
        tracer.enable()
        event = tracer.complete(
            "prog", "device", 1.5, 0.25, pid=2, tid=1, args={"depth": 3}
        )
        assert event == tracer.events[-1]
        assert event.ph == "X"
        assert (event.ts, event.dur, event.end) == (1.5, 0.25, 1.75)
        assert (event.pid, event.tid) == (2, 1)
        assert event.args == {"depth": 3}
        assert event.ph in PHASES

    def test_complete_rejects_negative_or_nonfinite_duration(self):
        tracer.enable()
        with pytest.raises(ValueError):
            tracer.complete("bad", "c", 0.0, -1.0)
        with pytest.raises(ValueError):
            tracer.complete("bad", "c", 0.0, float("nan"))

    def test_instant_has_zero_duration(self):
        tracer.enable()
        event = tracer.instant("mark", "serve", 2.0, pid=0, tid=1)
        assert event.ph == "i" and event.dur == 0.0 and event.end == 2.0

    def test_flow_emits_paired_events_with_fresh_ids(self):
        tracer.enable()
        first = tracer.flow("q", "serve", (0.0, 0, 0), (1.0, 0, 1), {"w": 1.0})
        second = tracer.flow("q", "serve", (2.0, 0, 0), (3.0, 0, 1))
        assert first != second
        s, f = tracer.events[0], tracer.events[1]
        assert (s.ph, f.ph) == ("s", "f")
        assert s.flow_id == f.flow_id == first
        assert s.args == f.args == {"w": 1.0}
        assert (s.ts, f.ts) == (0.0, 1.0)

    def test_args_are_copied_not_aliased(self):
        tracer.enable()
        payload = {"k": 1}
        event = tracer.complete("a", "c", 0.0, 1.0, args=payload)
        payload["k"] = 2
        assert event.args == {"k": 1}


class TestIdentity:
    def test_pid_for_is_stable_per_object(self):
        class Chip:
            name = "chip-x"

        chip, other = Chip(), Chip()
        assert tracer.pid_for(chip) == tracer.pid_for(chip)
        assert tracer.pid_for(chip) != tracer.pid_for(other)
        assert tracer.process_names[tracer.pid_for(chip)] == "chip-x"

    def test_pid_zero_is_never_allocated(self):
        class Obj:
            pass

        objs = [Obj() for _ in range(4)]  # kept alive: id() must not recycle
        pids = [tracer.pid_for(obj) for obj in objs]
        assert 0 not in pids
        assert pids == sorted(set(pids)) and len(set(pids)) == 4

    def test_thread_names(self):
        tracer.set_thread_name(0, 1, "dispatch")
        assert tracer.thread_names[(0, 1)] == "dispatch"


class TestViews:
    def test_spans_filters_by_category(self):
        tracer.enable()
        tracer.complete("a", "pod", 0.0, 1.0)
        tracer.complete("b", "device", 0.0, 1.0)
        tracer.instant("c", "pod", 0.0)
        assert [e.name for e in tracer.spans()] == ["a", "b"]
        assert [e.name for e in tracer.spans("pod")] == ["a"]

    def test_by_category_counts_every_phase(self):
        tracer.enable()
        tracer.complete("a", "pod", 0.0, 1.0)
        tracer.flow("f", "serve", (0.0, 0, 0), (1.0, 0, 1))
        assert tracer.by_category() == {"pod": 1, "serve": 2}

    def test_event_is_frozen(self):
        event = TraceEvent(ph="X", name="a", category="c", ts=0.0, dur=1.0)
        with pytest.raises(AttributeError):
            event.ts = 2.0

    def test_fresh_tracer_is_independent(self):
        mine = Tracer()
        mine.enable()
        mine.complete("a", "c", 0.0, 1.0)
        assert len(mine) == 1
        assert len(tracer) == 0
