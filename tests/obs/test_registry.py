"""Metrics registry + the counters every layer now exposes through it.

Satellite coverage: the registry mechanics (register/snapshot/reset,
weak sources dropping with their owners), FFT plan-cache hit/miss
counters, the kernel-spectrum cache's registry surface, the serving
layer's weak self-registration, controller decision logs, admission
shed counters and per-key batcher dispatch counts.
"""

import gc

import numpy as np
import pytest

from repro.fft.fft import clear_fft_plan_cache, fft_plan_cache_info, rfft
from repro.fft.spectra import (
    clear_kernel_spectrum_cache,
    kernel_spectrum,
    kernel_spectrum_cache_info,
)
from repro.obs.registry import (
    MetricsRegistry,
    default_registry,
    metrics_snapshot,
    register_metrics_source,
    reset_metrics,
    unregister_metrics_source,
)
from repro.core.backend import TpuBackend, make_tpu_chip
from repro.serve import (
    AdmissionController,
    BatchController,
    ExplanationService,
    bursty_requests,
)
from repro.serve.admission import AdmissionController as Admission
from repro.serve.batcher import BatchKey, MicroBatcher, QueuedRequest
from repro.serve.controller import ControllerDecision
from repro.serve.workload import Request

PLANE = (16, 16)
BLOCK = (4, 4)


class TestRegistryMechanics:
    def test_register_snapshot_reset(self):
        registry = MetricsRegistry()
        counts = {"a": 1}
        registry.register(
            "src", lambda: dict(counts), reset=lambda: counts.update(a=0)
        )
        assert registry.snapshot() == {"src": {"a": 1}}
        registry.reset()
        assert registry.snapshot() == {"src": {"a": 0}}

    def test_unregister(self):
        registry = MetricsRegistry()
        registry.register("src", lambda: {})
        registry.unregister("src")
        assert registry.snapshot() == {}

    def test_weak_source_drops_with_its_owner(self):
        class Owner:
            def counters(self):
                return {"n": 1}

        registry = MetricsRegistry()
        owner = Owner()
        registry.register("owner", owner.counters, weak=True)
        assert registry.snapshot() == {"owner": {"n": 1}}
        del owner
        gc.collect()
        assert registry.snapshot() == {}

    def test_default_registry_serves_module_helpers(self):
        marker = {"hits": 7}
        register_metrics_source("test-source", lambda: dict(marker))
        try:
            assert metrics_snapshot()["test-source"] == {"hits": 7}
            assert default_registry().snapshot()["test-source"] == {"hits": 7}
        finally:
            unregister_metrics_source("test-source")
        assert "test-source" not in metrics_snapshot()


class TestFftPlanCounters:
    def setup_method(self):
        clear_fft_plan_cache()

    def teardown_method(self):
        clear_fft_plan_cache()

    def test_rfft_counts_misses_then_hits(self):
        x = np.random.default_rng(0).standard_normal(16)
        rfft(x)
        info = fft_plan_cache_info()
        assert info["rfft_plan_misses"] == 1
        assert info["rfft_plan_hits"] == 0
        rfft(x)
        info = fft_plan_cache_info()
        assert info["rfft_plan_misses"] == 1
        assert info["rfft_plan_hits"] == 1
        assert info["twiddle_plan_hits"] >= 1
        assert info["bit_reversal_hits"] >= 1

    def test_workspace_counters(self):
        x = np.random.default_rng(1).standard_normal(16)
        rfft(x)
        before = fft_plan_cache_info()["radix2_workspace_misses"]
        rfft(x)
        info = fft_plan_cache_info()
        assert info["radix2_workspace_misses"] == before
        assert info["radix2_workspace_hits"] >= 1

    def test_clear_resets_counters(self):
        rfft(np.random.default_rng(2).standard_normal(16))
        clear_fft_plan_cache()
        info = fft_plan_cache_info()
        for key, value in info.items():
            if key.endswith(("_hits", "_misses")):
                assert value == 0, key

    def test_registered_in_default_registry(self):
        snapshot = metrics_snapshot()
        assert "fft_plans" in snapshot
        assert "rfft_plan_hits" in snapshot["fft_plans"]
        assert "kernel_spectra" in snapshot

    def test_reset_metrics_clears_fft_counters(self):
        rfft(np.random.default_rng(3).standard_normal(16))
        assert metrics_snapshot()["fft_plans"]["rfft_plan_misses"] == 1
        reset_metrics()
        assert metrics_snapshot()["fft_plans"]["rfft_plan_misses"] == 0


class TestSpectrumCacheCounters:
    def setup_method(self):
        clear_kernel_spectrum_cache()

    def teardown_method(self):
        clear_kernel_spectrum_cache()

    def test_hit_and_miss_counters_exposed(self):
        kernel = np.random.default_rng(0).standard_normal(PLANE)
        kernel_spectrum(kernel, real=True)
        kernel_spectrum(kernel, real=True)
        info = kernel_spectrum_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        plans = fft_plan_cache_info()
        assert plans["kernel_spectrum_hits"] == 1
        assert plans["kernel_spectrum_misses"] == 1
        assert plans["kernel_transforms"] == 1


class TestServeCounters:
    def make_service(self, **kwargs):
        config = dict(
            granularity="blocks", block_shape=BLOCK,
            max_wait_seconds=0.05, max_batch_pairs=32,
            admission=AdmissionController(max_queue_depth=64),
            controller=BatchController(target_p95_seconds=0.05),
        )
        config.update(kwargs)
        return ExplanationService(
            TpuBackend(make_tpu_chip(num_cores=8)), **config
        )

    def run_trace(self, service, count=36):
        return service.process(
            bursty_requests(
                count=count, burst_size=12, burst_gap=0.2, seed=3,
                shape=PLANE, repeat_fraction=0.3,
            )
        )

    def test_weak_registration_and_lifecycle_counters(self):
        service = self.make_service(metrics_name="serve-test")
        try:
            report = self.run_trace(service)
            counters = metrics_snapshot()["serve-test"]
            assert counters["requests"] == 36
            assert counters["completed"] == report.completed_count
            assert counters["dispatches"] >= 1
            assert counters["admitted"] == 36
            assert any(k.startswith("dispatches[") for k in counters)
        finally:
            unregister_metrics_source("serve-test")

    def test_weak_source_vanishes_with_the_service(self):
        service = self.make_service(metrics_name="serve-gone")
        assert "serve-gone" in metrics_snapshot()
        del service
        gc.collect()
        assert "serve-gone" not in metrics_snapshot()

    def test_reset_metrics_counters(self):
        service = self.make_service(metrics_name=None)
        self.run_trace(service)
        assert service.metrics_counters()["requests"] == 36
        service.reset_metrics_counters()
        counters = service.metrics_counters()
        assert counters["requests"] == 0
        assert not any(k.startswith("dispatches[") for k in counters)

    def test_controller_decision_log(self):
        service = self.make_service()
        # Bursts wider than the controller's base cap (16): full
        # dispatches guarantee at least the cap-doubling decision.
        service.process(
            bursty_requests(
                count=60, burst_size=20, burst_gap=0.2, seed=3,
                shape=PLANE, repeat_fraction=0.3,
            )
        )
        log = service.controller.decision_log
        assert log, "bursty trace should move at least one knob"
        for decision in log:
            assert isinstance(decision, ControllerDecision)
            assert decision.reasons
            assert decision.dominant in ("queue", "window", "service")
            assert decision.time > 0.0
            if "full_cap_double" in decision.reasons:
                assert decision.new_cap > decision.old_cap

    def test_decision_log_never_changes_the_policy_trajectory(self):
        first = self.run_trace(self.make_service(), count=48)
        second = self.run_trace(self.make_service(), count=48)
        assert first.signature() == second.signature()


class TestAdmissionCounters:
    def test_admit_and_shed_totals(self):
        admission = Admission(max_queue_depth=2, max_queued_bytes=10_000)
        assert admission.admit(100, 0, 0).admitted
        assert admission.admit(100, 1, 100).admitted
        assert not admission.admit(100, 2, 200).admitted  # depth
        assert not admission.admit(20_000, 1, 100).admitted  # bytes
        assert admission.admitted == 2
        assert admission.shed == 2
        assert admission.sheds_by_reason == {
            "queue_depth": 1, "queued_bytes": 1,
        }

    def test_per_key_bounds_counted_separately(self):
        admission = Admission(
            max_queue_depth_per_key=1, max_queued_bytes_per_key=100
        )
        assert admission.admit(10, 0, 0, key_depth=0, key_bytes=0).admitted
        assert not admission.admit(10, 5, 50, key_depth=1).admitted
        assert not admission.admit(200, 0, 0, key_bytes=0).admitted
        assert admission.sheds_by_reason == {
            "key_depth": 1, "key_bytes": 1,
        }


class TestBatcherDispatchCounts:
    def test_pop_counts_nonempty_dispatches_per_key(self):
        batcher = MicroBatcher(max_wait_seconds=0.0, max_batch_pairs=2)
        key = BatchKey("blocks", BLOCK, None)
        x = np.zeros(PLANE)
        for i in range(3):
            batcher.enqueue(key, QueuedRequest(
                request=Request(
                    request_id=i, arrival_time=0.0, x=x, y=x,
                ),
                enqueue_time=0.0, feed_nbytes=0, plan=None, digest=None,
            ))
        assert len(batcher.pop(key)) == 2
        assert len(batcher.pop(key)) == 1
        assert batcher.pop(key) == []  # empty pop: not a dispatch
        assert batcher.dispatch_counts == {key: 2}
