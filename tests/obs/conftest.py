"""Shared fixtures for the observability suite.

The tracer is a process-wide singleton; every test here must start
from a clean, disabled tracer and leave one behind, or span state from
one test leaks into the next (and into suites that never asked for
tracing).
"""

import pytest

from repro.obs.tracer import tracer


@pytest.fixture(autouse=True)
def clean_tracer():
    tracer.disable()
    tracer.clear()
    yield tracer
    tracer.disable()
    tracer.clear()
