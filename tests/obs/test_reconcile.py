"""The acceptance invariant: span trees == pod ledger, exactly.

Every traced pod commit's spans must reproduce the ledger's elapsed
decomposition (max-over-chips body, launch floor, collective rows,
overlap credits) with ``==`` on floats, across every chip count and
placement axis.  And switching tracing off must be a bit-identical
no-op: same scores, same ``DeviceStats`` rows, same serve signature.
"""

import numpy as np
import pytest

from repro.core import FleetExecutor, TpuBackend, make_tpu_chip, make_tpu_pod
from repro.obs.reconcile import assert_reconciles, reconcile_pod_trace
from repro.obs.tracer import tracer
from repro.serve import (
    AdmissionController,
    BatchController,
    ExplanationService,
    bursty_requests,
)

PLANE = (16, 16)
BLOCK = (4, 4)


def fleet_pairs(count=12, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal(PLANE), rng.standard_normal(PLANE))
        for _ in range(count)
    ]


def run_fleet(num_chips, placement, traced, pipelined=True, seed=0):
    # A real pod even at num_chips=1 (FleetExecutor's num_chips knob
    # keeps the single-device path there), so every chip count in the
    # matrix exercises the pod commit ledger.
    pod = make_tpu_pod(num_chips, num_cores=8)
    executor = FleetExecutor(
        pod, granularity="blocks", block_shape=BLOCK,
        placement=placement, max_pairs_per_wave=4,
    )
    if traced:
        tracer.enable()
    run = executor.run(fleet_pairs(seed=seed), pipelined=pipelined)
    tracer.disable()
    return run, pod


def stats_tuple(stats):
    return (
        stats.seconds,
        stats.macs,
        stats.bytes_moved,
        dict(stats.op_counts),
        dict(stats.op_seconds),
    )


class TestPodReconciliation:
    @pytest.mark.parametrize("placement", ["data", "chunk", "wave"])
    @pytest.mark.parametrize("num_chips", [1, 2, 4, 8])
    def test_span_tree_equals_ledger(self, num_chips, placement):
        run, pod = run_fleet(num_chips, placement, traced=True)
        report = assert_reconciles(pod, tracer)
        assert report.num_commits == report.num_traced_commits > 0
        assert report.num_waves == len(pod.collective_log)
        assert report.checks > 0

    @pytest.mark.parametrize("pipelined", [True, False])
    def test_serial_and_pipelined_both_reconcile(self, pipelined):
        run, pod = run_fleet(2, "data", traced=True, pipelined=pipelined)
        assert assert_reconciles(pod, tracer).ok

    def test_credit_flows_match_committed_credits(self):
        run, pod = run_fleet(4, "data", traced=True)
        credited = {
            op for commit in pod.commit_log for op, _ in commit.credits
        }
        flow_starts = {
            e.name for e in tracer.events
            if e.ph == "s" and e.category == "pod"
        }
        assert flow_starts == credited

    def test_untraced_commits_are_skipped_not_failed(self):
        pod = make_tpu_pod(2, num_cores=8)
        executor = FleetExecutor(
            pod, granularity="blocks", block_shape=BLOCK,
            placement="data", max_pairs_per_wave=4,
        )
        executor.run(fleet_pairs(count=4))  # untraced commit(s)
        tracer.enable()
        executor.run(fleet_pairs(count=4, seed=1))
        tracer.disable()
        report = reconcile_pod_trace(pod, tracer)
        assert report.ok
        assert report.num_traced_commits < report.num_commits

    def test_detects_a_tampered_span(self):
        run, pod = run_fleet(2, "data", traced=True)
        victim = next(
            i for i, e in enumerate(tracer.events)
            if e.category == "pod" and e.ph == "X" and e.name == "wave"
        )
        import dataclasses

        tracer.events[victim] = dataclasses.replace(
            tracer.events[victim], dur=tracer.events[victim].dur + 1e-9
        )
        report = reconcile_pod_trace(pod, tracer)
        assert not report.ok
        with pytest.raises(AssertionError):
            assert_reconciles(pod, tracer)


class TestTracingOffBitIdentity:
    @pytest.mark.parametrize("placement", ["data", "chunk", "wave"])
    def test_fleet_scores_and_ledger_identical(self, placement):
        on_run, on_pod = run_fleet(2, placement, traced=True)
        on_stats = stats_tuple(on_pod.stats)
        tracer.clear()
        off_run, off_pod = run_fleet(2, placement, traced=False)
        assert on_stats == stats_tuple(off_pod.stats)
        for a, b in zip(on_run.results, off_run.results):
            assert np.array_equal(a.scores, b.scores)
            assert np.array_equal(a.kernel, b.kernel)
            assert a.residual == b.residual

    def test_serve_signature_identical_and_reconciles(self):
        def run(traced):
            service = ExplanationService(
                TpuBackend(make_tpu_chip(num_cores=8)),
                granularity="blocks", block_shape=BLOCK,
                max_wait_seconds=0.05, max_batch_pairs=32,
                admission=AdmissionController(max_queue_depth=64),
                controller=BatchController(target_p95_seconds=0.05),
                num_chips=2, metrics_name=None,
            )
            trace = bursty_requests(
                count=36, burst_size=12, burst_gap=0.2, seed=3,
                shape=PLANE, repeat_fraction=0.3,
            )
            if traced:
                tracer.enable()
            report = service.process(trace)
            tracer.disable()
            return report, service

        on, service = run(True)
        recon = reconcile_pod_trace(service.device, tracer, stats=on.stats)
        assert recon.ok, recon.failures[:5]
        tracer.clear()
        off, _ = run(False)
        assert on.signature() == off.signature()
