"""Post-training quantization of whole models."""

import numpy as np
import pytest

from repro.nn import (
    ActivationQuantizer,
    Dense,
    ReLU,
    Sequential,
    quantize_model_weights,
    quantized_accuracy,
    weight_quantization_error,
)


def make_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(4, 16, rng=rng), ReLU(), Dense(16, 2, rng=rng)])


def blobs(count=80, seed=0):
    rng = np.random.default_rng(seed)
    half = count // 2
    x0 = rng.standard_normal((half, 4)) + 2.0
    x1 = rng.standard_normal((half, 4)) - 2.0
    return np.vstack([x0, x1]), np.array([0] * half + [1] * half)


class TestWeightQuantization:
    def test_in_place_and_restorable(self):
        model = make_model()
        original = model.state_dict()
        saved = quantize_model_weights(model)
        changed = any(
            not np.array_equal(p, o) for p, o in zip(model.parameters(), original)
        )
        assert changed
        model.load_state_dict(saved)
        for parameter, orig in zip(model.parameters(), original):
            np.testing.assert_array_equal(parameter, orig)

    def test_error_shrinks_with_bits(self):
        err8 = weight_quantization_error(make_model(), bits=8)
        err16 = weight_quantization_error(make_model(), bits=16)
        assert err16 < err8
        assert err8 > 0

    def test_quantized_weights_are_on_grid(self):
        model = make_model()
        quantize_model_weights(model, bits=8)
        from repro.hw import dequantize, quantize

        for parameter in model.parameters():
            again = dequantize(quantize(parameter, bits=8))
            np.testing.assert_allclose(parameter, again, atol=1e-12)


class TestActivationQuantizer:
    def test_close_to_float_forward(self):
        model = make_model()
        x = np.random.default_rng(1).standard_normal((5, 4))
        exact = model.forward(x, training=False)
        approx = ActivationQuantizer(model, bits=8)(x)
        assert np.max(np.abs(exact - approx)) < 0.25 * np.max(np.abs(exact)) + 0.1

    def test_higher_bits_closer(self):
        model = make_model()
        x = np.random.default_rng(2).standard_normal((5, 4))
        exact = model.forward(x, training=False)
        err8 = np.max(np.abs(exact - ActivationQuantizer(model, 8)(x)))
        err16 = np.max(np.abs(exact - ActivationQuantizer(model, 16)(x)))
        assert err16 < err8

    def test_training_mode_rejected(self):
        with pytest.raises(ValueError):
            ActivationQuantizer(make_model()).forward(np.ones((1, 4)), training=True)

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            ActivationQuantizer(make_model(), bits=1)


class TestQuantizedAccuracy:
    def train_model(self):
        from repro.nn import SGD, Trainer

        model = make_model(seed=3)
        x, y = blobs()
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05), batch_size=16)
        trainer.fit(x, y, epochs=15)
        return model, x, y

    def test_accuracy_close_to_float(self):
        model, x, y = self.train_model()
        from repro.nn import accuracy

        float_score = accuracy(model.forward(x, training=False), y)
        quant_score = quantized_accuracy(model, x, y, bits=8)
        assert abs(float_score - quant_score) < 0.1
        assert quant_score > 0.85

    def test_weights_restored_after_evaluation(self):
        model, x, y = self.train_model()
        before = model.state_dict()
        quantized_accuracy(model, x, y, bits=8, quantize_activations=True)
        for parameter, saved in zip(model.parameters(), before):
            np.testing.assert_array_equal(parameter, saved)

    def test_activation_quantization_path(self):
        model, x, y = self.train_model()
        score = quantized_accuracy(model, x, y, bits=8, quantize_activations=True)
        assert score > 0.8

    def test_empty_model_error(self):
        with pytest.raises(ValueError):
            weight_quantization_error(Sequential([ReLU()]))
