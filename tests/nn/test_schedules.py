"""Learning-rate schedules and trainer integration."""

import numpy as np
import pytest

from repro.nn import (
    CosineDecay,
    Dense,
    SGD,
    Schedule,
    Sequential,
    StepDecay,
    Trainer,
    WarmupWrapper,
)


class TestConstant:
    def test_constant_rate(self):
        schedule = Schedule(0.1)
        assert schedule.lr(0) == 0.1
        assert schedule.lr(100) == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            Schedule(0.0)
        with pytest.raises(ValueError):
            Schedule(0.1).lr(-1)


class TestStepDecay:
    def test_drops_at_intervals(self):
        schedule = StepDecay(1.0, step_epochs=10, gamma=0.1)
        assert schedule.lr(0) == pytest.approx(1.0)
        assert schedule.lr(9) == pytest.approx(1.0)
        assert schedule.lr(10) == pytest.approx(0.1)
        assert schedule.lr(25) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepDecay(1.0, step_epochs=0)
        with pytest.raises(ValueError):
            StepDecay(1.0, step_epochs=5, gamma=0.0)


class TestCosineDecay:
    def test_endpoints(self):
        schedule = CosineDecay(1.0, total_epochs=10, min_lr=0.1)
        assert schedule.lr(0) == pytest.approx(1.0)
        assert schedule.lr(10) == pytest.approx(0.1)
        assert schedule.lr(999) == pytest.approx(0.1)  # clamps past the end

    def test_midpoint(self):
        schedule = CosineDecay(1.0, total_epochs=10, min_lr=0.0)
        assert schedule.lr(5) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        schedule = CosineDecay(1.0, total_epochs=20)
        rates = [schedule.lr(e) for e in range(21)]
        assert rates == sorted(rates, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineDecay(1.0, total_epochs=0)
        with pytest.raises(ValueError):
            CosineDecay(1.0, total_epochs=10, min_lr=2.0)


class TestWarmup:
    def test_linear_ramp_then_inner(self):
        schedule = WarmupWrapper(Schedule(1.0), warmup_epochs=4)
        assert schedule.lr(0) == pytest.approx(0.25)
        assert schedule.lr(1) == pytest.approx(0.5)
        assert schedule.lr(3) == pytest.approx(1.0)
        assert schedule.lr(10) == pytest.approx(1.0)

    def test_zero_warmup_is_transparent(self):
        inner = StepDecay(1.0, step_epochs=2, gamma=0.5)
        schedule = WarmupWrapper(inner, warmup_epochs=0)
        for epoch in range(6):
            assert schedule.lr(epoch) == inner.lr(epoch)

    def test_validation(self):
        with pytest.raises(ValueError):
            WarmupWrapper(Schedule(1.0), warmup_epochs=-1)


class TestTrainerIntegration:
    def test_trainer_applies_schedule(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((32, 2))
        y = (x[:, 0] > 0).astype(int)
        model = Sequential([Dense(2, 2, rng=rng)])
        optimizer = SGD(model.parameters(), lr=1.0)
        trainer = Trainer(model, optimizer, batch_size=8)
        schedule = StepDecay(0.5, step_epochs=1, gamma=0.1)
        trainer.fit(x, y, epochs=3, schedule=schedule)
        # After the last epoch (epoch index 2) the rate is 0.5 * 0.1^2.
        assert optimizer.lr == pytest.approx(0.005)
