"""Model containers, VGG/ResNet builders, and the FLOP census."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    ReLU,
    ResidualBlock,
    Sequential,
    build_resnet,
    build_vgg,
    conv_bn_relu,
    model_census,
    resnet50,
    resnet_scaled,
    vgg19,
    vgg19_scaled,
)


class TestSequential:
    def test_forward_backward_chain(self):
        rng = np.random.default_rng(0)
        model = Sequential([Dense(4, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)])
        x = rng.standard_normal((3, 4))
        out = model.forward(x, training=True)
        assert out.shape == (3, 2)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_parameter_count(self):
        model = Sequential([Dense(4, 8), Dense(8, 2)])
        assert model.parameter_count() == (4 * 8 + 8) + (8 * 2 + 2)

    def test_state_dict_round_trip(self):
        rng = np.random.default_rng(1)
        model = Sequential([Dense(4, 4, rng=rng)])
        saved = model.state_dict()
        model.parameters()[0][...] = 0.0
        model.load_state_dict(saved)
        np.testing.assert_array_equal(model.parameters()[0], saved[0])

    def test_load_state_dict_validation(self):
        model = Sequential([Dense(4, 4)])
        with pytest.raises(ValueError):
            model.load_state_dict([])
        with pytest.raises(ValueError):
            model.load_state_dict([np.zeros((2, 2)), np.zeros(4)])

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])


class TestResidualBlock:
    def test_identity_skip_forward(self):
        rng = np.random.default_rng(2)
        main = Sequential(conv_bn_relu(4, 4, rng=rng))
        block = ResidualBlock(main)
        x = rng.standard_normal((2, 4, 8, 8))
        out = block.forward(x, training=True)
        assert out.shape == x.shape
        assert np.all(out >= 0)  # trailing ReLU

    def test_projection_adapts_shape(self):
        rng = np.random.default_rng(3)
        main = Sequential(
            conv_bn_relu(4, 8, kernel_size=3, stride=2, padding=1, rng=rng, relu=False)
        )
        projection = Sequential(
            conv_bn_relu(4, 8, kernel_size=1, stride=2, padding=0, rng=rng, relu=False)
        )
        block = ResidualBlock(main, projection)
        out = block.forward(rng.standard_normal((1, 4, 8, 8)), training=True)
        assert out.shape == (1, 8, 4, 4)

    def test_backward_shape(self):
        rng = np.random.default_rng(4)
        block = ResidualBlock(Sequential(conv_bn_relu(2, 2, rng=rng)))
        x = rng.standard_normal((1, 2, 4, 4))
        out = block.forward(x, training=True)
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_gradient_flows_through_both_branches(self):
        """The skip path must contribute gradient -- perturbing the input
        along the skip direction changes the output even if main is dead."""
        rng = np.random.default_rng(5)
        main = Sequential(conv_bn_relu(2, 2, rng=rng, relu=False))
        # Zero the main branch entirely.
        for p in main.parameters():
            p[...] = 0.0
        block = ResidualBlock(main)
        x = np.abs(rng.standard_normal((1, 2, 4, 4))) + 0.1
        out = block.forward(x, training=True)
        grad = block.backward(np.ones_like(out))
        assert np.abs(grad).sum() > 0

    def test_shape_mismatch_raises(self):
        rng = np.random.default_rng(6)
        main = Sequential(conv_bn_relu(2, 4, rng=rng))  # changes channels
        block = ResidualBlock(main)  # no projection: mismatch
        with pytest.raises(ValueError):
            block.forward(rng.standard_normal((1, 2, 4, 4)))


class TestBuilders:
    def test_scaled_vgg_forward_shape(self):
        model = vgg19_scaled(num_classes=10)
        out = model.forward(np.random.default_rng(7).standard_normal((2, 3, 32, 32)))
        assert out.shape == (2, 10)

    def test_scaled_resnet_forward_shape(self):
        model = resnet_scaled(num_classes=2, in_channels=1)
        out = model.forward(np.random.default_rng(8).standard_normal((2, 1, 32, 32)))
        assert out.shape == (2, 2)

    def test_full_vgg19_has_sixteen_conv_layers(self):
        from repro.nn import Conv2d

        model = vgg19()
        conv_count = sum(1 for layer in model.layers if isinstance(layer, Conv2d))
        assert conv_count == 16

    def test_full_vgg19_parameter_count_order(self):
        # VGG19 with a compact CIFAR head is ~20-22M conv parameters.
        assert 15e6 < vgg19().parameter_count() < 30e6

    def test_full_resnet50_block_structure(self):
        model = resnet50()
        blocks = [layer for layer in model.layers if isinstance(layer, ResidualBlock)]
        assert len(blocks) == 16  # 3 + 4 + 6 + 3

    def test_full_resnet50_parameter_count_order(self):
        assert 15e6 < resnet50().parameter_count() < 35e6

    def test_width_mult_scales_parameters(self):
        full = vgg19().parameter_count()
        half = vgg19(width_mult=0.5).parameter_count()
        assert half < full / 3  # parameters scale ~quadratically in width

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            build_vgg([64, "M"], input_size=15)  # not divisible by 2
        with pytest.raises(ValueError):
            build_vgg([64], width_mult=0.0)
        with pytest.raises(ValueError):
            build_resnet(blocks=())
        with pytest.raises(ValueError):
            build_resnet(blocks=(1, -1))


class TestCensus:
    def test_vgg_census_macs_match_known_scale(self):
        """Full VGG19 at 32x32 is ~400M MACs per forward pass."""
        census = model_census(vgg19(), (3, 32, 32), name="vgg19")
        assert 300e6 < census.forward_macs < 500e6

    def test_resnet50_census_scale(self):
        census = model_census(resnet50(), (3, 32, 32), name="resnet50")
        assert 50e6 < census.forward_macs < 500e6

    def test_census_counts_every_conv(self):
        census = model_census(vgg19(), (3, 32, 32))
        conv_shapes = [s for s in census.matmuls if s.label.startswith("conv")]
        assert len(conv_shapes) == 16

    def test_training_macs_multiplier(self):
        census = model_census(vgg19_scaled(), (3, 32, 32))
        assert census.training_macs(2.0) == 3 * census.forward_macs

    def test_first_conv_shape_explicit(self):
        census = model_census(vgg19(), (3, 32, 32))
        first = census.matmuls[0]
        assert (first.m, first.k, first.n) == (32 * 32, 3 * 9, 64)

    def test_census_parameter_count_matches_model(self):
        model = vgg19_scaled()
        census = model_census(model, (3, 32, 32))
        assert census.parameter_count == model.parameter_count()

    def test_residual_census_includes_projection(self):
        model = resnet_scaled(in_channels=1)
        census = model_census(model, (1, 32, 32))
        assert census.forward_macs > 0
        assert census.elementwise_elements > 0

    def test_non_square_input_rejected(self):
        with pytest.raises(ValueError):
            model_census(vgg19_scaled(), (3, 32, 16))
