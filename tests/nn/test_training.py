"""Losses, optimizers, and end-to-end learning on small problems."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Dense,
    ReLU,
    SGD,
    Sequential,
    Trainer,
    accuracy,
    cross_entropy,
    minibatches,
    mse,
    softmax,
)


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.standard_normal((5, 7)) * 10)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-12)

    def test_softmax_stability_with_huge_logits(self):
        probs = softmax(np.array([[1000.0, 1000.0]]))
        np.testing.assert_allclose(probs, [[0.5, 0.5]])

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad = cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        np.testing.assert_allclose(grad, 0.0, atol=1e-6)

    def test_cross_entropy_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((3, 4))
        labels = np.array([0, 2, 3])
        _, grad = cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                bumped = logits.copy()
                bumped[i, j] += eps
                plus, _ = cross_entropy(bumped, labels)
                bumped[i, j] -= 2 * eps
                minus, _ = cross_entropy(bumped, labels)
                numeric = (plus - minus) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-5)

    def test_label_smoothing_raises_loss_floor(self):
        logits = np.array([[50.0, 0.0]])
        labels = np.array([0])
        plain, _ = cross_entropy(logits, labels)
        smoothed, _ = cross_entropy(logits, labels, label_smoothing=0.2)
        assert smoothed > plain

    def test_mse(self):
        loss, grad = mse(np.array([1.0, 2.0]), np.array([0.0, 2.0]))
        assert loss == pytest.approx(0.5)
        np.testing.assert_allclose(grad, [1.0, 0.0])

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(np.ones((2, 3)), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(np.ones((2, 3)), np.array([0, 5]))
        with pytest.raises(ValueError):
            cross_entropy(np.ones((2, 3)), np.array([0, 1]), label_smoothing=1.0)
        with pytest.raises(ValueError):
            mse(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            accuracy(np.ones(3), np.ones(3))


class TestOptimizers:
    def quadratic_setup(self):
        # Minimize ||p - target||^2.
        param = np.array([5.0, -3.0])
        target = np.array([1.0, 2.0])
        return param, target

    def test_sgd_converges_on_quadratic(self):
        param, target = self.quadratic_setup()
        optimizer = SGD([param], lr=0.1, momentum=0.5)
        for _ in range(200):
            optimizer.step([2.0 * (param - target)])
        np.testing.assert_allclose(param, target, atol=1e-4)

    def test_adam_converges_on_quadratic(self):
        param, target = self.quadratic_setup()
        optimizer = Adam([param], lr=0.1)
        for _ in range(500):
            optimizer.step([2.0 * (param - target)])
        np.testing.assert_allclose(param, target, atol=1e-3)

    def test_momentum_accelerates(self):
        param_plain, target = self.quadratic_setup()
        param_momentum = param_plain.copy()
        plain = SGD([param_plain], lr=0.01, momentum=0.0)
        momentum = SGD([param_momentum], lr=0.01, momentum=0.9)
        for _ in range(50):
            plain.step([2.0 * (param_plain - target)])
            momentum.step([2.0 * (param_momentum - target)])
        assert np.linalg.norm(param_momentum - target) < np.linalg.norm(
            param_plain - target
        )

    def test_weight_decay_shrinks_parameters(self):
        param = np.array([10.0])
        optimizer = SGD([param], lr=0.1, momentum=0.0, weight_decay=0.5)
        optimizer.step([np.zeros(1)])
        assert param[0] < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([np.ones(2)], lr=0.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            Adam([np.ones(2)], lr=0.1, beta1=1.0)
        optimizer = SGD([np.ones(2)], lr=0.1)
        with pytest.raises(ValueError):
            optimizer.step([])


class TestMinibatches:
    def test_covers_dataset(self):
        x = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        seen = []
        for bx, _ in minibatches(x, y, batch_size=3):
            seen.extend(bx.reshape(-1).tolist())
        assert sorted(seen) == list(range(10))

    def test_shuffling_changes_order(self):
        x = np.arange(32).reshape(32, 1)
        y = np.arange(32)
        first_batch, _ = next(minibatches(x, y, 32, rng=np.random.default_rng(0)))
        assert not np.array_equal(first_batch.reshape(-1), np.arange(32))

    def test_validation(self):
        with pytest.raises(ValueError):
            list(minibatches(np.ones((3, 1)), np.ones(4), 2))
        with pytest.raises(ValueError):
            list(minibatches(np.ones((3, 1)), np.ones(3), 0))


class TestTrainer:
    def make_blobs(self, count=120, seed=0):
        """Two linearly separable Gaussian blobs."""
        rng = np.random.default_rng(seed)
        half = count // 2
        x0 = rng.standard_normal((half, 2)) + np.array([2.0, 2.0])
        x1 = rng.standard_normal((half, 2)) + np.array([-2.0, -2.0])
        x = np.vstack([x0, x1])
        y = np.array([0] * half + [1] * half)
        return x, y

    def test_learns_separable_problem(self):
        x, y = self.make_blobs()
        model = Sequential(
            [Dense(2, 16, rng=np.random.default_rng(1)), ReLU(), Dense(16, 2)]
        )
        trainer = Trainer(model, SGD(model.parameters(), lr=0.05), batch_size=16)
        history = trainer.fit(x, y, epochs=20, test_inputs=x, test_labels=y)
        assert history.final_test_accuracy > 0.95
        assert history.epochs[0].train_loss > history.epochs[-1].train_loss

    def test_history_bookkeeping(self):
        x, y = self.make_blobs(count=40)
        model = Sequential([Dense(2, 2)])
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01), batch_size=8)
        history = trainer.fit(x, y, epochs=3)
        assert len(history.epochs) == 3
        assert history.final_test_accuracy is None
        assert history.best_test_accuracy is None

    def test_evaluate_without_training(self):
        x, y = self.make_blobs(count=20)
        model = Sequential([Dense(2, 2)])
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01))
        score = trainer.evaluate(x, y)
        assert 0.0 <= score <= 1.0

    def test_invalid_epochs(self):
        model = Sequential([Dense(2, 2)])
        trainer = Trainer(model, SGD(model.parameters(), lr=0.01))
        with pytest.raises(ValueError):
            trainer.fit(np.ones((4, 2)), np.zeros(4, dtype=int), epochs=0)
