"""Layer forward/backward correctness, including numeric gradient checks."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2d,
    ReLU,
)


def numeric_gradient(fn, x, eps=1e-5):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestConv2d:
    def test_forward_matches_direct_convolution(self):
        rng = np.random.default_rng(0)
        conv = Conv2d(2, 3, kernel_size=3, stride=1, padding=1, rng=rng)
        x = rng.standard_normal((2, 2, 5, 5))
        out = conv.forward(x)
        assert out.shape == (2, 3, 5, 5)
        # Check one output element against the definition: output (i, j)
        # covers padded rows i:i+3 and cols j:j+3 at stride 1.
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.sum(padded[0, :, 2:5, 3:6] * conv.weights[1]) + conv.bias[1]
        assert out[0, 1, 2, 3] == pytest.approx(expected)

    def test_stride_and_padding_shapes(self):
        rng = np.random.default_rng(1)
        conv = Conv2d(1, 4, kernel_size=3, stride=2, padding=1, rng=rng)
        out = conv.forward(rng.standard_normal((1, 1, 8, 8)))
        assert out.shape == (1, 4, 4, 4)
        conv1x1 = Conv2d(4, 2, kernel_size=1, stride=1, padding=0, rng=rng)
        assert conv1x1.forward(out).shape == (1, 2, 4, 4)

    def test_input_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        conv = Conv2d(1, 2, kernel_size=3, stride=1, padding=1, rng=rng)
        x = rng.standard_normal((1, 1, 4, 4))

        def loss(x_in):
            return float(np.sum(conv.forward(x_in, training=True) ** 2))

        conv.forward(x, training=True)
        analytic = conv.backward(2.0 * conv.forward(x, training=True))
        numeric = numeric_gradient(loss, x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_weight_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        conv = Conv2d(1, 1, kernel_size=3, stride=1, padding=1, rng=rng)
        x = rng.standard_normal((1, 1, 4, 4))

        def loss(weights):
            conv.weights = weights
            return float(np.sum(conv.forward(x, training=True) ** 2))

        out = conv.forward(x, training=True)
        conv.backward(2.0 * out)
        analytic = conv.grad_weights.copy()
        numeric = numeric_gradient(loss, conv.weights.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Conv2d(0, 1)
        with pytest.raises(ValueError):
            Conv2d(1, 1, stride=0)
        conv = Conv2d(2, 2)
        with pytest.raises(ValueError):
            conv.forward(np.ones((1, 3, 4, 4)))  # wrong channels
        with pytest.raises(RuntimeError):
            Conv2d(1, 1).backward(np.ones((1, 1, 4, 4)))


class TestDense:
    def test_forward(self):
        rng = np.random.default_rng(4)
        dense = Dense(3, 2, rng=rng)
        x = rng.standard_normal((5, 3))
        np.testing.assert_allclose(
            dense.forward(x), x @ dense.weights + dense.bias, atol=1e-12
        )

    def test_gradients_match_numeric(self):
        rng = np.random.default_rng(5)
        dense = Dense(4, 3, rng=rng)
        x = rng.standard_normal((2, 4))

        def loss_x(x_in):
            return float(np.sum(dense.forward(x_in, training=True) ** 2))

        out = dense.forward(x, training=True)
        analytic_x = dense.backward(2.0 * out)
        np.testing.assert_allclose(
            analytic_x, numeric_gradient(loss_x, x.copy()), atol=1e-5
        )
        np.testing.assert_allclose(
            dense.grad_weights,
            numeric_gradient(
                lambda w: float(
                    np.sum((x @ w + dense.bias) ** 2)
                ),
                dense.weights.copy(),
            ),
            atol=1e-5,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            Dense(0, 2)
        dense = Dense(3, 2)
        with pytest.raises(ValueError):
            dense.forward(np.ones((2, 4)))


class TestActivationsAndPools:
    def test_relu(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0], [0.0, -3.0]])
        np.testing.assert_array_equal(
            relu.forward(x, training=True), [[0.0, 2.0], [0.0, 0.0]]
        )
        grad = relu.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, [[0.0, 1.0], [0.0, 0.0]])

    def test_maxpool_forward(self):
        pool = MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = pool.forward(x, training=True)
        np.testing.assert_array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_maxpool_backward_routes_to_argmax(self):
        pool = MaxPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        pool.forward(x, training=True)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad[0, 0, 1, 1] == 1.0  # position of 5
        assert grad.sum() == 4.0

    def test_maxpool_tie_breaking_single_route(self):
        pool = MaxPool2d(2)
        x = np.zeros((1, 1, 2, 2))  # all equal: gradient must not duplicate
        pool.forward(x, training=True)
        grad = pool.backward(np.ones((1, 1, 1, 1)))
        assert grad.sum() == 1.0

    def test_maxpool_requires_tiling(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).forward(np.ones((1, 1, 5, 5)))

    def test_global_avg_pool_round_trip(self):
        gap = GlobalAvgPool()
        x = np.arange(8.0).reshape(1, 2, 2, 2)
        out = gap.forward(x, training=True)
        np.testing.assert_allclose(out, [[1.5, 5.5]])
        grad = gap.backward(np.ones((1, 2)))
        np.testing.assert_allclose(grad, np.full((1, 2, 2, 2), 0.25))

    def test_flatten_round_trip(self):
        flatten = Flatten()
        x = np.arange(12.0).reshape(1, 3, 2, 2)
        out = flatten.forward(x, training=True)
        assert out.shape == (1, 12)
        assert flatten.backward(out).shape == x.shape


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        rng = np.random.default_rng(6)
        bn = BatchNorm2d(3)
        x = rng.standard_normal((8, 3, 4, 4)) * 5 + 2
        out = bn.forward(x, training=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_inference_uses_running_stats(self):
        rng = np.random.default_rng(7)
        bn = BatchNorm2d(2, momentum=0.0)  # running stats = last batch
        x = rng.standard_normal((16, 2, 4, 4))
        bn.forward(x, training=True)
        out = bn.forward(x, training=False)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=0.05)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(8)
        bn = BatchNorm2d(1)
        x = rng.standard_normal((3, 1, 2, 2))

        def loss(x_in):
            return float(np.sum(bn.forward(x_in, training=True) ** 3))

        out = bn.forward(x, training=True)
        analytic = bn.backward(3.0 * out**2)
        numeric = numeric_gradient(loss, x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchNorm2d(0)
        with pytest.raises(ValueError):
            BatchNorm2d(2, momentum=1.0)
        with pytest.raises(ValueError):
            BatchNorm2d(2).forward(np.ones((1, 3, 2, 2)))


class TestDropout:
    def test_inference_is_identity(self):
        dropout = Dropout(0.5)
        x = np.ones((4, 4))
        np.testing.assert_array_equal(dropout.forward(x, training=False), x)

    def test_training_preserves_expectation(self):
        dropout = Dropout(0.5, rng=np.random.default_rng(9))
        x = np.ones((200, 200))
        out = dropout.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_applies_same_mask(self):
        dropout = Dropout(0.5, rng=np.random.default_rng(10))
        x = np.ones((8, 8))
        out = dropout.forward(x, training=True)
        grad = dropout.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
