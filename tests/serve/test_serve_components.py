"""Unit tests for the serving-layer components (clock, workload, cache,
admission, batcher) -- the pieces the event loop composes."""

import numpy as np
import pytest

from repro.core.fleet import PairResult
from repro.serve import (
    AdmissionController,
    BatchKey,
    ExplanationCache,
    MicroBatcher,
    QueuedRequest,
    Request,
    SimulatedClock,
    bursty_requests,
    explanation_digest,
    poisson_requests,
    result_nbytes,
)


class TestSimulatedClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimulatedClock()
        assert clock.now == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.advance_to(3.0) == 3.0

    def test_never_moves_backwards(self):
        clock = SimulatedClock(start=2.0)
        assert clock.advance_to(1.0) == 2.0  # the past is a no-op
        assert clock.now == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedClock(start=-1.0)
        with pytest.raises(ValueError):
            SimulatedClock().advance(-0.1)


class TestWorkloads:
    def test_poisson_trace_is_deterministic(self):
        a = poisson_requests(20, rate=100.0, seed=7)
        b = poisson_requests(20, rate=100.0, seed=7)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.x, rb.x)
            np.testing.assert_array_equal(ra.y, rb.y)

    def test_different_seeds_differ(self):
        a = poisson_requests(20, rate=100.0, seed=7)
        b = poisson_requests(20, rate=100.0, seed=8)
        assert [r.arrival_time for r in a] != [r.arrival_time for r in b]

    def test_arrivals_are_sorted_and_positive(self):
        trace = poisson_requests(50, rate=500.0, seed=1)
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(t > 0 for t in arrivals)

    def test_repeat_fraction_repeats_exact_arrays(self):
        trace = poisson_requests(40, rate=100.0, seed=3, repeat_fraction=0.5)
        digests = [
            explanation_digest(
                r.x, r.y, granularity="blocks", block_shape=(4, 4),
                precision_name=None, eps=1e-8, reduction="l2", fill_value=0.0,
            )
            for r in trace
        ]
        assert len(set(digests)) < len(digests)  # genuine byte-level repeats

    def test_bursty_arrival_times(self):
        trace = bursty_requests(6, burst_size=3, burst_gap=2.0, seed=0)
        assert [r.arrival_time for r in trace] == [0.0, 0.0, 0.0, 2.0, 2.0, 2.0]

    def test_precisions_draw_from_the_given_modes(self):
        trace = poisson_requests(
            30, rate=100.0, seed=5, precisions=("fp64", "int8")
        )
        names = {r.precision for r in trace}
        assert names == {"fp64", "int8"}

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_requests(10, rate=0.0)
        with pytest.raises(ValueError):
            poisson_requests(-1, rate=1.0)
        with pytest.raises(ValueError):
            bursty_requests(10, burst_size=0, burst_gap=1.0)
        with pytest.raises(ValueError):
            poisson_requests(10, rate=1.0, precisions=())
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_time=-1.0, x=np.ones((2, 2)), y=np.ones((2, 2)))
        assert poisson_requests(0, rate=1.0) == []


def _result(seed=0, shape=(4, 4)):
    rng = np.random.default_rng(seed)
    return PairResult(
        kernel=rng.standard_normal(shape),
        scores=rng.standard_normal(shape),
        residual=float(rng.standard_normal()),
    )


class TestExplanationCache:
    def test_roundtrip_returns_the_exact_stored_result(self):
        cache = ExplanationCache(max_bytes=1 << 20)
        result = _result()
        assert cache.put("k", result)
        hit = cache.get("k")
        assert hit is result  # the very arrays: bit-identity by construction
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = ExplanationCache()
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_digest_sensitivity(self):
        x = np.ones((4, 4))
        y = np.ones((4, 4))
        base = dict(
            granularity="blocks", block_shape=(2, 2), precision_name=None,
            eps=1e-6, reduction="l2", fill_value=0.0,
        )
        reference = explanation_digest(x, y, **base)
        # Byte-equal inputs under the same config collide.
        assert explanation_digest(x.copy(), y.copy(), **base) == reference
        # One flipped bit, or any config change, lands elsewhere.
        flipped = x.copy()
        flipped[0, 0] += 1e-12
        assert explanation_digest(flipped, y, **base) != reference
        assert (
            explanation_digest(x, y, **{**base, "precision_name": "int8"})
            != reference
        )
        assert (
            explanation_digest(x, y, **{**base, "fill_value": 1.0})
            != reference
        )
        # The embedding strategy lifts vector outputs differently, so
        # services sharing one cache with different embeddings must not
        # collide on the same planes.
        assert (
            explanation_digest(x, y, **base, embedding_strategy="tile")
            != explanation_digest(x, y, **base, embedding_strategy="spatial")
        )

    def test_cached_arrays_are_frozen_read_only(self):
        """A client mutating its response must fail loudly instead of
        silently poisoning every later hit for that digest."""
        cache = ExplanationCache()
        result = _result()
        cache.put("k", result)
        hit = cache.get("k")
        with pytest.raises(ValueError):
            hit.scores[0, 0] = 0.0
        with pytest.raises(ValueError):
            hit.kernel[0, 0] = 0.0

    def test_lru_eviction_under_byte_budget(self):
        entry = _result()
        budget = 3 * result_nbytes(entry)
        cache = ExplanationCache(max_bytes=budget)
        for name in ("a", "b", "c"):
            cache.put(name, _result())
        cache.get("a")  # refresh: "b" becomes the least recently used
        cache.put("d", _result())
        assert "b" not in cache
        assert all(name in cache for name in ("a", "c", "d"))
        assert cache.evictions == 1
        assert cache.current_bytes <= budget

    def test_oversize_entry_is_not_cached(self):
        entry = _result()
        cache = ExplanationCache(max_bytes=result_nbytes(entry) - 1)
        assert not cache.put("big", entry)
        assert "big" not in cache

    def test_validation(self):
        with pytest.raises(ValueError):
            ExplanationCache(max_bytes=0)


class TestAdmissionController:
    def test_default_admits_everything(self):
        decision = AdmissionController().admit(10**9, 10**6, 10**12)
        assert decision.admitted

    def test_queue_depth_limit(self):
        controller = AdmissionController(max_queue_depth=4)
        assert controller.admit(100, queue_depth=3, queued_bytes=0).admitted
        rejected = controller.admit(100, queue_depth=4, queued_bytes=0)
        assert not rejected.admitted
        assert "depth" in rejected.reason

    def test_byte_budget_limit(self):
        controller = AdmissionController(max_queued_bytes=1000)
        assert controller.admit(400, queue_depth=0, queued_bytes=600).admitted
        rejected = controller.admit(401, queue_depth=0, queued_bytes=600)
        assert not rejected.admitted
        assert "byte" in rejected.reason

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queued_bytes=0)


def _queued(request_id, enqueue_time, nbytes=100):
    request = Request(
        request_id=request_id, arrival_time=enqueue_time,
        x=np.ones((4, 4)), y=np.ones((4, 4)),
    )
    return QueuedRequest(
        request=request, enqueue_time=enqueue_time,
        feed_nbytes=nbytes, plan=None, digest=None,
    )


KEY = BatchKey(granularity="columns", block_shape=None, precision=None)


class TestMicroBatcher:
    def test_deadline_tracks_the_oldest_request(self):
        batcher = MicroBatcher(max_wait_seconds=0.5, max_batch_pairs=8)
        assert batcher.next_deadline() == float("inf")
        batcher.enqueue(KEY, _queued(0, enqueue_time=1.0))
        batcher.enqueue(KEY, _queued(1, enqueue_time=2.0))
        assert batcher.next_deadline() == 1.5

    def test_ripe_on_full_or_due(self):
        batcher = MicroBatcher(max_wait_seconds=0.5, max_batch_pairs=2)
        batcher.enqueue(KEY, _queued(0, enqueue_time=0.0))
        assert batcher.ripe_keys(0.4) == []
        assert batcher.ripe_keys(0.5) == [KEY]  # due
        batcher.enqueue(KEY, _queued(1, enqueue_time=0.1))
        assert batcher.ripe_keys(0.2) == [KEY]  # full

    def test_pop_caps_the_batch_and_keeps_the_remainder(self):
        batcher = MicroBatcher(max_wait_seconds=0.5, max_batch_pairs=2)
        for i in range(5):
            batcher.enqueue(KEY, _queued(i, enqueue_time=float(i)))
        batch = batcher.pop(KEY)
        assert [q.request.request_id for q in batch] == [0, 1]
        assert batcher.pending_count == 3
        assert batcher.next_deadline() == 2.5  # the remainder's oldest

    def test_pending_bytes(self):
        batcher = MicroBatcher()
        batcher.enqueue(KEY, _queued(0, 0.0, nbytes=300))
        batcher.enqueue(KEY, _queued(1, 0.0, nbytes=200))
        assert batcher.pending_bytes == 500
        assert batcher.pending_count == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_seconds=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_pairs=0)
