"""Unit tests for the serving-layer components (clock, workload, cache,
admission, batcher) -- the pieces the event loop composes."""

import numpy as np
import pytest

from repro.core.fleet import PairResult
from repro.serve import (
    AdmissionController,
    BatchKey,
    ExplanationCache,
    MicroBatcher,
    QueuedRequest,
    Request,
    SimulatedClock,
    SpeculativeWarmer,
    bursty_requests,
    explanation_digest,
    merge_traces,
    poisson_requests,
    result_nbytes,
)


class TestSimulatedClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimulatedClock()
        assert clock.now == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.advance_to(3.0) == 3.0

    def test_never_moves_backwards(self):
        clock = SimulatedClock(start=2.0)
        assert clock.advance_to(1.0) == 2.0  # the past is a no-op
        assert clock.now == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedClock(start=-1.0)
        with pytest.raises(ValueError):
            SimulatedClock().advance(-0.1)


class TestWorkloads:
    def test_poisson_trace_is_deterministic(self):
        a = poisson_requests(20, rate=100.0, seed=7)
        b = poisson_requests(20, rate=100.0, seed=7)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.x, rb.x)
            np.testing.assert_array_equal(ra.y, rb.y)

    def test_different_seeds_differ(self):
        a = poisson_requests(20, rate=100.0, seed=7)
        b = poisson_requests(20, rate=100.0, seed=8)
        assert [r.arrival_time for r in a] != [r.arrival_time for r in b]

    def test_arrivals_are_sorted_and_positive(self):
        trace = poisson_requests(50, rate=500.0, seed=1)
        arrivals = [r.arrival_time for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(t > 0 for t in arrivals)

    def test_repeat_fraction_repeats_exact_arrays(self):
        trace = poisson_requests(40, rate=100.0, seed=3, repeat_fraction=0.5)
        digests = [
            explanation_digest(
                r.x, r.y, granularity="blocks", block_shape=(4, 4),
                precision_name=None, eps=1e-8, reduction="l2", fill_value=0.0,
            )
            for r in trace
        ]
        assert len(set(digests)) < len(digests)  # genuine byte-level repeats

    def test_bursty_arrival_times(self):
        trace = bursty_requests(6, burst_size=3, burst_gap=2.0, seed=0)
        assert [r.arrival_time for r in trace] == [0.0, 0.0, 0.0, 2.0, 2.0, 2.0]

    def test_precisions_draw_from_the_given_modes(self):
        trace = poisson_requests(
            30, rate=100.0, seed=5, precisions=("fp64", "int8")
        )
        names = {r.precision for r in trace}
        assert names == {"fp64", "int8"}

    def test_zero_jitter_is_bit_identical_to_the_unjittered_trace(self):
        plain = bursty_requests(9, burst_size=3, burst_gap=1.0, seed=6)
        zero = bursty_requests(9, burst_size=3, burst_gap=1.0, seed=6, jitter=0.0)
        assert [r.arrival_time for r in plain] == [r.arrival_time for r in zero]
        for a, b in zip(plain, zero):
            np.testing.assert_array_equal(a.x, b.x)
            np.testing.assert_array_equal(a.y, b.y)

    def test_jitter_smears_bursts_within_the_window_deterministically(self):
        a = bursty_requests(9, burst_size=3, burst_gap=1.0, seed=6, jitter=0.2)
        b = bursty_requests(9, burst_size=3, burst_gap=1.0, seed=6, jitter=0.2)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
        arrivals = [r.arrival_time for r in a]
        assert arrivals == sorted(arrivals)
        assert len(set(arrivals)) == len(arrivals)  # no longer simultaneous
        # Each arrival sits within [burst instant, burst instant + jitter).
        for arrival in arrivals:
            assert arrival % 1.0 < 0.2

    def test_merge_traces_interleaves_and_renumbers(self):
        first = bursty_requests(4, burst_size=2, burst_gap=1.0, seed=1)
        second = poisson_requests(4, rate=2.0, seed=2, granularity="rows")
        merged = merge_traces(first, second)
        assert len(merged) == 8
        arrivals = [r.arrival_time for r in merged]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in merged] == list(range(8))
        # Per-request overrides ride along untouched.
        assert sum(r.granularity == "rows" for r in merged) == 4

    def test_merge_traces_breaks_ties_by_trace_order(self):
        first = bursty_requests(2, burst_size=2, burst_gap=1.0, seed=1)
        second = bursty_requests(
            2, burst_size=2, burst_gap=1.0, seed=2, granularity="rows"
        )
        merged = merge_traces(first, second)
        assert [r.granularity for r in merged] == [None, None, "rows", "rows"]

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_requests(10, rate=0.0)
        with pytest.raises(ValueError):
            poisson_requests(-1, rate=1.0)
        with pytest.raises(ValueError):
            bursty_requests(10, burst_size=0, burst_gap=1.0)
        with pytest.raises(ValueError):
            bursty_requests(10, burst_size=2, burst_gap=1.0, jitter=-0.1)
        with pytest.raises(ValueError):
            poisson_requests(10, rate=1.0, precisions=())
        with pytest.raises(ValueError):
            Request(request_id=0, arrival_time=-1.0, x=np.ones((2, 2)), y=np.ones((2, 2)))
        assert poisson_requests(0, rate=1.0) == []
        assert merge_traces() == []


def _result(seed=0, shape=(4, 4)):
    rng = np.random.default_rng(seed)
    return PairResult(
        kernel=rng.standard_normal(shape),
        scores=rng.standard_normal(shape),
        residual=float(rng.standard_normal()),
    )


class TestExplanationCache:
    def test_roundtrip_returns_the_exact_stored_result(self):
        cache = ExplanationCache(max_bytes=1 << 20)
        result = _result()
        assert cache.put("k", result)
        hit = cache.get("k")
        assert hit is result  # the very arrays: bit-identity by construction
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = ExplanationCache()
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_digest_sensitivity(self):
        x = np.ones((4, 4))
        y = np.ones((4, 4))
        base = dict(
            granularity="blocks", block_shape=(2, 2), precision_name=None,
            eps=1e-6, reduction="l2", fill_value=0.0,
        )
        reference = explanation_digest(x, y, **base)
        # Byte-equal inputs under the same config collide.
        assert explanation_digest(x.copy(), y.copy(), **base) == reference
        # One flipped bit, or any config change, lands elsewhere.
        flipped = x.copy()
        flipped[0, 0] += 1e-12
        assert explanation_digest(flipped, y, **base) != reference
        assert (
            explanation_digest(x, y, **{**base, "precision_name": "int8"})
            != reference
        )
        assert (
            explanation_digest(x, y, **{**base, "fill_value": 1.0})
            != reference
        )
        # The embedding strategy lifts vector outputs differently, so
        # services sharing one cache with different embeddings must not
        # collide on the same planes.
        assert (
            explanation_digest(x, y, **base, embedding_strategy="tile")
            != explanation_digest(x, y, **base, embedding_strategy="spatial")
        )

    def test_cached_arrays_are_frozen_read_only(self):
        """A client mutating its response must fail loudly instead of
        silently poisoning every later hit for that digest."""
        cache = ExplanationCache()
        result = _result()
        cache.put("k", result)
        hit = cache.get("k")
        with pytest.raises(ValueError):
            hit.scores[0, 0] = 0.0
        with pytest.raises(ValueError):
            hit.kernel[0, 0] = 0.0

    def test_lru_eviction_under_byte_budget(self):
        entry = _result()
        budget = 3 * result_nbytes(entry)
        cache = ExplanationCache(max_bytes=budget)
        for name in ("a", "b", "c"):
            cache.put(name, _result())
        cache.get("a")  # refresh: "b" becomes the least recently used
        cache.put("d", _result())
        assert "b" not in cache
        assert all(name in cache for name in ("a", "c", "d"))
        assert cache.evictions == 1
        assert cache.current_bytes <= budget

    def test_oversize_entry_is_not_cached(self):
        entry = _result()
        cache = ExplanationCache(max_bytes=result_nbytes(entry) - 1)
        assert not cache.put("big", entry)
        assert "big" not in cache

    def test_validation(self):
        with pytest.raises(ValueError):
            ExplanationCache(max_bytes=0)


class TestAdmissionController:
    def test_default_admits_everything(self):
        decision = AdmissionController().admit(10**9, 10**6, 10**12)
        assert decision.admitted

    def test_queue_depth_limit(self):
        controller = AdmissionController(max_queue_depth=4)
        assert controller.admit(100, queue_depth=3, queued_bytes=0).admitted
        rejected = controller.admit(100, queue_depth=4, queued_bytes=0)
        assert not rejected.admitted
        assert "depth" in rejected.reason

    def test_byte_budget_limit(self):
        controller = AdmissionController(max_queued_bytes=1000)
        assert controller.admit(400, queue_depth=0, queued_bytes=600).admitted
        rejected = controller.admit(401, queue_depth=0, queued_bytes=600)
        assert not rejected.admitted
        assert "byte" in rejected.reason

    def test_per_key_depth_budget(self):
        controller = AdmissionController(max_queue_depth_per_key=2)
        assert controller.admit(
            100, queue_depth=50, queued_bytes=0, key_depth=1
        ).admitted
        rejected = controller.admit(
            100, queue_depth=50, queued_bytes=0, key_depth=2
        )
        assert not rejected.admitted
        assert "per-key" in rejected.reason and "depth" in rejected.reason

    def test_per_key_byte_budget(self):
        controller = AdmissionController(max_queued_bytes_per_key=1000)
        assert controller.admit(
            400, queue_depth=0, queued_bytes=10**9, key_bytes=600
        ).admitted
        rejected = controller.admit(
            401, queue_depth=0, queued_bytes=0, key_bytes=600
        )
        assert not rejected.admitted
        assert "per-key" in rejected.reason and "byte" in rejected.reason

    def test_global_and_per_key_budgets_compose(self):
        controller = AdmissionController(
            max_queue_depth=10, max_queue_depth_per_key=2
        )
        # Global bound trips first when the whole host is full...
        assert not controller.admit(
            0, queue_depth=10, queued_bytes=0, key_depth=0
        ).admitted
        # ...and the per-key bound trips even with global headroom.
        assert not controller.admit(
            0, queue_depth=5, queued_bytes=0, key_depth=2
        ).admitted
        assert controller.admit(
            0, queue_depth=5, queued_bytes=0, key_depth=1
        ).admitted

    def test_omitted_key_pressure_disarms_the_per_key_bounds(self):
        controller = AdmissionController(max_queue_depth_per_key=1)
        assert controller.admit(100, queue_depth=50, queued_bytes=0).admitted

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queued_bytes=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth_per_key=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queued_bytes_per_key=-1)


def _queued(request_id, enqueue_time, nbytes=100):
    request = Request(
        request_id=request_id, arrival_time=enqueue_time,
        x=np.ones((4, 4)), y=np.ones((4, 4)),
    )
    return QueuedRequest(
        request=request, enqueue_time=enqueue_time,
        feed_nbytes=nbytes, plan=None, digest=None,
    )


KEY = BatchKey(granularity="columns", block_shape=None, precision=None)


class TestMicroBatcher:
    def test_deadline_tracks_the_oldest_request(self):
        batcher = MicroBatcher(max_wait_seconds=0.5, max_batch_pairs=8)
        assert batcher.next_deadline() == float("inf")
        batcher.enqueue(KEY, _queued(0, enqueue_time=1.0))
        batcher.enqueue(KEY, _queued(1, enqueue_time=2.0))
        assert batcher.next_deadline() == 1.5

    def test_ripe_on_full_or_due(self):
        batcher = MicroBatcher(max_wait_seconds=0.5, max_batch_pairs=2)
        batcher.enqueue(KEY, _queued(0, enqueue_time=0.0))
        assert batcher.ripe_keys(0.4) == []
        assert batcher.ripe_keys(0.5) == [KEY]  # due
        batcher.enqueue(KEY, _queued(1, enqueue_time=0.1))
        assert batcher.ripe_keys(0.2) == [KEY]  # full

    def test_pop_caps_the_batch_and_keeps_the_remainder(self):
        batcher = MicroBatcher(max_wait_seconds=0.5, max_batch_pairs=2)
        for i in range(5):
            batcher.enqueue(KEY, _queued(i, enqueue_time=float(i)))
        batch = batcher.pop(KEY)
        assert [q.request.request_id for q in batch] == [0, 1]
        assert batcher.pending_count == 3
        assert batcher.next_deadline() == 2.5  # the remainder's oldest

    def test_pending_bytes(self):
        batcher = MicroBatcher()
        batcher.enqueue(KEY, _queued(0, 0.0, nbytes=300))
        batcher.enqueue(KEY, _queued(1, 0.0, nbytes=200))
        assert batcher.pending_bytes == 500
        assert batcher.pending_count == 2

    def test_zero_max_wait_is_due_immediately(self):
        """max_wait_seconds=0: every enqueued request is ripe the moment
        it lands -- the per-request serial policy."""
        batcher = MicroBatcher(max_wait_seconds=0.0, max_batch_pairs=8)
        batcher.enqueue(KEY, _queued(0, enqueue_time=1.0))
        assert batcher.next_deadline() == 1.0
        assert batcher.ripe_keys(1.0) == [KEY]

    def test_max_batch_pairs_one_pops_single_requests_in_order(self):
        batcher = MicroBatcher(max_wait_seconds=0.5, max_batch_pairs=1)
        for i in range(3):
            batcher.enqueue(KEY, _queued(i, enqueue_time=float(i)))
        assert batcher.ripe_keys(0.0) == [KEY]  # full at a single request
        popped = []
        while batcher.pending_count:
            batch = batcher.pop(KEY)
            assert len(batch) == 1
            popped.append(batch[0].request.request_id)
        assert popped == [0, 1, 2]

    def test_drain_keys_lists_every_non_empty_queue(self):
        """The trace-exhausted flush path: drain_keys surfaces pending
        keys even when none is full or due yet."""
        other = BatchKey(granularity="rows", block_shape=None, precision=None)
        batcher = MicroBatcher(max_wait_seconds=10.0, max_batch_pairs=64)
        batcher.enqueue(KEY, _queued(0, enqueue_time=0.0))
        batcher.enqueue(other, _queued(1, enqueue_time=0.0))
        assert batcher.ripe_keys(0.1) == []  # neither full nor due
        assert set(batcher.drain_keys()) == {KEY, other}
        batcher.pop(KEY)
        assert batcher.drain_keys() == [other]
        batcher.pop(other)
        assert batcher.drain_keys() == []

    def test_mixed_key_interleaving_never_co_batches(self):
        """Requests enqueued alternately under two keys pop as two pure
        single-key batches -- keys never share a dispatch."""
        other = BatchKey(granularity="rows", block_shape=None, precision=None)
        batcher = MicroBatcher(max_wait_seconds=0.5, max_batch_pairs=8)
        for i in range(6):
            batcher.enqueue(KEY if i % 2 == 0 else other, _queued(i, 0.0))
        for key, expected in ((KEY, [0, 2, 4]), (other, [1, 3, 5])):
            batch = batcher.pop(key)
            assert [q.request.request_id for q in batch] == expected
        assert batcher.pending_count == 0

    def test_per_key_pressure_views(self):
        other = BatchKey(granularity="rows", block_shape=None, precision=None)
        batcher = MicroBatcher()
        batcher.enqueue(KEY, _queued(0, 0.0, nbytes=300))
        batcher.enqueue(KEY, _queued(1, 0.0, nbytes=200))
        batcher.enqueue(other, _queued(2, 0.0, nbytes=50))
        assert batcher.pending_count_for(KEY) == 2
        assert batcher.pending_bytes_for(KEY) == 500
        assert batcher.pending_count_for(other) == 1
        assert batcher.pending_bytes_for(other) == 50
        missing = BatchKey(granularity="elements", block_shape=None, precision=None)
        assert batcher.pending_count_for(missing) == 0
        assert batcher.pending_bytes_for(missing) == 0

    def test_fifo_dispatch_orders_by_first_seen(self):
        other = BatchKey(granularity="rows", block_shape=None, precision=None)
        batcher = MicroBatcher(max_wait_seconds=0.0, dispatch_policy="fifo")
        batcher.enqueue(KEY, _queued(0, 0.0))
        batcher.enqueue(other, _queued(1, 0.0))
        assert batcher.ripe_keys(0.0) == [KEY, other]
        # The hot first-seen key keeps the head no matter how much it
        # has already been served.
        batcher.pop(KEY)
        batcher.enqueue(KEY, _queued(2, 0.0))
        assert batcher.ripe_keys(0.0) == [KEY, other]

    def test_fair_dispatch_yields_to_the_least_served_key(self):
        other = BatchKey(granularity="rows", block_shape=None, precision=None)
        batcher = MicroBatcher(max_wait_seconds=0.0, dispatch_policy="fair")
        batcher.enqueue(KEY, _queued(0, 0.0))
        batcher.enqueue(other, _queued(1, 0.0))
        assert batcher.ripe_keys(0.0) == [KEY, other]  # credit tie: first seen
        batcher.pop(KEY)  # KEY accrues served credit
        batcher.enqueue(KEY, _queued(2, 0.0))
        assert batcher.ripe_keys(0.0) == [other, KEY]  # starved key first

    def test_fair_dispatch_weights_scale_served_credit(self):
        other = BatchKey(granularity="rows", block_shape=None, precision=None)
        batcher = MicroBatcher(
            max_wait_seconds=0.0, dispatch_policy="fair",
            weights={KEY: 4.0},
        )
        for i in range(4):
            batcher.enqueue(KEY, _queued(i, 0.0))
        batcher.pop(KEY)  # 4 pairs / weight 4 = 1 credit
        batcher.enqueue(other, _queued(4, 0.0))
        batcher.pop(other)  # 1 pair / weight 1 = 1 credit
        batcher.enqueue(KEY, _queued(5, 0.0))
        batcher.enqueue(other, _queued(6, 0.0))
        # Equal credit: first-seen breaks the tie, so the weighted hot
        # key dispatches first despite having served 4x the pairs.
        assert batcher.ripe_keys(0.0) == [KEY, other]

    def test_weights_accept_key_tuples(self):
        batcher = MicroBatcher(weights={KEY.as_tuple(): 2.0})
        assert batcher.weight_for(KEY) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_seconds=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_pairs=0)
        with pytest.raises(ValueError):
            MicroBatcher(dispatch_policy="random")
        with pytest.raises(ValueError):
            MicroBatcher(weights={KEY: 0.0})


class TestSpeculativeWarmerBookkeeping:
    def _cache_with(self, *digests):
        cache = ExplanationCache(max_bytes=1 << 20)
        for digest in digests:
            cache.put(digest, _result())
        return cache

    def test_one_shot_evictions_are_never_staged(self):
        warmer = SpeculativeWarmer()
        warmer.note_request("d", None, None, KEY, None)
        warmer.note_eviction("d")  # seen once: not worth warming
        assert warmer.staged_count == 0

    def test_recurring_evictions_stage_and_pop_in_eviction_order(self):
        warmer = SpeculativeWarmer()
        for digest in ("a", "b"):
            warmer.note_request(digest, 1, 2, KEY, None)
            warmer.note_request(digest, 1, 2, KEY, None)
        warmer.note_eviction("b")
        warmer.note_eviction("a")
        cache = self._cache_with()
        candidates = warmer.pop_candidates(cache, limit=10)
        assert [c[0] for c in candidates] == ["b", "a"]
        assert candidates[0][1:] == (1, 2, KEY, None)
        # Popped candidates are consumed.
        assert warmer.pop_candidates(cache, limit=10) == []

    def test_pop_skips_digests_the_cache_reacquired(self):
        warmer = SpeculativeWarmer()
        for _ in range(2):
            warmer.note_request("a", 1, 2, KEY, None)
        warmer.note_eviction("a")
        cache = self._cache_with("a")  # refilled by a later miss
        assert warmer.pop_candidates(cache, limit=10) == []

    def test_limit_caps_the_candidates(self):
        warmer = SpeculativeWarmer()
        for digest in ("a", "b", "c"):
            warmer.note_request(digest, 1, 2, KEY, None)
            warmer.note_request(digest, 1, 2, KEY, None)
            warmer.note_eviction(digest)
        cache = self._cache_with()
        assert len(warmer.pop_candidates(cache, limit=2)) == 2
        assert len(warmer.pop_candidates(cache, limit=2)) == 1

    def test_max_tracked_bounds_the_plane_memory(self):
        warmer = SpeculativeWarmer(max_tracked=2)
        for digest in ("a", "b", "c"):  # "a" falls off the tracked LRU
            warmer.note_request(digest, 1, 2, KEY, None)
            warmer.note_request(digest, 1, 2, KEY, None)
        warmer.note_eviction("a")  # planes are gone: cannot stage
        warmer.note_eviction("c")
        cache = self._cache_with()
        assert [c[0] for c in warmer.pop_candidates(cache, 10)] == ["c"]

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeculativeWarmer(max_tracked=0)
        with pytest.raises(ValueError):
            SpeculativeWarmer(min_recurrences=1)


class TestCacheEvictionHook:
    def test_on_evict_fires_with_the_evicted_digest(self):
        entry = _result()
        cache = ExplanationCache(max_bytes=2 * result_nbytes(entry))
        evicted = []
        cache.on_evict = evicted.append
        for name in ("a", "b", "c", "d"):
            cache.put(name, _result())
        assert evicted == ["a", "b"]
