"""Integration contracts of the online explanation service.

The satellite coverage the serving PR promises: determinism (same seed
and trace replay the identical latency ledger), cache hits bit-identical
to cold results with strictly fewer device dispatches, byte-budget
backpressure rejecting over-budget arrivals, and mixed-precision
requests never sharing a wave -- plus the empty/idle-drain guards the
request loop hits constantly.
"""

import numpy as np
import pytest

from repro.core.backend import TpuBackend, make_tpu_chip
from repro.core.parallel import MultiInputScheduler
from repro.core.pipeline import ExplanationPipeline
from repro.hw.cpu import CpuDevice
from repro.serve import (
    AdmissionController,
    ExplanationService,
    bursty_requests,
    poisson_requests,
)

SHAPE = (16, 16)
BLOCK = (4, 4)


def small_backend(num_cores=8):
    return TpuBackend(
        make_tpu_chip(num_cores=num_cores, precision="fp32", mxu_rows=8, mxu_cols=8)
    )


def make_service(device=None, **kwargs):
    config = dict(
        granularity="blocks", block_shape=BLOCK, eps=1e-8,
        max_wait_seconds=0.05, max_batch_pairs=32,
    )
    config.update(kwargs)
    return ExplanationService(device or small_backend(), **config)


def trace(count=40, rate=400.0, seed=0, **kwargs):
    return poisson_requests(count, rate=rate, seed=seed, shape=SHAPE, **kwargs)


class TestDeterminism:
    def test_same_seed_and_trace_replays_the_identical_ledger(self):
        first = make_service().process(trace(seed=3))
        second = make_service().process(trace(seed=3))
        assert first.ledger.signature() == second.ledger.signature()
        assert first.elapsed_seconds == second.elapsed_seconds
        assert first.stats.seconds == second.stats.seconds
        a, b = first.results_by_id(), second.results_by_id()
        assert a.keys() == b.keys()
        for request_id in a:
            np.testing.assert_array_equal(a[request_id].scores, b[request_id].scores)
            np.testing.assert_array_equal(a[request_id].kernel, b[request_id].kernel)
            assert a[request_id].residual == b[request_id].residual

    def test_different_seeds_produce_different_ledgers(self):
        first = make_service().process(trace(seed=3))
        second = make_service().process(trace(seed=4))
        assert first.ledger.signature() != second.ledger.signature()


class TestBitIdentity:
    def test_service_matches_the_offline_pipeline(self):
        """Serving is a scheduling layer, not a numeric one: every
        response equals what the offline wave-fused pipeline computes
        for the same pair."""
        requests = trace(count=30, seed=1)
        served = make_service().process(requests).results_by_id()
        offline = ExplanationPipeline(
            small_backend(), granularity="blocks", block_shape=BLOCK, eps=1e-8
        ).run([(r.x, r.y) for r in requests])
        for request, explanation in zip(requests, offline.explanations):
            result = served[request.request_id]
            np.testing.assert_array_equal(result.scores, explanation.scores)
            np.testing.assert_array_equal(result.kernel, explanation.kernel)
            assert result.residual == explanation.residual

    def test_pipeline_service_constructor_shares_config(self):
        pipeline = ExplanationPipeline(
            small_backend(), granularity="blocks", block_shape=BLOCK,
            eps=1e-8, precision="int8",
        )
        service = pipeline.service(max_wait_seconds=0.01)
        assert service.device is pipeline.device
        assert service.granularity == "blocks"
        assert service.block_shape == BLOCK
        assert service.precision is pipeline.precision
        requests = trace(count=10, seed=2)
        served = service.process(requests).results_by_id()
        offline = pipeline.run([(r.x, r.y) for r in requests])
        for request, explanation in zip(requests, offline.explanations):
            np.testing.assert_array_equal(
                served[request.request_id].scores, explanation.scores
            )


class TestCache:
    def test_warm_replay_is_bit_identical_with_strictly_fewer_dispatches(self):
        service = make_service()
        requests = trace(count=25, seed=5)
        cold = service.process(requests)
        warm = service.process(requests)
        assert cold.num_dispatches > 0
        assert warm.num_dispatches == 0  # strictly fewer device dispatches
        assert warm.cache_hits == len(requests)
        # The warm pass performs no device work at all -- no dispatches,
        # no kernel-spectrum batches, nothing on the ledger.
        assert not warm.stats.op_counts
        assert warm.stats.seconds == 0.0
        cold_results, warm_results = cold.results_by_id(), warm.results_by_id()
        for request_id, result in cold_results.items():
            np.testing.assert_array_equal(
                warm_results[request_id].scores, result.scores
            )
            np.testing.assert_array_equal(
                warm_results[request_id].kernel, result.kernel
            )
            assert warm_results[request_id].residual == result.residual

    def test_repeated_traffic_hits_within_one_trace(self):
        requests = trace(count=60, seed=6, repeat_fraction=0.5)
        cached = make_service().process(requests)
        uncached = make_service(cache_max_bytes=None).process(requests)
        assert cached.cache_hits > 0
        assert uncached.cache_hits == 0
        # Cache hits shed device work relative to the uncached service.
        assert (
            cached.stats.op_counts["dispatch"]
            < uncached.stats.op_counts["dispatch"]
        ) or cached.stats.seconds < uncached.stats.seconds
        a, b = cached.results_by_id(), uncached.results_by_id()
        for request_id in a:
            np.testing.assert_array_equal(a[request_id].scores, b[request_id].scores)

    def test_disabled_cache_never_hits(self):
        service = make_service(cache_max_bytes=None)
        requests = trace(count=10, seed=7, repeat_fraction=0.9)
        report = service.process(requests)
        assert service.cache is None
        assert report.cache_hits == 0


class TestBackpressure:
    def test_byte_budget_rejects_the_overflow_of_a_burst(self):
        pair_bytes = 2 * SHAPE[0] * SHAPE[1] * 8  # fp64 x and y planes
        service = make_service(
            admission=AdmissionController(max_queued_bytes=4 * pair_bytes),
            cache_max_bytes=None,
        )
        burst = bursty_requests(20, burst_size=20, burst_gap=1.0, shape=SHAPE)
        report = service.process(burst)
        assert report.completed_count == 4
        assert report.rejected_count == 16
        assert all("byte" in r.reject_reason for r in report.ledger.rejected)
        # Goodput counts completions only; every request is accounted for.
        assert report.completed_count + report.rejected_count == len(burst)
        assert report.goodput == pytest.approx(4 / report.elapsed_seconds)

    def test_queue_depth_rejects(self):
        service = make_service(
            admission=AdmissionController(max_queue_depth=3),
            cache_max_bytes=None,
        )
        burst = bursty_requests(10, burst_size=10, burst_gap=1.0, shape=SHAPE)
        report = service.process(burst)
        assert report.completed_count == 3
        assert report.rejected_count == 7
        assert all("depth" in r.reject_reason for r in report.ledger.rejected)

    def test_rejections_cost_no_device_time(self):
        service = make_service(
            admission=AdmissionController(max_queue_depth=1),
            cache_max_bytes=None,
        )
        burst = bursty_requests(8, burst_size=8, burst_gap=1.0, shape=SHAPE)
        report = service.process(burst)
        assert report.num_dispatches == 1  # one admitted request, one batch
        assert report.rejected_count == 7

    def test_rejections_never_touch_the_cache(self):
        """Backpressure precedes the cache: a rejected arrival pays no
        digest hashing and cannot skew the hit/miss counters."""
        service = make_service(admission=AdmissionController(max_queue_depth=2))
        burst = bursty_requests(10, burst_size=10, burst_gap=1.0, shape=SHAPE)
        report = service.process(burst)
        assert report.rejected_count == 8
        assert report.cache_hits + report.cache_misses == 2  # admitted only

    def test_shared_cache_across_embeddings_never_cross_serves(self):
        """Two services sharing one cache but lifting vector outputs
        with different embeddings must not answer each other's
        requests: the embedding strategy is part of the digest."""
        from repro.core.transform import OutputEmbedding
        from repro.serve import ExplanationCache, Request

        cache = ExplanationCache()
        rng = np.random.default_rng(0)
        x = rng.standard_normal(SHAPE)
        y = rng.standard_normal(4)  # vector output: the embedding matters
        request = Request(request_id=0, arrival_time=0.0, x=x, y=y)
        results = {}
        for strategy in ("spatial", "tile"):
            service = make_service(
                CpuDevice(), cache=cache,
                embedding=OutputEmbedding(strategy),
            )
            report = service.process([request])
            assert report.cache_hits == 0  # never served from the other's entry
            results[strategy] = report.results_by_id()[0]
        assert not np.array_equal(
            results["spatial"].scores, results["tile"].scores
        )


class TestMixedPrecision:
    def test_mixed_precision_requests_never_share_a_wave(self):
        requests = trace(count=40, seed=8, precisions=("fp64", "int8"))
        report = make_service(cache_max_bytes=None).process(requests)
        by_dispatch: dict[int, set] = {}
        for record in report.ledger.completed:
            by_dispatch.setdefault(record.dispatch_index, set()).add(
                record.batch_key
            )
        assert len(by_dispatch) >= 2  # both precisions actually dispatched
        for keys in by_dispatch.values():
            assert len(keys) == 1  # one batch key -- one precision -- per batch
        seen = {key for keys in by_dispatch.values() for key in keys}
        assert {key[2] for key in seen} == {"fp64", "int8"}

    def test_mixed_granularity_requests_never_share_a_wave(self):
        requests = trace(count=20, seed=9)
        half = [
            r if i % 2 == 0 else type(r)(
                request_id=r.request_id, arrival_time=r.arrival_time,
                x=r.x, y=r.y, granularity="columns",
            )
            for i, r in enumerate(requests)
        ]
        report = make_service(cache_max_bytes=None).process(half)
        for record in report.ledger.completed:
            granularity = record.batch_key[0]
            assert granularity in ("blocks", "columns")
        by_dispatch: dict[int, set] = {}
        for record in report.ledger.completed:
            by_dispatch.setdefault(record.dispatch_index, set()).add(
                record.batch_key[0]
            )
        for granularities in by_dispatch.values():
            assert len(granularities) == 1


class TestIdleAndEmptyPaths:
    def test_empty_trace_is_a_zero_cost_report(self):
        report = make_service().process([])
        assert report.elapsed_seconds == 0.0
        assert report.num_dispatches == 0
        assert report.goodput == 0.0
        assert not report.stats.op_counts
        assert len(report.ledger) == 0

    def test_scheduler_empty_batch_returns_empty_run(self):
        scheduler = MultiInputScheduler(make_tpu_chip(num_cores=4, mxu_rows=8, mxu_cols=8))
        run = scheduler.explain_batch([], granularity="columns")
        assert run.results == ()
        assert run.num_waves == 0
        assert run.stats.seconds == 0.0

    def test_idle_drain_after_traffic_is_free(self):
        """After the trace drains, flushing the known batch keys runs
        FleetExecutor.run([]) -- which must not add cost or records."""
        service = make_service(cache_max_bytes=None)
        first = service.process(trace(count=5, seed=10))
        assert first.completed_count == 5
        empty = service.process([])
        assert empty.elapsed_seconds == 0.0
        assert not empty.stats.op_counts


class TestLatencyAccounting:
    def test_percentiles_are_ordered_and_latencies_nonnegative(self):
        report = make_service().process(trace(count=50, seed=11))
        latencies = report.ledger.latencies()
        assert all(latency >= 0 for latency in latencies)
        assert report.p50 <= report.p95 <= report.p99
        assert report.p99 <= max(latencies)
        assert report.mean_latency > 0

    def test_dispatch_wait_never_exceeds_max_wait(self):
        """The micro-batching policy's latency promise: no admitted
        request waits in queue past max_wait_seconds before its batch
        dispatches (full batches dispatch even sooner)."""
        service = make_service(max_wait_seconds=0.02, cache_max_bytes=None)
        report = service.process(trace(count=40, seed=12, rate=300.0))
        for record in report.ledger.completed:
            wait = record.dispatch_time - record.enqueue_time
            assert 0.0 <= wait <= 0.02 + 1e-12

    def test_bursts_coalesce_into_one_dispatch_each(self):
        requests = bursty_requests(
            30, burst_size=10, burst_gap=1.0, seed=13, shape=SHAPE
        )
        report = make_service(
            max_batch_pairs=16, cache_max_bytes=None
        ).process(requests)
        assert report.completed_count == 30
        assert report.num_dispatches == 3  # one wave train per burst
        assert report.num_waves == 3

    def test_serial_baseline_dispatches_per_request(self):
        requests = trace(count=10, seed=14)
        report = make_service(
            max_wait_seconds=0.0, max_batch_pairs=1, cache_max_bytes=None
        ).process(requests)
        assert report.num_dispatches == 10


class TestRequestValidation:
    def test_unknown_granularity_raises(self):
        requests = trace(count=1, seed=15)
        bad = type(requests[0])(
            request_id=0, arrival_time=0.0, x=requests[0].x, y=requests[0].y,
            granularity="pixels",
        )
        with pytest.raises(ValueError, match="granularity"):
            make_service().process([bad])

    def test_lossy_precision_rejects_elements_granularity(self):
        requests = trace(count=1, seed=16)
        bad = type(requests[0])(
            request_id=0, arrival_time=0.0, x=requests[0].x, y=requests[0].y,
            granularity="elements", precision="int8",
        )
        with pytest.raises(ValueError, match="linearity"):
            make_service().process([bad])

    def test_service_validation(self):
        with pytest.raises(ValueError):
            make_service(granularity="pixels")
        with pytest.raises(ValueError):
            ExplanationService(CpuDevice(), granularity="blocks")
        with pytest.raises(ValueError):
            make_service(reduction="magic")
