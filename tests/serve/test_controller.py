"""The serving autopilot: controller law, SLO sweep, fairness, warming.

The PR-9 tentpole contracts:

* the AIMD :class:`BatchController` law moves each knob for the
  documented reason and no other (unit tests on synthetic records);
* across the bursty arrival-rate sweep the autopilot meets a p95
  target that **every** static ``(max_wait_seconds, max_batch_pairs)``
  setting misses at one rate or more, with goodput no worse than the
  best static at the seeded 400 req/s trace;
* weighted-fair dispatch improves every starved key's p99 against the
  FIFO baseline on a hot-key trace;
* speculative cache warming strictly increases the warm-cache hit
  rate; and
* all of it bit-identically: controller on/off, fair/fifo, warming
  on/off never change a single explanation score -- and identical
  seeded traces replay identical :meth:`ServiceReport.signature`\\ s
  across repeat-fraction and burstiness settings.
"""

import numpy as np
import pytest

from repro.core.backend import TpuBackend, make_tpu_chip
from repro.serve import (
    AdmissionController,
    BatchController,
    ExplanationService,
    Request,
    RequestRecord,
    bursty_requests,
    merge_traces,
    poisson_requests,
)
from repro.serve.cache import result_nbytes

SHAPE = (16, 16)
BLOCK = (4, 4)
TARGET_P95 = 0.09  # seconds: under the ~100ms the default static pays at 400/s
SWEEP_RATES = (100.0, 400.0, 1600.0)


def small_backend(num_cores=8):
    return TpuBackend(
        make_tpu_chip(num_cores=num_cores, precision="fp32", mxu_rows=8, mxu_cols=8)
    )


def make_service(**kwargs):
    config = dict(
        granularity="blocks", block_shape=BLOCK, eps=1e-8,
        cache_max_bytes=None,
    )
    config.update(kwargs)
    return ExplanationService(small_backend(), **config)


def bursty_trace(rate, count=120, seed=7, **kwargs):
    """The seeded bursty sweep trace: 20-request bursts at ``rate`` req/s."""
    return bursty_requests(
        count, burst_size=20, burst_gap=20.0 / rate, seed=seed, shape=SHAPE,
        **kwargs,
    )


def assert_scores_equal(report_a, report_b):
    a, b = report_a.results_by_id(), report_b.results_by_id()
    assert a.keys() == b.keys()
    for request_id in a:
        np.testing.assert_array_equal(a[request_id].scores, b[request_id].scores)
        np.testing.assert_array_equal(a[request_id].kernel, b[request_id].kernel)
        assert a[request_id].residual == b[request_id].residual


# ----------------------------------------------------------------------
# The control law, knob by knob (synthetic records)
# ----------------------------------------------------------------------

KEY = ("blocks", (4, 4), None)


def _records(
    count,
    arrival=0.0,
    enqueues=None,
    dispatch=0.0,
    completion=0.05,
):
    enqueues = enqueues if enqueues is not None else [arrival] * count
    return [
        RequestRecord(
            request_id=i,
            arrival_time=arrival,
            status="completed",
            batch_key=KEY,
            enqueue_time=enqueues[i],
            dispatch_time=dispatch,
            completion_time=completion,
            dispatch_index=0,
        )
        for i in range(count)
    ]


class TestControlLaw:
    def test_fresh_key_gets_the_base_policy(self):
        controller = BatchController(
            base_wait_seconds=0.02, base_batch_pairs=16
        )
        assert controller.policy("any-key") == (0.02, 16)
        assert controller.policies() == {"any-key": (0.02, 16)}

    def test_full_dispatch_doubles_the_cap(self):
        controller = BatchController(
            target_p95_seconds=0.1, base_batch_pairs=4, max_batch_pairs=64
        )
        controller.observe(KEY, _records(4, completion=0.05))
        assert controller.policy(KEY)[1] == 8
        controller.observe(KEY, _records(8, completion=0.05))
        assert controller.policy(KEY)[1] == 16

    def test_cap_doubling_clamps_at_the_maximum(self):
        controller = BatchController(base_batch_pairs=48, max_batch_pairs=64)
        controller.observe(KEY, _records(48, completion=0.05))
        assert controller.policy(KEY)[1] == 64

    def test_service_dominant_overshoot_halves_the_cap(self):
        controller = BatchController(
            target_p95_seconds=0.1, base_batch_pairs=8
        )
        # Non-full batch whose own device time alone blows the SLO.
        controller.observe(KEY, _records(2, dispatch=0.0, completion=0.3))
        assert controller.policy(KEY)[1] == 4

    def test_window_dominant_overshoot_shrinks_the_wait(self):
        controller = BatchController(
            target_p95_seconds=0.1, base_wait_seconds=0.08,
            decrease_factor=0.5,
        )
        # Latency over target, dominated by dispatch - enqueue.
        controller.observe(
            KEY, _records(2, dispatch=0.15, completion=0.16)
        )
        assert controller.policy(KEY)[0] == pytest.approx(0.04)

    def test_queue_dominant_non_full_overshoot_widens_the_wait(self):
        controller = BatchController(
            target_p95_seconds=0.1, base_wait_seconds=0.02,
            base_batch_pairs=8, wait_step_seconds=0.005,
        )
        # Requests queued behind dispatches (enqueue far after arrival)
        # and the batch was not full: coalesce harder.
        controller.observe(
            KEY,
            _records(
                2, arrival=0.0, enqueues=[0.15, 0.15],
                dispatch=0.16, completion=0.2,
            ),
        )
        assert controller.policy(KEY)[0] == pytest.approx(0.025)
        assert controller.policy(KEY)[1] == 8  # cap untouched

    def test_under_target_with_window_spanning_arrivals_widens_the_wait(self):
        controller = BatchController(
            target_p95_seconds=0.1, base_wait_seconds=0.02,
            wait_step_seconds=0.005, headroom=0.7,
        )
        # Comfortably under target and the batch spans >=80% of the
        # window: spend the headroom on width.
        controller.observe(
            KEY,
            _records(2, enqueues=[0.0, 0.018], dispatch=0.02, completion=0.05),
        )
        assert controller.policy(KEY)[0] == pytest.approx(0.025)

    def test_under_target_fully_coalesced_burst_leaves_the_wait_alone(self):
        controller = BatchController(
            target_p95_seconds=0.1, base_wait_seconds=0.02
        )
        # Under target but every enqueue is simultaneous (a closed
        # burst already fully coalesced): a longer wait buys nothing.
        controller.observe(
            KEY, _records(2, enqueues=[0.0, 0.0], dispatch=0.02, completion=0.05)
        )
        assert controller.policy(KEY)[0] == pytest.approx(0.02)

    def test_empty_observation_is_a_no_op(self):
        controller = BatchController()
        controller.observe(KEY, [])
        assert controller.policies() == {}

    def test_keys_are_steered_independently(self):
        controller = BatchController(base_batch_pairs=4)
        controller.observe("hot", _records(4, completion=0.05))
        assert controller.policy("hot")[1] == 8
        assert controller.policy("cold")[1] == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchController(target_p95_seconds=0.0)
        with pytest.raises(ValueError):
            BatchController(min_wait_seconds=0.3, max_wait_seconds=0.2)
        with pytest.raises(ValueError):
            BatchController(min_batch_pairs=8, max_batch_pairs=4)
        with pytest.raises(ValueError):
            BatchController(window=0)
        with pytest.raises(ValueError):
            BatchController(decrease_factor=1.0)
        with pytest.raises(ValueError):
            BatchController(headroom=0.0)


# ----------------------------------------------------------------------
# The autopilot acceptance sweep
# ----------------------------------------------------------------------

STATIC_GRID = {
    "default": dict(max_wait_seconds=0.05, max_batch_pairs=32),
    "tight": dict(max_wait_seconds=0.01, max_batch_pairs=8),
    "serial": dict(max_wait_seconds=0.0, max_batch_pairs=1),
}


class TestAutopilotSweep:
    def _sweep(self):
        """p95/goodput per config per rate, plus the 400 req/s reports."""
        p95s: dict[str, dict[float, float]] = {}
        goodputs: dict[str, dict[float, float]] = {}
        at_400: dict[str, object] = {}
        configs = dict(STATIC_GRID)
        configs["autopilot"] = None
        for name, static in configs.items():
            p95s[name], goodputs[name] = {}, {}
            for rate in SWEEP_RATES:
                if static is None:
                    service = make_service(
                        controller=BatchController(target_p95_seconds=TARGET_P95)
                    )
                else:
                    service = make_service(**static)
                report = service.process(bursty_trace(rate))
                p95s[name][rate] = report.p95
                goodputs[name][rate] = report.goodput
                if rate == 400.0:
                    at_400[name] = report
        return p95s, goodputs, at_400

    def test_autopilot_meets_the_target_every_static_misses_somewhere(self):
        p95s, goodputs, at_400 = self._sweep()
        # The autopilot holds the SLO at every swept rate...
        for rate in SWEEP_RATES:
            assert p95s["autopilot"][rate] <= TARGET_P95, (
                f"autopilot p95 {p95s['autopilot'][rate]:.4f}s at {rate}/s"
            )
        # ...while every static setting (including the best one) misses
        # it at one rate or more: no single static pair covers the sweep.
        for name in STATIC_GRID:
            missed = [r for r in SWEEP_RATES if p95s[name][r] > TARGET_P95]
            assert missed, f"static {name!r} unexpectedly met the SLO everywhere"
        # Goodput at the seeded 400 req/s bursty trace is no worse than
        # any static setting's.
        best_static = max(goodputs[name][400.0] for name in STATIC_GRID)
        assert goodputs["autopilot"][400.0] >= best_static
        # And the autopilot moved only the schedule, never the scores.
        assert_scores_equal(at_400["autopilot"], at_400["default"])

    def test_controller_state_is_consulted_live(self):
        """The batcher reads the controller's policy per decision: after
        a saturating trace the hot key's cap must have grown."""
        controller = BatchController(
            target_p95_seconds=TARGET_P95, base_batch_pairs=16
        )
        make_service(controller=controller).process(bursty_trace(1600.0))
        policies = controller.policies()
        assert policies  # the served key was observed
        (policy,) = policies.values()
        assert policy[1] > 16  # saturation doubled the cap at least once


# ----------------------------------------------------------------------
# Per-key fairness
# ----------------------------------------------------------------------


def hot_key_trace():
    """Aligned bursts: every 100ms, 40 hot blocks requests contend with
    4 rows and 4 columns requests (distinct batch keys)."""
    hot = bursty_requests(160, burst_size=40, burst_gap=0.1, seed=3, shape=SHAPE)
    rows = bursty_requests(
        16, burst_size=4, burst_gap=0.1, seed=4, shape=SHAPE, granularity="rows"
    )
    cols = bursty_requests(
        16, burst_size=4, burst_gap=0.1, seed=5, shape=SHAPE,
        granularity="columns",
    )
    return merge_traces(hot, rows, cols)


class TestFairness:
    def test_fair_dispatch_improves_every_starved_keys_p99(self):
        trace = hot_key_trace()
        reports = {}
        for policy in ("fifo", "fair"):
            reports[policy] = make_service(
                max_wait_seconds=0.02, max_batch_pairs=16,
                dispatch_policy=policy,
            ).process(trace)
        hot_key = ("blocks", BLOCK, None)
        starved = [
            key for key in reports["fifo"].ledger.batch_keys()
            if key != hot_key
        ]
        assert len(starved) == 2  # rows and columns both served
        for key in starved:
            fifo_p99 = reports["fifo"].ledger.percentile_for(key, 99)
            fair_p99 = reports["fair"].ledger.percentile_for(key, 99)
            assert fair_p99 < fifo_p99, (
                f"{key[0]}: fair p99 {fair_p99:.4f}s !< fifo {fifo_p99:.4f}s"
            )
        # Fairness reorders dispatches; it must not touch a single score.
        assert_scores_equal(reports["fifo"], reports["fair"])
        # Everybody still completes under both policies.
        for report in reports.values():
            assert report.completed_count == len(trace)

    def test_key_weights_shift_service_toward_the_weighted_key(self):
        trace = hot_key_trace()
        rows_key = ("rows", None, None)
        unweighted = make_service(
            max_wait_seconds=0.02, max_batch_pairs=16, dispatch_policy="fair",
        ).process(trace)
        weighted = make_service(
            max_wait_seconds=0.02, max_batch_pairs=16, dispatch_policy="fair",
            key_weights={("blocks", BLOCK, None): 100.0},
        ).process(trace)
        # Weighting the hot key ~infinitely keeps its credit near zero,
        # so it stops yielding rounds -- the rows key slips back toward
        # (or past) its FIFO latency.
        assert (
            weighted.ledger.percentile_for(rows_key, 99)
            > unweighted.ledger.percentile_for(rows_key, 99)
        )
        assert_scores_equal(unweighted, weighted)

    def test_per_key_admission_budget_sheds_only_the_hot_key(self):
        # One burst: 8 hot blocks requests and 2 rows requests arrive
        # together; a per-key depth budget of 2 rejects only the hot
        # key's overflow.
        hot = bursty_requests(8, burst_size=8, burst_gap=1.0, seed=1, shape=SHAPE)
        side = bursty_requests(
            2, burst_size=2, burst_gap=1.0, seed=2, shape=SHAPE,
            granularity="rows",
        )
        trace = merge_traces(hot, side)
        report = make_service(
            admission=AdmissionController(max_queue_depth_per_key=2),
        ).process(trace)
        assert report.completed_count == 4  # two per key
        assert report.rejected_count == 6
        for record in report.ledger.rejected:
            assert record.batch_key[0] == "blocks"  # only the hot key shed
            assert "per-key" in record.reject_reason


# ----------------------------------------------------------------------
# Speculative cache warming
# ----------------------------------------------------------------------


def dashboard_trace(
    num_bursts=12, churn=8, pool=6, recurring_per_burst=2, gap=0.5, seed=0
):
    """Monitoring-dashboard traffic: each burst carries one-shot churn
    plus a rotating slice of a small recurring pool, separated by idle
    gaps long enough to warm in."""
    rng = np.random.default_rng(seed)
    recurring = [
        (rng.standard_normal(SHAPE), rng.standard_normal(SHAPE))
        for _ in range(pool)
    ]
    requests, request_id, slot = [], 0, 0
    for burst in range(num_bursts):
        t = burst * gap
        for _ in range(churn):
            requests.append(
                Request(
                    request_id, t,
                    rng.standard_normal(SHAPE), rng.standard_normal(SHAPE),
                )
            )
            request_id += 1
        for _ in range(recurring_per_burst):
            x, y = recurring[slot % pool]
            slot += 1
            requests.append(Request(request_id, t, x, y))
            request_id += 1
    return requests


class TestSpeculativeWarming:
    def _budget(self, entries=8):
        probe = make_service(cache_max_bytes=1 << 20)
        report = probe.process(dashboard_trace(num_bursts=1, churn=1, pool=1))
        return entries * result_nbytes(report.ledger.completed[0].result)

    def test_warming_strictly_increases_the_hit_rate_bit_identically(self):
        trace = dashboard_trace()
        budget = self._budget()
        cold = make_service(cache_max_bytes=budget).process(trace)
        warm = make_service(cache_max_bytes=budget, warm_cache=True).process(trace)
        assert cold.cache_evictions > 0  # the scenario actually churns
        assert warm.num_warmed > 0
        assert warm.cache_hits > cold.cache_hits  # strictly more hits
        assert cold.num_warmed == 0
        # Warming re-runs the same executor path: every response equal.
        assert_scores_equal(cold, warm)

    def test_warming_never_runs_without_idle_gaps(self):
        # Back-to-back bursts leave no gap >= warm_min_gap_seconds.
        trace = dashboard_trace(gap=0.05)
        budget = self._budget()
        report = make_service(
            cache_max_bytes=budget, warm_cache=True,
            warm_min_gap_seconds=0.25,
        ).process(trace)
        assert report.num_warmed == 0

    def test_warming_is_deterministic(self):
        budget = self._budget()
        first = make_service(
            cache_max_bytes=budget, warm_cache=True
        ).process(dashboard_trace())
        second = make_service(
            cache_max_bytes=budget, warm_cache=True
        ).process(dashboard_trace())
        assert first.signature() == second.signature()
        assert first.num_warmed == second.num_warmed > 0

    def test_warm_cache_requires_a_cache(self):
        with pytest.raises(ValueError, match="cache"):
            make_service(cache_max_bytes=None, warm_cache=True)


# ----------------------------------------------------------------------
# Determinism and the idle-drain clock contract
# ----------------------------------------------------------------------


class TestDeterminismAcrossModes:
    @pytest.mark.parametrize("with_controller", (False, True))
    @pytest.mark.parametrize(
        "trace_kind",
        ("poisson", "poisson-repeats", "bursty", "bursty-jitter"),
    )
    def test_identical_traces_replay_identical_report_signatures(
        self, with_controller, trace_kind
    ):
        def build_trace():
            if trace_kind == "poisson":
                return poisson_requests(40, rate=400.0, seed=9, shape=SHAPE)
            if trace_kind == "poisson-repeats":
                return poisson_requests(
                    40, rate=400.0, seed=9, shape=SHAPE, repeat_fraction=0.5
                )
            if trace_kind == "bursty":
                return bursty_requests(
                    40, burst_size=10, burst_gap=0.1, seed=9, shape=SHAPE
                )
            return bursty_requests(
                40, burst_size=10, burst_gap=0.1, seed=9, shape=SHAPE,
                jitter=0.03,
            )

        def run():
            kwargs = dict(cache_max_bytes=1 << 20)
            if with_controller:
                kwargs["controller"] = BatchController(
                    target_p95_seconds=TARGET_P95
                )
            return make_service(**kwargs).process(build_trace())

        first, second = run(), run()
        assert first.signature() == second.signature()
        assert_scores_equal(first, second)

    def test_controller_changes_the_schedule_not_the_scores(self):
        trace = bursty_trace(400.0, count=60)
        static = make_service(**STATIC_GRID["default"]).process(trace)
        piloted = make_service(
            controller=BatchController(target_p95_seconds=TARGET_P95)
        ).process(trace)
        assert static.ledger.signature() != piloted.ledger.signature()
        assert_scores_equal(static, piloted)


class TestIdleDrainClock:
    def test_drain_never_advances_past_the_last_completion(self):
        # A single closed burst: with flush-on-drain the batch must
        # dispatch at the last arrival instant, not after burning the
        # 50ms max-wait window, and the report's makespan must equal
        # the last completion timestamp exactly.
        trace = bursty_requests(5, burst_size=5, burst_gap=1.0, seed=4, shape=SHAPE)
        report = make_service(
            max_wait_seconds=0.05, max_batch_pairs=16
        ).process(trace)
        assert report.completed_count == 5
        last_completion = max(
            r.completion_time for r in report.ledger.completed
        )
        assert report.elapsed_seconds == last_completion
        for record in report.ledger.completed:
            assert record.dispatch_time == record.enqueue_time == 0.0

    def test_flush_on_drain_with_a_non_empty_queue_completes_everything(self):
        # The trace ends while a queue is mid-window; every pending
        # request must still complete, immediately.
        trace = poisson_requests(17, rate=200.0, seed=5, shape=SHAPE)
        report = make_service(
            max_wait_seconds=0.5, max_batch_pairs=64
        ).process(trace)
        assert report.completed_count == len(trace)
        last_arrival = max(r.arrival_time for r in trace)
        last_completion = max(
            r.completion_time for r in report.ledger.completed
        )
        assert report.elapsed_seconds == last_completion
        # The final flush happened at trace exhaustion, not after the
        # 500ms window expired.
        assert last_completion < last_arrival + 0.5
