"""Property tests pinning the ledger's nearest-rank percentiles.

The existing suite spot-checks fixed ledgers; these tests pin
:meth:`LatencyLedger.percentile` (and the controller's twin,
:func:`nearest_rank_percentile`) against a brute-force reference over
hypothesis-generated latency sets.  The reference is deliberately
definition-shaped rather than formula-shaped: the nearest-rank p-th
percentile is the *smallest observed value* for which at least ``p``
percent of the observations are less than or equal to it -- a linear
scan, no ``ceil`` arithmetic to share a bug with the implementation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import LatencyLedger, RequestRecord
from repro.serve.controller import nearest_rank_percentile

latency_lists = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=120,
)

percentiles = st.one_of(
    st.sampled_from([50.0, 95.0, 99.0]),
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
)


def brute_force_nearest_rank(values, p):
    """Smallest observed value covering >= p percent of the sample."""
    ordered = sorted(values)
    total = len(ordered)
    for value in ordered:
        covered = sum(1 for other in ordered if other <= value)
        if covered >= (p / 100.0) * total:
            return value
    return ordered[-1]


def ledger_of(latencies):
    ledger = LatencyLedger()
    for index, latency in enumerate(latencies):
        ledger.add(
            RequestRecord(
                request_id=index,
                arrival_time=0.0,
                status="completed",
                batch_key=("blocks", (4, 4), None),
                enqueue_time=0.0,
                dispatch_time=0.0,
                completion_time=latency,
                dispatch_index=0,
            )
        )
    return ledger


@settings(deadline=None, max_examples=200)
@given(latencies=latency_lists, p=percentiles)
def test_ledger_percentile_matches_brute_force(latencies, p):
    assert ledger_of(latencies).percentile(p) == brute_force_nearest_rank(
        latencies, p
    )


@settings(deadline=None, max_examples=100)
@given(latencies=latency_lists)
def test_headline_percentiles_match_brute_force(latencies):
    ledger = ledger_of(latencies)
    for p in (50.0, 95.0, 99.0):
        assert ledger.percentile(p) == brute_force_nearest_rank(latencies, p)


@settings(deadline=None, max_examples=100)
@given(latencies=latency_lists, p=percentiles)
def test_controller_percentile_agrees_with_the_ledger(latencies, p):
    """The controller steers against exactly the quantity the ledger
    reports: the two nearest-rank implementations never diverge."""
    assert nearest_rank_percentile(latencies, p) == ledger_of(
        latencies
    ).percentile(p)


@settings(deadline=None, max_examples=100)
@given(latencies=latency_lists)
def test_percentile_is_an_observed_value_and_monotone(latencies):
    ledger = ledger_of(latencies)
    values = set(latencies)
    previous = None
    for p in (1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0):
        value = ledger.percentile(p)
        assert value in values  # nearest-rank returns actual observations
        if previous is not None:
            assert value >= previous
        previous = value
