"""Baseline explainers, and their agreement with the distilled explainer."""

import numpy as np
import pytest

from repro.baselines import (
    LinearSurrogateExplainer,
    SurrogateConfig,
    gradient_input_saliency,
    occlusion_column_saliency,
    occlusion_saliency,
    saliency_block_grid,
)
from repro.fft import fft_circular_convolve2d
from repro.hw import CpuDevice


def planted_linear_model(shape=(8, 8), seed=0, hot=(4, 5), strength=10.0):
    """A linear 'black box' whose output hinges on one input element."""
    rng = np.random.default_rng(seed)
    weights = 0.05 * rng.standard_normal(shape)
    weights[hot] = strength

    def model(x):
        return np.array([np.sum(weights * x)])

    return model, hot


class TestOcclusion:
    def test_planted_block_wins(self):
        model, hot = planted_linear_model()
        x = np.ones((8, 8))
        grid = occlusion_saliency(model, x, block_shape=(2, 2))
        top = np.unravel_index(np.argmax(grid), grid.shape)
        assert top == (hot[0] // 2, hot[1] // 2)

    def test_planted_column_wins(self):
        model, hot = planted_linear_model()
        scores = occlusion_column_saliency(model, np.ones((8, 8)))
        assert int(np.argmax(scores)) == hot[1]

    def test_zero_input_blocks_score_zero_for_linear_model(self):
        model, _ = planted_linear_model()
        x = np.zeros((8, 8))
        grid = occlusion_saliency(model, x, block_shape=(4, 4))
        np.testing.assert_allclose(grid, 0.0, atol=1e-12)

    def test_reductions(self):
        model, _ = planted_linear_model()
        x = np.ones((8, 8))
        for reduction in ("l2", "l1", "max_abs"):
            grid = occlusion_saliency(model, x, (4, 4), reduction=reduction)
            assert np.all(grid >= 0)
        with pytest.raises(ValueError):
            occlusion_saliency(model, x, (4, 4), reduction="sum")

    def test_validation(self):
        model, _ = planted_linear_model()
        with pytest.raises(ValueError):
            occlusion_saliency(model, np.ones(8), (2, 2))
        with pytest.raises(ValueError):
            occlusion_saliency(model, np.ones((8, 8)), (3, 3))
        with pytest.raises(ValueError):
            occlusion_column_saliency(model, np.ones(8))

    def test_agreement_with_distilled_explainer(self):
        """Both explainers must surface the same planted block."""
        from repro.core import ConvolutionDistiller, block_contributions

        rng = np.random.default_rng(1)
        x = 0.01 * rng.standard_normal((8, 8))
        x[0, 0] = 1.0
        x[4:6, 2:4] = 8.0
        kernel_true = rng.standard_normal((8, 8))
        y = fft_circular_convolve2d(x, kernel_true)

        # Distilled path.
        distiller = ConvolutionDistiller(eps=1e-10).fit(x, y)
        distilled_grid = block_contributions(x, distiller.kernel_, y, (2, 2))

        # Occlusion path against the true black box.
        def black_box(matrix):
            return fft_circular_convolve2d(matrix, kernel_true)

        occlusion_grid = occlusion_saliency(black_box, x, (2, 2))
        assert np.unravel_index(np.argmax(distilled_grid), (4, 4)) == np.unravel_index(
            np.argmax(occlusion_grid), (4, 4)
        )


class TestGradientSaliency:
    def build_model(self, seed=0):
        from repro.nn import Dense, Flatten, ReLU, Sequential

        rng = np.random.default_rng(seed)
        return Sequential(
            [Flatten(), Dense(16, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng)]
        )

    def test_shape_and_nonnegativity(self):
        model = self.build_model()
        x = np.random.default_rng(1).standard_normal((1, 4, 4))
        saliency = gradient_input_saliency(model, x)
        assert saliency.shape == (1, 4, 4)
        assert np.all(saliency >= 0)

    def test_class_index_selection(self):
        model = self.build_model()
        x = np.random.default_rng(2).standard_normal((1, 4, 4))
        s0 = gradient_input_saliency(model, x, class_index=0)
        s1 = gradient_input_saliency(model, x, class_index=1)
        assert not np.allclose(s0, s1)

    def test_zero_input_gives_zero_saliency(self):
        model = self.build_model()
        saliency = gradient_input_saliency(model, np.zeros((1, 4, 4)))
        np.testing.assert_allclose(saliency, 0.0)

    def test_validation(self):
        model = self.build_model()
        with pytest.raises(ValueError):
            gradient_input_saliency(model, np.ones((4, 4)))
        with pytest.raises(ValueError):
            gradient_input_saliency(model, np.ones((1, 4, 4)), class_index=7)

    def test_block_grid_aggregation(self):
        saliency = np.ones((2, 8, 8))
        grid = saliency_block_grid(saliency, (4, 4))
        np.testing.assert_allclose(grid, np.full((2, 2), 32.0))
        with pytest.raises(ValueError):
            saliency_block_grid(np.ones((8, 8)), (3, 3))


class TestSurrogate:
    def test_recovers_planted_feature(self):
        model, hot = planted_linear_model(shape=(4, 4), hot=(2, 1), strength=5.0)
        explainer = LinearSurrogateExplainer(
            SurrogateConfig(num_perturbations=150, iterations=200), seed=0
        )
        result = explainer.explain(model, np.ones((4, 4)))
        top = np.unravel_index(np.argmax(result.weights), (4, 4))
        assert top == hot
        assert result.converged

    def test_loss_decreases(self):
        model, _ = planted_linear_model(shape=(4, 4), hot=(2, 1))
        explainer = LinearSurrogateExplainer(seed=1)
        result = explainer.explain(model, np.ones((4, 4)))
        assert result.losses[-1] < result.losses[0]

    def test_device_accounting(self):
        model, _ = planted_linear_model(shape=(4, 4), hot=(2, 1))
        device = CpuDevice()
        config = SurrogateConfig(num_perturbations=50, iterations=10)
        LinearSurrogateExplainer(config, seed=2).explain(
            model, np.ones((4, 4)), device=device
        )
        assert device.stats.op_counts["matmul_accounted"] == 20  # 2 per iteration

    def test_fit_cost_scales_with_iterations(self):
        device = CpuDevice()
        few = LinearSurrogateExplainer(
            SurrogateConfig(iterations=10)
        ).fit_cost_seconds(1024, device)
        many = LinearSurrogateExplainer(
            SurrogateConfig(iterations=1000)
        ).fit_cost_seconds(1024, device)
        assert many == pytest.approx(100 * few)

    def test_surrogate_slower_than_closed_form_on_cpu(self):
        """The paper's premise: iterative optimization costs far more
        than the one-pass Fourier solve for the same feature plane."""
        device = CpuDevice()
        features = 1024 * 1024  # a 1024x1024 plane
        iterative = LinearSurrogateExplainer(
            SurrogateConfig(num_perturbations=200, iterations=300)
        ).fit_cost_seconds(features, device)
        closed_form = 3 * device.fft2_seconds(1024, 1024)
        assert iterative > closed_form

    def test_validation(self):
        with pytest.raises(ValueError):
            SurrogateConfig(num_perturbations=0)
        with pytest.raises(ValueError):
            SurrogateConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            SurrogateConfig(mask_probability=0.0)
        explainer = LinearSurrogateExplainer()
        model, _ = planted_linear_model()
        with pytest.raises(ValueError):
            explainer.explain(model, np.ones(4))
