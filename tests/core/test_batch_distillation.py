"""Concurrent batch distillation (Section III-D end to end)."""

import numpy as np
import pytest

from repro.core import distill_batch, make_tpu_chip
from repro.core.transform import frequency_solve
from repro.fft import fft_circular_convolve2d


def small_chip(num_cores=4):
    return make_tpu_chip(num_cores=num_cores, precision="fp32", mxu_rows=8, mxu_cols=8)


def planted_pairs(count, shape=(8, 8), seed=0):
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        x = rng.standard_normal(shape)
        x[0, 0] += 5.0 * np.prod(shape) ** 0.5
        kernel = rng.standard_normal(shape)
        pairs.append((x, fft_circular_convolve2d(x, kernel), kernel))
    return pairs


class TestCorrectness:
    def test_kernels_match_single_pair_solve(self):
        chip = small_chip()
        data = planted_pairs(3)
        result = distill_batch([(x, y) for x, y, _ in data], chip, eps=0.0)
        for (x, y, _), kernel in zip(data, result.kernels):
            expected = frequency_solve(x, y, eps=0.0)
            np.testing.assert_allclose(kernel, expected, atol=1e-5)

    def test_recovers_planted_kernels(self):
        chip = small_chip()
        data = planted_pairs(2, seed=1)
        result = distill_batch([(x, y) for x, y, _ in data], chip, eps=0.0)
        for (_, _, kernel_true), kernel in zip(data, result.kernels):
            np.testing.assert_allclose(kernel, kernel_true, atol=1e-5)

    def test_real_pairs_give_real_kernels(self):
        chip = small_chip()
        data = planted_pairs(2, seed=2)
        result = distill_batch([(x, y) for x, y, _ in data], chip)
        for kernel in result.kernels:
            assert np.isrealobj(kernel)


class TestTiming:
    def test_parallel_beats_serial(self):
        chip = small_chip(num_cores=4)
        data = planted_pairs(4, shape=(16, 16), seed=3)
        result = distill_batch([(x, y) for x, y, _ in data], chip)
        assert result.elapsed_seconds < result.serial_seconds
        assert result.parallel_speedup > 1.5

    def test_single_pair_has_no_parallel_gain_across_pairs(self):
        chip = small_chip(num_cores=4)
        data = planted_pairs(1, seed=4)
        result = distill_batch([(x, y) for x, y, _ in data], chip)
        # One pair: batch elapsed equals its own serial time.
        assert result.elapsed_seconds == pytest.approx(result.serial_seconds)


class TestValidation:
    def test_empty_batch(self):
        with pytest.raises(ValueError):
            distill_batch([], small_chip())

    def test_negative_eps(self):
        data = planted_pairs(1)
        with pytest.raises(ValueError):
            distill_batch([(data[0][0], data[0][1])], small_chip(), eps=-1.0)

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            distill_batch([(np.ones((4, 4)), np.ones((4, 5)))], small_chip())


class TestVpuAccounting:
    """The Hadamard (VPU) stage must count toward batch timing."""

    def test_vpu_seconds_reported_and_positive(self):
        chip = small_chip()
        data = planted_pairs(3, seed=5)
        result = distill_batch([(x, y) for x, y, _ in data], chip)
        assert result.vpu_seconds > 0

    def test_elapsed_and_serial_include_vpu_stage(self):
        """elapsed/serial must exceed the pure transform accounting by
        at least the VPU stage's contribution."""
        chip = small_chip(num_cores=4)
        data = planted_pairs(2, shape=(16, 16), seed=6)
        pairs = [(x, y) for x, y, _ in data]
        result = distill_batch(pairs, chip)
        # Reconstruct the transform-only seconds from a fresh chip; the
        # ifft stage is priced by shape, so complex copies of x stand in
        # for the actual kernel spectra.
        from repro.core import MultiInputScheduler

        chip2 = small_chip(num_cores=4)
        scheduler = MultiInputScheduler(chip2)
        x_b = scheduler.fft2_batch([x for x, _ in pairs])
        y_b = scheduler.fft2_batch([y for _, y in pairs])
        k_b = scheduler.ifft2_batch([x + 0j for x, _ in pairs])
        transforms_elapsed = (
            x_b.elapsed_seconds + y_b.elapsed_seconds + k_b.elapsed_seconds
        )
        transforms_serial = (
            x_b.serial_seconds + y_b.serial_seconds + k_b.serial_seconds
        )
        assert result.elapsed_seconds > transforms_elapsed
        assert result.serial_seconds > transforms_serial
        assert result.serial_seconds >= transforms_serial + result.vpu_seconds * 0.99

    def test_mixed_shapes_distill_in_separate_waves(self):
        chip = small_chip()
        small = planted_pairs(2, shape=(8, 8), seed=7)
        large = planted_pairs(2, shape=(16, 16), seed=8)
        pairs = [(x, y) for x, y, _ in small] + [(x, y) for x, y, _ in large]
        result = distill_batch(pairs, chip, eps=0.0)
        for (x, y, _), kernel in zip(small + large, result.kernels):
            expected = frequency_solve(x, y, eps=0.0)
            np.testing.assert_allclose(kernel, expected, atol=1e-5)
