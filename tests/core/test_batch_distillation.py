"""Concurrent batch distillation (Section III-D end to end)."""

import numpy as np
import pytest

from repro.core import distill_batch, make_tpu_chip
from repro.core.transform import frequency_solve
from repro.fft import fft_circular_convolve2d


def small_chip(num_cores=4):
    return make_tpu_chip(num_cores=num_cores, precision="fp32", mxu_rows=8, mxu_cols=8)


def planted_pairs(count, shape=(8, 8), seed=0):
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        x = rng.standard_normal(shape)
        x[0, 0] += 5.0 * np.prod(shape) ** 0.5
        kernel = rng.standard_normal(shape)
        pairs.append((x, fft_circular_convolve2d(x, kernel), kernel))
    return pairs


class TestCorrectness:
    def test_kernels_match_single_pair_solve(self):
        chip = small_chip()
        data = planted_pairs(3)
        result = distill_batch([(x, y) for x, y, _ in data], chip, eps=0.0)
        for (x, y, _), kernel in zip(data, result.kernels):
            expected = frequency_solve(x, y, eps=0.0)
            np.testing.assert_allclose(kernel, expected, atol=1e-5)

    def test_recovers_planted_kernels(self):
        chip = small_chip()
        data = planted_pairs(2, seed=1)
        result = distill_batch([(x, y) for x, y, _ in data], chip, eps=0.0)
        for (_, _, kernel_true), kernel in zip(data, result.kernels):
            np.testing.assert_allclose(kernel, kernel_true, atol=1e-5)

    def test_real_pairs_give_real_kernels(self):
        chip = small_chip()
        data = planted_pairs(2, seed=2)
        result = distill_batch([(x, y) for x, y, _ in data], chip)
        for kernel in result.kernels:
            assert np.isrealobj(kernel)


class TestTiming:
    def test_parallel_beats_serial(self):
        chip = small_chip(num_cores=4)
        data = planted_pairs(4, shape=(16, 16), seed=3)
        result = distill_batch([(x, y) for x, y, _ in data], chip)
        assert result.elapsed_seconds < result.serial_seconds
        assert result.parallel_speedup > 1.5

    def test_single_pair_has_no_parallel_gain_across_pairs(self):
        chip = small_chip(num_cores=4)
        data = planted_pairs(1, seed=4)
        result = distill_batch([(x, y) for x, y, _ in data], chip)
        # One pair: batch elapsed equals its own serial time.
        assert result.elapsed_seconds == pytest.approx(result.serial_seconds)


class TestValidation:
    def test_empty_batch(self):
        with pytest.raises(ValueError):
            distill_batch([], small_chip())

    def test_negative_eps(self):
        data = planted_pairs(1)
        with pytest.raises(ValueError):
            distill_batch([(data[0][0], data[0][1])], small_chip(), eps=-1.0)

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            distill_batch([(np.ones((4, 4)), np.ones((4, 5)))], small_chip())
