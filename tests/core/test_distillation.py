"""ConvolutionDistiller: fit / predict / residual behaviour."""

import numpy as np
import pytest

from repro.core import ConvolutionDistiller, NotFittedError, OutputEmbedding
from repro.fft import fft_circular_convolve2d
from repro.hw import CpuDevice


def conditioned(shape, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    x[0, 0] += 5.0 * np.prod(shape) ** 0.5
    return x


class TestFit:
    def test_recovers_planted_kernel(self):
        x = conditioned((8, 8), 0)
        kernel_true = np.random.default_rng(1).standard_normal((8, 8))
        y = fft_circular_convolve2d(x, kernel_true)
        distiller = ConvolutionDistiller(eps=0.0).fit(x, y)
        np.testing.assert_allclose(distiller.kernel_, kernel_true, atol=1e-7)

    def test_predict_reproduces_training_output(self):
        x = conditioned((6, 6), 2)
        y = np.random.default_rng(3).standard_normal((6, 6))
        distiller = ConvolutionDistiller(eps=0.0).fit(x, y)
        np.testing.assert_allclose(distiller.predict(x), y, atol=1e-7)

    def test_batch_fit_and_residual(self):
        rng = np.random.default_rng(4)
        kernel_true = rng.standard_normal((6, 6))
        xs = np.stack([conditioned((6, 6), s) for s in range(4)])
        ys = np.stack([fft_circular_convolve2d(x, kernel_true) for x in xs])
        distiller = ConvolutionDistiller(eps=1e-10).fit(xs, ys)
        assert distiller.residual(xs, ys) < 1e-6

    def test_vector_outputs_are_embedded(self):
        rng = np.random.default_rng(5)
        xs = np.stack([conditioned((8, 8), s + 10) for s in range(3)])
        logits = rng.standard_normal((3, 4))
        distiller = ConvolutionDistiller(
            eps=1e-8, embedding=OutputEmbedding("spatial")
        ).fit(xs, logits)
        assert distiller.kernel_.shape == (8, 8)
        scores = distiller.predict_classes(xs[0], classes=4)
        assert scores.shape == (4,)

    def test_single_pair_single_vector(self):
        x = conditioned((4, 4), 6)
        logits = np.array([1.0, -1.0])
        distiller = ConvolutionDistiller(eps=1e-8).fit(x, logits)
        # Perfect fit is possible with one pair: prediction matches the
        # embedded plane, so projected scores match the logits.
        np.testing.assert_allclose(
            distiller.predict_classes(x, classes=2), logits, atol=1e-5
        )

    def test_frequency_kernel_property(self):
        x = conditioned((4, 4), 7)
        y = np.random.default_rng(8).standard_normal((4, 4))
        distiller = ConvolutionDistiller(eps=0.0).fit(x, y)
        np.testing.assert_allclose(
            distiller.frequency_kernel_, np.fft.fft2(distiller.kernel_), atol=1e-8
        )

    def test_device_accumulates_time(self):
        device = CpuDevice()
        x = conditioned((8, 8), 9)
        y = np.random.default_rng(10).standard_normal((8, 8))
        ConvolutionDistiller(device=device, eps=1e-8).fit(x, y)
        assert device.stats.seconds > 0
        assert device.stats.op_counts["fft2"] >= 2


class TestValidation:
    def test_not_fitted_errors(self):
        distiller = ConvolutionDistiller()
        with pytest.raises(NotFittedError):
            _ = distiller.kernel_
        with pytest.raises(NotFittedError):
            distiller.predict(np.ones((4, 4)))

    def test_negative_eps_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionDistiller(eps=-1e-3)

    def test_misaligned_batch_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionDistiller().fit(np.ones((2, 4, 4)), np.ones((3, 4, 4)))

    def test_wrong_output_vector_count_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionDistiller().fit(np.ones((2, 4, 4)), np.ones((3, 5)))

    def test_predict_shape_mismatch_rejected(self):
        distiller = ConvolutionDistiller(eps=1e-8).fit(
            conditioned((4, 4), 11), np.ones((4, 4))
        )
        with pytest.raises(ValueError):
            distiller.predict(np.ones((5, 5)))

    def test_bad_output_shape_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionDistiller().fit(np.ones((2, 4, 4)), np.ones((2, 4, 5)))

    def test_4d_outputs_rejected(self):
        with pytest.raises(ValueError):
            ConvolutionDistiller().fit(np.ones((2, 4, 4)), np.ones((2, 2, 2, 2)))


class TestDistillationQuality:
    def test_linear_model_distills_exactly(self):
        """A model that *is* a circular convolution distills with zero
        residual -- the compatibility argument of Section III-B."""
        rng = np.random.default_rng(12)
        kernel_true = rng.standard_normal((8, 8))

        def model(x):
            return fft_circular_convolve2d(x, kernel_true)

        xs = np.stack([conditioned((8, 8), s + 20) for s in range(6)])
        ys = np.stack([model(x) for x in xs])
        distiller = ConvolutionDistiller(eps=1e-12).fit(xs, ys)
        fresh = conditioned((8, 8), 99)
        np.testing.assert_allclose(distiller.predict(fresh), model(fresh), atol=1e-6)

    def test_mildly_nonlinear_model_distills_approximately(self):
        rng = np.random.default_rng(13)
        kernel_true = rng.standard_normal((8, 8)) / 8.0

        def model(x):
            linear = fft_circular_convolve2d(x, kernel_true)
            return linear + 0.01 * np.tanh(linear)

        xs = np.stack([conditioned((8, 8), s + 40) for s in range(8)])
        ys = np.stack([model(x) for x in xs])
        distiller = ConvolutionDistiller(eps=1e-8).fit(xs, ys)
        assert distiller.residual(xs, ys) < 0.05
