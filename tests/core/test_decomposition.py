"""Algorithm 1: sharded 2-D Fourier transform across TPU cores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DecomposedFourier, make_tpu_chip, shard_slices
from repro.fft import fft2


def small_chip(num_cores=4, precision="fp32"):
    return make_tpu_chip(
        num_cores=num_cores, precision=precision, mxu_rows=8, mxu_cols=8
    )


class TestShardSlices:
    def test_even_split(self):
        assert shard_slices(8, 4) == [slice(0, 2), slice(2, 4), slice(4, 6), slice(6, 8)]

    def test_remainder_goes_to_early_shards(self):
        pieces = shard_slices(10, 4)
        lengths = [p.stop - p.start for p in pieces]
        assert lengths == [3, 3, 2, 2]

    def test_covers_everything_without_overlap(self):
        pieces = shard_slices(17, 5)
        covered = []
        for piece in pieces:
            covered.extend(range(piece.start, piece.stop))
        assert covered == list(range(17))

    def test_more_shards_than_elements(self):
        pieces = shard_slices(2, 5)
        lengths = [p.stop - p.start for p in pieces]
        assert lengths == [1, 1, 0, 0, 0]

    def test_paper_bound_holds(self):
        """No core gets more than ceil(max{M,N}/p) 1-D transforms."""
        import math

        for total, cores in [(64, 4), (100, 8), (31, 7)]:
            pieces = shard_slices(total, cores)
            biggest = max(p.stop - p.start for p in pieces)
            assert biggest <= math.ceil(total / cores)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            shard_slices(0, 4)
        with pytest.raises(ValueError):
            shard_slices(4, 0)


class TestDecomposedTransform:
    @pytest.mark.parametrize("shape", [(8, 8), (16, 8), (8, 16), (12, 12)])
    @pytest.mark.parametrize("cores", [1, 2, 4])
    def test_merge_equals_direct_fft2(self, shape, cores):
        """The paper's central correctness claim: merging per-core results
        'exactly matches the desired 2-D Fourier transform result'."""
        chip = small_chip(num_cores=4)
        rng = np.random.default_rng(shape[0] * 10 + cores)
        x = rng.standard_normal(shape)
        result, _ = DecomposedFourier(chip, cores=cores).fft2(x)
        np.testing.assert_allclose(result, fft2(x), atol=1e-6)

    def test_inverse_round_trip(self):
        chip = small_chip()
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
        forward, _ = DecomposedFourier(chip).fft2(x)
        back, _ = DecomposedFourier(chip).ifft2(forward)
        np.testing.assert_allclose(back, x, atol=1e-6)

    def test_report_structure(self):
        chip = small_chip()
        x = np.random.default_rng(1).standard_normal((8, 8))
        _, report = DecomposedFourier(chip, cores=4).fft2(x)
        assert report.shape == (8, 8)
        assert report.cores_used == 4
        assert [stage.name for stage in report.stages] == ["rows", "columns"]
        assert report.elapsed_seconds > 0
        assert report.elapsed_seconds == pytest.approx(
            report.compute_seconds + report.communication_seconds
        )

    def test_more_cores_reduce_elapsed_time(self):
        """Scalability: the whole point of Algorithm 1."""
        x = np.random.default_rng(2).standard_normal((64, 64))
        chip = make_tpu_chip(num_cores=8, precision="fp32", mxu_rows=8, mxu_cols=8)
        _, report_1 = DecomposedFourier(chip, cores=1).fft2(x)
        chip.reset()
        _, report_8 = DecomposedFourier(chip, cores=8).fft2(x)
        assert report_8.compute_seconds < report_1.compute_seconds

    def test_single_core_has_no_communication(self):
        chip = small_chip(num_cores=1)
        x = np.random.default_rng(3).standard_normal((8, 8))
        _, report = DecomposedFourier(chip).fft2(x)
        assert report.communication_seconds == 0.0

    def test_stage_balance(self):
        """Balanced shards: core times within a stage are comparable."""
        chip = small_chip(num_cores=4)
        x = np.random.default_rng(4).standard_normal((16, 16))
        _, report = DecomposedFourier(chip, cores=4).fft2(x)
        for stage in report.stages:
            times = np.array(stage.per_core_seconds)
            assert times.max() <= 2.0 * times.min() + 1e-12

    def test_cores_bounded_by_extent(self):
        """A 4x4 transform on 8 cores uses at most 4 per stage."""
        chip = small_chip(num_cores=8)
        x = np.random.default_rng(5).standard_normal((4, 4))
        result, report = DecomposedFourier(chip).fft2(x)
        np.testing.assert_allclose(result, fft2(x), atol=1e-6)
        for stage in report.stages:
            assert len(stage.per_core_seconds) <= 4

    def test_bf16_chip_close_to_exact(self):
        chip = small_chip(precision="bf16")
        x = np.random.default_rng(6).standard_normal((8, 8))
        result, _ = DecomposedFourier(chip).fft2(x)
        exact = fft2(x)
        assert np.max(np.abs(result - exact)) < 0.05 * np.max(np.abs(exact)) + 0.05

    def test_validation(self):
        chip = small_chip(num_cores=2)
        with pytest.raises(ValueError):
            DecomposedFourier(chip, cores=5)
        with pytest.raises(ValueError):
            DecomposedFourier(chip).fft2(np.ones(4))
        with pytest.raises(ValueError):
            DecomposedFourier(chip).ifft2(np.ones((2, 2, 2)))


class TestProperties:
    @given(
        m=st.sampled_from([4, 8, 12, 16]),
        n=st.sampled_from([4, 8, 12, 16]),
        cores=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_merge_matches_fft2_property(self, m, n, cores, seed):
        chip = small_chip(num_cores=4)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, n))
        result, _ = DecomposedFourier(chip, cores=cores).fft2(x)
        np.testing.assert_allclose(result, fft2(x), atol=1e-5)
