"""Section III-D: multi-input parallelism and block matmuls."""

import numpy as np
import pytest

from repro.core import (
    Assignment,
    AssignmentTable,
    MultiInputScheduler,
    block_matmul_tasks,
    make_tpu_chip,
    partition_cores,
    run_block_matmul,
)
from repro.fft import fft2


def small_chip(num_cores=4):
    return make_tpu_chip(num_cores=num_cores, precision="fp32", mxu_rows=8, mxu_cols=8)


class TestPartitionCores:
    def test_even_partition(self):
        groups = partition_cores(8, 4)
        assert groups == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_remainder_spreads(self):
        groups = partition_cores(10, 3)
        sizes = [len(g) for g in groups]
        assert sizes == [4, 3, 3]
        assert sorted(sum(groups, [])) == list(range(10))

    def test_more_inputs_than_cores_round_robin(self):
        groups = partition_cores(2, 5)
        assert groups == [[0], [1], [0], [1], [0]]

    def test_invalid(self):
        with pytest.raises(ValueError):
            partition_cores(0, 2)
        with pytest.raises(ValueError):
            partition_cores(4, 0)


class TestMultiInputScheduler:
    def test_batch_results_match_direct_transforms(self):
        chip = small_chip()
        rng = np.random.default_rng(0)
        inputs = [rng.standard_normal((8, 8)) for _ in range(3)]
        batch = MultiInputScheduler(chip).fft2_batch(inputs)
        for x, out in zip(inputs, batch.outputs):
            np.testing.assert_allclose(out, fft2(x), atol=1e-6)

    def test_inverse_batch(self):
        chip = small_chip()
        rng = np.random.default_rng(1)
        inputs = [rng.standard_normal((8, 8)) + 0j for _ in range(2)]
        spectra = MultiInputScheduler(chip).fft2_batch(inputs)
        chip.reset()
        back = MultiInputScheduler(chip).ifft2_batch(spectra.outputs)
        for x, out in zip(inputs, back.outputs):
            np.testing.assert_allclose(out, x, atol=1e-6)

    def test_parallel_elapsed_below_serial(self):
        """Inputs run side by side: elapsed < sum of individual times."""
        chip = small_chip(num_cores=4)
        rng = np.random.default_rng(2)
        inputs = [rng.standard_normal((16, 16)) for _ in range(4)]
        batch = MultiInputScheduler(chip).fft2_batch(inputs)
        assert batch.elapsed_seconds < batch.serial_seconds

    def test_assignment_table_covers_all_inputs(self):
        chip = small_chip(num_cores=4)
        rng = np.random.default_rng(3)
        inputs = [rng.standard_normal((8, 8)) for _ in range(2)]
        batch = MultiInputScheduler(chip).fft2_batch(inputs)
        assert len(batch.table) > 0
        for index in range(2):
            rows = batch.table.for_input(index)
            assert {r.stage for r in rows} == {"rows", "columns"}
            assert batch.table.cores_for_input(index)

    def test_disjoint_core_groups_for_small_batches(self):
        chip = small_chip(num_cores=4)
        rng = np.random.default_rng(4)
        inputs = [rng.standard_normal((8, 8)) for _ in range(2)]
        batch = MultiInputScheduler(chip).fft2_batch(inputs)
        cores_0 = batch.table.cores_for_input(0)
        cores_1 = batch.table.cores_for_input(1)
        assert cores_0.isdisjoint(cores_1)

    def test_oversubscribed_batch_serializes_on_shared_cores(self):
        chip = small_chip(num_cores=2)
        rng = np.random.default_rng(5)
        inputs = [rng.standard_normal((8, 8)) for _ in range(4)]
        batch = MultiInputScheduler(chip).fft2_batch(inputs)
        # Two inputs per core: elapsed is about half the serial time.
        assert batch.elapsed_seconds > 0.4 * batch.serial_seconds

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            MultiInputScheduler(small_chip()).fft2_batch([])

    def test_non_matrix_entry_rejected(self):
        with pytest.raises(ValueError):
            MultiInputScheduler(small_chip()).fft2_batch([np.ones(4)])


class TestBlockMatmul:
    def test_tasks_cover_output_grid(self):
        tasks = block_matmul_tasks(8, 4, 8, grid=(2, 2), num_cores=4)
        assert len(tasks) == 4
        covered = np.zeros((8, 8), dtype=int)
        for task in tasks:
            covered[task.row_block, task.col_block] += 1
        np.testing.assert_array_equal(covered, np.ones((8, 8), dtype=int))

    def test_round_robin_core_assignment(self):
        tasks = block_matmul_tasks(8, 4, 8, grid=(2, 2), num_cores=2)
        assert [t.core_id for t in tasks] == [0, 1, 0, 1]

    def test_run_block_matmul_matches_numpy(self):
        chip = small_chip(num_cores=4)
        rng = np.random.default_rng(6)
        a = rng.standard_normal((16, 8))
        b = rng.standard_normal((8, 12))
        product, elapsed = run_block_matmul(a, b, chip, grid=(2, 2))
        np.testing.assert_allclose(product, a @ b, atol=1e-6)
        assert elapsed > 0

    def test_block_parallelism_beats_single_core(self):
        """At sizes large enough to amortize the merge collective, block
        partitioning over four cores beats one core (tiny matmuls are
        interconnect-dominated and rightly do not benefit)."""
        rng = np.random.default_rng(7)
        a = rng.standard_normal((256, 64))
        b = rng.standard_normal((64, 256))
        chip4 = small_chip(num_cores=4)
        _, elapsed_parallel = run_block_matmul(a, b, chip4, grid=(2, 2))
        chip1 = small_chip(num_cores=1)
        _, elapsed_serial = run_block_matmul(a, b, chip1, grid=(1, 1))
        assert elapsed_parallel < elapsed_serial

    def test_invalid_inputs(self):
        chip = small_chip()
        with pytest.raises(ValueError):
            run_block_matmul(np.ones((2, 3)), np.ones((4, 2)), chip, grid=(1, 1))
        with pytest.raises(ValueError):
            block_matmul_tasks(4, 4, 4, grid=(0, 1), num_cores=2)
        with pytest.raises(ValueError):
            block_matmul_tasks(4, 4, 4, grid=(1, 1), num_cores=0)


class TestElapsedWithSharing:
    """Direct unit coverage of the core-sharing serialization model."""

    def test_disjoint_groups_take_the_slowest(self):
        groups = [[0, 1], [2, 3]]
        assert MultiInputScheduler._elapsed_with_sharing(groups, [1.0, 3.0]) == 3.0

    def test_shared_anchor_serializes(self):
        # Three inputs round-robin over two cores: core 0 runs inputs
        # 0 and 2 back to back, core 1 runs input 1 alone.
        groups = [[0], [1], [0]]
        elapsed = MultiInputScheduler._elapsed_with_sharing(groups, [1.0, 2.5, 2.0])
        assert elapsed == 3.0  # core 0: 1.0 + 2.0 > core 1: 2.5

    def test_oversubscription_beyond_two_rounds(self):
        groups = [[0], [1], [0], [1], [0]]
        times = [1.0] * 5
        # Core 0 owns inputs 0, 2, 4 -> 3 serialized units.
        assert MultiInputScheduler._elapsed_with_sharing(groups, times) == 3.0

    def test_matches_batch_elapsed_when_pairs_exceed_cores(self):
        chip = small_chip(num_cores=2)
        rng = np.random.default_rng(20)
        inputs = [rng.standard_normal((8, 8)) for _ in range(5)]
        batch = MultiInputScheduler(chip).fft2_batch(inputs)
        groups = partition_cores(2, 5)
        expected = MultiInputScheduler._elapsed_with_sharing(
            groups, [r.elapsed_seconds for r in batch.reports]
        )
        assert batch.elapsed_seconds == pytest.approx(expected)


class TestPartitionCoresSharing:
    def test_round_robin_wraps_every_core(self):
        groups = partition_cores(3, 7)
        assert groups == [[0], [1], [2], [0], [1], [2], [0]]
        # Core 0 is the most loaded: ceil(7 / 3) inputs.
        anchors = [g[0] for g in groups]
        assert anchors.count(0) == 3

    def test_exact_multiple_balances_evenly(self):
        groups = partition_cores(2, 4)
        anchors = [g[0] for g in groups]
        assert anchors.count(0) == anchors.count(1) == 2


class TestAssignmentTableRows:
    def test_record_and_len(self):
        table = AssignmentTable()
        assert len(table) == 0
        table.record(Assignment(0, "rows", 1, 0, slice(0, 4)))
        table.record(Assignment(0, "columns", 2, 1, slice(0, 4)))
        table.record(Assignment(1, "rows", 3, 0, slice(4, 8)))
        assert len(table) == 3

    def test_for_input_filters_rows(self):
        table = AssignmentTable()
        table.record(Assignment(0, "rows", 1, 0, slice(0, 4)))
        table.record(Assignment(1, "rows", 2, 0, slice(0, 4)))
        rows = table.for_input(1)
        assert len(rows) == 1
        assert rows[0].core_id == 2
        assert rows[0].extent == slice(0, 4)

    def test_cores_for_input_deduplicates(self):
        table = AssignmentTable()
        table.record(Assignment(0, "rows", 5, 0, slice(0, 2)))
        table.record(Assignment(0, "columns", 5, 1, slice(0, 2)))
        table.record(Assignment(0, "columns", 6, 1, slice(2, 4)))
        assert table.cores_for_input(0) == {5, 6}

    def test_reassembly_extents_tile_the_input(self):
        """The recorded row slices of one input cover its rows exactly
        once -- the invariant reassembly relies on."""
        chip = small_chip(num_cores=4)
        rng = np.random.default_rng(21)
        x = rng.standard_normal((8, 8))
        batch = MultiInputScheduler(chip).fft2_batch([x])
        row_extents = [
            r.extent for r in batch.table.for_input(0) if r.stage == "rows"
        ]
        covered = np.zeros(8, dtype=int)
        for extent in row_extents:
            covered[extent] += 1
        np.testing.assert_array_equal(covered, np.ones(8, dtype=int))
