"""Contribution factors (Eq. 5): correctness and ranking behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    block_contributions,
    column_contributions,
    contribution_matrix,
    feature_contributions,
    mask_contribution,
    normalize_scores,
    row_contributions,
    top_k_features,
)
from repro.fft import fft_circular_convolve2d
from repro.hw import CpuDevice


def fitted_setup(shape=(8, 8), seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    x[0, 0] += 5.0 * np.prod(shape) ** 0.5
    kernel = rng.standard_normal(shape)
    y = fft_circular_convolve2d(x, kernel)
    return x, kernel, y


class TestContributionMatrix:
    def test_equation_five_verbatim(self):
        x, kernel, y = fitted_setup()
        masked = x.copy()
        masked[2, 3] = 0.0
        expected = y - fft_circular_convolve2d(masked, kernel)
        np.testing.assert_allclose(
            contribution_matrix(x, kernel, y, (2, 3)), expected, atol=1e-10
        )

    def test_zero_feature_contributes_nothing(self):
        x, kernel, y = fitted_setup(seed=1)
        x[4, 4] = 0.0
        y = fft_circular_convolve2d(x, kernel)
        delta = contribution_matrix(x, kernel, y, (4, 4))
        np.testing.assert_allclose(delta, np.zeros_like(delta), atol=1e-10)

    def test_out_of_range_feature_rejected(self):
        x, kernel, y = fitted_setup(seed=2)
        with pytest.raises(IndexError):
            contribution_matrix(x, kernel, y, (99, 0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            contribution_matrix(np.ones((4, 4)), np.ones((4, 4)), np.ones((5, 5)), (0, 0))


class TestFeatureContributions:
    def test_fast_equals_naive(self):
        """The linearity shortcut must agree with literal Eq. 5."""
        x, kernel, y = fitted_setup(shape=(6, 6), seed=3)
        fast = feature_contributions(x, kernel, y, method="fast")
        naive = feature_contributions(x, kernel, y, method="naive")
        np.testing.assert_allclose(fast, naive, atol=1e-8)

    @pytest.mark.parametrize("reduction", ["l2", "l1", "mean_abs", "max_abs"])
    def test_reductions_all_work(self, reduction):
        x, kernel, y = fitted_setup(shape=(4, 4), seed=4)
        scores = feature_contributions(x, kernel, y, reduction=reduction)
        assert scores.shape == (4, 4)
        assert np.all(scores >= 0)

    def test_dominant_feature_scores_highest(self):
        """A feature carrying most of the input energy dominates Eq. 5."""
        rng = np.random.default_rng(5)
        x = 0.01 * rng.standard_normal((8, 8))
        x[0, 0] = 1.0  # keeps the spectrum well-posed too
        x[3, 5] = 10.0  # the planted dominant feature
        kernel = rng.standard_normal((8, 8))
        y = fft_circular_convolve2d(x, kernel)
        scores = feature_contributions(x, kernel, y)
        assert top_k_features(scores, 1)[0] == (3, 5)

    def test_unknown_method_rejected(self):
        x, kernel, y = fitted_setup(seed=6)
        with pytest.raises(ValueError):
            feature_contributions(x, kernel, y, method="magic")

    def test_unknown_reduction_rejected(self):
        x, kernel, y = fitted_setup(seed=7)
        with pytest.raises(ValueError):
            feature_contributions(x, kernel, y, reduction="median")

    def test_device_timing_accounted(self):
        device = CpuDevice()
        x, kernel, y = fitted_setup(shape=(4, 4), seed=8)
        feature_contributions(x, kernel, y, method="naive", device=device)
        # naive path: one convolution per feature = 16 conv ops.
        assert device.stats.op_counts["fft2"] >= 16


class TestMaskAndAggregates:
    def test_mask_contribution_matches_manual(self):
        x, kernel, y = fitted_setup(seed=9)
        mask = np.zeros_like(x, dtype=bool)
        mask[0:2, 0:2] = True
        masked = x.copy()
        masked[0:2, 0:2] = 0.0
        expected = np.sqrt(
            np.sum((y - fft_circular_convolve2d(masked, kernel)) ** 2)
        )
        assert mask_contribution(x, kernel, y, mask) == pytest.approx(expected)

    def test_mask_shape_mismatch_rejected(self):
        x, kernel, y = fitted_setup(seed=10)
        with pytest.raises(ValueError):
            mask_contribution(x, kernel, y, np.zeros((2, 2), dtype=bool))

    def test_block_grid_shape(self):
        x, kernel, y = fitted_setup(shape=(8, 8), seed=11)
        grid = block_contributions(x, kernel, y, block_shape=(2, 2))
        assert grid.shape == (4, 4)

    def test_block_shape_must_tile(self):
        x, kernel, y = fitted_setup(shape=(8, 8), seed=12)
        with pytest.raises(ValueError):
            block_contributions(x, kernel, y, block_shape=(3, 3))
        with pytest.raises(ValueError):
            block_contributions(x, kernel, y, block_shape=(0, 2))

    def test_planted_block_dominates(self):
        """Figure 5's claim: the informative block gets the top weight."""
        rng = np.random.default_rng(13)
        x = 0.01 * rng.standard_normal((8, 8))
        x[0, 0] = 1.0
        x[4:6, 2:4] = 8.0  # planted discriminative block at grid (2, 1)
        kernel = rng.standard_normal((8, 8))
        y = fft_circular_convolve2d(x, kernel)
        grid = block_contributions(x, kernel, y, block_shape=(2, 2))
        assert np.unravel_index(np.argmax(grid), grid.shape) == (2, 1)

    def test_planted_column_dominates(self):
        """Figure 6's claim: the attack clock cycle gets the top weight."""
        rng = np.random.default_rng(14)
        x = 0.01 * rng.standard_normal((8, 8))
        x[0, 0] = 1.0
        x[:, 5] = 6.0  # the ATTACK_VECTOR assignment cycle
        kernel = rng.standard_normal((8, 8))
        y = fft_circular_convolve2d(x, kernel)
        scores = column_contributions(x, kernel, y)
        assert int(np.argmax(scores)) == 5

    def test_row_contributions_shape(self):
        x, kernel, y = fitted_setup(seed=15)
        assert row_contributions(x, kernel, y).shape == (8,)


class TestRankingHelpers:
    def test_top_k_2d(self):
        scores = np.array([[1.0, 5.0], [3.0, 2.0]])
        assert top_k_features(scores, 2) == [(0, 1), (1, 0)]

    def test_top_k_1d(self):
        scores = np.array([0.1, 9.0, 4.0])
        assert top_k_features(scores, 2) == [(1,), (2,)]

    def test_top_k_clamps_to_size(self):
        assert len(top_k_features(np.ones(3), 10)) == 3

    def test_top_k_invalid(self):
        with pytest.raises(ValueError):
            top_k_features(np.ones(3), 0)

    def test_normalize_scores_range(self):
        scores = np.array([2.0, 4.0, 6.0])
        normalized = normalize_scores(scores)
        assert normalized.min() == 0.0
        assert normalized.max() == 1.0

    def test_normalize_constant_scores(self):
        np.testing.assert_array_equal(normalize_scores(np.full(4, 3.0)), np.zeros(4))


class TestProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.sampled_from([4, 6, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_fast_naive_agreement_property(self, seed, n):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, n))
        kernel = rng.standard_normal((n, n))
        y = rng.standard_normal((n, n))
        fast = feature_contributions(x, kernel, y, method="fast")
        naive = feature_contributions(x, kernel, y, method="naive")
        np.testing.assert_allclose(fast, naive, atol=1e-7)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_block_scores_bounded_by_total_mask(self, seed):
        """Masking everything bounds any single-block contribution under
        the triangle-style monotonicity of the residual norm base point."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((4, 4))
        kernel = rng.standard_normal((4, 4))
        y = fft_circular_convolve2d(x, kernel)
        grid = block_contributions(x, kernel, y, block_shape=(2, 2))
        assert np.all(grid >= 0)
        assert np.all(np.isfinite(grid))


class TestBatchedEntryPoints:
    """Every occlusion entry point agrees between batched and loop modes."""

    def test_block_contributions_methods_agree(self):
        x, kernel, y = fitted_setup(seed=20)
        np.testing.assert_allclose(
            block_contributions(x, kernel, y, (2, 2), method="batched"),
            block_contributions(x, kernel, y, (2, 2), method="loop"),
            atol=1e-10,
        )

    def test_column_and_row_methods_agree(self):
        x, kernel, y = fitted_setup(seed=21)
        np.testing.assert_allclose(
            column_contributions(x, kernel, y, method="batched"),
            column_contributions(x, kernel, y, method="loop"),
            atol=1e-10,
        )
        np.testing.assert_allclose(
            row_contributions(x, kernel, y, method="batched"),
            row_contributions(x, kernel, y, method="loop"),
            atol=1e-10,
        )

    def test_feature_contributions_batched_matches_fast(self):
        x, kernel, y = fitted_setup(shape=(6, 6), seed=22)
        np.testing.assert_allclose(
            feature_contributions(x, kernel, y, method="batched"),
            feature_contributions(x, kernel, y, method="fast"),
            atol=1e-8,
        )

    def test_feature_contributions_loop_alias(self):
        x, kernel, y = fitted_setup(shape=(4, 4), seed=23)
        np.testing.assert_allclose(
            feature_contributions(x, kernel, y, method="loop"),
            feature_contributions(x, kernel, y, method="naive"),
            atol=1e-12,
        )

    def test_mask_contribution_batched_with_fill(self):
        x, kernel, y = fitted_setup(seed=24)
        mask = np.zeros_like(x, dtype=bool)
        mask[1:3, 2:5] = True
        fill = float(x.mean())
        batched = mask_contribution(
            x, kernel, y, mask, fill_value=fill, method="batched"
        )
        looped = mask_contribution(x, kernel, y, mask, fill_value=fill, method="loop")
        assert batched == pytest.approx(looped, abs=1e-10)

    def test_batched_amortizes_kernel_transform(self):
        device = CpuDevice()
        x, kernel, y = fitted_setup(seed=25)
        block_contributions(x, kernel, y, (2, 2), device=device, method="batched")
        # The kernel spectrum is transformed exactly once for the plan.
        assert device.stats.op_counts["fft2"] == 1
        assert device.stats.op_counts["fft2_batch"] == 16


class TestTopKTieBreaking:
    def test_equal_scores_rank_by_ascending_index(self):
        """Regression: reversed argsort used to break ties by *reversed*
        flat index, so equal scores ranked back-to-front."""
        scores = np.array([1.0, 5.0, 5.0, 2.0])
        assert top_k_features(scores, 2) == [(1,), (2,)]

    def test_2d_ties_rank_in_reading_order(self):
        scores = np.array([[3.0, 3.0], [3.0, 1.0]])
        assert top_k_features(scores, 3) == [(0, 0), (0, 1), (1, 0)]

    def test_all_equal_scores_enumerate_in_order(self):
        assert top_k_features(np.full(4, 7.0), 4) == [(0,), (1,), (2,), (3,)]

    def test_unsigned_and_bool_scores_rank_correctly(self):
        """Negation-before-cast would wrap uint8 and reject bool."""
        assert top_k_features(np.array([0, 5, 3], dtype=np.uint8), 2) == [(1,), (2,)]
        assert top_k_features(np.array([True, False, True]), 2) == [(0,), (2,)]
