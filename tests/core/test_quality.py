"""Explanation-quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    deletion_auc,
    deletion_curve,
    dominance_margin,
    rank_agreement,
    top_k_recall,
)


class TestRankAgreement:
    def test_identical_rankings(self):
        scores = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert rank_agreement(scores, scores * 7.0) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert rank_agreement(a, -a) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(0)
        a = rng.standard_normal(50)
        b = a + 0.5 * rng.standard_normal(50)
        expected = scipy_stats.spearmanr(a, b).statistic
        assert rank_agreement(a, b) == pytest.approx(expected, abs=1e-10)

    def test_handles_ties(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        a = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 3.0])
        b = np.array([2.0, 1.0, 1.0, 3.0, 4.0, 3.0])
        expected = scipy_stats.spearmanr(a, b).statistic
        assert rank_agreement(a, b) == pytest.approx(expected, abs=1e-10)

    def test_constant_scores_give_zero(self):
        assert rank_agreement(np.ones(5), np.arange(5.0)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_agreement(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            rank_agreement(np.ones(1), np.ones(1))
        with pytest.raises(ValueError):
            rank_agreement(np.zeros(0), np.zeros(0))


class TestTopKRecall:
    def test_full_recall(self):
        scores = np.array([[9.0, 1.0], [8.0, 0.5]])
        truth = [(0, 0), (1, 0)]
        assert top_k_recall(scores, truth, k=2) == 1.0

    def test_partial_recall(self):
        scores = np.array([9.0, 1.0, 8.0, 0.5])
        truth = [(0,), (1,)]
        assert top_k_recall(scores, truth, k=2) == 0.5

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            top_k_recall(np.ones(3), [], k=1)


class TestDominanceMargin:
    def test_basic(self):
        assert dominance_margin(np.array([1.0, 4.0, 2.0])) == pytest.approx(2.0)

    def test_adjacent_exclusion(self):
        scores = np.array([0.1, 0.9, 1.0, 0.8, 0.2])
        plain = dominance_margin(scores)
        excluded = dominance_margin(scores, exclude_adjacent=1)
        assert plain == pytest.approx(1.0 / 0.9)
        assert excluded == pytest.approx(1.0 / 0.2)

    def test_grid_input(self):
        grid = np.array([[0.1, 1.0], [0.5, 0.2]])
        assert dominance_margin(grid) == pytest.approx(2.0)

    def test_nonpositive_runner_up_is_infinite(self):
        assert dominance_margin(np.array([0.0, 5.0])) == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            dominance_margin(np.array([1.0]))


class TestDeletionCurve:
    def linear_model(self, weights):
        return lambda x: np.array([np.sum(weights * x)])

    def test_good_ranking_front_loads_change(self):
        rng = np.random.default_rng(1)
        weights = np.abs(rng.standard_normal((4, 4)))
        model = self.linear_model(weights)
        x = np.ones((4, 4))
        order = np.argsort(weights.reshape(-1))[::-1]
        good = [tuple(int(v) for v in np.unravel_index(i, (4, 4))) for i in order]
        bad = list(reversed(good))
        good_auc = deletion_auc(deletion_curve(model, x, good))
        bad_auc = deletion_auc(deletion_curve(model, x, bad))
        assert good_auc > bad_auc

    def test_curve_ends_at_one(self):
        model = self.linear_model(np.ones((2, 2)))
        curve = deletion_curve(model, np.ones((2, 2)), [(0, 0), (0, 1), (1, 0), (1, 1)])
        assert curve[-1] == pytest.approx(1.0)

    def test_column_ranking(self):
        model = self.linear_model(np.ones((3, 3)))
        curve = deletion_curve(model, np.ones((3, 3)), [(0,), (1,), (2,)])
        np.testing.assert_allclose(curve, [1 / 3, 2 / 3, 1.0], atol=1e-10)

    def test_validation(self):
        model = self.linear_model(np.ones((2, 2)))
        with pytest.raises(ValueError):
            deletion_curve(model, np.ones(4), [(0, 0)])
        with pytest.raises(ValueError):
            deletion_curve(model, np.ones((2, 2)), [])
        with pytest.raises(ValueError):
            deletion_curve(model, np.ones((2, 2)), [(0, 0, 0)])
        with pytest.raises(ValueError):
            deletion_auc(np.zeros(0))

    def test_no_change_model_gives_zero_curve(self):
        model = lambda x: np.array([0.0])
        curve = deletion_curve(model, np.ones((2, 2)), [(0, 0), (1, 1)])
        np.testing.assert_array_equal(curve, np.zeros(2))


class TestCrossExplainerAgreement:
    def test_distilled_and_occlusion_rank_alike_on_planted_input(self):
        """End-to-end: the metrics certify the two explainers agree."""
        from repro.baselines import occlusion_saliency
        from repro.core import ConvolutionDistiller, block_contributions
        from repro.fft import fft_circular_convolve2d

        rng = np.random.default_rng(2)
        x = 0.01 * rng.standard_normal((8, 8))
        x[0, 0] = 1.0
        x[2:4, 4:6] = 6.0
        kernel = rng.standard_normal((8, 8))
        y = fft_circular_convolve2d(x, kernel)

        distiller = ConvolutionDistiller(eps=1e-10).fit(x, y)
        distilled = block_contributions(x, distiller.kernel_, y, (2, 2))
        occlusion = occlusion_saliency(
            lambda m: fft_circular_convolve2d(m, kernel), x, (2, 2)
        )
        assert rank_agreement(distilled, occlusion) > 0.7
        assert top_k_recall(distilled, [(1, 2)], k=1) == 1.0


class TestProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_rank_agreement_symmetric_and_bounded(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(20)
        b = rng.standard_normal(20)
        r_ab = rank_agreement(a, b)
        r_ba = rank_agreement(b, a)
        assert r_ab == pytest.approx(r_ba)
        assert -1.0 - 1e-9 <= r_ab <= 1.0 + 1e-9

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_agreement_invariant_to_monotone_transforms(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(15)
        b = rng.standard_normal(15)
        base = rank_agreement(a, b)
        transformed = rank_agreement(np.exp(a), b)
        assert transformed == pytest.approx(base, abs=1e-9)
